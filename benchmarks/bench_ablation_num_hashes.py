"""Ablation: number of hash functions (sketch width n).

More hash functions tighten the Jaccard estimate (variance ~ 1/n) at
linear extra cost; the paper fixes n = 100 for whole-metagenome and
n = 50 for 16S without justification — this sweep shows the quality
plateau that motivates those choices.
"""

from __future__ import annotations

from conftest import save_table

from repro.bench import ExperimentScale, run_num_hashes_ablation

HASH_COUNTS = (10, 25, 50, 100, 200)


def test_num_hashes_ablation(benchmark, results_dir):
    scale = ExperimentScale(num_reads=150, genome_length=5000, min_cluster_size=2)
    table, rows = benchmark.pedantic(
        lambda: run_num_hashes_ablation(scale, hash_counts=HASH_COUNTS),
        rounds=1,
        iterations=1,
    )
    save_table(results_dir, "ablation_num_hashes", table.render())

    accs = {r.setting: r.w_acc for r in rows}
    # Wide sketches should not be (meaningfully) worse than narrow ones.
    assert accs["n=100"] >= accs["n=10"] - 5.0
    # Every setting produces a usable clustering.
    for r in rows:
        assert r.num_clusters >= 1
        assert r.w_acc is not None
