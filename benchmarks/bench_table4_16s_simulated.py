"""Table IV: eight clustering methods on the 43-reference 16S simulated
dataset at 3 % and 5 % read error.

Shape assertions:

* every method's trimmed cluster count is within a factor of the
  43-species ground truth, and the two error levels bracket each other
  the way the paper's do (counts shrink or stay similar as error rises
  because noisy reads fall into trimmed-away singletons);
* W.Sim stays high (> 90 %) for all methods — clusters are tight at
  θ = 0.95;
* the MrMC methods are far faster than the alignment-matrix methods.
"""

from __future__ import annotations

from conftest import bench_reads, save_table

from repro.bench import ExperimentScale, run_table4


def test_table4(benchmark, results_dir):
    scale = ExperimentScale(
        num_reads=bench_reads(430),
        genome_length=5000,
        min_cluster_size=2,
        max_pairs_per_cluster=20,
        seed=0,
    )
    table, results = benchmark.pedantic(
        lambda: run_table4(scale), rounds=1, iterations=1
    )
    save_table(results_dir, "table4", table.render())

    for r in results:
        assert r.num_clusters >= 1
        if r.w_sim is not None:
            assert r.w_sim > 90.0, f"{r.method} at {r.sample}: W.Sim {r.w_sim}"

    by = {(r.method, r.sample): r for r in results}
    # Alignment-matrix methods pay the quadratic cost the paper's Table V
    # timings show; sketch methods must be at least 3x faster here too.
    fast = by[("MrMC-MinH^g", "3%")].seconds
    slow = by[("DOTUR", "3%")].seconds
    assert slow > 3 * fast

    # Counts land in a plausible band around the 43-reference truth for
    # the word-filter greedy methods (the paper's closest-to-truth rows).
    for method in ("UCLUST", "CD-HIT"):
        count = by[(method, "3%")].num_clusters
        assert 10 <= count <= 120, f"{method}: {count}"
