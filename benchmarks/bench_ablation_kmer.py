"""Ablation: k-mer size.

The paper uses k = 5 for whole-metagenome reads (composition signal) and
k = 15 for 16S amplicons (sequence identity signal).  This sweep runs the
hierarchical pipeline across k on the shotgun workload, exhibiting the
trade-off: small k saturates the universe (everything looks similar),
large k keys on exact substrings (same-genome reads stop matching).
"""

from __future__ import annotations

from conftest import save_table

from repro.bench import ExperimentScale, run_kmer_ablation

KMER_SIZES = (3, 5, 8, 12)


def test_kmer_ablation(benchmark, results_dir):
    scale = ExperimentScale(num_reads=150, genome_length=5000, min_cluster_size=2)
    table, rows = benchmark.pedantic(
        lambda: run_kmer_ablation(scale, kmer_sizes=KMER_SIZES),
        rounds=1,
        iterations=1,
    )
    save_table(results_dir, "ablation_kmer", table.render())

    for r in rows:
        assert r.num_clusters >= 1
