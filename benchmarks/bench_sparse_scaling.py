"""Large-N demonstration: engine-sparse clustering where dense cannot go.

Clusters a >=100k-read synthetic environmental sample (rare-biosphere
OTU structure, 16S settings k=15) through the MapReduce LSH chain of
:mod:`repro.cluster.sparse_jobs`, cross-checks the candidate pairs and
the final assignment against the in-process sparse path, then measures
the dense all-pairs job at small probe sizes and extrapolates its
quadratic cost to the target N — showing the dense path cannot complete
in the same budget (time *or* memory: the similarity matrix alone is
``8 N^2`` bytes, ~80 GiB at N=100k).

Usage::

    python benchmarks/bench_sparse_scaling.py                  # full: 100k reads
    python benchmarks/bench_sparse_scaling.py --smoke          # CI: 2k reads
    python benchmarks/bench_sparse_scaling.py --json OUT.json  # artifact

The JSON artifact carries the candidate-pair count — the same quantity
bench_trajectory gates exactly at its pinned workload — plus rounds,
shuffle bytes and the dense projection, and the script exits non-zero if
the engine chain ever disagrees with the in-process join.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

# Paper-flavoured 16S parameterization.  The group cap matters at this
# scale: the most abundant OTUs put thousands of near-identical reads
# into one collision group, and an uncapped join enumerates C(s, 2) of
# them per component (measured: 20k reads -> 133M uncapped candidate
# pairs vs 0.5M at cap 64).  Hadoop LSH jobs cap exactly this way; both
# paths here apply the same cap, so the cross-check stays exact.
DEFAULTS = {
    "sample": "53R",
    "kmer_size": 15,
    "num_hashes": 32,
    "threshold": 0.9,
    "max_group": 64,
    "seed": 0,
}


def measure(
    num_reads: int,
    *,
    dense_probes: tuple[int, ...],
    params: dict | None = None,
) -> dict:
    import numpy as np

    from repro.cluster.matrix import compute_similarity_matrix
    from repro.cluster.sparse import candidate_pairs, single_linkage_from_edges
    from repro.cluster.sparse_jobs import run_sparse_jobs
    from repro.datasets.environmental import generate_environmental_sample
    from repro.minhash.sketch import (
        SketchingConfig,
        compute_sketches_batch,
        sketch_matrix,
    )

    p = dict(DEFAULTS)
    if params:
        p.update(params)

    t0 = time.perf_counter()
    reads = generate_environmental_sample(
        p["sample"], num_reads=num_reads, seed=p["seed"]
    )
    gen_seconds = time.perf_counter() - t0

    config = SketchingConfig(
        kmer_size=p["kmer_size"], num_hashes=p["num_hashes"], seed=p["seed"]
    )
    t0 = time.perf_counter()
    sketches = compute_sketches_batch(reads, config, config.make_family())
    sketch_seconds = time.perf_counter() - t0

    # ---- the engine chain, end to end -----------------------------------
    t0 = time.perf_counter()
    run = run_sparse_jobs(
        sketches,
        p["threshold"],
        method="hierarchical",
        max_group=p["max_group"],
        num_map_tasks=8,
        num_reduce_tasks=8,
    )
    engine_seconds = time.perf_counter() - t0

    # ---- exactness cross-check vs the in-process sparse path ------------
    in_process_pairs = candidate_pairs(sketches, max_group=p["max_group"])
    pairs_ok = run.pairs == in_process_pairs
    # The engine's verify round scores surviving candidates against the
    # true sketches (capping truncates collision counts but not the
    # verification), so the reference is capped candidates + exact
    # verification — vectorised here with the sketch matrix.
    matrix = sketch_matrix(sketches)
    num_hashes = matrix.shape[1]
    reference = single_linkage_from_edges(
        [s.read_id for s in sketches],
        (
            pair
            for pair in in_process_pairs
            if int(np.count_nonzero(matrix[pair[0]] == matrix[pair[1]]))
            / num_hashes
            >= p["threshold"]
        ),
    )
    assignment_ok = reference.to_tsv() == run.assignment.to_tsv()

    # ---- dense probes + quadratic projection ----------------------------
    probe_rows = []
    coeffs = []
    for n in dense_probes:
        t0 = time.perf_counter()
        compute_similarity_matrix(
            sketches[:n], estimator="positional", num_tasks=8
        )
        seconds = time.perf_counter() - t0
        probe_rows.append({"n": n, "seconds": round(seconds, 3)})
        coeffs.append(seconds / (n * n))
    # The largest probe dominates the fit — smaller ones mostly measure
    # fixed overhead, so a plain mean would *under*-project.
    dense_coeff = coeffs[-1]
    dense_projection = dense_coeff * num_reads * num_reads
    dense_matrix_gib = 8.0 * num_reads * num_reads / 2**30

    return {
        "num_reads": num_reads,
        "num_sketches": len(sketches),
        "params": p,
        "gen_seconds": round(gen_seconds, 2),
        "sketch_seconds": round(sketch_seconds, 2),
        "engine_seconds": round(engine_seconds, 2),
        "candidate_pairs": len(run.pairs),
        "edges": len(run.edges),
        "clusters": run.assignment.num_clusters,
        "rounds": run.rounds,
        "shuffle_bytes": run.shuffle_bytes,
        "pairs_match_in_process": pairs_ok,
        "assignment_match_in_process": assignment_ok,
        "dense_probes": probe_rows,
        "dense_projected_seconds": round(dense_projection, 1),
        "dense_matrix_gib": round(dense_matrix_gib, 2),
    }


def render(result: dict) -> str:
    pairs_per_read = result["candidate_pairs"] / result["num_reads"]
    speedup = result["dense_projected_seconds"] / max(
        result["engine_seconds"], 1e-9
    )
    lines = [
        f"engine-sparse scaling @ N={result['num_reads']}",
        f"  params: k={result['params']['kmer_size']} "
        f"n={result['params']['num_hashes']} "
        f"theta={result['params']['threshold']} "
        f"max_group={result['params']['max_group']}",
        f"  generate reads        {result['gen_seconds']:>10.2f} s",
        f"  batch sketching       {result['sketch_seconds']:>10.2f} s",
        f"  engine chain          {result['engine_seconds']:>10.2f} s "
        f"({result['rounds']} rounds, {result['shuffle_bytes']} shuffle bytes)",
        f"  candidate pairs       {result['candidate_pairs']:>10d} "
        f"({pairs_per_read:.1f}/read vs {result['num_reads'] - 1} dense)",
        f"  above-theta edges     {result['edges']:>10d}",
        f"  clusters              {result['clusters']:>10d}",
        f"  pairs == in-process   {str(result['pairs_match_in_process']):>10s}",
        f"  tsv   == in-process   "
        f"{str(result['assignment_match_in_process']):>10s}",
        "  dense all-pairs probes:",
    ]
    for row in result["dense_probes"]:
        lines.append(f"    N={row['n']:<7d} {row['seconds']:>10.3f} s")
    lines += [
        f"  dense projected       {result['dense_projected_seconds']:>10.1f} s "
        f"at N={result['num_reads']} (~{speedup:.0f}x the engine chain)",
        f"  dense matrix memory   {result['dense_matrix_gib']:>10.2f} GiB "
        f"(similarity matrix alone)",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reads", type=int, default=100_000)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: 2k reads, small dense probes, same assertions",
    )
    parser.add_argument("--json", default=None, help="write the artifact here")
    args = parser.parse_args(argv)

    if args.smoke:
        num_reads, probes = 2000, (250, 500, 1000)
    else:
        num_reads, probes = args.reads, (1000, 2000, 4000)

    result = measure(num_reads, dense_probes=probes)
    result["smoke"] = bool(args.smoke)
    print(render(result))
    if args.json:
        with open(args.json, "w", encoding="ascii") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")

    if not (
        result["pairs_match_in_process"]
        and result["assignment_match_in_process"]
    ):
        print("FAIL: engine chain diverged from the in-process sparse path")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
