"""Ablation: heterogeneous nodes and speculative execution.

The paper's EMR cluster is assumed homogeneous; real EC2 fleets are not.
This ablation measures the modeled impact of straggler nodes on the
Figure 2 pipeline and how much Hadoop's speculative execution recovers —
the design consideration behind the simulator's scheduling model.
"""

from __future__ import annotations

from conftest import save_table

from repro.bench.figures import calibrate_from_measurement
from repro.eval.report import Table
from repro.mapreduce.simulator import ClusterSimulator, ClusterSpec
from repro.mapreduce.workload import PipelineWorkload, build_pipeline_traces


def test_straggler_ablation(benchmark, results_dir):
    def run():
        model = calibrate_from_measurement(calibration_reads=100, genome_length=4000)
        workload = PipelineWorkload(
            num_reads=100_000, row_band=5_000, sparse_similarity=True
        )
        traces = build_pipeline_traces(
            workload,
            map_cost_per_record_s=model.map_cost_per_record_s,
            pair_cost_s=model.pair_cost_s,
        )
        table = Table(
            title="Ablation - stragglers and speculative execution (100k reads, 8 nodes)",
            columns=["Cluster condition", "Minutes", "Speculative attempts"],
        )
        rows = {}
        for name, spec in (
            ("healthy", ClusterSpec(num_nodes=8)),
            (
                "25% nodes 4x slow",
                ClusterSpec(num_nodes=8, straggler_fraction=0.25, straggler_slowdown=4.0),
            ),
            (
                "25% slow + speculation",
                ClusterSpec(
                    num_nodes=8, straggler_fraction=0.25, straggler_slowdown=4.0,
                    speculative_execution=True,
                ),
            ),
        ):
            report = ClusterSimulator(spec, model).simulate_pipeline(traces)
            attempts = sum(j.speculative_attempts for j in report.jobs)
            table.add_row(name, round(report.total_minutes, 2), attempts)
            rows[name] = report.total_minutes
        return table, rows

    table, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(results_dir, "ablation_stragglers", table.render())

    assert rows["25% nodes 4x slow"] > rows["healthy"]
    assert rows["25% slow + speculation"] < rows["25% nodes 4x slow"]
