"""Ablation: linkage policy ($LINK: single / average / complete).

The paper exposes the linkage as a parameter but evaluates only one; this
sweep shows the classic behaviour on the shotgun workload — single
linkage chains clusters together (fewest clusters), complete linkage
fragments (most clusters), average sits between.
"""

from __future__ import annotations

from conftest import save_table

from repro.bench import ExperimentScale, run_linkage_ablation


def test_linkage_ablation(benchmark, results_dir):
    scale = ExperimentScale(num_reads=150, genome_length=5000, min_cluster_size=2)
    table, rows = benchmark.pedantic(
        lambda: run_linkage_ablation(scale), rounds=1, iterations=1
    )
    save_table(results_dir, "ablation_linkage", table.render())

    counts = {r.setting: r.num_clusters for r in rows}
    # Chaining: single linkage can never produce more clusters than
    # complete linkage at the same threshold.
    assert counts["single"] <= counts["complete"]
