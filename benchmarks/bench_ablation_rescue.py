"""Ablation: singleton rescue (second-pass denoising).

Errored reads strand as singletons at θ = 0.95 (the Table IV/V failure
mode); a permissive second pass re-attaches them.  This ablation sweeps
the rescue threshold on the 43-reference simulated set and reports how
the cluster count approaches the ground truth without corrupting W.Sim.
"""

from __future__ import annotations

from conftest import save_table

from repro.bench.harness import ExperimentScale, evaluate_assignment
from repro.cluster.denoise import rescue_small_clusters
from repro.cluster.pipeline import MrMCMinH
from repro.datasets.huse import HuseDatasetSpec, generate_huse_dataset
from repro.eval.report import Table

RESCUE_THRESHOLDS = (None, 0.7, 0.5, 0.3)


def test_rescue_ablation(benchmark, results_dir):
    scale = ExperimentScale(
        num_reads=430, genome_length=5000, min_cluster_size=2,
        max_pairs_per_cluster=20,
    )

    def run():
        reads = generate_huse_dataset(
            HuseDatasetSpec(error_limit=0.03), num_reads=scale.num_reads, seed=0
        )
        pipeline = MrMCMinH(kmer_size=15, num_hashes=50, threshold=0.95, seed=0)
        base = pipeline.fit(reads)
        table = Table(
            title="Ablation - singleton rescue (43-reference set, 3% error)",
            columns=["Rescue θ2", "#Cluster (>=2)", "#Cluster (all)", "W.Sim", "W.Acc"],
        )
        rows = {}
        for theta2 in RESCUE_THRESHOLDS:
            assignment = base.assignment
            if theta2 is not None:
                assignment = rescue_small_clusters(
                    assignment, base.sketches, rescue_threshold=theta2, max_size=1
                )
            res = evaluate_assignment(
                "MrMC-MinH^h", "3%", assignment, reads, 0.0, scale=scale
            )
            table.add_row(
                "off" if theta2 is None else theta2,
                res.num_clusters, res.num_clusters_total,
                "-" if res.w_sim is None else res.w_sim,
                "-" if res.w_acc is None else res.w_acc,
            )
            rows[theta2] = res
        return table, rows

    table, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(results_dir, "ablation_rescue", table.render())

    # Rescue absorbs singletons: untrimmed counts fall monotonically.
    totals = [rows[t].num_clusters_total for t in RESCUE_THRESHOLDS]
    assert totals == sorted(totals, reverse=True)
    # Aggressive rescue must not corrupt the clusters (truth = 43 refs).
    assert rows[0.3].w_acc is None or rows[0.3].w_acc > 80.0
