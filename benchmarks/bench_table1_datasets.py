"""Tables I & II: dataset inventories, plus generator throughput.

The tables themselves are spec-driven (they describe the inputs, not
results); the benchmark measures the synthetic generators that stand in
for the real data (DESIGN.md substitution #2).
"""

from __future__ import annotations

from conftest import save_table

from repro.bench import run_table1, run_table2
from repro.datasets import (
    generate_environmental_sample,
    generate_whole_metagenome_sample,
)


def test_table1_metadata(benchmark, results_dir):
    table = benchmark(run_table1)
    save_table(results_dir, "table1", table.render())
    assert len(table.rows) == 8  # the eight Sogin samples


def test_table2_metadata(benchmark, results_dir):
    table = benchmark(run_table2)
    save_table(results_dir, "table2", table.render())
    assert len(table.rows) == 15  # S1-S14 + R1


def test_bench_whole_metagenome_generator(benchmark):
    reads = benchmark.pedantic(
        lambda: generate_whole_metagenome_sample(
            "S1", num_reads=200, genome_length=5000
        ),
        rounds=3,
        iterations=1,
    )
    assert len(reads) == 200


def test_bench_environmental_generator(benchmark):
    reads = benchmark.pedantic(
        lambda: generate_environmental_sample("53R", num_reads=200),
        rounds=3,
        iterations=1,
    )
    assert len(reads) == 200
