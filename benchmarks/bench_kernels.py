"""Microbenchmarks of the pipeline kernels.

These are the quantities the Figure 2 calibration measures: per-read
sketching cost, per-pair similarity cost, the Map-Reduce engine's
per-record overhead, and the agglomerative clustering step.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.hierarchical import build_dendrogram
from repro.datasets import generate_whole_metagenome_sample
from repro.mapreduce.job import MapReduceJob, identity_mapper, identity_reducer
from repro.mapreduce.runner import SerialRunner
from repro.mapreduce.types import JobConf
from repro.minhash.sketch import (
    SketchingConfig,
    compute_sketch,
    compute_sketches,
)
from repro.minhash.similarity import pairwise_similarity_matrix


def _reads(n=200):
    return generate_whole_metagenome_sample("S1", num_reads=n, genome_length=5000)


def test_bench_sketching(benchmark):
    """Production path: the vectorised batch kernel."""
    reads = _reads()
    config = SketchingConfig(kmer_size=5, num_hashes=100)
    sketches = benchmark(lambda: compute_sketches(reads, config))
    assert len(sketches) == len(reads)


def test_bench_sketching_reference_loop(benchmark):
    """Per-record reference path — the baseline the batch kernel's >=5x
    speedup gate (BENCH_*.json trajectory) is measured against."""
    reads = _reads()
    config = SketchingConfig(kmer_size=5, num_hashes=100)
    family = config.make_family()
    sketches = benchmark(
        lambda: [compute_sketch(r, config, family) for r in reads]
    )
    assert len(sketches) == len(reads)


def test_bench_similarity_matrix(benchmark):
    reads = _reads()
    sketches = compute_sketches(reads, SketchingConfig(kmer_size=5, num_hashes=100))
    matrix = benchmark(lambda: pairwise_similarity_matrix(sketches))
    assert matrix.shape == (len(sketches), len(sketches))


def test_bench_agglomeration(benchmark):
    rng = np.random.default_rng(0)
    n = 300
    base = rng.random((n, n)) * 0.5
    sim = (base + base.T) / 2
    np.fill_diagonal(sim, 1.0)
    dendrogram = benchmark(lambda: build_dendrogram(sim, linkage="average"))
    assert dendrogram.is_complete


def test_bench_mapreduce_overhead(benchmark):
    """Engine overhead on a pass-through job over 10k records."""
    job = MapReduceJob(name="noop", mapper=identity_mapper, reducer=identity_reducer)
    inputs = [(i, i) for i in range(10_000)]
    runner = SerialRunner(trace=False)
    result = benchmark(
        lambda: runner.run(job, inputs, JobConf(num_map_tasks=4, num_reduce_tasks=2))
    )
    assert len(result.output) == 10_000
