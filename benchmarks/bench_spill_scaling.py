"""Million-read demonstration: the external shuffle + streamed edges.

Clusters a ~1M-read synthetic environmental sample through the engine
chain of :mod:`repro.cluster.sparse_jobs` with ``stream=True`` and a
bounded ``spill_threshold_bytes`` — map output past the threshold is
sorted and spilled to CRC-guarded segment files and merge-iterated back,
and the verified edges feed the clusterer incrementally, so the driver
never holds the scored candidate-pair list (``run.pairs`` stays empty;
only counts come back).  The run is cross-checked against the vectorised
in-process sparse path: same candidate-pair count, byte-identical
assignment TSV.

Usage::

    python benchmarks/bench_spill_scaling.py                  # full: 1M reads
    python benchmarks/bench_spill_scaling.py --smoke          # CI: 2k reads
    python benchmarks/bench_spill_scaling.py --json OUT.json  # artifact

``--smoke`` additionally runs the unspilled, collected chain on the same
sketches and requires the spilled+streamed run to be byte-identical to
it (threshold 0 = spill every buffer), which is the same exact parity
gate bench_trajectory pins at its own workload.  The script exits
non-zero if any parity check fails or if spilling/streaming did not
actually engage.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time

# Same paper-flavoured 16S parameterization as bench_sparse_scaling, so
# the two artifacts compose: this one pushes N another order of
# magnitude and bounds driver memory instead of measuring dense decay.
DEFAULTS = {
    "sample": "53R",
    "kmer_size": 15,
    "num_hashes": 32,
    "threshold": 0.9,
    "max_group": 64,
    "seed": 0,
}


def _max_rss_mib() -> float:
    # ru_maxrss is KiB on Linux.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def measure(
    num_reads: int,
    *,
    spill_threshold_bytes: int,
    smoke: bool = False,
    params: dict | None = None,
) -> dict:
    import numpy as np

    from repro.cluster.sparse import candidate_pairs, single_linkage_from_edges
    from repro.cluster.sparse_jobs import run_sparse_jobs
    from repro.datasets.environmental import generate_environmental_sample
    from repro.minhash.sketch import (
        SketchingConfig,
        compute_sketches_batch,
        sketch_matrix,
    )

    p = dict(DEFAULTS)
    if params:
        p.update(params)

    t0 = time.perf_counter()
    reads = generate_environmental_sample(
        p["sample"], num_reads=num_reads, seed=p["seed"]
    )
    gen_seconds = time.perf_counter() - t0

    config = SketchingConfig(
        kmer_size=p["kmer_size"], num_hashes=p["num_hashes"], seed=p["seed"]
    )
    t0 = time.perf_counter()
    sketches = compute_sketches_batch(reads, config, config.make_family())
    sketch_seconds = time.perf_counter() - t0
    del reads

    # ---- the spilled + streamed engine chain ----------------------------
    t0 = time.perf_counter()
    run = run_sparse_jobs(
        sketches,
        p["threshold"],
        method="hierarchical",
        max_group=p["max_group"],
        num_map_tasks=8,
        num_reduce_tasks=8,
        stream=True,
        spill_threshold_bytes=spill_threshold_bytes,
    )
    engine_seconds = time.perf_counter() - t0
    rss_after_engine = _max_rss_mib()

    # Stream mode must actually stream: the scored pair list never lands
    # in the driver, only counts do.
    streamed_ok = (
        run.streamed
        and run.pairs == {}
        and run.matches == {}
        and run.edges == []
    )
    spill_segments = run.counters.get("shuffle", "spill_segments")
    spill_bytes = run.counters.get("shuffle", "spill_bytes")
    spill_records = run.counters.get("shuffle", "spill_records")
    spilled_ok = spill_segments > 0

    # ---- exactness cross-check vs the in-process sparse path ------------
    in_process_pairs = candidate_pairs(sketches, max_group=p["max_group"])
    pairs_ok = run.candidate_pair_count == len(in_process_pairs)
    matrix = sketch_matrix(sketches)
    num_hashes = matrix.shape[1]
    reference = single_linkage_from_edges(
        [s.read_id for s in sketches],
        (
            pair
            for pair in in_process_pairs
            if int(np.count_nonzero(matrix[pair[0]] == matrix[pair[1]]))
            / num_hashes
            >= p["threshold"]
        ),
    )
    assignment_ok = reference.to_tsv() == run.assignment.to_tsv()

    result = {
        "num_reads": num_reads,
        "num_sketches": len(sketches),
        "params": p,
        "spill_threshold_bytes": spill_threshold_bytes,
        "gen_seconds": round(gen_seconds, 2),
        "sketch_seconds": round(sketch_seconds, 2),
        "engine_seconds": round(engine_seconds, 2),
        "candidate_pairs": run.candidate_pair_count,
        "edges": run.edge_count,
        "clusters": run.assignment.num_clusters,
        "rounds": run.rounds,
        "shuffle_bytes": run.shuffle_bytes,
        "spill_segments": spill_segments,
        "spill_bytes": spill_bytes,
        "spill_records": spill_records,
        "max_rss_mib_after_engine": round(rss_after_engine, 1),
        "streamed": streamed_ok,
        "spilled": spilled_ok,
        "pairs_match_in_process": pairs_ok,
        "assignment_match_in_process": assignment_ok,
    }

    # ---- smoke extra: byte parity vs the unspilled, collected chain -----
    if smoke:
        base = run_sparse_jobs(
            sketches,
            p["threshold"],
            method="hierarchical",
            max_group=p["max_group"],
            num_map_tasks=8,
            num_reduce_tasks=8,
        )
        result["spilled_matches_unspilled"] = (
            run.assignment.to_tsv() == base.assignment.to_tsv()
            and run.candidate_pair_count == len(base.pairs)
            and run.edge_count == len(base.edges)
        )

    return result


def render(result: dict) -> str:
    threshold = result["spill_threshold_bytes"]
    lines = [
        f"external-shuffle scaling @ N={result['num_reads']}",
        f"  params: k={result['params']['kmer_size']} "
        f"n={result['params']['num_hashes']} "
        f"theta={result['params']['threshold']} "
        f"max_group={result['params']['max_group']} "
        f"spill_threshold={threshold} B",
        f"  generate reads        {result['gen_seconds']:>12.2f} s",
        f"  batch sketching       {result['sketch_seconds']:>12.2f} s",
        f"  engine chain          {result['engine_seconds']:>12.2f} s "
        f"({result['rounds']} rounds, streamed={result['streamed']})",
        f"  candidate pairs       {result['candidate_pairs']:>12d} "
        "(counted, never collected)",
        f"  above-theta edges     {result['edges']:>12d}",
        f"  clusters              {result['clusters']:>12d}",
        f"  shuffle bytes         {result['shuffle_bytes']:>12d}",
        f"  spill segments        {result['spill_segments']:>12d}",
        f"  spill bytes           {result['spill_bytes']:>12d}",
        f"  spill records         {result['spill_records']:>12d}",
        f"  driver max RSS        {result['max_rss_mib_after_engine']:>12.1f}"
        " MiB",
        f"  pairs == in-process   {str(result['pairs_match_in_process']):>12s}",
        f"  tsv   == in-process   "
        f"{str(result['assignment_match_in_process']):>12s}",
    ]
    if "spilled_matches_unspilled" in result:
        lines.append(
            f"  spilled == unspilled  "
            f"{str(result['spilled_matches_unspilled']):>12s}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reads", type=int, default=1_000_000)
    parser.add_argument(
        "--spill-threshold", type=int, default=64 << 20, metavar="BYTES",
        help="per-partition spill threshold for the full run "
        "(default 64 MiB; --smoke always uses 0 = spill everything)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: 2k reads, threshold 0, plus byte parity against "
        "the unspilled collected chain",
    )
    parser.add_argument("--json", default=None, help="write the artifact here")
    args = parser.parse_args(argv)

    if args.smoke:
        num_reads, threshold = 2000, 0
    else:
        num_reads, threshold = args.reads, args.spill_threshold

    result = measure(
        num_reads, spill_threshold_bytes=threshold, smoke=args.smoke
    )
    result["smoke"] = bool(args.smoke)
    print(render(result))
    if args.json:
        with open(args.json, "w", encoding="ascii") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")

    checks = [
        ("streamed", "driver collected records despite stream=True"),
        ("spilled", "no spill segments were written"),
        ("pairs_match_in_process", "candidate-pair count diverged"),
        ("assignment_match_in_process", "assignment TSV diverged"),
    ]
    if args.smoke:
        checks.append(
            ("spilled_matches_unspilled", "spilled run != unspilled run")
        )
    failed = [msg for key, msg in checks if not result.get(key)]
    for msg in failed:
        print(f"FAIL: {msg}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
