"""Table V: eight clustering methods on the eight environmental 16S
samples.

Shape assertions mirror the paper:

* MrMC-MinH^h produces W.Sim comparable to the matrix methods (within a
  couple of points) — "similar weighted similarity (W.Sim) with less
  number of clusters";
* the DOTUR/Mothur alignment-matrix cost dwarfs the sketch methods
  (paper: 10³–10⁴x; we assert >3x at this scale, the gap widens
  quadratically with reads);
* greedy MrMC-MinH is the fastest MrMC variant.
"""

from __future__ import annotations

import numpy as np
from conftest import save_table

from repro.bench import run_table5

SAMPLES = ("53R", "55R", "112R", "115R", "137", "138", "FS312", "FS396")


def test_table5(benchmark, small_scale, results_dir):
    table, results = benchmark.pedantic(
        lambda: run_table5(small_scale, samples=SAMPLES),
        rounds=1,
        iterations=1,
    )
    save_table(results_dir, "table5", table.render())

    by_method: dict[str, list] = {}
    for r in results:
        by_method.setdefault(r.method, []).append(r)

    def mean_sim(method):
        vals = [r.w_sim for r in by_method[method] if r.w_sim is not None]
        return float(np.mean(vals))

    # Hierarchical W.Sim within 3 points of the exact-matrix DOTUR.
    assert mean_sim("MrMC-MinH^h") > mean_sim("DOTUR") - 3.0

    # Sketch methods much faster than matrix methods.
    hier_time = sum(r.seconds for r in by_method["MrMC-MinH^h"])
    dotur_time = sum(r.seconds for r in by_method["DOTUR"])
    mothur_time = sum(r.seconds for r in by_method["Mothur"])
    assert dotur_time > 3 * hier_time
    assert mothur_time > 3 * hier_time

    # Greedy stays within a small factor of hierarchical at this scale
    # (its asymptotic advantage needs larger N than a scaled bench run;
    # both are orders of magnitude below the matrix methods).
    greedy_time = sum(r.seconds for r in by_method["MrMC-MinH^g"])
    assert greedy_time <= hier_time * 4.0
