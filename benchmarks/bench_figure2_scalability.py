"""Figure 2: modeled runtime vs cluster size (2-12 nodes) and input size
(1 k - 10 M reads) for the hierarchical pipeline.

The kernels are really measured (calibration run) and the task DAG is
really scheduled; only distributed wall-clock is modeled (DESIGN.md
substitution #1).  Shape assertions mirror the paper's observations:

* "for the smallest input size of 1000 sequences ... there is no effect
  on run time of increasing the number of nodes";
* "for the 10 million sequence benchmark, we can further reduce the run
  time by introducing more nodes" — monotone-ish decrease with healthy
  total speedup;
* larger inputs benefit more from added nodes than smaller ones.
"""

from __future__ import annotations

from conftest import save_table

from repro.bench import run_figure2

NODES = (2, 4, 6, 8, 10, 12)
READS = (1_000, 10_000, 100_000, 1_000_000, 10_000_000)


def test_figure2(benchmark, medium_scale, results_dir):
    table, result = benchmark.pedantic(
        lambda: run_figure2(node_counts=NODES, read_counts=READS, scale=medium_scale),
        rounds=1,
        iterations=1,
    )
    save_table(results_dir, "figure2", table.render())

    small = result.series(1_000)
    large = result.series(10_000_000)

    # Small input: node count is irrelevant (startup dominates).
    small_speedup = small[0][1] / small[-1][1]
    assert small_speedup < 1.1

    # Large input: adding nodes keeps helping.
    large_speedup = large[0][1] / large[-1][1]
    assert large_speedup > 2.5
    minutes = [m for _n, m in large]
    assert all(b <= a * 1.02 for a, b in zip(minutes, minutes[1:])), minutes

    # Scaling benefit grows with input size.
    mid_speedup = result.series(100_000)[0][1] / result.series(100_000)[-1][1]
    assert small_speedup <= mid_speedup <= large_speedup * 1.05
