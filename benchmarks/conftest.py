"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one paper table/figure at a scaled-down size
(DESIGN.md substitution #4), prints it, and saves the rendering under
``benchmarks/results/`` so EXPERIMENTS.md can quote it.  Environment
variable ``REPRO_BENCH_READS`` scales every workload up or down.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.bench import ExperimentScale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_reads(default: int) -> int:
    """Read count for a benchmark, honouring REPRO_BENCH_READS."""
    override = os.environ.get("REPRO_BENCH_READS")
    return int(override) if override else default


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def small_scale() -> ExperimentScale:
    """Scale for the expensive multi-method tables."""
    return ExperimentScale(
        num_reads=bench_reads(120),
        genome_length=5000,
        min_cluster_size=2,
        max_pairs_per_cluster=20,
        seed=0,
    )


@pytest.fixture(scope="session")
def medium_scale() -> ExperimentScale:
    """Scale for the cheaper single-pipeline experiments."""
    return ExperimentScale(
        num_reads=bench_reads(300),
        genome_length=8000,
        min_cluster_size=3,
        max_pairs_per_cluster=30,
        seed=0,
    )


def save_table(results_dir: pathlib.Path, name: str, rendered: str) -> None:
    """Persist a rendered table and echo it to stdout."""
    (results_dir / f"{name}.txt").write_text(rendered + "\n")
    print()
    print(rendered)
