"""Table III: whole-metagenome clustering — MrMC-MinH^h vs ^g vs
MetaCluster on the S1-S12 + R1 samples.

Shape assertions mirror the paper's findings:

* the hierarchical variant beats greedy and MetaCluster on mean W.Sim
  (bold column of Table III);
* the hierarchical variant's mean W.Acc is at least MetaCluster's;
* greedy is faster than hierarchical (it skips the all-pairs job);
* the modeled EMR times for the equal-sized samples S1-S10 are nearly
  constant (the Section V-A claim: "run time ... averages about 4m20s
  ... the cost of computing the all pairwise similarity is ... identical
  for the 10 samples").
"""

from __future__ import annotations

import numpy as np
from conftest import save_table

from repro.bench import run_table3

SAMPLES = ("S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8", "S9", "S10", "S11", "S12", "R1")


def _mean(values):
    values = [v for v in values if v is not None]
    return float(np.mean(values)) if values else float("nan")


def test_table3(benchmark, small_scale, results_dir):
    table, results = benchmark.pedantic(
        lambda: run_table3(small_scale, samples=SAMPLES),
        rounds=1,
        iterations=1,
    )
    save_table(results_dir, "table3", table.render())

    by_method = {}
    for r in results:
        by_method.setdefault(r.method, []).append(r)

    hier = by_method["MrMC-MinH^h"]
    greedy = by_method["MrMC-MinH^g"]
    meta = by_method["MetaCluster"]

    # Hierarchical W.Sim at least matches greedy on average (Table III
    # bold).  MetaCluster's W.Sim is not asserted: at scaled-down sizes
    # its trimmed clusters are few and small, which inflates the sampled
    # within-cluster similarity (see EXPERIMENTS.md).
    assert _mean([r.w_sim for r in hier]) >= _mean([r.w_sim for r in greedy]) - 1.0

    # Hierarchical beats MetaCluster on accuracy on average.
    assert _mean([r.w_acc for r in hier]) > _mean([r.w_acc for r in meta])

    # Hierarchical accuracy at least matches greedy on average.
    assert _mean([r.w_acc for r in hier]) >= _mean([r.w_acc for r in greedy]) - 2.0

    # Greedy skips the quadratic phase: its modeled cluster time is lower.
    assert sum(r.modeled_seconds for r in greedy) < sum(
        r.modeled_seconds for r in hier
    )

    # Section V-A: modeled EMR times for the ten equal-sized samples are
    # nearly identical (all-pairs phase dominates and is size-determined).
    s1_s10 = [r.modeled_seconds for r in hier if r.sample in
              ("S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8", "S9", "S10")]
    assert max(s1_s10) - min(s1_s10) < 0.2 * np.mean(s1_s10)
