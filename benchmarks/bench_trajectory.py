"""Perf-trajectory harness: measure the hot paths, record them, gate them.

Every perf-sensitive quantity the paper's scaling story depends on is
measured here on one pinned workload (Table-III settings: k=5, n=100
hashes, 200 whole-metagenome reads) and recorded as a ``BENCH_<date>.json``
snapshot at the repo root.  Each metric carries its own regression policy
(direction, relative tolerance, optional hard floor/ceiling, or exact
match), so the snapshot *is* the gate: the comparator re-measures and
fails when the trajectory goes backwards.

Usage::

    python benchmarks/bench_trajectory.py run             # write BENCH_<date>.json
    python benchmarks/bench_trajectory.py check           # measure, compare vs newest committed snapshot
    python benchmarks/bench_trajectory.py compare OLD NEW # compare two recorded snapshots

``check`` exits non-zero on any regression; CI runs it against the
checked-in baseline on every push (see .github/workflows/ci.yml).

Timing tolerances are deliberately generous (CI machines are noisy and
heterogeneous); the load-bearing gates are the machine-independent ones —
the batch-vs-loop speedup floor, the wire-compression ceiling, the
deterministic byte counts, and the exact cluster count.
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Pinned workload: Table III whole-metagenome settings, scaled per
# DESIGN.md substitution #4.  Changing any of these invalidates every
# committed snapshot — bump them only together with a fresh baseline.
WORKLOAD = {
    "sample": "S1",
    "num_reads": 200,
    "genome_length": 5000,
    "kmer_size": 5,
    "num_hashes": 100,
    "threshold": 0.9,
    "wire_bits": 8,
    "seed": 0,
    "timing_rounds": 3,
    # Fixed-overload scenario for the job-service metrics: 2 tenants
    # each submit 6 jobs into depth-2 queues served by 2 slots.  The
    # burst is admitted before the slots start, so the shed set is
    # purely structural (4 accepted, 8 shed) and gates exactly.
    "service_tenants": 2,
    "service_jobs_per_tenant": 6,
    "service_queue_depth": 2,
    "service_slots": 2,
    "service_job_seconds": 0.02,
}

# Schema history:
#   1 — initial trajectory metrics.
#   2 — adds the telemetry-sourced ``fault_retry_count`` gate and the
#       informational ``obs`` section (span count, phase coverage, full
#       metrics snapshot) recorded from a traced pipeline run.
#   3 — adds the job-service section: deterministic shed rate under a
#       fixed overload (exact gate), admission-to-finish latency
#       percentiles (tolerance gates), and the informational ``service``
#       block with the full health snapshot and fluid-model error.
#   4 — adds the engine-sparse chain (repro.cluster.sparse_jobs):
#       deterministic candidate-pair count (exact gate, cross-checked
#       against the in-process join before recording), chain shuffle
#       bytes (tolerance gate — _approx_bytes sampling is deterministic
#       but pickle sizes can shift across python versions), round count
#       (exact), and the chain's wall time.
#   5 — adds the external spill-to-disk shuffle: ``spill_parity`` (exact
#       gate — a spilled+streamed run of the engine chain must produce
#       byte-identical candidate pairs and assignments to the in-memory
#       run), ``spill_segments`` (exact — the spill-everything segment
#       count is a pure function of the workload), and
#       ``shuffle_spill_bytes`` (tolerance — pickle sizes may shift
#       across python versions).
SCHEMA_VERSION = 5


def _best_of(rounds: int, fn) -> float:
    """Best-of-N wall time for ``fn()``, in milliseconds."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def _collect_service(w: dict) -> tuple[dict, dict]:
    """Run the fixed-overload service scenario.

    Returns ``(metrics, info)``: the gated metrics (shed rate exact,
    latency percentiles with generous tolerance) and the informational
    ``service`` block (health snapshot, fluid-model mean error).
    """
    from repro.errors import ServiceOverloadedError
    from repro.mapreduce.service import JobService, fluid_prediction, sleep_spec

    svc = JobService(
        num_slots=int(w["service_slots"]),
        queue_depth=int(w["service_queue_depth"]),
        policy="fair",
    )
    submitted = 0
    shed = 0
    tickets = []
    for j in range(int(w["service_jobs_per_tenant"])):
        for tenant_index in range(int(w["service_tenants"])):
            submitted += 1
            try:
                tickets.append(
                    svc.submit(
                        f"t{tenant_index}",
                        sleep_spec(float(w["service_job_seconds"]), name=f"j{j}"),
                    )
                )
            except ServiceOverloadedError:
                shed += 1
    svc.start()
    for ticket in tickets:
        ticket.result(timeout=60)
    svc.drain(timeout=60)
    health = svc.health()
    svc.shutdown()

    latencies_ms = sorted(1000.0 * t.latency for t in tickets)

    def pct(fraction: float) -> float:
        rank = min(len(latencies_ms) - 1, int(round(fraction * (len(latencies_ms) - 1))))
        return latencies_ms[rank]

    predicted = fluid_prediction(tickets, int(w["service_slots"]), "fair")
    fluid_mae_ms = 1000.0 * sum(
        abs(t.latency - predicted[t.id]) for t in tickets
    ) / len(tickets)

    metrics = {
        "service_shed_rate": {
            # Structural: burst admitted before the slots start, so this
            # is a pure function of queue depth and gates exactly.
            "value": round(shed / submitted, 4),
            "unit": "shed/submitted",
            "direction": "lower",
            "tolerance": 0.0,
            "exact": True,
        },
        "service_p50_latency_ms": {
            "value": round(pct(0.50), 3),
            "unit": "ms",
            "direction": "lower",
            "tolerance": 3.0,
        },
        "service_p99_latency_ms": {
            "value": round(pct(0.99), 3),
            "unit": "ms",
            "direction": "lower",
            "tolerance": 3.0,
        },
    }
    info = {
        "accepted": len(tickets),
        "shed": shed,
        "fluid_mean_abs_error_ms": round(fluid_mae_ms, 3),
        "health": health,
    }
    return metrics, info


def collect(
    workload: dict | None = None,
    *,
    obs_log: pathlib.Path | None = None,
    chrome_trace: pathlib.Path | None = None,
) -> dict:
    """Measure every trajectory metric on the pinned workload.

    Returns the full snapshot document (schema, workload, metrics with
    their regression policies attached, and an ``obs`` section holding
    the telemetry of one traced pipeline run).  ``obs_log`` /
    ``chrome_trace`` additionally export that run's JSONL event log and
    Chrome trace (the CI perf job uploads both as artifacts).
    """
    from repro.cluster.pipeline import MrMCMinH
    from repro.obs import Tracer, build_report, write_chrome_trace
    from repro.cluster.sparse import candidate_pair_arrays
    from repro.datasets import generate_whole_metagenome_sample
    from repro.minhash.sketch import (
        SketchingConfig,
        compute_sketch,
        compute_sketches_batch,
    )

    w = dict(WORKLOAD)
    if workload:
        w.update(workload)
    rounds = int(w["timing_rounds"])
    reads = generate_whole_metagenome_sample(
        w["sample"], num_reads=w["num_reads"], genome_length=w["genome_length"]
    )
    config = SketchingConfig(
        kmer_size=w["kmer_size"], num_hashes=w["num_hashes"], seed=w["seed"]
    )
    family = config.make_family()

    # -- sketching: per-record reference loop vs the batch kernel --------
    def _loop():
        return [compute_sketch(r, config, family) for r in reads]

    def _batch():
        return compute_sketches_batch(reads, config, family)

    loop_ms = _best_of(rounds, _loop)
    batch_ms = _best_of(rounds, _batch)
    sketches = _batch()
    if [s.values.tobytes() for s in sketches] != [
        s.values.tobytes() for s in _loop()
    ]:
        raise AssertionError("batch kernel diverged from the reference loop")
    speedup = loop_ms / batch_ms
    reads_per_sec = len(reads) / (batch_ms / 1000.0)

    # -- candidate generation (the sparse similarity join) ---------------
    candidates_ms = _best_of(rounds, lambda: candidate_pair_arrays(sketches))

    # -- the same join as a two-job MapReduce chain (sparse_jobs) ---------
    from repro.cluster.sparse import candidate_pairs
    from repro.cluster.sparse_jobs import engine_candidate_pairs

    engine_ms = _best_of(rounds, lambda: engine_candidate_pairs(sketches))
    engine_pairs, engine_run = engine_candidate_pairs(sketches)
    if engine_pairs != candidate_pairs(sketches):
        raise AssertionError(
            "engine-sparse candidate pairs diverged from the in-process join"
        )

    # -- spilled + streamed vs in-memory parity (external shuffle) --------
    from repro.cluster.sparse_jobs import engine_sparse_cluster

    spilled_pairs, spill_run = engine_candidate_pairs(
        sketches, spill_threshold_bytes=0
    )
    mem_cluster = engine_sparse_cluster(sketches, w["threshold"])
    spill_cluster = engine_sparse_cluster(
        sketches, w["threshold"], stream=True, spill_threshold_bytes=0
    )
    spill_parity = int(
        spilled_pairs == engine_pairs
        and spill_cluster.assignment.to_tsv() == mem_cluster.assignment.to_tsv()
        and spill_cluster.candidate_pair_count == len(mem_cluster.pairs)
    )
    if not spill_parity:
        raise AssertionError(
            "spilled/streamed engine chain diverged from the in-memory run"
        )
    spill_segments = spill_run.counters.get(
        "shuffle", "spill_segments"
    ) + spill_cluster.counters.get("shuffle", "spill_segments")
    spill_bytes = spill_run.counters.get(
        "shuffle", "spill_bytes"
    ) + spill_cluster.counters.get("shuffle", "spill_bytes")

    # -- shuffle bytes with the b-bit wire codec --------------------------
    model = MrMCMinH(
        kmer_size=w["kmer_size"],
        num_hashes=w["num_hashes"],
        threshold=w["threshold"],
        method="greedy",
        estimator="positional",
        wire_bits=w["wire_bits"],
    )
    pipeline_ms = _best_of(rounds, lambda: model.fit(reads))
    # One final traced run records the telemetry snapshot.  The timing
    # rounds above stay untraced, so pipeline_ms keeps measuring the
    # default (telemetry-off) path the <2%-overhead contract is about.
    tracer = Tracer()
    with tracer.activate():
        run = model.fit(reads)
    obs_report = build_report(tracer.spans, tracer.metrics.snapshot())
    if obs_log is not None:
        tracer.write_jsonl(obs_log)
    if chrome_trace is not None:
        write_chrome_trace(tracer.spans, chrome_trace)
    retry_count = int(tracer.metrics.value("mr.fault.task_retries", 0))
    wire = run.counters.as_dict()["wire"]
    bytes_raw = wire["bytes_raw"]
    bytes_wire = wire["bytes_wire"]

    metrics = {
        "sketch_loop_ms": {
            "value": round(loop_ms, 3),
            "unit": "ms",
            "direction": "lower",
            "tolerance": 3.0,
        },
        "sketch_batch_ms": {
            "value": round(batch_ms, 3),
            "unit": "ms",
            "direction": "lower",
            "tolerance": 3.0,
        },
        "sketch_batch_speedup": {
            "value": round(speedup, 2),
            "unit": "x",
            "direction": "higher",
            "tolerance": 0.4,
            "floor": 5.0,
        },
        "sketch_reads_per_sec": {
            "value": round(reads_per_sec, 1),
            "unit": "reads/s",
            "direction": "higher",
            "tolerance": 0.75,
        },
        "candidate_pairs_ms": {
            "value": round(candidates_ms, 3),
            "unit": "ms",
            "direction": "lower",
            "tolerance": 3.0,
        },
        "sparse_engine_ms": {
            "value": round(engine_ms, 3),
            "unit": "ms",
            "direction": "lower",
            "tolerance": 3.0,
        },
        "sparse_candidate_pairs": {
            # Deterministic function of the pinned workload's sketches;
            # cross-checked against the in-process join above, so any
            # drift is a correctness bug in one of the two paths.
            "value": len(engine_pairs),
            "unit": "pairs",
            "direction": "lower",
            "tolerance": 0.0,
            "exact": True,
        },
        "sparse_engine_rounds": {
            "value": engine_run.rounds,
            "unit": "rounds",
            "direction": "lower",
            "tolerance": 0.0,
            "exact": True,
        },
        "sparse_shuffle_bytes": {
            "value": engine_run.shuffle_bytes,
            "unit": "bytes",
            "direction": "lower",
            "tolerance": 0.1,
        },
        "spill_parity": {
            # 1 iff the spill-everything + streamed-edges run of the
            # engine chain reproduced the in-memory candidate pairs and
            # assignment byte for byte; asserted above, gated here so a
            # baseline diff also shows it.
            "value": spill_parity,
            "unit": "bool",
            "direction": "higher",
            "tolerance": 0.0,
            "exact": True,
        },
        "spill_segments": {
            "value": spill_segments,
            "unit": "segments",
            "direction": "lower",
            "tolerance": 0.0,
            "exact": True,
        },
        "shuffle_spill_bytes": {
            "value": spill_bytes,
            "unit": "bytes",
            "direction": "lower",
            "tolerance": 0.1,
        },
        "shuffle_bytes_raw": {
            "value": bytes_raw,
            "unit": "bytes",
            "direction": "lower",
            "tolerance": 0.1,
        },
        "shuffle_bytes_wire": {
            "value": bytes_wire,
            "unit": "bytes",
            "direction": "lower",
            "tolerance": 0.1,
        },
        "wire_compression_ratio": {
            "value": round(bytes_wire / bytes_raw, 4),
            "unit": "wire/raw",
            "direction": "lower",
            "tolerance": 0.1,
            # b=8 of 64-bit values: anything near b/64 plus pickle
            # overhead removal; leave headroom but keep it honest.
            "ceiling": 0.25,
        },
        "pipeline_ms": {
            "value": round(pipeline_ms, 3),
            "unit": "ms",
            "direction": "lower",
            "tolerance": 3.0,
        },
        "pipeline_clusters": {
            "value": run.assignment.num_clusters,
            "unit": "clusters",
            "direction": "lower",
            "tolerance": 0.0,
            "exact": True,
        },
        "fault_retry_count": {
            # Sourced from the telemetry registry (mr.fault.task_retries):
            # the pinned workload injects no faults, so any retry is a
            # real engine regression and gates exactly.
            "value": retry_count,
            "unit": "retries",
            "direction": "lower",
            "tolerance": 0.0,
            "exact": True,
        },
    }
    service_metrics, service_info = _collect_service(w)
    metrics.update(service_metrics)
    obs = {
        "spans": len(tracer.spans),
        "phase_coverage": round(obs_report.phase_coverage, 4),
        "critical_path": [name for name, _ in obs_report.critical_path],
        "metrics": tracer.metrics.snapshot(),
    }
    return {
        "schema": SCHEMA_VERSION,
        "workload": w,
        "metrics": metrics,
        "obs": obs,
        "service": service_info,
    }


# --------------------------------------------------------------- compare


def compare(baseline: dict, current: dict) -> list[str]:
    """Regression check of ``current`` against ``baseline``.

    Returns a list of human-readable problems (empty means the gate
    passes).  The baseline's per-metric policy defines the contract;
    hard floors/ceilings are also enforced on the current values.
    """
    problems: list[str] = []
    if baseline.get("schema") != current.get("schema"):
        problems.append(
            f"schema mismatch: baseline {baseline.get('schema')} "
            f"vs current {current.get('schema')}"
        )
        return problems
    if baseline.get("workload") != current.get("workload"):
        problems.append(
            "workload mismatch: snapshots measure different pinned "
            "workloads and cannot be compared"
        )
        return problems
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    for name, spec in base_metrics.items():
        if name not in cur_metrics:
            problems.append(f"{name}: missing from current run")
            continue
        base = float(spec["value"])
        cur = float(cur_metrics[name]["value"])
        tol = float(spec.get("tolerance", 0.0))
        direction = spec.get("direction", "lower")
        if spec.get("exact"):
            if cur != base:
                problems.append(
                    f"{name}: expected exactly {base:g}, got {cur:g}"
                )
            continue
        if direction == "higher":
            limit = base * (1.0 - tol)
            if cur < limit:
                problems.append(
                    f"{name}: {cur:g} < {limit:g} "
                    f"(baseline {base:g}, tolerance {tol:.0%})"
                )
        else:
            limit = base * (1.0 + tol)
            if cur > limit:
                problems.append(
                    f"{name}: {cur:g} > {limit:g} "
                    f"(baseline {base:g}, tolerance {tol:.0%})"
                )
    # Hard bounds always apply to the fresh measurement.
    for name, spec in cur_metrics.items():
        cur = float(spec["value"])
        floor = spec.get("floor")
        ceiling = spec.get("ceiling")
        if floor is not None and cur < float(floor):
            problems.append(f"{name}: {cur:g} below hard floor {floor:g}")
        if ceiling is not None and cur > float(ceiling):
            problems.append(f"{name}: {cur:g} above hard ceiling {ceiling:g}")
    return problems


def find_baseline(root: pathlib.Path = REPO_ROOT) -> pathlib.Path | None:
    """Newest committed ``BENCH_<date>.json`` (dates sort lexically).

    Only date-shaped names count — scratch snapshots (e.g. the CI
    artifact ``check --output`` writes) must never shadow the committed
    baseline.
    """
    snapshots = sorted(root.glob("BENCH_[0-9][0-9][0-9][0-9]-[0-9][0-9]-[0-9][0-9].json"))
    return snapshots[-1] if snapshots else None


def _render(snapshot: dict) -> str:
    lines = ["metric                        value        unit"]
    for name, spec in snapshot["metrics"].items():
        lines.append(f"{name:<28}  {spec['value']:>10}   {spec['unit']}")
    return "\n".join(lines)


# ------------------------------------------------------------------- CLI


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command")

    p_run = sub.add_parser("run", help="measure and write BENCH_<date>.json")
    p_run.add_argument("--output", type=pathlib.Path, default=None)
    p_run.add_argument(
        "--date", default=None, help="override the snapshot date (YYYY-MM-DD)"
    )

    p_check = sub.add_parser(
        "check", help="measure and compare against the newest committed snapshot"
    )
    p_check.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="snapshot to compare against (default: newest BENCH_*.json)",
    )
    p_check.add_argument(
        "--output", type=pathlib.Path, default=None,
        help="also record the fresh measurement here (CI artifact)",
    )
    for p_obs in (p_run, p_check):
        p_obs.add_argument(
            "--obs-log", type=pathlib.Path, default=None,
            help="write the traced run's JSONL telemetry log here",
        )
        p_obs.add_argument(
            "--chrome-trace", type=pathlib.Path, default=None,
            help="write the traced run's Chrome/Perfetto trace here",
        )

    p_cmp = sub.add_parser("compare", help="compare two recorded snapshots")
    p_cmp.add_argument("baseline", type=pathlib.Path)
    p_cmp.add_argument("current", type=pathlib.Path)

    args = parser.parse_args(argv)
    command = args.command or "run"

    if command == "compare":
        baseline = json.loads(args.baseline.read_text())
        current = json.loads(args.current.read_text())
    else:
        print(f"measuring pinned workload ({WORKLOAD['num_reads']} reads, "
              f"k={WORKLOAD['kmer_size']}, n={WORKLOAD['num_hashes']})...")
        current = collect(
            obs_log=getattr(args, "obs_log", None),
            chrome_trace=getattr(args, "chrome_trace", None),
        )
        print(_render(current))
        if command == "run":
            date = args.date or datetime.date.today().isoformat()
            output = args.output or REPO_ROOT / f"BENCH_{date}.json"
            output.write_text(json.dumps(current, indent=2) + "\n")
            print(f"\nwrote {output}")
            return 0
        # check
        if args.output is not None:
            args.output.write_text(json.dumps(current, indent=2) + "\n")
        baseline_path = args.baseline or find_baseline()
        if baseline_path is None:
            print("no committed BENCH_*.json baseline found; nothing to gate")
            return 0
        print(f"\ncomparing against {baseline_path}")
        baseline = json.loads(baseline_path.read_text())

    problems = compare(baseline, current)
    if problems:
        print("\nPERF REGRESSION:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("\ntrajectory gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
