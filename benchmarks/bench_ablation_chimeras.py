"""Ablation: chimeric reads (PCR artefacts) vs clustering quality.

The Table IV source data was chimera-filtered before clustering; this
ablation quantifies why — injected chimeras inflate OTU counts and drag
down within-cluster similarity, more steeply for the exact matrix
methods than for MrMC-MinH (whose threshold isolates chimeras into
trimmed-away singletons).
"""

from __future__ import annotations

from conftest import save_table

from repro.bench.harness import ExperimentScale, evaluate_assignment, timed
from repro.cluster.pipeline import MrMCMinH
from repro.datasets import generate_environmental_sample, inject_chimeras
from repro.eval.report import Table

RATES = (0.0, 0.05, 0.15)


def test_chimera_ablation(benchmark, results_dir):
    scale = ExperimentScale(
        num_reads=150, genome_length=5000, min_cluster_size=2,
        max_pairs_per_cluster=20,
    )

    def run():
        base = generate_environmental_sample("53R", num_reads=scale.num_reads, seed=0)
        table = Table(
            title="Ablation - chimera rate (MrMC-MinH^h, k=15, n=50, theta=0.95)",
            columns=["Chimera rate", "#Cluster (>=2)", "#Cluster (all)", "W.Sim"],
        )
        rows = {}
        for rate in RATES:
            reads = inject_chimeras(base, rate=rate, rng=1) if rate else base
            model = MrMCMinH(kmer_size=15, num_hashes=50, threshold=0.95, seed=0)
            assignment, seconds = timed(lambda: model.fit(reads).assignment)
            res = evaluate_assignment(
                "MrMC-MinH^h", f"{rate:.0%}", assignment, reads, seconds,
                scale=scale, with_accuracy=False,
            )
            table.add_row(
                f"{rate:.0%}", res.num_clusters, res.num_clusters_total,
                "-" if res.w_sim is None else res.w_sim,
            )
            rows[rate] = res
        return table, rows

    table, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(results_dir, "ablation_chimeras", table.render())

    # Chimeras add clusters (they match no template).
    assert rows[0.15].num_clusters_total >= rows[0.0].num_clusters_total
    # Surviving multi-read clusters stay tight (chimeras become singletons).
    assert rows[0.15].w_sim is None or rows[0.15].w_sim > 85.0
