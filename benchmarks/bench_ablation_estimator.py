"""Ablation: set-based (Algorithm 1 line 9) vs positional Jaccard
estimator.

The paper's pseudocode compares sketches as *sets* of min-hash values;
the classical MinHash estimator compares them position-wise.  With small
k (tiny value universe) the set form collapses duplicate minima and loses
resolution — this ablation quantifies both the estimation error against
exact Jaccard and the downstream clustering impact, justifying the
benchmarks' use of the positional estimator for k = 5 workloads.
"""

from __future__ import annotations

from conftest import save_table

from repro.bench import ExperimentScale, run_estimator_ablation


def test_estimator_ablation(benchmark, results_dir):
    scale = ExperimentScale(num_reads=150, genome_length=5000, min_cluster_size=2)
    table, rows = benchmark.pedantic(
        lambda: run_estimator_ablation(scale), rounds=1, iterations=1
    )
    save_table(results_dir, "ablation_estimator", table.render())

    by = {r.setting: r for r in rows}
    # The positional estimator tracks exact Jaccard more closely at k=5.
    assert by["positional"].estimator_rmse < by["set"].estimator_rmse
    # Both remain usable estimators (bounded error).
    for r in rows:
        assert r.estimator_rmse < 0.5
