"""Discrete-event simulator for a Hadoop cluster.

This is the substitution for the paper's Amazon Elastic MapReduce cluster
(DESIGN.md substitution #1).  Given job traces — either recorded from real
execution by :class:`~repro.mapreduce.runner.SerialRunner` or synthesised
by :mod:`repro.mapreduce.workload` for sizes too large to execute — and a
:class:`ClusterSpec`, the simulator schedules every task onto map/reduce
slots with a locality-aware list scheduler and reports the modeled
wall-clock of the whole pipeline.

The scheduling model mirrors Hadoop 1.x:

* each node offers ``map_slots`` + ``reduce_slots`` concurrent task slots;
* map tasks of a job run first (in waves when tasks > slots), preferring
  nodes holding a replica of their input block;
* the shuffle starts when the *last* map task finishes (Hadoop overlaps
  shuffle with maps, but completion is gated on the final map — the
  barrier is what matters for makespan);
* reduce tasks then run on reduce slots;
* consecutive jobs of a pipeline are serialised, each paying the job
  startup overhead.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.mapreduce.costmodel import HadoopCostModel, M1_LARGE_COST_MODEL
from repro.mapreduce.types import JobTrace, TaskTrace


def _attempt_factor(task: TaskTrace) -> float:
    """Duration multiplier for a task's measured attempt history.

    Retried attempts re-execute serially on the cluster (each failed
    attempt burns a slot before the retry starts), so a task with ``k``
    attempts costs ``k``x its clean duration — except when a speculative
    backup won: the attempts overlapped, and the task finishes at the
    winner's time (1x).
    """
    attempts = getattr(task, "attempts", 1)
    if attempts <= 1 or getattr(task, "speculative_win", False):
        return 1.0
    return float(attempts)


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of the modeled cluster.

    Defaults match Hadoop-1 -era EMR M1 Large nodes: 2 map slots and 1
    reduce slot per node (4 EC2 compute units).

    ``straggler_fraction``/``straggler_slowdown`` model heterogeneous
    hardware (the EC2 noisy-neighbour effect): that fraction of nodes
    runs every task ``slowdown``× slower.  ``speculative_execution``
    enables Hadoop's mitigation — a backup attempt of a straggling task
    on another node, the task finishing when either attempt does.
    """

    num_nodes: int
    map_slots_per_node: int = 2
    reduce_slots_per_node: int = 1
    straggler_fraction: float = 0.0
    straggler_slowdown: float = 3.0
    speculative_execution: bool = False
    straggler_seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise SimulationError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.map_slots_per_node < 1:
            raise SimulationError("map_slots_per_node must be >= 1")
        if self.reduce_slots_per_node < 1:
            raise SimulationError("reduce_slots_per_node must be >= 1")
        if not 0.0 <= self.straggler_fraction <= 1.0:
            raise SimulationError("straggler_fraction must be in [0,1]")
        if self.straggler_slowdown < 1.0:
            raise SimulationError("straggler_slowdown must be >= 1")

    def node_speed_factors(self) -> list[float]:
        """Per-node duration multipliers (1.0 = nominal)."""
        import numpy as np

        rng = np.random.default_rng(self.straggler_seed)
        n_slow = int(round(self.straggler_fraction * self.num_nodes))
        slow = set(rng.permutation(self.num_nodes)[:n_slow].tolist())
        return [
            self.straggler_slowdown if node in slow else 1.0
            for node in range(self.num_nodes)
        ]

    @property
    def total_map_slots(self) -> int:
        return self.num_nodes * self.map_slots_per_node

    @property
    def total_reduce_slots(self) -> int:
        return self.num_nodes * self.reduce_slots_per_node


@dataclass
class JobSimReport:
    """Modeled timings for one job."""

    job_name: str
    startup_s: float
    map_phase_s: float
    shuffle_s: float
    reduce_phase_s: float
    map_waves: int
    locality_fraction: float
    speculative_attempts: int = 0
    # Measured fault-tolerance behaviour carried in from the trace, so the
    # simulator's modeled speculation can be validated against what the
    # real runners actually did.
    retried_tasks: int = 0
    measured_speculative_wins: int = 0

    @property
    def total_s(self) -> float:
        return self.startup_s + self.map_phase_s + self.shuffle_s + self.reduce_phase_s


@dataclass
class SimReport:
    """Modeled timings for a whole pipeline."""

    cluster: ClusterSpec
    jobs: list[JobSimReport] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return sum(j.total_s for j in self.jobs)

    @property
    def total_minutes(self) -> float:
        return self.total_s / 60.0

    def to_spans(self) -> list:
        """Render the modeled timeline as telemetry spans.

        Returns a ``pipeline:simulated`` root span with one ``kind="job"``
        child per job and ``startup``/``map``/``shuffle``/``reduce`` stage
        spans inside each, laid back-to-back exactly as the simulator
        serialises jobs.  The spans feed the same exporters and
        :func:`~repro.obs.report.build_report` as live traces, so a modeled
        EMR run and a real local run can be compared with one tool.
        """
        from repro.obs.trace import Span

        spans: list[Span] = []
        next_id = 1
        root = Span(
            name="pipeline:simulated",
            span_id=next_id,
            parent_id=None,
            start_s=0.0,
            end_s=self.total_s,
            kind="pipeline",
            attrs={"num_nodes": self.cluster.num_nodes, "modeled": True},
        )
        next_id += 1
        spans.append(root)
        cursor = 0.0
        for job in self.jobs:
            job_span = Span(
                name=f"job:{job.job_name}",
                span_id=next_id,
                parent_id=root.span_id,
                start_s=cursor,
                end_s=cursor + job.total_s,
                kind="job",
                attrs={
                    "modeled": True,
                    "map_waves": job.map_waves,
                    "locality_fraction": job.locality_fraction,
                    "speculative_attempts": job.speculative_attempts,
                    "retried_tasks": job.retried_tasks,
                },
            )
            next_id += 1
            spans.append(job_span)
            offset = cursor
            for stage, seconds in (
                ("startup", job.startup_s),
                ("map", job.map_phase_s),
                ("shuffle", job.shuffle_s),
                ("reduce", job.reduce_phase_s),
            ):
                spans.append(
                    Span(
                        name=stage,
                        span_id=next_id,
                        parent_id=job_span.span_id,
                        start_s=offset,
                        end_s=offset + seconds,
                        kind="stage",
                        attrs={"modeled": True},
                    )
                )
                next_id += 1
                offset += seconds
            cursor += job.total_s
        return spans


class _SlotPool:
    """Earliest-available-slot pool over (free_time, node) entries."""

    def __init__(self, num_nodes: int, slots_per_node: int):
        self._heap: list[tuple[float, int, int]] = []
        serial = 0
        for node in range(num_nodes):
            for _ in range(slots_per_node):
                self._heap.append((0.0, serial, node))
                serial += 1
        heapq.heapify(self._heap)

    def acquire(self) -> tuple[float, int, int]:
        """Pop the earliest-free slot: ``(free_time, serial, node)``."""
        return heapq.heappop(self._heap)

    def release(self, free_time: float, serial: int, node: int) -> None:
        heapq.heappush(self._heap, (free_time, serial, node))

    def makespan(self) -> float:
        return max(t for t, _, _ in self._heap) if self._heap else 0.0


class ClusterSimulator:
    """Schedule job traces onto a modeled cluster and report wall-clock."""

    def __init__(
        self,
        spec: ClusterSpec,
        cost_model: HadoopCostModel = M1_LARGE_COST_MODEL,
    ):
        self.spec = spec
        self.cost_model = cost_model

    def simulate_job(
        self,
        trace: JobTrace,
        *,
        block_locality: dict[int, list[int]] | None = None,
    ) -> JobSimReport:
        """Model one job.

        Parameters
        ----------
        block_locality:
            Optional ``{node: [map-task indices local to it]}`` map (from
            :meth:`~repro.mapreduce.hdfs.SimulatedHDFS.locality_map`).  When
            the modeled cluster has a different node count than the HDFS
            that produced the map, node indices are folded modulo
            ``num_nodes`` — replicas spread across whatever nodes exist.
        """
        spec, model = self.spec, self.cost_model

        # ---- map phase -------------------------------------------------
        local_nodes: list[set[int]] = [set() for _ in trace.map_tasks]
        if block_locality:
            for node, block_indices in block_locality.items():
                for b in block_indices:
                    if 0 <= b < len(trace.map_tasks):
                        local_nodes[b].add(node % spec.num_nodes)

        speed = spec.node_speed_factors()
        pool = _SlotPool(spec.num_nodes, spec.map_slots_per_node)
        pending = list(range(len(trace.map_tasks)))
        map_end = 0.0
        local_hits = 0
        scheduled = 0
        speculated = 0
        while pending:
            free_time, serial, node = pool.acquire()
            # Prefer a pending task local to this node; else take the head.
            choice = None
            for idx, t in enumerate(pending):
                if node in local_nodes[t]:
                    choice = idx
                    break
            if choice is None:
                choice = 0
            task_index = pending.pop(choice)
            task = trace.map_tasks[task_index]
            is_local = (not block_locality) or (node in local_nodes[task_index])
            if is_local:
                local_hits += 1
            base = model.task_duration(task, local=is_local) * _attempt_factor(task)
            end = free_time + base * speed[node]
            if (
                spec.speculative_execution
                and speed[node] > 1.0
                and spec.total_map_slots > 1
            ):
                # Launch a backup attempt on a *faster* node's next free
                # slot (the JobTracker never speculates onto an equally
                # slow machine); the task finishes when either attempt
                # does, and both slots stay busy until then.
                parked = []
                backup = None
                while pool._heap:
                    candidate = pool.acquire()
                    if speed[candidate[2]] < speed[node]:
                        backup = candidate
                        break
                    parked.append(candidate)
                for free, ser, nd in parked:
                    pool.release(free, ser, nd)
                if backup is not None:
                    b_free, b_serial, b_node = backup
                    backup_start = max(b_free, free_time)
                    backup_end = backup_start + base * speed[b_node]
                    end = min(end, backup_end)
                    pool.release(end, b_serial, b_node)
                    speculated += 1
            map_end = max(map_end, end)
            pool.release(end, serial, node)
            scheduled += 1
        map_waves = (
            -(-len(trace.map_tasks) // spec.total_map_slots)
            if trace.map_tasks
            else 0
        )

        # ---- shuffle -----------------------------------------------------
        shuffle_s = model.shuffle_duration(trace, spec.num_nodes)

        # ---- reduce phase -------------------------------------------------
        rpool = _SlotPool(spec.num_nodes, spec.reduce_slots_per_node)
        reduce_end = 0.0
        for task in trace.reduce_tasks:
            free_time, serial, node = rpool.acquire()
            duration = (
                model.task_duration(task, local=True)
                * _attempt_factor(task)
                * speed[node]
            )
            end = free_time + duration
            reduce_end = max(reduce_end, end)
            rpool.release(end, serial, node)

        all_tasks = list(trace.map_tasks) + list(trace.reduce_tasks)
        return JobSimReport(
            job_name=trace.job_name,
            startup_s=model.job_startup_s,
            map_phase_s=map_end,
            shuffle_s=shuffle_s,
            reduce_phase_s=reduce_end,
            map_waves=map_waves,
            locality_fraction=(local_hits / scheduled) if scheduled else 1.0,
            speculative_attempts=speculated,
            retried_tasks=sum(
                1 for t in all_tasks if getattr(t, "attempts", 1) > 1
            ),
            measured_speculative_wins=sum(
                1 for t in all_tasks if getattr(t, "speculative_win", False)
            ),
        )

    def simulate_pipeline(
        self,
        traces: Sequence[JobTrace],
        *,
        block_locality: dict[int, list[int]] | None = None,
    ) -> SimReport:
        """Model a chain of jobs run back-to-back (locality applies to the
        first job, whose input comes from HDFS)."""
        if not traces:
            raise SimulationError("simulate_pipeline requires at least one trace")
        report = SimReport(cluster=self.spec)
        for i, trace in enumerate(traces):
            report.jobs.append(
                self.simulate_job(
                    trace,
                    block_locality=block_locality if i == 0 else None,
                )
            )
        return report
