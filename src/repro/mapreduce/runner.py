"""Serial job runner: deterministic reference execution with tracing.

The serial runner executes the full map -> combine -> shuffle -> reduce
pipeline in-process, measuring per-task CPU time and record counts into a
:class:`~repro.mapreduce.types.JobTrace`.  Those traces are the input to
the discrete-event cluster simulator (the real work is measured; only the
distributed wall-clock is modeled — see DESIGN.md substitution #1).
"""

from __future__ import annotations

import pickle
import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import MapReduceError
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.shuffle import shuffle, sort_grouped_keys  # noqa: F401 (sort_grouped_keys used by _combine)
from repro.mapreduce.types import JobConf, JobTrace, TaskTrace
from repro.utils.chunking import chunk_indices


@dataclass
class JobResult:
    """Output records plus counters and execution trace for one job."""

    output: list[tuple]
    counters: Counters = field(default_factory=Counters)
    trace: JobTrace | None = None


def _approx_bytes(records: Sequence[tuple]) -> int:
    """Approximate serialized size of records (sampled for large inputs)."""
    n = len(records)
    if n == 0:
        return 0
    sample = records if n <= 64 else [records[i] for i in range(0, n, max(1, n // 64))]
    try:
        per = sum(len(pickle.dumps(r, protocol=pickle.HIGHEST_PROTOCOL)) for r in sample)
    except Exception:
        return 0
    return int(per / len(sample) * n)


class SerialRunner:
    """Run jobs sequentially in-process.

    ``trace=True`` (default) records task-level statistics; turn it off for
    micro-benchmarks where the byte-size sampling overhead matters.
    """

    def __init__(self, *, trace: bool = True):
        self.trace = trace

    def run(
        self,
        job: MapReduceJob,
        inputs: Sequence[tuple],
        conf: JobConf | None = None,
    ) -> JobResult:
        """Execute ``job`` over ``inputs`` (a sequence of key/value pairs)."""
        conf = conf or JobConf()
        counters = Counters()
        trace = JobTrace(job_name=job.name) if self.trace else None

        # ---- map phase, split into conf.num_map_tasks tasks -------------
        map_outputs: list[list[tuple]] = []
        for t, (start, stop) in enumerate(chunk_indices(len(inputs), conf.num_map_tasks)):
            split = inputs[start:stop]
            t0 = time.perf_counter()
            out: list[tuple] = []
            for key, value in split:
                emitted = job.run_mapper(key, value, counters)
                if emitted is not None:
                    out.extend(self._validated(emitted, job.name, "mapper"))
            if conf.use_combiner and job.combiner is not None:
                out = self._combine(job, out)
            elapsed = time.perf_counter() - t0
            counters.increment("job", "map_input_records", len(split))
            counters.increment("job", "map_output_records", len(out))
            if trace is not None:
                trace.map_tasks.append(
                    TaskTrace(
                        task_id=f"{job.name}-m{t:04d}",
                        kind="map",
                        records_in=len(split),
                        records_out=len(out),
                        bytes_in=_approx_bytes(split),
                        bytes_out=_approx_bytes(out),
                        cpu_seconds=elapsed,
                    )
                )
            map_outputs.append(out)

        # ---- shuffle -----------------------------------------------------
        partitions, moved = shuffle(map_outputs, conf.num_reduce_tasks, job.partitioner)
        counters.increment("job", "shuffle_records", moved)
        if trace is not None:
            trace.shuffle_bytes = sum(_approx_bytes(p) for p in map_outputs)

        # ---- reduce phase -------------------------------------------------
        output: list[tuple] = []
        for r, groups in enumerate(partitions):
            t0 = time.perf_counter()
            records_in = sum(len(vals) for _, vals in groups)
            out: list[tuple] = []
            for key, values in groups:
                emitted = job.run_reducer(key, values, counters)
                if emitted is not None:
                    out.extend(self._validated(emitted, job.name, "reducer"))
            elapsed = time.perf_counter() - t0
            counters.increment("job", "reduce_input_records", records_in)
            counters.increment("job", "reduce_output_records", len(out))
            if trace is not None:
                trace.reduce_tasks.append(
                    TaskTrace(
                        task_id=f"{job.name}-r{r:04d}",
                        kind="reduce",
                        records_in=records_in,
                        records_out=len(out),
                        bytes_out=_approx_bytes(out),
                        cpu_seconds=elapsed,
                    )
                )
            output.extend(out)

        if conf.sort_output:
            try:
                output.sort(key=lambda kv: kv[0])
            except TypeError:
                output.sort(key=lambda kv: (type(kv[0]).__name__, repr(kv[0])))
        return JobResult(output=output, counters=counters, trace=trace)

    def run_chain(
        self,
        jobs: Sequence[tuple[MapReduceJob, JobConf | None]],
        inputs: Sequence[tuple],
    ) -> tuple[JobResult, list[JobTrace]]:
        """Run a pipeline of jobs, feeding each job's output to the next.

        Returns the final result and the traces of every stage (the unit
        the cluster simulator schedules).
        """
        if not jobs:
            raise MapReduceError("run_chain requires at least one job")
        traces: list[JobTrace] = []
        current: Sequence[tuple] = inputs
        result: JobResult | None = None
        for job, conf in jobs:
            result = self.run(job, list(current), conf)
            if result.trace is not None:
                traces.append(result.trace)
            current = result.output
        assert result is not None
        return result, traces

    @staticmethod
    def _validated(emitted, job_name: str, stage: str):
        for pair in emitted:
            if not isinstance(pair, tuple) or len(pair) != 2:
                raise MapReduceError(
                    f"{stage} of job {job_name!r} emitted {pair!r}; "
                    "expected (key, value) tuples"
                )
            yield pair

    @staticmethod
    def _combine(job: MapReduceJob, pairs: list[tuple]) -> list[tuple]:
        from collections import defaultdict

        grouped: dict[object, list] = defaultdict(list)
        for key, value in pairs:
            grouped[key].append(value)
        out: list[tuple] = []
        for key in sort_grouped_keys(grouped.keys()):
            out.extend(job.run_combiner(key, grouped[key]))
        return out
