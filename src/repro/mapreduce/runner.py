"""Serial job runner: deterministic reference execution with tracing.

The serial runner executes the full map -> combine -> shuffle -> reduce
pipeline in-process, measuring per-task CPU time and record counts into a
:class:`~repro.mapreduce.types.JobTrace`.  Those traces are the input to
the discrete-event cluster simulator (the real work is measured; only the
distributed wall-clock is modeled — see DESIGN.md substitution #1).

Execution is fault tolerant: each task runs inside an attempt loop driven
by a :class:`~repro.mapreduce.faults.RetryPolicy` (derived from
``JobConf`` unless overridden) — failed attempts are retried with
exponential backoff, hung attempts are abandoned at the task deadline,
stragglers get speculative backup attempts, and completed task outputs can
be persisted to a :class:`~repro.mapreduce.faults.JobCheckpoint` so a
killed job resumes from the last barrier.  A
:class:`~repro.mapreduce.faults.FaultPlan` injects deterministic faults
for chaos testing.  Attempt history lands in the trace and in the
``fault`` counter group.

When a :class:`~repro.obs.trace.Tracer` is active, execution also emits
telemetry: a ``job`` span wrapping ``map``/``shuffle``/``reduce`` stage
spans, one ``task`` span per task, and one ``attempt`` span per attempt —
failed attempts and their successful retries appear as sibling spans with
the injected fault tagged — plus job counters adapted into the tracer's
metrics registry.  With no tracer active all instrumentation is no-op.
"""

from __future__ import annotations

import time
from collections import defaultdict
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import FaultError, MapReduceError, TaskFailedError
from repro.mapreduce.cancel import check_cancelled
from repro.mapreduce.counters import Counters
from repro.mapreduce.faults import (
    FaultPlan,
    JobCheckpoint,
    RetryPolicy,
    records_checksum,
)
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.shuffle import (
    SpillingShuffle,
    approx_records_bytes,
    partition_num_records,
    shuffle,
    sort_records,
)
from repro.mapreduce.types import JobConf, JobTrace, TaskTrace
from repro.obs.trace import current_tracer
from repro.utils.chunking import chunk_indices


@dataclass
class JobResult:
    """Output records plus counters and execution trace for one job."""

    output: list[tuple]
    counters: Counters = field(default_factory=Counters)
    trace: JobTrace | None = None


# Shared with the spill-threshold estimate of the external shuffle; the
# multiprocess runner imports it from here.
_approx_bytes = approx_records_bytes


def _through_wire(
    job: MapReduceJob,
    map_outputs: list[list[tuple]],
    counters: Counters,
    trace: JobTrace | None,
) -> list[list[tuple]]:
    """Route map outputs through the job's wire codec.

    Each map task's record list is encoded into a compressed frame (the
    codec stamps a producer-side checksum into it), the trace's shuffle
    bytes are billed at *frame* size — that is the whole point of the
    compressed wire format — and frames are decoded (checksum verified)
    before partitioning, mirroring reduce-side merge input.  Raw-vs-wire
    byte counters record the savings.
    """
    frames = [job.wire.encode_records(out) for out in map_outputs]
    raw = sum(_approx_bytes(out) for out in map_outputs)
    on_wire = sum(frame.nbytes for frame in frames)
    counters.increment("wire", "frames", len(frames))
    counters.increment("wire", "bytes_raw", raw)
    counters.increment("wire", "bytes_wire", on_wire)
    if raw > 0:
        current_tracer().metrics.gauge("mr.wire.compression_ratio").set(on_wire / raw)
    if trace is not None:
        trace.shuffle_bytes = on_wire
    return [job.wire.decode_records(frame) for frame in frames]


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class SerialRunner:
    """Run jobs sequentially in-process.

    ``trace=True`` (default) records task-level statistics; turn it off for
    micro-benchmarks where the byte-size sampling overhead matters.

    ``fault_plan``, ``checkpoint`` and ``retry`` set instance-wide defaults
    so callers that only hand a runner to a pipeline (e.g.
    :class:`~repro.cluster.pipeline.MrMCMinH`) still get fault-tolerant
    execution; per-call keyword arguments to :meth:`run` override them.
    """

    def __init__(
        self,
        *,
        trace: bool = True,
        fault_plan: FaultPlan | None = None,
        checkpoint: JobCheckpoint | None = None,
        retry: RetryPolicy | None = None,
    ):
        self.trace = trace
        self.fault_plan = fault_plan
        self.checkpoint = checkpoint
        self.retry = retry

    def run(
        self,
        job: MapReduceJob,
        inputs: Sequence[tuple],
        conf: JobConf | None = None,
        *,
        fault_plan: FaultPlan | None = None,
        checkpoint: JobCheckpoint | None = None,
        retry: RetryPolicy | None = None,
        output_sink: Callable[[tuple], None] | None = None,
    ) -> JobResult:
        """Execute ``job`` over ``inputs`` (a sequence of key/value pairs).

        With ``output_sink`` set, every reduce output record is fed to the
        callback as it is produced instead of being accumulated (the
        returned :class:`JobResult` has an empty ``output`` and
        ``sort_output`` does not apply) — the streaming hand-off the
        sparse candidate-edge path uses to avoid materializing the full
        pair list in the driver.
        """
        conf = conf or JobConf()
        plan = fault_plan if fault_plan is not None else self.fault_plan
        ckpt = checkpoint if checkpoint is not None else self.checkpoint
        policy = retry or self.retry or RetryPolicy.from_conf(conf)
        counters = Counters()
        trace = JobTrace(job_name=job.name) if self.trace else None
        tracer = current_tracer()

        with tracer.span(
            f"job:{job.name}", kind="job", job=job.name, runner="serial"
        ) as job_span:
            if plan is not None:
                plan.trigger_barrier("job_start", counters)

            # ---- map phase, split into conf.num_map_tasks tasks ---------
            map_outputs: list[list[tuple]] = []
            map_durations: list[float] = []
            with tracer.span("map", kind="stage"):
                for t, (start, stop) in enumerate(
                    chunk_indices(len(inputs), conf.num_map_tasks)
                ):
                    split = inputs[start:stop]
                    task_trace, out = self._execute_task(
                        job=job,
                        kind="map",
                        index=t,
                        task_id=f"{job.name}-m{t:04d}",
                        body=lambda split=split: self._map_split(job, split, conf),
                        records_in=len(split),
                        bytes_in=_approx_bytes(split) if self.trace else 0,
                        policy=policy,
                        plan=plan,
                        checkpoint=ckpt,
                        counters=counters,
                        completed_durations=map_durations,
                    )
                    counters.increment("job", "map_input_records", len(split))
                    counters.increment("job", "map_output_records", len(out))
                    if trace is not None:
                        trace.map_tasks.append(task_trace)
                    map_outputs.append(out)

            if plan is not None:
                plan.trigger_barrier("map_end", counters)

            # ---- shuffle -------------------------------------------------
            # The try/finally spans shuffle AND reduce: spill segments must
            # be removed even when finish() itself fails (unrepairable
            # bit-rot), not just on reducer errors.
            spill: SpillingShuffle | None = None
            output: list[tuple] = []
            reduce_durations: list[float] = []
            try:
                with tracer.span("shuffle", kind="stage") as shuffle_span:
                    if job.wire is not None:
                        map_outputs = _through_wire(
                            job, map_outputs, counters, trace
                        )
                    if conf.spill_threshold_bytes is not None:
                        spill = SpillingShuffle(
                            conf.num_reduce_tasks,
                            job.partitioner,
                            spill_threshold_bytes=conf.spill_threshold_bytes,
                            job_name=job.name,
                            fault_plan=plan,
                            counters=counters,
                        )
                        for out in map_outputs:
                            spill.add_task_output(out)
                        partitions, moved = spill.finish()
                        shuffle_span.attrs["spill_segments"] = spill.spill_segments
                        shuffle_span.attrs["spill_bytes"] = spill.spill_bytes
                    else:
                        partitions, moved = shuffle(
                            map_outputs, conf.num_reduce_tasks, job.partitioner
                        )
                    counters.increment("job", "shuffle_records", moved)
                    if trace is not None and job.wire is None:
                        trace.shuffle_bytes = sum(
                            _approx_bytes(p) for p in map_outputs
                        )
                    shuffle_span.attrs["records"] = moved

                # ---- reduce phase ---------------------------------------
                with tracer.span("reduce", kind="stage"):
                    for r, groups in enumerate(partitions):
                        records_in = partition_num_records(groups)
                        task_trace, out = self._execute_task(
                            job=job,
                            kind="reduce",
                            index=r,
                            task_id=f"{job.name}-r{r:04d}",
                            body=lambda groups=groups: self._reduce_groups(job, groups),
                            records_in=records_in,
                            bytes_in=0,
                            policy=policy,
                            plan=plan,
                            checkpoint=ckpt,
                            counters=counters,
                            completed_durations=reduce_durations,
                        )
                        counters.increment("job", "reduce_input_records", records_in)
                        counters.increment("job", "reduce_output_records", len(out))
                        if trace is not None:
                            trace.reduce_tasks.append(task_trace)
                        if output_sink is not None:
                            for record in out:
                                output_sink(record)
                        else:
                            output.extend(out)
            finally:
                if spill is not None:
                    spill.close()

            if plan is not None:
                plan.trigger_barrier("job_end", counters)

            if trace is not None:
                job_span.attrs["shuffle_bytes"] = trace.shuffle_bytes
            elif job.wire is not None:
                job_span.attrs["shuffle_bytes"] = counters.get("wire", "bytes_wire")
            tracer.metrics.record_counters(counters)

        if conf.sort_output and output_sink is None:
            # Shares shuffle.sort_records so the mixed-type fallback
            # ordering cannot drift from the shuffle's grouping order.
            output = sort_records(output)
        return JobResult(output=output, counters=counters, trace=trace)

    def run_chain(
        self,
        jobs: Sequence[tuple[MapReduceJob, JobConf | None]],
        inputs: Sequence[tuple],
    ) -> tuple[JobResult, list[JobTrace]]:
        """Run a pipeline of jobs, feeding each job's output to the next.

        Returns the final result and the traces of every stage (the unit
        the cluster simulator schedules).  Instance-level fault plan and
        checkpoint apply to every stage; task ids embed the job name, so
        one checkpoint directory covers the whole chain.
        """
        if not jobs:
            raise MapReduceError("run_chain requires at least one job")
        traces: list[JobTrace] = []
        current: Sequence[tuple] = inputs
        result: JobResult | None = None
        with current_tracer().span("chain", kind="chain", jobs=len(jobs)):
            for job, conf in jobs:
                result = self.run(job, list(current), conf)
                if result.trace is not None:
                    traces.append(result.trace)
                current = result.output
        assert result is not None
        return result, traces

    # ---- fault-tolerant task execution ------------------------------------

    def _execute_task(
        self,
        *,
        job: MapReduceJob,
        kind: str,
        index: int,
        task_id: str,
        body: Callable[[], tuple[list[tuple], Counters]],
        records_in: int,
        bytes_in: int,
        policy: RetryPolicy,
        plan: FaultPlan | None,
        checkpoint: JobCheckpoint | None,
        counters: Counters,
        completed_durations: list[float],
    ) -> tuple[TaskTrace, list[tuple]]:
        """Run one task to completion: checkpoint recovery, attempt loop,
        counter merging and trace assembly."""
        check_cancelled(task_id)  # cooperative deadline/cancel point
        tracer = current_tracer()
        with tracer.span(
            f"task:{task_id}", kind="task", task_id=task_id, task_kind=kind
        ) as task_span:
            if checkpoint is not None and checkpoint.has(task_id):
                payload = checkpoint.load(task_id)
                out = payload["output"]
                counters.merge(payload["counters"])
                counters.increment("fault", "tasks_recovered_from_checkpoint")
                task_trace: TaskTrace = payload["trace"]
                task_trace.recovered = True
                task_span.attrs["recovered"] = True
                if plan is not None:
                    plan.note_task_complete()
                return task_trace, out

            out, task_counters, elapsed, attempts, failures, spec_win = (
                self._run_attempts(
                    job=job,
                    kind=kind,
                    index=index,
                    task_id=task_id,
                    body=body,
                    policy=policy,
                    plan=plan,
                    counters=counters,
                    completed_durations=completed_durations,
                )
            )
            completed_durations.append(elapsed)
            counters.merge(task_counters)
            tracer.metrics.histogram("mr.task_seconds").observe(elapsed)
            task_trace = TaskTrace(
                task_id=task_id,
                kind=kind,
                records_in=records_in,
                records_out=len(out),
                bytes_in=bytes_in,
                bytes_out=_approx_bytes(out) if self.trace else 0,
                cpu_seconds=elapsed,
                attempts=attempts,
                failures=failures,
                speculative_win=spec_win,
            )
            if checkpoint is not None:
                checkpoint.save(
                    task_id,
                    {"output": out, "counters": task_counters, "trace": task_trace},
                )
            if plan is not None:
                plan.note_task_complete()
            return task_trace, out

    def _run_attempts(
        self,
        *,
        job: MapReduceJob,
        kind: str,
        index: int,
        task_id: str,
        body: Callable[[], tuple[list[tuple], Counters]],
        policy: RetryPolicy,
        plan: FaultPlan | None,
        counters: Counters,
        completed_durations: list[float],
    ) -> tuple[list[tuple], Counters, float, int, list[str], bool]:
        """The per-task attempt loop.

        Failed attempts are recorded (reason strings) and retried with
        exponential backoff up to ``policy.max_attempts``; the winning
        attempt's output and counters are the only ones that count
        (failed attempts' counter increments are discarded — exactly-once
        side effects, like Hadoop's committed task outputs).
        """
        tracer = current_tracer()
        failures: list[str] = []
        speculative_attempt = False  # next attempt is a speculative backup
        spec_win = False
        attempt = 0
        while True:
            attempt += 1
            check_cancelled(task_id)
            fault = plan.fault_for(job.name, kind, index, attempt) if plan else None
            with tracer.span(
                f"attempt:{attempt}", kind="attempt", attempt=attempt, task_id=task_id
            ) as attempt_span:
                if fault is not None:
                    attempt_span.attrs["fault"] = fault.kind
                if speculative_attempt:
                    attempt_span.attrs["speculative"] = True
                try:
                    if fault is not None and fault.kind == "crash":
                        raise FaultError(
                            fault.reason or "injected crash",
                            task_id=task_id,
                            attempt=attempt,
                        )
                    if fault is not None and fault.kind == "hang":
                        self._handle_hang(
                            fault, policy, task_id, attempt, completed_durations
                        )
                    if fault is not None and fault.kind == "slow_node":
                        # A degraded node, not a failure: the attempt pays
                        # the latency and still completes.
                        counters.increment("fault", "slow_node_delays")
                        time.sleep(fault.delay)
                    t0 = time.perf_counter()
                    out, task_counters = body()
                    elapsed = time.perf_counter() - t0
                    if fault is not None and fault.kind == "corrupt":
                        # Checksum at production; corruption strikes in transit;
                        # the runner verifies on receipt (IFile-checksum model).
                        produced_crc = records_checksum(out)
                        delivered = FaultPlan.corrupt_records(out, task_id)
                        if records_checksum(delivered) != produced_crc:
                            raise FaultError(
                                "corrupted shuffle partition (checksum mismatch)",
                                task_id=task_id,
                                attempt=attempt,
                            )
                        out = delivered  # pragma: no cover - corruption always detected
                    if speculative_attempt:
                        spec_win = True
                        counters.increment("fault", "speculative_wins")
                        attempt_span.attrs["speculative_win"] = True
                    return out, task_counters, elapsed, attempt, failures, spec_win
                except FaultError as exc:
                    speculative_attempt = getattr(exc, "speculative", False)
                    attempt_span.status = "error"
                    attempt_span.attrs["error"] = str(exc)
                    self._record_failure(
                        counters, failures, str(exc), task_id, attempt, policy, exc
                    )
                except Exception as exc:
                    if policy.max_attempts == 1:
                        raise  # no retries configured: propagate user errors as-is
                    speculative_attempt = False
                    attempt_span.status = "error"
                    attempt_span.attrs["error"] = f"{type(exc).__name__}: {exc}"
                    self._record_failure(
                        counters,
                        failures,
                        f"{type(exc).__name__}: {exc}",
                        task_id,
                        attempt,
                        policy,
                        exc,
                    )
            delay = policy.backoff_delay(attempt)
            if delay > 0:
                time.sleep(delay)

    @staticmethod
    def _record_failure(
        counters: Counters,
        failures: list[str],
        reason: str,
        task_id: str,
        attempt: int,
        policy: RetryPolicy,
        cause: Exception,
    ) -> None:
        failures.append(reason)
        counters.increment("fault", "attempts_failed")
        if attempt >= policy.max_attempts:
            raise TaskFailedError(task_id, failures) from cause
        counters.increment("fault", "task_retries")

    @staticmethod
    def _handle_hang(
        fault,
        policy: RetryPolicy,
        task_id: str,
        attempt: int,
        completed_durations: list[float],
    ) -> None:
        """Serial model of a hung attempt.

        A hang whose delay crosses the task deadline (``task_timeout``) is
        abandoned; one that crosses the speculation threshold
        (``speculative_margin x median completed duration``) is abandoned in
        favour of a backup attempt — the serial backend runs the backup
        *after* abandoning the original (it has one thread), so "backup
        wins" is recorded on the retry.  The multiprocess runner races real
        concurrent attempts.  Hangs below both thresholds simply sleep: a
        slow task, not a failure.
        """
        spec_deadline = None
        if policy.speculative_margin > 0 and completed_durations:
            spec_deadline = policy.speculative_margin * _median(completed_durations)
        if policy.timeout is not None and fault.delay >= policy.timeout:
            exc = FaultError(
                f"attempt abandoned at task_timeout={policy.timeout}s "
                f"(hang of {fault.delay}s)",
                task_id=task_id,
                attempt=attempt,
            )
            exc.speculative = policy.speculative_margin > 0
            raise exc
        if spec_deadline is not None and fault.delay >= spec_deadline:
            exc = FaultError(
                f"straggler: hang of {fault.delay}s exceeds "
                f"{policy.speculative_margin}x median "
                f"({_median(completed_durations):.6f}s); speculative backup launched",
                task_id=task_id,
                attempt=attempt,
            )
            exc.speculative = True
            raise exc
        time.sleep(fault.delay)

    # ---- task bodies ------------------------------------------------------

    def _map_split(
        self, job: MapReduceJob, split: Sequence[tuple], conf: JobConf
    ) -> tuple[list[tuple], Counters]:
        """One clean map attempt over a split (fresh counters per attempt)."""
        task_counters = Counters()
        out: list[tuple] = []
        if job.batch_mapper is not None:
            emitted = job.run_batch_mapper(split, task_counters)
            if emitted is not None:
                out.extend(self._validated(emitted, job.name, "batch_mapper"))
        else:
            for key, value in split:
                emitted = job.run_mapper(key, value, task_counters)
                if emitted is not None:
                    out.extend(self._validated(emitted, job.name, "mapper"))
        if conf.use_combiner and job.combiner is not None:
            out = self._combine(job, out)
        return out, task_counters

    def _reduce_groups(
        self, job: MapReduceJob, groups: Sequence[tuple[object, list]]
    ) -> tuple[list[tuple], Counters]:
        """One clean reduce attempt over a partition's grouped keys."""
        task_counters = Counters()
        out: list[tuple] = []
        for key, values in groups:
            emitted = job.run_reducer(key, values, task_counters)
            if emitted is not None:
                out.extend(self._validated(emitted, job.name, "reducer"))
        return out, task_counters

    @staticmethod
    def _validated(emitted, job_name: str, stage: str):
        for pair in emitted:
            if not isinstance(pair, tuple) or len(pair) != 2:
                raise MapReduceError(
                    f"{stage} of job {job_name!r} emitted {pair!r}; "
                    "expected (key, value) tuples"
                )
            yield pair

    @staticmethod
    def _combine(job: MapReduceJob, pairs: list[tuple]) -> list[tuple]:
        from repro.mapreduce.shuffle import sort_grouped_keys

        grouped: dict[object, list] = defaultdict(list)
        for key, value in pairs:
            grouped[key].append(value)
        out: list[tuple] = []
        for key in sort_grouped_keys(grouped.keys()):
            out.extend(job.run_combiner(key, grouped[key]))
        return out
