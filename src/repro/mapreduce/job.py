"""Map-Reduce job definitions.

A job is mapper + optional combiner + reducer + partitioner.  Signatures
follow the classic Hadoop streaming contract:

* ``mapper(key, value) -> iterable of (k2, v2)``
* ``combiner(k2, values) -> iterable of (k2, v2)`` (same key domain)
* ``reducer(k2, values) -> iterable of (k3, v3)``
* ``partitioner(k2, num_partitions) -> int``

Mappers/reducers may optionally accept a keyword-only ``context`` (a
:class:`~repro.mapreduce.counters.Counters` object) to emit counters; the
runner detects this by signature inspection once per job.

Two optional fast-path hooks extend the contract:

* ``batch_mapper(split) -> iterable of (k2, v2)`` — maps a whole task
  split in one call instead of record-by-record, letting vectorised
  kernels (e.g. the min-hash batch sketcher) amortise work across the
  split.  When present it replaces ``mapper`` inside map tasks; the
  per-record ``mapper`` must still be supplied and produce identical
  output, since it remains the reference path (and the unit the fault
  injector replays).
* ``wire`` — a codec with ``encode_records(records)`` /
  ``decode_records(frame)`` applied at the map/shuffle boundary: each map
  task's output is packed into a compressed frame (with a producer-side
  checksum), the shuffle accounts frame bytes, and frames are decoded
  before reduce.  See :class:`~repro.minhash.wire.SketchWireCodec`.
"""

from __future__ import annotations

import inspect
import pickle
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.errors import MapReduceError
from repro.mapreduce.shuffle import default_partitioner

Mapper = Callable[..., Iterable[tuple]]
Reducer = Callable[..., Iterable[tuple]]
Partitioner = Callable[[object, int], int]


def identity_mapper(key, value):
    """Pass records through unchanged."""
    yield key, value


def identity_reducer(key, values):
    """Emit each grouped value under its key."""
    for value in values:
        yield key, value


def _takes_context(fn: Callable) -> bool:
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):
        return False
    return "context" in sig.parameters


@dataclass(frozen=True)
class MapReduceJob:
    """Immutable description of one Map-Reduce computation."""

    name: str
    mapper: Mapper
    reducer: Reducer
    combiner: Reducer | None = None
    partitioner: Partitioner = default_partitioner
    batch_mapper: Callable | None = None
    wire: object | None = None
    _mapper_ctx: bool = field(init=False, repr=False, compare=False, default=False)
    _reducer_ctx: bool = field(init=False, repr=False, compare=False, default=False)
    _batch_ctx: bool = field(init=False, repr=False, compare=False, default=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise MapReduceError("job name must be non-empty")
        if not callable(self.mapper):
            raise MapReduceError(f"mapper for job {self.name!r} is not callable")
        if not callable(self.reducer):
            raise MapReduceError(f"reducer for job {self.name!r} is not callable")
        if self.combiner is not None and not callable(self.combiner):
            raise MapReduceError(f"combiner for job {self.name!r} is not callable")
        if self.batch_mapper is not None and not callable(self.batch_mapper):
            raise MapReduceError(
                f"batch_mapper for job {self.name!r} is not callable"
            )
        if self.wire is not None and not (
            callable(getattr(self.wire, "encode_records", None))
            and callable(getattr(self.wire, "decode_records", None))
        ):
            raise MapReduceError(
                f"wire codec for job {self.name!r} must provide "
                "encode_records/decode_records"
            )
        object.__setattr__(self, "_mapper_ctx", _takes_context(self.mapper))
        object.__setattr__(self, "_reducer_ctx", _takes_context(self.reducer))
        if self.batch_mapper is not None:
            object.__setattr__(self, "_batch_ctx", _takes_context(self.batch_mapper))

    def run_mapper(self, key, value, counters) -> Iterable[tuple]:
        """Invoke the mapper on one record, passing counters if accepted."""
        if self._mapper_ctx:
            return self.mapper(key, value, context=counters)
        return self.mapper(key, value)

    def run_batch_mapper(self, split, counters) -> Iterable[tuple]:
        """Invoke the batch mapper on one whole split.

        Only valid when ``batch_mapper`` is configured; the runners fall
        back to the per-record :meth:`run_mapper` loop otherwise.
        """
        if self.batch_mapper is None:
            raise MapReduceError(
                f"job {self.name!r} has no batch_mapper configured"
            )
        if self._batch_ctx:
            return self.batch_mapper(split, context=counters)
        return self.batch_mapper(split)

    def run_reducer(self, key, values, counters) -> Iterable[tuple]:
        """Invoke the reducer on one grouped key, passing counters if
        accepted."""
        if self._reducer_ctx:
            return self.reducer(key, values, context=counters)
        return self.reducer(key, values)

    def run_combiner(self, key, values) -> Iterable[tuple]:
        """Invoke the combiner (identity when none is configured)."""
        if self.combiner is None:
            return [(key, v) for v in values]
        return self.combiner(key, values)

    def ensure_picklable(self) -> None:
        """Reject jobs that cannot cross a process boundary.

        The multiprocess runner ships the whole job to its workers;
        lambdas and other unpicklable callables fail deep inside the pool
        with an opaque ``PicklingError``.  Checking up front turns that
        into a clear :class:`~repro.errors.MapReduceError` — the same
        contract real Hadoop streaming imposes (module-level functions
        only).
        """
        try:
            pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise MapReduceError(
                f"job {self.name!r} is not picklable and cannot run on the "
                f"multiprocess runner (use module-level functions, not "
                f"lambdas or closures): {exc}"
            ) from exc
