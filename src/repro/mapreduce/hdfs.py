"""Simulated HDFS: block-based file storage with replication and locality.

The paper stores FASTA inputs and clustering outputs "as a HDFS file".
This module models the parts of HDFS the pipeline and the cluster
simulator care about:

* files are split into fixed-size **blocks** (default 64 MiB, the Hadoop-1
  default contemporary with the paper; configurable and set much smaller in
  tests);
* each block is **replicated** onto ``replication`` distinct datanodes
  (default 3), chosen pseudo-randomly but deterministically per seed;
* the **namenode** keeps file -> block metadata, which the simulator uses
  for data locality (a map task is "node-local" when some replica of its
  block lives on the node running it);
* every block carries a **CRC32 checksum** computed on ``put``; reads
  verify it per replica and silently fail over to another live replica on
  mismatch, quarantining the corrupt copy (the in-memory analogue of
  HDFS's block scanner + corrupt-replica handling), with :meth:`fsck`
  reporting namespace health.

Datanodes can also be **degraded** (alive but slow): reads prefer healthy
replicas and only fall back to degraded ones, which is what lets barrier
fault plans model brown-outs without data loss.

Data is held in memory; this is a functional model, not a persistence
layer.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.errors import HdfsError
from repro.utils.rng import ensure_rng

DEFAULT_BLOCK_SIZE = 64 * 1024 * 1024


@dataclass(frozen=True)
class BlockInfo:
    """One block of a file: id, byte size and replica placement."""

    block_id: str
    size: int
    replicas: tuple[int, ...]  # datanode indices


@dataclass(frozen=True)
class FileMeta:
    """Namenode metadata for one file."""

    path: str
    size: int
    blocks: tuple[BlockInfo, ...]

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)


@dataclass
class _Datanode:
    node_id: int
    blocks: dict[str, bytes] = field(default_factory=dict)
    alive: bool = True
    degraded: bool = False

    @property
    def used_bytes(self) -> int:
        return sum(len(b) for b in self.blocks.values())

    @property
    def healthy(self) -> bool:
        return self.alive and not self.degraded


class SimulatedHDFS:
    """In-memory HDFS with namenode metadata and datanode block stores."""

    def __init__(
        self,
        num_datanodes: int = 4,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = 3,
        seed: int = 0,
    ):
        if num_datanodes < 1:
            raise HdfsError(f"need at least one datanode, got {num_datanodes}")
        if block_size < 1:
            raise HdfsError(f"block_size must be positive, got {block_size}")
        if replication < 1:
            raise HdfsError(f"replication must be >= 1, got {replication}")
        self.block_size = block_size
        self.replication = min(replication, num_datanodes)
        self._datanodes = [_Datanode(i) for i in range(num_datanodes)]
        self._namenode: dict[str, FileMeta] = {}
        self._block_crc: dict[str, int] = {}
        self._rng = ensure_rng(seed)
        self._next_block = 0
        self._stats = {
            "degraded_reads": 0,
            "crc_failovers": 0,
            "replicas_quarantined": 0,
        }

    # ---- namespace operations -------------------------------------------

    def exists(self, path: str) -> bool:
        """True when ``path`` is a file in the namespace."""
        return path in self._namenode

    def ls(self, prefix: str = "") -> list[str]:
        """Paths in the namespace starting with ``prefix``, sorted."""
        return sorted(p for p in self._namenode if p.startswith(prefix))

    def stat(self, path: str) -> FileMeta:
        """Namenode metadata for ``path``."""
        self._check_exists(path)
        return self._namenode[path]

    def rm(self, path: str) -> None:
        """Remove a file and free its blocks on every datanode."""
        meta = self.stat(path)
        for block in meta.blocks:
            for node in block.replicas:
                self._datanodes[node].blocks.pop(block.block_id, None)
            self._block_crc.pop(block.block_id, None)
        del self._namenode[path]

    # ---- data operations ---------------------------------------------------

    def put(self, path: str, data: bytes | str, *, overwrite: bool = False) -> FileMeta:
        """Write ``data`` to ``path``, splitting into replicated blocks."""
        if not path or not path.startswith("/"):
            raise HdfsError(f"HDFS paths must be absolute, got {path!r}")
        if self.exists(path):
            if not overwrite:
                raise HdfsError(f"path {path!r} already exists")
            self.rm(path)
        payload = data.encode("ascii") if isinstance(data, str) else bytes(data)
        blocks: list[BlockInfo] = []
        offsets = range(0, max(len(payload), 1), self.block_size)
        for off in offsets:
            chunk = payload[off : off + self.block_size]
            block_id = f"blk_{self._next_block:08d}"
            self._next_block += 1
            self._block_crc[block_id] = zlib.crc32(chunk)
            replicas = self._place_replicas()
            for node in replicas:
                self._datanodes[node].blocks[block_id] = chunk
            blocks.append(BlockInfo(block_id=block_id, size=len(chunk), replicas=replicas))
        meta = FileMeta(path=path, size=len(payload), blocks=tuple(blocks))
        self._namenode[path] = meta
        return meta

    def get(self, path: str) -> bytes:
        """Read a whole file back by concatenating block contents."""
        meta = self.stat(path)
        parts = []
        for block in meta.blocks:
            data = self._read_block(block)
            parts.append(data)
        return b"".join(parts)

    def get_text(self, path: str) -> str:
        """Read a whole file as ASCII text."""
        return self.get(path).decode("ascii")

    def read_block(self, path: str, index: int) -> bytes:
        """Read the ``index``-th block of a file (map-task input split)."""
        meta = self.stat(path)
        if not 0 <= index < meta.num_blocks:
            raise HdfsError(
                f"block index {index} out of range for {path!r} "
                f"({meta.num_blocks} blocks)"
            )
        return self._read_block(meta.blocks[index])

    # ---- cluster introspection (used by the simulator) ---------------------

    def locality_map(self, path: str) -> dict[int, list[int]]:
        """``{datanode: [block indices local to it]}`` for a file."""
        meta = self.stat(path)
        out: dict[int, list[int]] = {n.node_id: [] for n in self._datanodes}
        for i, block in enumerate(meta.blocks):
            for node in block.replicas:
                out[node].append(i)
        return out

    def datanode_usage(self) -> list[int]:
        """Bytes stored per datanode (replication included)."""
        return [n.used_bytes for n in self._datanodes]

    def integrity_stats(self) -> dict[str, int]:
        """Counters for degraded reads, CRC failovers and quarantines."""
        return dict(self._stats)

    def fsck(self) -> dict:
        """Namespace health report (the ``hdfs fsck /`` analogue).

        Verifies every replica's CRC32 (quarantining corrupt copies as a
        real scan would), then reports per-file block health plus
        cluster-wide totals.  ``healthy`` is True when every block has at
        least ``replication`` valid replicas on live nodes.
        """
        files: dict[str, dict] = {}
        under_replicated = 0
        missing = 0
        total_blocks = 0
        for path in sorted(self._namenode):
            meta = self._namenode[path]
            file_under: list[str] = []
            file_missing: list[str] = []
            for block in meta.blocks:
                total_blocks += 1
                valid = [
                    n
                    for n in block.replicas
                    if self._datanodes[n].alive
                    and self._valid_replica(n, block.block_id)
                ]
                want = min(self.replication, len(self.live_datanodes))
                if not valid:
                    file_missing.append(block.block_id)
                elif len(valid) < want:
                    file_under.append(block.block_id)
            under_replicated += len(file_under)
            missing += len(file_missing)
            files[path] = {
                "blocks": meta.num_blocks,
                "under_replicated": file_under,
                "missing": file_missing,
            }
        return {
            "files": files,
            "total_blocks": total_blocks,
            "under_replicated_blocks": under_replicated,
            "missing_blocks": missing,
            "live_datanodes": self.live_datanodes,
            "degraded_datanodes": [
                n.node_id for n in self._datanodes if n.alive and n.degraded
            ],
            "replicas_quarantined": self._stats["replicas_quarantined"],
            "crc_failovers": self._stats["crc_failovers"],
            "degraded_reads": self._stats["degraded_reads"],
            "healthy": under_replicated == 0 and missing == 0,
        }

    @property
    def num_datanodes(self) -> int:
        return len(self._datanodes)

    # ---- failure injection ----------------------------------------------------

    def fail_datanode(self, node_id: int) -> None:
        """Kill a datanode: its replicas become unreadable.

        Reads transparently fall back to surviving replicas, as real HDFS
        clients do; :meth:`rereplicate` restores the replication factor
        (the namenode's block-recovery process).
        """
        self._check_node(node_id)
        self._datanodes[node_id].alive = False

    def restart_datanode(self, node_id: int) -> None:
        """Bring a failed datanode back (its block store is intact)."""
        self._check_node(node_id)
        self._datanodes[node_id].alive = True

    def degrade_datanode(self, node_id: int) -> None:
        """Mark a datanode degraded: alive, but reads route around it."""
        self._check_node(node_id)
        self._datanodes[node_id].degraded = True

    def restore_datanode(self, node_id: int) -> None:
        """Clear a datanode's degraded flag."""
        self._check_node(node_id)
        self._datanodes[node_id].degraded = False

    def corrupt_replica(self, node_id: int, block_index: int = 0) -> str | None:
        """Silently flip the bytes of one stored replica (bit rot).

        ``block_index`` picks the ``index``-th block id (sorted) stored on
        ``node_id``.  Returns the corrupted block id, or None when the
        node holds no block at that index (nothing to rot).  The namenode
        checksum is *not* updated — that is the point: only the CRC check
        on read can tell this replica has gone bad.
        """
        self._check_node(node_id)
        held = sorted(self._datanodes[node_id].blocks)
        if block_index >= len(held):
            return None
        block_id = held[block_index]
        data = self._datanodes[node_id].blocks[block_id]
        flipped = bytes([data[0] ^ 0xFF]) + data[1:] if data else b"\xff"
        self._datanodes[node_id].blocks[block_id] = flipped
        return block_id

    def rereplicate(self) -> int:
        """Re-replicate under-replicated blocks onto live nodes.

        Returns the number of new replicas created.  Blocks with no live
        replica are irrecoverable and raise :class:`~repro.errors.HdfsError`.
        """
        live = [n.node_id for n in self._datanodes if n.alive]
        created = 0
        new_meta: dict[str, FileMeta] = {}
        for path, meta in self._namenode.items():
            blocks: list[BlockInfo] = []
            for block in meta.blocks:
                # A replica only counts if the node is alive AND still
                # holds verifiable data — quarantined copies don't.
                holders = [
                    n
                    for n in block.replicas
                    if self._datanodes[n].alive
                    and self._valid_replica(n, block.block_id)
                ]
                if not holders:
                    raise HdfsError(
                        f"block {block.block_id} of {path!r} lost all replicas"
                    )
                data = self._datanodes[holders[0]].blocks[block.block_id]
                want = min(self.replication, len(live))
                targets = list(holders)
                candidates = [n for n in live if n not in targets]
                order = self._rng.permutation(len(candidates))
                for i in order:
                    if len(targets) >= want:
                        break
                    node = candidates[int(i)]
                    self._datanodes[node].blocks[block.block_id] = data
                    targets.append(node)
                    created += 1
                blocks.append(
                    BlockInfo(
                        block_id=block.block_id,
                        size=block.size,
                        replicas=tuple(sorted(targets)),
                    )
                )
            new_meta[path] = FileMeta(path=path, size=meta.size, blocks=tuple(blocks))
        self._namenode = new_meta
        return created

    @property
    def live_datanodes(self) -> list[int]:
        """Ids of datanodes currently alive."""
        return [n.node_id for n in self._datanodes if n.alive]

    def datanode_alive(self, node_id: int) -> bool:
        """Whether one datanode is currently alive (used by fault plans to
        keep barrier kills idempotent)."""
        self._check_node(node_id)
        return self._datanodes[node_id].alive

    # ---- internals -----------------------------------------------------------

    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < len(self._datanodes):
            raise HdfsError(
                f"datanode {node_id} out of range "
                f"(cluster has {len(self._datanodes)})"
            )

    def _place_replicas(self) -> tuple[int, ...]:
        live = [n.node_id for n in self._datanodes if n.alive]
        if not live:
            raise HdfsError("no live datanodes to place replicas on")
        count = min(self.replication, len(live))
        picks = self._rng.permutation(len(live))[:count]
        return tuple(sorted(live[int(i)] for i in picks))

    def _valid_replica(self, node_id: int, block_id: str) -> bool:
        """Node holds the block and its bytes still match the namenode CRC.

        A mismatching replica is quarantined on the spot (dropped from
        the node's store) so nothing ever reads or re-replicates it.
        """
        data = self._datanodes[node_id].blocks.get(block_id)
        if data is None:
            return False
        if zlib.crc32(data) != self._block_crc[block_id]:
            del self._datanodes[node_id].blocks[block_id]
            self._stats["replicas_quarantined"] += 1
            return False
        return True

    def _read_block(self, block: BlockInfo) -> bytes:
        # Healthy replicas first, then degraded ones — never dead nodes.
        candidates = [n for n in block.replicas if self._datanodes[n].healthy]
        degraded = [
            n
            for n in block.replicas
            if self._datanodes[n].alive and self._datanodes[n].degraded
        ]
        saw_corruption = False
        for tier, nodes in enumerate((candidates, degraded)):
            for node in nodes:
                before = self._stats["replicas_quarantined"]
                if not self._valid_replica(node, block.block_id):
                    if self._stats["replicas_quarantined"] > before:
                        saw_corruption = True
                    continue
                if saw_corruption:
                    self._stats["crc_failovers"] += 1
                if tier == 1:
                    self._stats["degraded_reads"] += 1
                return self._datanodes[node].blocks[block.block_id]
        if saw_corruption:
            raise HdfsError(
                f"all replicas of {block.block_id} are corrupt or missing"
            )
        raise HdfsError(f"all replicas of {block.block_id} are missing")

    def _check_exists(self, path: str) -> None:
        if path not in self._namenode:
            raise HdfsError(f"path {path!r} does not exist")
