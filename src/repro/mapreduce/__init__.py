"""A from-scratch Map-Reduce engine modelling the Hadoop substrate.

The paper runs on Hadoop via Pig; this package provides the equivalent
execution substrate in pure Python:

* :mod:`repro.mapreduce.job` — job definitions (mapper/combiner/reducer/
  partitioner) over ``(key, value)`` records;
* :mod:`repro.mapreduce.runner` — a deterministic serial runner that also
  records a :class:`~repro.mapreduce.types.JobTrace` (task-level record and
  byte counts) for the cluster simulator;
* :mod:`repro.mapreduce.local` — a real multi-process runner;
* :mod:`repro.mapreduce.hdfs` — a block-based simulated HDFS with
  replication and locality metadata;
* :mod:`repro.mapreduce.simulator` / :mod:`~repro.mapreduce.costmodel` —
  the discrete-event cluster model used to regenerate Figure 2.
"""

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    FaultError,
    JobCancelledError,
    JobKilledError,
    ServiceError,
    ServiceOverloadedError,
    ServiceStoppedError,
    TaskFailedError,
)
from repro.mapreduce.types import JobConf, JobTrace, TaskTrace, stable_hash
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import MapReduceJob, identity_mapper, identity_reducer
from repro.mapreduce.shuffle import default_partitioner, shuffle
from repro.mapreduce.cancel import CancelScope, check_cancelled, current_scope
from repro.mapreduce.faults import (
    BlockBitRot,
    DatanodeDegrade,
    DatanodeKill,
    Fault,
    FaultPlan,
    JobCheckpoint,
    RetryPolicy,
)
from repro.mapreduce.runner import JobResult, SerialRunner
from repro.mapreduce.local import MultiprocessRunner
from repro.mapreduce.hdfs import BlockInfo, FileMeta, SimulatedHDFS
from repro.mapreduce.costmodel import HadoopCostModel, M1_LARGE_COST_MODEL
from repro.mapreduce.simulator import ClusterSpec, ClusterSimulator, SimReport
from repro.mapreduce.inputformat import FastaInputFormat, TextInputFormat
from repro.mapreduce.scheduler import (
    WorkloadJob,
    ScheduledJob,
    job_from_trace,
    simulate_schedule,
    mean_latency,
)
from repro.mapreduce.service import (
    CircuitBreaker,
    ClusterJobSpec,
    JobService,
    JobTicket,
    MapReduceSpec,
    failing_spec,
    fluid_prediction,
    sleep_spec,
)

__all__ = [
    "JobConf",
    "JobTrace",
    "TaskTrace",
    "stable_hash",
    "Counters",
    "Fault",
    "FaultPlan",
    "FaultError",
    "DatanodeKill",
    "DatanodeDegrade",
    "BlockBitRot",
    "RetryPolicy",
    "JobCheckpoint",
    "TaskFailedError",
    "JobKilledError",
    "CancelScope",
    "check_cancelled",
    "current_scope",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceStoppedError",
    "CircuitOpenError",
    "DeadlineExceededError",
    "JobCancelledError",
    "JobService",
    "JobTicket",
    "CircuitBreaker",
    "MapReduceSpec",
    "ClusterJobSpec",
    "sleep_spec",
    "failing_spec",
    "fluid_prediction",
    "MapReduceJob",
    "identity_mapper",
    "identity_reducer",
    "default_partitioner",
    "shuffle",
    "JobResult",
    "SerialRunner",
    "MultiprocessRunner",
    "BlockInfo",
    "FileMeta",
    "SimulatedHDFS",
    "HadoopCostModel",
    "M1_LARGE_COST_MODEL",
    "ClusterSpec",
    "ClusterSimulator",
    "SimReport",
    "FastaInputFormat",
    "TextInputFormat",
    "WorkloadJob",
    "ScheduledJob",
    "job_from_trace",
    "simulate_schedule",
    "mean_latency",
]
