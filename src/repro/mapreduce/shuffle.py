"""The shuffle: partitioning, sorting and grouping of map output.

This reproduces the Hadoop contract: every intermediate ``(k2, v2)`` pair
is routed to partition ``partitioner(k2, R)``; within each partition keys
arrive at the reducer in sorted order with all their values grouped.  Keys
must therefore be orderable within a job; mixed-type keys fall back to a
``(type-name, repr)`` ordering so the engine never crashes on heterogenous
keys (matching Hadoop's byte-comparator behaviour of "some total order").

Two implementations share that contract:

* :func:`shuffle` — the in-memory reference: one dict bucket per
  partition, grouped and sorted at the end.  Memory is linear in the
  shuffle volume, which is the wall the engine hits near ~1M reads.
* :class:`SpillingShuffle` — the external-memory sort-spill-merge path
  (Hadoop's MapOutputBuffer/IFile model): map output is buffered per
  partition up to ``spill_threshold_bytes``, each overflow is sorted and
  written to a CRC32-guarded temp segment file, and
  :class:`SpilledPartition` merge-iterates the sorted runs so reducers
  consume ``(key, values)`` groups lazily.  Output is byte-identical to
  :func:`shuffle` by construction: runs are sorted with the same
  natural-order fast path / ``_sort_key`` fallback, the k-way merge
  tie-breaks on run index (runs are created in arrival order, so group
  keys and value order reproduce dict insertion order exactly).
"""

from __future__ import annotations

import heapq
import io
import operator
import os
import pickle
import shutil
import struct
import tempfile
import zlib
from collections import defaultdict
from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import FaultError, MapReduceError
from repro.mapreduce.types import stable_hash
from repro.obs.trace import current_tracer


def default_partitioner(key: object, num_partitions: int) -> int:
    """Hash partitioner: ``stable_hash(key) % num_partitions``."""
    return stable_hash(key) % num_partitions


def _sort_key(key: object):
    return (type(key).__name__, repr(key))


def sort_grouped_keys(keys: Iterable[object]) -> list[object]:
    """Sort keys with a homogeneous fast path and a stable fallback."""
    keys = list(keys)
    try:
        return sorted(keys)
    except TypeError:
        return sorted(keys, key=_sort_key)


_first = operator.itemgetter(0)


def sort_run(records: Iterable[tuple]) -> tuple[list[tuple], bool]:
    """Stable-sort ``(key, value)`` records by key.

    Returns ``(sorted_records, natural)``: the same homogeneous fast path
    as :func:`sort_grouped_keys`, falling back to ``_sort_key`` when the
    keys are not mutually comparable (``natural=False``).  ``sorted`` is
    used (not in-place sort) so a mid-sort ``TypeError`` never leaves the
    caller's list half-permuted.
    """
    records = list(records)
    try:
        return sorted(records, key=_first), True
    except TypeError:
        return sorted(records, key=lambda kv: _sort_key(kv[0])), False


def sort_records(records: Iterable[tuple]) -> list[tuple]:
    """Sort ``(key, value)`` records by key, sharing the exact ordering
    rule of :func:`sort_grouped_keys` (natural order, ``_sort_key``
    fallback on mixed types).  The runners' ``conf.sort_output`` path
    routes through here so the two orderings cannot drift."""
    return sort_run(records)[0]


def shuffle(
    map_outputs: Iterable[Iterable[tuple]],
    num_partitions: int,
    partitioner=default_partitioner,
) -> tuple[list[list[tuple[object, list]]], int]:
    """Route map outputs into grouped, sorted reduce partitions.

    Parameters
    ----------
    map_outputs:
        One iterable of ``(k2, v2)`` pairs per map task.
    num_partitions:
        Number of reduce partitions ``R``.
    partitioner:
        ``(key, R) -> partition index`` in ``[0, R)``.

    Returns
    -------
    ``(partitions, shuffle_records)`` where ``partitions[r]`` is a list of
    ``(key, [values...])`` groups in sorted key order, and
    ``shuffle_records`` counts the intermediate pairs moved (the
    simulator converts this into network cost).
    """
    if num_partitions < 1:
        raise MapReduceError(f"num_partitions must be >= 1, got {num_partitions}")
    buckets: list[dict[object, list]] = [defaultdict(list) for _ in range(num_partitions)]
    moved = 0
    for task_output in map_outputs:
        for pair in task_output:
            try:
                key, value = pair
            except (TypeError, ValueError):
                raise MapReduceError(
                    f"map output record {pair!r} is not a (key, value) pair"
                ) from None
            part = partitioner(key, num_partitions)
            if not 0 <= part < num_partitions:
                raise MapReduceError(
                    f"partitioner returned {part} for key {key!r}; "
                    f"must be in [0, {num_partitions})"
                )
            buckets[part][key].append(value)
            moved += 1
    partitions: list[list[tuple[object, list]]] = []
    for bucket in buckets:
        ordered = sort_grouped_keys(bucket.keys())
        partitions.append([(k, bucket[k]) for k in ordered])
    return partitions, moved


def partition_num_records(partition) -> int:
    """Records held by one reduce partition, without materializing groups
    (works for both in-memory group lists and :class:`SpilledPartition`)."""
    if isinstance(partition, SpilledPartition):
        return partition.num_records
    return sum(len(values) for _, values in partition)


# ------------------------------------------------------------ spill format

# Segment file: fixed header + back-to-back pickled records.  The CRC32
# covers the record payload and is computed producer-side before any
# injected bit-rot strikes — the spill analogue of the wire frames'
# IFile-checksum model (repro.minhash.wire.SketchFrame).
SPILL_MAGIC = b"RSPL"
_SPILL_HEADER = struct.Struct("<4sIIQ")  # magic, crc32, num_records, payload_len


@dataclass
class SpillSegment:
    """One sorted run of one partition, spilled to disk."""

    path: str
    partition: int
    index: int  # spill sequence number within the partition
    num_records: int
    nbytes: int  # payload + header bytes on disk
    start_seq: int  # arrival-sequence offset of the run's first record
    natural: bool  # run sorted on the natural fast path


def _write_segment(path: str, payload: bytes, num_records: int, crc: int) -> int:
    header = _SPILL_HEADER.pack(SPILL_MAGIC, crc, num_records, len(payload))
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(header)
        fh.write(payload)
    os.replace(tmp, path)
    return len(header) + len(payload)


def _read_segment_header(fh) -> tuple[int, int, int]:
    header = fh.read(_SPILL_HEADER.size)
    if len(header) != _SPILL_HEADER.size:
        raise FaultError("spill segment truncated (short header)")
    magic, crc, num_records, payload_len = _SPILL_HEADER.unpack(header)
    if magic != SPILL_MAGIC:
        raise FaultError(f"bad spill segment magic {magic!r}")
    return crc, num_records, payload_len


def verify_segment(path: str) -> bool:
    """CRC-check one spill segment (streamed, constant memory)."""
    try:
        with open(path, "rb") as fh:
            crc, _num_records, payload_len = _read_segment_header(fh)
            seen = 0
            running = 0
            while True:
                chunk = fh.read(1 << 20)
                if not chunk:
                    break
                seen += len(chunk)
                running = zlib.crc32(chunk, running)
            return seen == payload_len and running == crc
    except (OSError, FaultError):
        return False


def _iter_segment_records(seg: SpillSegment):
    """Stream one segment's records (constant memory via Unpickler).

    Integrity was established by the driver-side verification pass in
    :meth:`SpillingShuffle.finish` — the reducer-side fetch moment — so a
    failure here means the file changed after verification and is
    surfaced as a :class:`FaultError` (the task attempt retries).
    """
    with open(seg.path, "rb") as fh:
        _crc, num_records, _payload_len = _read_segment_header(fh)
        for _ in range(num_records):
            try:
                # One Unpickler per record: each record was dumps()-ed
                # independently, so its memo indices start at zero — but a
                # reused Unpickler's memo persists across load() calls,
                # which skews GET resolution for any record whose pickle
                # holds an internal back-reference (e.g. the same interned
                # string appearing twice in one record).
                yield pickle.Unpickler(fh).load()
            except Exception as exc:  # truncated/bit-rotted after verify
                raise FaultError(
                    f"spill segment {seg.path} unreadable: {exc}"
                ) from exc


def _load_segment_records(seg: SpillSegment) -> list[tuple]:
    return list(_iter_segment_records(seg))


_END = object()


class SpilledPartition:
    """Lazy, re-iterable merged view of one reduce partition.

    Iterating yields ``(key, [values...])`` groups in the same order and
    with the same value order as the in-memory :func:`shuffle` — see the
    module docstring for why the merge reproduces dict insertion order.
    Re-iteration re-streams the segment files, so task attempt retries
    and speculative re-execution see identical input.  The object is
    picklable (paths + the in-memory tail), so the multiprocess runner
    can ship it to pool workers that share the filesystem.

    ``fallback=True`` switches the merge to ``_sort_key`` ordering — the
    mixed-type path.  Fallback runs are re-sorted in memory (bounded by
    the partition: correctness-first; real jobs have homogeneous keys and
    stay on the streaming natural merge).  One documented divergence from
    the dict-based path: keys of *different* types that compare equal
    (``1 == 1.0 == True``) collapse into one dict group in-memory but
    sort apart under ``_sort_key``; such keys also make partition hashes
    collide only by accident, and no engine job produces them.
    """

    def __init__(
        self,
        partition: int,
        segments: list[SpillSegment],
        tail: list[tuple],
        fallback: bool,
        num_records: int,
    ):
        self.partition = partition
        self.segments = segments
        self.tail = tail  # final in-memory run (arrival order = last)
        self.fallback = fallback
        self.num_records = num_records

    def _runs(self):
        if self.fallback:
            fallback_key = lambda kv: _sort_key(kv[0])  # noqa: E731
            runs = [
                sorted(_load_segment_records(seg), key=fallback_key)
                for seg in self.segments
            ]
            runs.append(sorted(self.tail, key=fallback_key))
            return runs, lambda key: _sort_key(key)
        runs = [_iter_segment_records(seg) for seg in self.segments]
        runs.append(iter(self.tail))
        return runs, lambda key: key

    def __iter__(self):
        runs, keyfn = self._runs()
        heap: list[tuple] = []
        iters = [iter(run) for run in runs]
        for ridx, it in enumerate(iters):
            rec = next(it, _END)
            if rec is not _END:
                heapq.heappush(heap, (keyfn(rec[0]), ridx, rec))
        group_key = _END
        values: list = []
        while heap:
            _hk, ridx, (key, value) = heapq.heappop(heap)
            rec = next(iters[ridx], _END)
            if rec is not _END:
                heapq.heappush(heap, (keyfn(rec[0]), ridx, rec))
            if group_key is _END:
                group_key, values = key, [value]
            elif key == group_key:
                values.append(value)
            else:
                yield group_key, values
                group_key, values = key, [value]
        if group_key is not _END:
            yield group_key, values


# --------------------------------------------------------- spilling shuffle


class SpillingShuffle:
    """External-memory shuffle: buffer, sort, spill, merge.

    Feed each map task's output through :meth:`add_task_output`; whenever
    a partition's buffer estimate reaches ``spill_threshold_bytes`` it is
    sorted and spilled to a CRC-guarded segment file
    (``spill_threshold_bytes=0`` spills every non-empty buffer — the
    spill-everything mode the equivalence tests lean on).  :meth:`finish`
    CRC-verifies every segment (re-spilling bit-rotted ones from the
    retained map output, mirroring the corrupted-partition retry) and
    returns lazily-merged :class:`SpilledPartition` views plus the moved
    record count — the same ``(partitions, shuffle_records)`` contract as
    :func:`shuffle`.  Call :meth:`close` (or use as a context manager)
    after the reduce phase to remove the spill directory.

    With a ``fault_plan`` whose ``spill_corrupt_rate`` is positive,
    segment writes suffer deterministic bit-rot (payload byte flipped
    after the clean CRC is computed); the verification pass in
    :meth:`finish` catches the mismatch, counts it under
    ``fault:spill_segments_corrupted`` and re-spills with an incremented
    write attempt.
    """

    def __init__(
        self,
        num_partitions: int,
        partitioner=default_partitioner,
        *,
        spill_threshold_bytes: int = 0,
        spill_dir: str | None = None,
        job_name: str = "job",
        fault_plan=None,
        counters=None,
        max_spill_attempts: int = 4,
    ):
        if num_partitions < 1:
            raise MapReduceError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        if spill_threshold_bytes < 0:
            raise MapReduceError(
                f"spill_threshold_bytes must be >= 0, got {spill_threshold_bytes}"
            )
        if max_spill_attempts < 1:
            raise MapReduceError(
                f"max_spill_attempts must be >= 1, got {max_spill_attempts}"
            )
        self.num_partitions = num_partitions
        self.partitioner = partitioner
        self.spill_threshold_bytes = spill_threshold_bytes
        self.job_name = job_name
        self.fault_plan = fault_plan
        self.counters = counters
        self.max_spill_attempts = max_spill_attempts
        self._spill_dir_base = spill_dir
        self._dir: str | None = None
        self._buffers: list[list[tuple]] = [[] for _ in range(num_partitions)]
        self._buffer_start = [0] * num_partitions  # arrival seq of buffer head
        self._seq = [0] * num_partitions  # records routed per partition
        self._segments: list[list[SpillSegment]] = [
            [] for _ in range(num_partitions)
        ]
        self._run_fallback = [False] * num_partitions  # a run needed _sort_key
        self._bounds: list[list[tuple]] = [[] for _ in range(num_partitions)]
        self._task_outputs: list = []  # retained for re-spill on bit-rot
        self._finished = False
        self._closed = False
        self.spill_segments = 0
        self.spill_bytes = 0
        self.spill_records = 0

    # ---- feeding ----------------------------------------------------------

    def add_task_output(self, records) -> None:
        """Route one map task's output; spill partitions over threshold."""
        if self._finished:
            raise MapReduceError("cannot add map output after finish()")
        self._task_outputs.append(records)
        touched = set()
        for pair in records:
            try:
                key, value = pair
            except (TypeError, ValueError):
                raise MapReduceError(
                    f"map output record {pair!r} is not a (key, value) pair"
                ) from None
            part = self.partitioner(key, self.num_partitions)
            if not 0 <= part < self.num_partitions:
                raise MapReduceError(
                    f"partitioner returned {part} for key {key!r}; "
                    f"must be in [0, {self.num_partitions})"
                )
            self._buffers[part].append((key, value))
            self._seq[part] += 1
            touched.add(part)
        for part in sorted(touched):
            buffer = self._buffers[part]
            if buffer and approx_records_bytes(buffer) >= self.spill_threshold_bytes:
                self._spill(part)

    # ---- spilling ---------------------------------------------------------

    def _spill_path(self, part: int, index: int) -> str:
        if self._dir is None:
            self._dir = tempfile.mkdtemp(
                prefix=f"repro-spill-{self.job_name}-", dir=self._spill_dir_base
            )
        return os.path.join(self._dir, f"p{part:04d}-s{index:06d}.seg")

    def _spill(self, part: int) -> None:
        buffer = self._buffers[part]
        records, natural = sort_run(buffer)
        if not natural:
            self._run_fallback[part] = True
        index = len(self._segments[part])
        start_seq = self._buffer_start[part]
        path = self._spill_path(part, index)
        with current_tracer().span(
            f"spill:p{part:04d}-s{index:06d}",
            kind="spill",
            partition=part,
            segment=index,
            records=len(records),
        ):
            nbytes = self._write_run(path, records, part, index, attempt=1)
        seg = SpillSegment(
            path=path,
            partition=part,
            index=index,
            num_records=len(records),
            nbytes=nbytes,
            start_seq=start_seq,
            natural=natural,
        )
        self._segments[part].append(seg)
        # First/last keys of the run feed the merge-order probe in finish().
        self._bounds[part].append((records[0][0], records[-1][0]))
        self._buffer_start[part] += len(records)
        self._buffers[part] = []
        self.spill_segments += 1
        self.spill_bytes += nbytes
        self.spill_records += len(records)
        if self.counters is not None:
            self.counters.increment("shuffle", "spill_segments")
            self.counters.increment("shuffle", "spill_bytes", nbytes)
            self.counters.increment("shuffle", "spill_records", len(records))

    def _write_run(
        self, path: str, records: list[tuple], part: int, index: int, attempt: int
    ) -> int:
        buf = io.BytesIO()
        for rec in records:
            try:
                buf.write(pickle.dumps(rec, protocol=pickle.HIGHEST_PROTOCOL))
            except Exception as exc:
                raise MapReduceError(
                    f"map output record {rec!r} is not picklable: {exc}"
                ) from exc
        payload = buf.getvalue()
        crc = zlib.crc32(payload)  # producer-side: computed on clean bytes
        if (
            self.fault_plan is not None
            and payload
            and getattr(self.fault_plan, "spill_corrupt_rate", 0.0) > 0.0
            and self.fault_plan.spill_fault_for(self.job_name, part, index, attempt)
        ):
            rotted = bytearray(payload)
            rotted[len(rotted) // 2] ^= 0xFF
            payload = bytes(rotted)
            if self.counters is not None:
                self.counters.increment("fault", "spill_segments_bitrotted")
        return _write_segment(path, payload, len(records), crc)

    # ---- finishing --------------------------------------------------------

    def finish(self) -> tuple[list[SpilledPartition], int]:
        """Verify all segments, then return the merged partition views.

        This is the reducer-side fetch barrier: every segment's CRC is
        checked here (streamed, constant memory) and bit-rotted segments
        are re-generated from the retained map output — so the lazy merge
        that follows only ever reads verified files.
        """
        if self._finished:
            raise MapReduceError("finish() already called")
        self._finished = True
        for part in range(self.num_partitions):
            for seg in self._segments[part]:
                self._verify_or_respill(seg)
        partitions = []
        for part in range(self.num_partitions):
            tail, natural = sort_run(self._buffers[part])
            self._buffers[part] = []
            fallback = self._run_fallback[part] or not natural
            if not fallback:
                # Natural runs can still be mutually incomparable (e.g.
                # one run all ints, another all strs): probe the run
                # boundary keys the way the in-memory path probes the
                # full key set, and fall back together with it.
                probe = [key for lo_hi in self._bounds[part] for key in lo_hi]
                if tail:
                    probe.extend((tail[0][0], tail[-1][0]))
                try:
                    sorted(probe)
                except TypeError:
                    fallback = True
            partitions.append(
                SpilledPartition(
                    partition=part,
                    segments=list(self._segments[part]),
                    tail=tail,
                    fallback=fallback,
                    num_records=self._seq[part],
                )
            )
        return partitions, sum(self._seq)

    def _verify_or_respill(self, seg: SpillSegment) -> None:
        attempt = 1
        while not verify_segment(seg.path):
            if self.counters is not None:
                self.counters.increment("fault", "spill_segments_corrupted")
                self.counters.increment("shuffle", "spill_respills")
            attempt += 1
            if attempt > self.max_spill_attempts:
                raise FaultError(
                    f"spill segment {seg.path} still corrupt after "
                    f"{self.max_spill_attempts} write attempts"
                )
            self._respill(seg, attempt)

    def _respill(self, seg: SpillSegment, attempt: int) -> None:
        """Regenerate one segment's run from the retained map output.

        The segment's ``start_seq`` names the contiguous arrival-sequence
        range it covered within its partition, so one replay pass over
        the task outputs recovers exactly those records in order — O(1)
        extra memory, like the corrupted-partition retry re-running one
        task rather than the job.
        """
        lo = seg.start_seq
        hi = seg.start_seq + seg.num_records
        records: list[tuple] = []
        seen = 0
        for task_output in self._task_outputs:
            for key, value in task_output:
                if self.partitioner(key, self.num_partitions) != seg.partition:
                    continue
                if lo <= seen < hi:
                    records.append((key, value))
                seen += 1
                if seen >= hi:
                    break
            if seen >= hi:
                break
        if len(records) != seg.num_records:  # pragma: no cover - invariant
            raise FaultError(
                f"re-spill of {seg.path} recovered {len(records)} records, "
                f"expected {seg.num_records}"
            )
        ordered, natural = sort_run(records)
        self._write_run(seg.path, ordered, seg.partition, seg.index, attempt)
        seg.natural = natural

    # ---- cleanup ----------------------------------------------------------

    def close(self) -> None:
        """Remove the spill directory (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None

    def __enter__(self) -> "SpillingShuffle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def approx_records_bytes(records) -> int:
    """Approximate serialized size of records (sampled for large inputs).

    The sampling stride is exact (at most 64 evenly spaced records), so
    equal inputs always produce equal byte estimates and spill decisions
    stay deterministic.  Only serialization failures are treated as "size
    unknown"; anything else propagates.
    """
    n = len(records)
    if n == 0:
        return 0
    stride = -(-n // 64)  # ceil(n / 64): at most 64 samples
    sample = list(records[::stride]) if stride > 1 else list(records)
    try:
        per = sum(
            len(pickle.dumps(r, protocol=pickle.HIGHEST_PROTOCOL)) for r in sample
        )
    except (pickle.PicklingError, TypeError, AttributeError):
        return 0
    return int(per / len(sample) * n)
