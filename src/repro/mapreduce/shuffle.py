"""The shuffle: partitioning, sorting and grouping of map output.

This reproduces the Hadoop contract: every intermediate ``(k2, v2)`` pair
is routed to partition ``partitioner(k2, R)``; within each partition keys
arrive at the reducer in sorted order with all their values grouped.  Keys
must therefore be orderable within a job; mixed-type keys fall back to a
``(type-name, repr)`` ordering so the engine never crashes on heterogenous
keys (matching Hadoop's byte-comparator behaviour of "some total order").
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

from repro.errors import MapReduceError
from repro.mapreduce.types import stable_hash


def default_partitioner(key: object, num_partitions: int) -> int:
    """Hash partitioner: ``stable_hash(key) % num_partitions``."""
    return stable_hash(key) % num_partitions


def _sort_key(key: object):
    return (type(key).__name__, repr(key))


def sort_grouped_keys(keys: Iterable[object]) -> list[object]:
    """Sort keys with a homogeneous fast path and a stable fallback."""
    keys = list(keys)
    try:
        return sorted(keys)
    except TypeError:
        return sorted(keys, key=_sort_key)


def shuffle(
    map_outputs: Iterable[Iterable[tuple]],
    num_partitions: int,
    partitioner=default_partitioner,
) -> tuple[list[list[tuple[object, list]]], int]:
    """Route map outputs into grouped, sorted reduce partitions.

    Parameters
    ----------
    map_outputs:
        One iterable of ``(k2, v2)`` pairs per map task.
    num_partitions:
        Number of reduce partitions ``R``.
    partitioner:
        ``(key, R) -> partition index`` in ``[0, R)``.

    Returns
    -------
    ``(partitions, shuffle_records)`` where ``partitions[r]`` is a list of
    ``(key, [values...])`` groups in sorted key order, and
    ``shuffle_records`` counts the intermediate pairs moved (the
    simulator converts this into network cost).
    """
    if num_partitions < 1:
        raise MapReduceError(f"num_partitions must be >= 1, got {num_partitions}")
    buckets: list[dict[object, list]] = [defaultdict(list) for _ in range(num_partitions)]
    moved = 0
    for task_output in map_outputs:
        for pair in task_output:
            try:
                key, value = pair
            except (TypeError, ValueError):
                raise MapReduceError(
                    f"map output record {pair!r} is not a (key, value) pair"
                ) from None
            part = partitioner(key, num_partitions)
            if not 0 <= part < num_partitions:
                raise MapReduceError(
                    f"partitioner returned {part} for key {key!r}; "
                    f"must be in [0, {num_partitions})"
                )
            buckets[part][key].append(value)
            moved += 1
    partitions: list[list[tuple[object, list]]] = []
    for bucket in buckets:
        ordered = sort_grouped_keys(bucket.keys())
        partitions.append([(k, bucket[k]) for k in ordered])
    return partitions, moved
