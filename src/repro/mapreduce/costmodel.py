"""Hadoop cluster cost model.

Converts the *measured work* of a job (its
:class:`~repro.mapreduce.types.JobTrace`) into the wall-clock durations the
discrete-event simulator schedules.  Constants default to values
representative of the Hadoop-1 / Amazon EMR "M1 Large" era the paper used
(Section IV-C): multi-second JVM/job startup, ~1 s task launch, and
spinning-disk/1-GbE I/O rates.  The two per-record constants
(``map_cost_per_record_s`` and ``pair_cost_s``) can be calibrated from
real single-process measurements of the actual kernels via
:func:`calibrate`, which is what the Figure 2 driver does.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import SimulationError
from repro.mapreduce.types import JobTrace, TaskTrace


@dataclass(frozen=True)
class HadoopCostModel:
    """Timing constants for one cluster node class.

    Attributes
    ----------
    job_startup_s:
        Fixed per-job overhead (job submission, JVM spin-up, scheduling).
        This is the term that makes small inputs insensitive to node count
        in Figure 2.
    task_launch_s:
        Per-task overhead (task JVM start, heartbeat latency).
    map_cost_per_record_s / reduce_cost_per_record_s:
        CPU cost per input record in map/reduce tasks.
    pair_cost_s:
        CPU cost per sequence *pair* in the all-pairs similarity job (the
        quadratic term that dominates the hierarchical pipeline).
    hdfs_read_bw / shuffle_bw:
        Bytes/second per node for block reads and shuffle fetches.
    nonlocal_penalty:
        Multiplier on block-read time when a map task is not node-local.
    cpu_scale:
        Multiplier applied to *measured* ``cpu_seconds`` in traces (how
        much slower/faster the modeled node is than the measuring host).
    """

    job_startup_s: float = 18.0
    task_launch_s: float = 1.2
    map_cost_per_record_s: float = 2.0e-4
    reduce_cost_per_record_s: float = 1.0e-4
    pair_cost_s: float = 4.0e-7
    hdfs_read_bw: float = 60e6
    shuffle_bw: float = 30e6
    nonlocal_penalty: float = 1.5
    cpu_scale: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "job_startup_s",
            "task_launch_s",
            "map_cost_per_record_s",
            "reduce_cost_per_record_s",
            "pair_cost_s",
            "nonlocal_penalty",
            "cpu_scale",
        ):
            if getattr(self, name) < 0:
                raise SimulationError(f"{name} must be non-negative")
        for name in ("hdfs_read_bw", "shuffle_bw"):
            if getattr(self, name) <= 0:
                raise SimulationError(f"{name} must be positive")

    # ---- per-task durations -------------------------------------------------

    def task_duration(self, task: TaskTrace, *, local: bool = True) -> float:
        """Wall-clock for one task on a modeled node.

        Prefers measured CPU seconds (scaled by ``cpu_scale``) when the
        trace carries them; falls back to the per-record constants for
        synthetic traces.
        """
        if task.cpu_seconds > 0:
            compute = task.cpu_seconds * self.cpu_scale
        elif task.kind == "map":
            compute = task.records_in * self.map_cost_per_record_s
        else:
            compute = task.records_in * self.reduce_cost_per_record_s
        io = task.bytes_in / self.hdfs_read_bw
        if task.kind == "map" and not local:
            io *= self.nonlocal_penalty
        return self.task_launch_s + compute + io

    def shuffle_duration(self, trace: JobTrace, num_nodes: int) -> float:
        """Time for all reducers to fetch the intermediate data.

        Shuffle parallelises across nodes: aggregate bandwidth is
        ``num_nodes * shuffle_bw``.
        """
        if num_nodes < 1:
            raise SimulationError(f"num_nodes must be >= 1, got {num_nodes}")
        return trace.shuffle_bytes / (self.shuffle_bw * num_nodes)

    def with_calibration(
        self,
        *,
        map_cost_per_record_s: float | None = None,
        pair_cost_s: float | None = None,
        cpu_scale: float | None = None,
    ) -> "HadoopCostModel":
        """Copy of this model with measured constants substituted."""
        kwargs = {}
        if map_cost_per_record_s is not None:
            kwargs["map_cost_per_record_s"] = map_cost_per_record_s
        if pair_cost_s is not None:
            kwargs["pair_cost_s"] = pair_cost_s
        if cpu_scale is not None:
            kwargs["cpu_scale"] = cpu_scale
        return replace(self, **kwargs)


#: Constants matching the paper's node type: EMR "M1 Large" (7.5 GiB RAM,
#: 4 EC2 compute units, 850 GB local disk) on Hadoop 1.x.
M1_LARGE_COST_MODEL = HadoopCostModel()


def calibrate(
    *,
    sketch_seconds: float,
    sketch_records: int,
    pair_seconds: float,
    pair_count: int,
    base: HadoopCostModel = M1_LARGE_COST_MODEL,
) -> HadoopCostModel:
    """Build a cost model from real measurements of the two kernels.

    Parameters
    ----------
    sketch_seconds / sketch_records:
        Wall-clock and record count of a real sketching run.
    pair_seconds / pair_count:
        Wall-clock and pair count of a real similarity-matrix run.
    """
    if sketch_records < 1 or pair_count < 1:
        raise SimulationError("calibration needs at least one record and one pair")
    if sketch_seconds < 0 or pair_seconds < 0:
        raise SimulationError("calibration durations must be non-negative")
    return base.with_calibration(
        map_cost_per_record_s=sketch_seconds / sketch_records,
        pair_cost_s=pair_seconds / pair_count,
    )
