"""Deterministic fault injection and recovery for the Map-Reduce engine.

The paper's Hadoop substrate owes its practicality to fault tolerance:
task re-execution and speculative attempts are what make Map-Reduce viable
on commodity clusters.  This module supplies both halves for our real
execution backends:

* **Injection** — a :class:`FaultPlan` decides, deterministically from a
  seed (or an explicit schedule), whether a given task attempt crashes,
  hangs past its deadline, or returns a corrupted shuffle partition, and
  whether HDFS datanodes die at job barriers.  The same plan always
  injects the same faults, so chaos tests are reproducible bit-for-bit.
* **Recovery** — a :class:`RetryPolicy` (usually derived from
  :class:`~repro.mapreduce.types.JobConf`) drives per-task retry with
  exponential backoff, timeout-based attempt abandonment and speculative
  backup attempts; :class:`JobCheckpoint` persists completed task outputs
  so a killed job resumes from the last barrier instead of starting over.

Corruption is *detected*, not assumed: every attempt ships a CRC32 of its
output computed at production time, and the runner verifies it on receipt
(the in-memory analogue of Hadoop's IFile checksums).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
import zlib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.errors import FaultError, JobKilledError, MapReduceError

FAULT_KINDS = ("crash", "hang", "corrupt", "slow_node")
BARRIERS = ("job_start", "map_end", "job_end")


@dataclass(frozen=True)
class Fault:
    """One injected fault: what happens to a single task attempt.

    ``slow_node`` models a degraded machine rather than a failure: the
    attempt is delayed by ``delay`` seconds but always completes and is
    never abandoned or speculated against — pure added latency, the kind
    of fault deadlines and admission control exist to absorb.
    """

    kind: str  # "crash" | "hang" | "corrupt" | "slow_node"
    delay: float = 0.0  # added seconds (kind == "hang" or "slow_node")
    reason: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise MapReduceError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.delay < 0:
            raise MapReduceError(f"fault delay must be >= 0, got {self.delay}")


@dataclass(frozen=True)
class DatanodeKill:
    """Kill one HDFS datanode when the job reaches ``barrier``."""

    barrier: str  # "job_start" | "map_end" | "job_end"
    node_id: int

    def __post_init__(self) -> None:
        if self.barrier not in BARRIERS:
            raise MapReduceError(
                f"unknown barrier {self.barrier!r}; expected one of {BARRIERS}"
            )


@dataclass(frozen=True)
class DatanodeDegrade:
    """Degrade one HDFS datanode at ``barrier``: it stays alive but reads
    prefer healthy replicas (the slow-disk / overloaded-node case)."""

    barrier: str
    node_id: int

    def __post_init__(self) -> None:
        if self.barrier not in BARRIERS:
            raise MapReduceError(
                f"unknown barrier {self.barrier!r}; expected one of {BARRIERS}"
            )


@dataclass(frozen=True)
class BlockBitRot:
    """Silently corrupt one stored replica at ``barrier``.

    ``block_index`` selects the ``index``-th block id (sorted) held by
    ``node_id``; the replica's bytes are flipped in place, so only the
    per-block CRC32 check in :class:`~repro.mapreduce.hdfs.SimulatedHDFS`
    can tell — the bit-rot analogue of HDFS's block scanner workload.
    """

    barrier: str
    node_id: int
    block_index: int = 0

    def __post_init__(self) -> None:
        if self.barrier not in BARRIERS:
            raise MapReduceError(
                f"unknown barrier {self.barrier!r}; expected one of {BARRIERS}"
            )
        if self.block_index < 0:
            raise MapReduceError(
                f"block_index must be >= 0, got {self.block_index}"
            )


@dataclass(frozen=True)
class RetryPolicy:
    """Recovery knobs for one job (normally read off ``JobConf``).

    ``speculative_margin`` is the Hadoop-style multiplier: a running task
    becomes a speculation candidate once its runtime exceeds
    ``margin x median(completed task durations)``.  ``0`` disables
    speculation.  Backoff between attempts is exponential:
    ``backoff * 2**(attempt-1)`` seconds, capped at ``backoff_cap``.

    ``jitter`` in ``(0, 1]`` spreads that delay over
    ``[(1-jitter)*d, d)`` using a seeded uniform draw (full jitter at
    ``jitter=1``), so a fleet of jobs failing together does not retry in
    lockstep and re-create the overload that failed them.  The draw is a
    pure function of ``(seed, attempt)`` — same seed, same delays — and
    the default ``jitter=0.0`` keeps the historical deterministic
    schedule byte-identical.
    """

    max_attempts: int = 1
    timeout: float | None = None
    speculative_margin: float = 0.0
    backoff: float = 0.0
    backoff_cap: float = 1.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise MapReduceError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise MapReduceError(f"timeout must be positive, got {self.timeout}")
        if self.speculative_margin < 0:
            raise MapReduceError(
                f"speculative_margin must be >= 0, got {self.speculative_margin}"
            )
        if self.backoff < 0:
            raise MapReduceError(f"backoff must be >= 0, got {self.backoff}")
        if not 0.0 <= self.jitter <= 1.0:
            raise MapReduceError(f"jitter must be in [0,1], got {self.jitter}")

    @classmethod
    def from_conf(cls, conf) -> "RetryPolicy":
        """Policy implied by a :class:`~repro.mapreduce.types.JobConf`."""
        return cls(
            max_attempts=conf.max_task_attempts,
            timeout=conf.task_timeout,
            speculative_margin=conf.speculative_margin,
            backoff=conf.retry_backoff,
        )

    def backoff_delay(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based failed attempt)."""
        if self.backoff <= 0:
            return 0.0
        delay = min(self.backoff_cap, self.backoff * (2.0 ** (attempt - 1)))
        if self.jitter <= 0:
            return delay
        token = f"{self.seed}|backoff-jitter|{attempt}".encode()
        draw = int.from_bytes(hashlib.sha256(token).digest()[:8], "big") / 2**64
        return delay * (1.0 - self.jitter) + delay * self.jitter * draw


def records_checksum(records: Sequence[tuple]) -> int:
    """CRC32 of the pickled records — the shuffle's integrity check."""
    try:
        payload = pickle.dumps(list(records), protocol=pickle.HIGHEST_PROTOCOL)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        raise FaultError(f"task output is not picklable: {exc}") from exc
    return zlib.crc32(payload)


class _CorruptRecord:
    """Sentinel standing in for bytes mangled in transit (never a valid
    ``(key, value)`` pair, so it also trips record validation)."""

    __slots__ = ("origin",)

    def __init__(self, origin: str):
        self.origin = origin

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<corrupt record from {self.origin}>"


class FaultPlan:
    """Seeded, deterministic fault schedule for a whole pipeline.

    Decisions are pure functions of ``(seed, job, kind, index, attempt)``:
    a SHA-256-based hash is mapped to a uniform draw in ``[0, 1)`` and
    compared against the configured rates, so the same plan replayed
    against the same pipeline injects exactly the same faults — including
    across the worker processes of the multiprocess runner (the plan is
    picklable).  An explicit ``schedule`` mapping
    ``(job, kind, index, attempt) -> Fault`` overrides the rate draws.

    Parameters
    ----------
    seed:
        Determinism seed for the rate draws.
    mapper_crash_rate, reducer_crash_rate:
        Probability that a map / reduce task attempt raises.
    hang_rate:
        Probability that an attempt stalls for ``hang_delay`` seconds.
    corrupt_rate:
        Probability that an attempt's output partition is corrupted in
        transit (detected by checksum, triggering a retry).
    slow_node_rate:
        Probability that an attempt lands on a degraded node and is
        delayed by ``slow_node_delay`` seconds.  Unlike a hang, a slow
        attempt always completes — it eats latency budget, not attempts.
    spill_corrupt_rate:
        Probability that one spill segment write of the external shuffle
        suffers bit-rot on disk (a payload byte flipped after the clean
        CRC32 is computed).  The shuffle's verification pass detects the
        mismatch and re-spills the segment from the retained map output —
        the spill-file analogue of the corrupted-partition retry.
    max_faulted_attempts:
        When set, rate-based faults are only injected on attempts
        ``<= max_faulted_attempts`` — guarantees convergence within a known
        attempt budget (explicit ``schedule`` entries are not capped).
    datanode_kills:
        :class:`DatanodeKill` events fired at job barriers once
        :meth:`bind_hdfs` has attached a cluster.
    datanode_degrades:
        :class:`DatanodeDegrade` events: the node survives but reads
        route around it (health-aware replica selection).
    block_bitrot:
        :class:`BlockBitRot` events: a stored replica's bytes are
        silently flipped; only the HDFS per-block CRC32 check catches it
        (failover + quarantine, visible in ``fsck()``).
    auto_rereplicate:
        Run the namenode's block recovery right after each kill, as a
        healthy cluster would (the job then completes via re-replication).
    kill_job_after_tasks:
        Simulated driver death: raise
        :class:`~repro.errors.JobKilledError` once this many tasks have
        completed.  Pair with a :class:`JobCheckpoint` to test resume.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        mapper_crash_rate: float = 0.0,
        reducer_crash_rate: float = 0.0,
        hang_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        slow_node_rate: float = 0.0,
        spill_corrupt_rate: float = 0.0,
        hang_delay: float = 0.05,
        slow_node_delay: float = 0.02,
        max_faulted_attempts: int | None = None,
        schedule: Mapping[tuple, Fault] | None = None,
        datanode_kills: Sequence[DatanodeKill] = (),
        datanode_degrades: Sequence[DatanodeDegrade] = (),
        block_bitrot: Sequence[BlockBitRot] = (),
        auto_rereplicate: bool = True,
        kill_job_after_tasks: int | None = None,
    ):
        for name, rate in (
            ("mapper_crash_rate", mapper_crash_rate),
            ("reducer_crash_rate", reducer_crash_rate),
            ("hang_rate", hang_rate),
            ("corrupt_rate", corrupt_rate),
            ("slow_node_rate", slow_node_rate),
            ("spill_corrupt_rate", spill_corrupt_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise MapReduceError(f"{name} must be in [0,1], got {rate}")
        if hang_delay < 0:
            raise MapReduceError(f"hang_delay must be >= 0, got {hang_delay}")
        if slow_node_delay < 0:
            raise MapReduceError(
                f"slow_node_delay must be >= 0, got {slow_node_delay}"
            )
        if max_faulted_attempts is not None and max_faulted_attempts < 0:
            raise MapReduceError(
                f"max_faulted_attempts must be >= 0, got {max_faulted_attempts}"
            )
        if kill_job_after_tasks is not None and kill_job_after_tasks < 1:
            raise MapReduceError(
                f"kill_job_after_tasks must be >= 1, got {kill_job_after_tasks}"
            )
        self.seed = seed
        self.mapper_crash_rate = mapper_crash_rate
        self.reducer_crash_rate = reducer_crash_rate
        self.hang_rate = hang_rate
        self.corrupt_rate = corrupt_rate
        self.slow_node_rate = slow_node_rate
        self.spill_corrupt_rate = spill_corrupt_rate
        self.hang_delay = hang_delay
        self.slow_node_delay = slow_node_delay
        self.max_faulted_attempts = max_faulted_attempts
        self.schedule = dict(schedule or {})
        for key, fault in self.schedule.items():
            if not isinstance(fault, Fault):
                raise MapReduceError(
                    f"schedule entry {key!r} maps to {fault!r}; expected a Fault"
                )
        self.datanode_kills = tuple(datanode_kills)
        self.datanode_degrades = tuple(datanode_degrades)
        self.block_bitrot = tuple(block_bitrot)
        self.auto_rereplicate = auto_rereplicate
        self.kill_job_after_tasks = kill_job_after_tasks
        # Driver-side mutable state; never shipped to workers (__getstate__).
        self._hdfs = None
        self._fired_kills: set[int] = set()
        self._fired_degrades: set[int] = set()
        self._fired_bitrot: set[int] = set()
        self._completed_tasks = 0

    # ---- determinism core -------------------------------------------------

    def _draw(self, salt: str, job: str, kind: str, index: int, attempt: int) -> float:
        # SHA-256, not CRC32: draws for adjacent (index, attempt) tokens
        # must be independent, and CRC's linearity correlates them badly.
        token = f"{self.seed}|{salt}|{job}|{kind}|{index}|{attempt}".encode()
        digest = hashlib.sha256(token).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def fault_for(self, job: str, kind: str, index: int, attempt: int) -> Fault | None:
        """The fault injected into one task attempt, or None.

        ``kind`` is ``"map"`` or ``"reduce"``; ``index`` the task index
        within its phase; ``attempt`` is 1-based.
        """
        explicit = self.schedule.get((job, kind, index, attempt))
        if explicit is not None:
            return explicit
        if (
            self.max_faulted_attempts is not None
            and attempt > self.max_faulted_attempts
        ):
            return None
        crash_rate = self.mapper_crash_rate if kind == "map" else self.reducer_crash_rate
        if self._draw("crash", job, kind, index, attempt) < crash_rate:
            return Fault(kind="crash", reason="injected crash")
        if self._draw("hang", job, kind, index, attempt) < self.hang_rate:
            return Fault(kind="hang", delay=self.hang_delay, reason="injected hang")
        if self._draw("corrupt", job, kind, index, attempt) < self.corrupt_rate:
            return Fault(kind="corrupt", reason="injected corruption")
        if self._draw("slow", job, kind, index, attempt) < self.slow_node_rate:
            return Fault(
                kind="slow_node",
                delay=self.slow_node_delay,
                reason="attempt scheduled on a degraded node",
            )
        return None

    def spill_fault_for(
        self, job: str, partition: int, segment: int, attempt: int
    ) -> bool:
        """Whether one spill segment write suffers bit-rot.

        ``partition``/``segment`` address the segment within the job's
        external shuffle; ``attempt`` is the 1-based write attempt (a
        re-spill after a detected mismatch draws fresh, so repaired
        segments converge under ``max_faulted_attempts``).
        """
        if (
            self.max_faulted_attempts is not None
            and attempt > self.max_faulted_attempts
        ):
            return False
        draw = self._draw(f"spill-bitrot|{partition}", job, "spill", segment, attempt)
        return draw < self.spill_corrupt_rate

    # ---- injection helpers ------------------------------------------------

    @staticmethod
    def raise_crash(fault: Fault, task_id: str, attempt: int) -> None:
        raise FaultError(
            fault.reason or "injected crash", task_id=task_id, attempt=attempt
        )

    @staticmethod
    def corrupt_records(records: list[tuple], origin: str) -> list[tuple]:
        """Deterministically mangle a task's output partition in transit."""
        corrupted = list(records)
        marker = _CorruptRecord(origin)
        if corrupted:
            corrupted[len(corrupted) // 2] = marker
        else:
            corrupted.append(marker)
        return corrupted

    # ---- datanode kills and driver death ----------------------------------

    def bind_hdfs(self, hdfs) -> "FaultPlan":
        """Attach the HDFS cluster the datanode kills act on."""
        self._hdfs = hdfs
        return self

    def trigger_barrier(self, barrier: str, counters=None) -> int:
        """Fire pending barrier events (kills, degrades, bit-rot) for
        ``barrier``; returns the number of events fired."""
        if barrier not in BARRIERS:
            raise MapReduceError(
                f"unknown barrier {barrier!r}; expected one of {BARRIERS}"
            )
        fired = 0
        for i, kill in enumerate(self.datanode_kills):
            if kill.barrier != barrier or i in self._fired_kills:
                continue
            self._fired_kills.add(i)
            if self._hdfs is None:
                continue  # no cluster bound: the kill has nothing to act on
            self._hdfs.fail_datanode(kill.node_id)
            fired += 1
            if counters is not None:
                counters.increment("fault", "datanodes_killed")
            if self.auto_rereplicate:
                created = self._hdfs.rereplicate()
                if counters is not None:
                    counters.increment("fault", "replicas_recreated", created)
        for i, degrade in enumerate(self.datanode_degrades):
            if degrade.barrier != barrier or i in self._fired_degrades:
                continue
            self._fired_degrades.add(i)
            if self._hdfs is None:
                continue
            self._hdfs.degrade_datanode(degrade.node_id)
            fired += 1
            if counters is not None:
                counters.increment("fault", "datanodes_degraded")
        for i, rot in enumerate(self.block_bitrot):
            if rot.barrier != barrier or i in self._fired_bitrot:
                continue
            self._fired_bitrot.add(i)
            if self._hdfs is None:
                continue
            block_id = self._hdfs.corrupt_replica(rot.node_id, rot.block_index)
            if block_id is not None:
                fired += 1
                if counters is not None:
                    counters.increment("fault", "blocks_bitrotted")
        return fired

    def note_task_complete(self) -> None:
        """Driver-side hook: kill the whole job once N tasks have completed
        (the N-th task's output is already durable in the checkpoint)."""
        self._completed_tasks += 1
        if (
            self.kill_job_after_tasks is not None
            and self._completed_tasks >= self.kill_job_after_tasks
        ):
            raise JobKilledError(
                f"job killed after {self.kill_job_after_tasks} completed task(s)"
            )

    def reset(self) -> "FaultPlan":
        """Clear driver-side progress state (for replaying the same plan)."""
        self._fired_kills = set()
        self._fired_degrades = set()
        self._fired_bitrot = set()
        self._completed_tasks = 0
        return self

    # ---- pickling (workers get the decision function, not driver state) ----

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_hdfs"] = None
        state["_fired_kills"] = set()
        state["_fired_degrades"] = set()
        state["_fired_bitrot"] = set()
        state["_completed_tasks"] = 0
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(seed={self.seed}, crash=({self.mapper_crash_rate},"
            f" {self.reducer_crash_rate}), hang={self.hang_rate},"
            f" corrupt={self.corrupt_rate}, slow={self.slow_node_rate},"
            f" spill={self.spill_corrupt_rate},"
            f" kills={len(self.datanode_kills)},"
            f" scheduled={len(self.schedule)})"
        )


class JobCheckpoint:
    """Filesystem-backed store of completed task outputs.

    One pickle file per task attempt that won, written atomically
    (tmp + rename).  Task ids embed the job name, so one checkpoint
    directory safely covers a whole ``run_chain`` pipeline.  A job killed
    mid-run re-executes only the tasks with no checkpoint entry; recovered
    tasks are marked in the trace and counted under
    ``fault:tasks_recovered_from_checkpoint``.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, task_id: str) -> str:
        safe = task_id.replace(os.sep, "_")
        return os.path.join(self.directory, f"{safe}.ckpt")

    def has(self, task_id: str) -> bool:
        return os.path.exists(self._path(task_id))

    def save(self, task_id: str, payload: object) -> None:
        """Persist one completed task's payload atomically."""
        path = self._path(task_id)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def load(self, task_id: str) -> object:
        with open(self._path(task_id), "rb") as fh:
            return pickle.load(fh)

    def task_ids(self) -> list[str]:
        """Checkpointed task ids, sorted."""
        return sorted(
            name[: -len(".ckpt")]
            for name in os.listdir(self.directory)
            if name.endswith(".ckpt")
        )

    def clear(self) -> None:
        """Drop every checkpoint entry (call after the job commits)."""
        for name in os.listdir(self.directory):
            if name.endswith((".ckpt", ".tmp")):
                os.unlink(os.path.join(self.directory, name))
