"""Synthetic job-trace construction for the MrMC-MinH pipeline.

Figure 2 sweeps input sizes up to 10 million reads — far beyond what we
re-execute for every point of the sweep.  Instead, this module builds the
*task DAG the real pipeline would produce* for a given input size (block
counts, records per task, pair counts per similarity band, shuffle bytes)
and hands it to the discrete-event simulator.  Per-record costs come from
real calibration runs (see :func:`repro.mapreduce.costmodel.calibrate`),
so the only modeled quantity is distributed wall-clock, exactly as stated
in DESIGN.md substitution #1.

The modeled pipeline mirrors Algorithm 3 / Figure 1:

1. ``sketch`` job — load FASTA blocks, encode, k-merize, min-hash.  One
   map task per HDFS block; a light identity reduce collects sketches.
2. ``similarity`` job — all-pairs estimated Jaccard, row-partitioned:
   each map task owns a band of rows and computes ``band_rows x N`` pair
   similarities (hierarchical variant only).
3. ``cluster`` job — a single reduce-side agglomeration (hierarchical) or
   greedy scan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.mapreduce.hdfs import DEFAULT_BLOCK_SIZE
from repro.mapreduce.types import JobTrace, TaskTrace


@dataclass(frozen=True)
class PipelineWorkload:
    """Input-size description of one MrMC-MinH run.

    Attributes
    ----------
    num_reads:
        Number of input sequences ``N``.
    read_length:
        Mean read length in bp (drives FASTA byte size -> block count).
    num_hashes:
        Sketch width ``n`` (drives sketch bytes -> shuffle volume).
    row_band:
        Rows per similarity map task (the row-wise partition grain).
    hierarchical:
        Include the quadratic all-pairs job (MrMC-MinH^h) or not
        (MrMC-MinH^g, whose greedy scan is modeled as a single task with
        expected ``N * sqrt(N)``-ish comparisons — see note below).
    sparse_similarity:
        Score only min-hash *collision candidates* instead of all N²
        pairs.  At paper scale the dense interpretation is untenable —
        Table III's own timings (50 k reads, all-pairs, ~4 min on 8
        nodes) imply the similarity job touches far fewer than N² pairs,
        which is exactly what grouping records by (hash index, value) on
        Map-Reduce yields.  ``candidates_per_row`` bounds the candidate
        set per sequence in that mode.
    """

    num_reads: int
    read_length: int = 1000
    num_hashes: int = 100
    block_size: int = DEFAULT_BLOCK_SIZE
    row_band: int = 2000
    hierarchical: bool = True
    sparse_similarity: bool = False
    candidates_per_row: int = 2000

    def __post_init__(self) -> None:
        if self.num_reads < 1:
            raise SimulationError(f"num_reads must be >= 1, got {self.num_reads}")
        if self.read_length < 1:
            raise SimulationError("read_length must be >= 1")
        if self.num_hashes < 1:
            raise SimulationError("num_hashes must be >= 1")
        if self.block_size < 1:
            raise SimulationError("block_size must be >= 1")
        if self.row_band < 1:
            raise SimulationError("row_band must be >= 1")
        if self.candidates_per_row < 1:
            raise SimulationError("candidates_per_row must be >= 1")

    @property
    def fasta_bytes(self) -> int:
        # header (~12 B) + sequence + newlines.
        return self.num_reads * (self.read_length + 14)

    @property
    def num_blocks(self) -> int:
        return max(1, -(-self.fasta_bytes // self.block_size))

    @property
    def sketch_bytes(self) -> int:
        # 8 bytes per int64 sketch component plus a small id.
        return self.num_reads * (8 * self.num_hashes + 16)

    @property
    def total_pairs(self) -> int:
        if self.sparse_similarity:
            return self.num_reads * min(self.num_reads - 1, self.candidates_per_row)
        return self.num_reads * (self.num_reads - 1) // 2

    def pairs_for_rows(self, start: int, stop: int) -> int:
        """Pair count owned by the row band [start, stop)."""
        if self.sparse_similarity:
            per_row = min(self.num_reads - 1, self.candidates_per_row)
            return (stop - start) * per_row
        return sum(self.num_reads - r - 1 for r in range(start, stop))


def build_pipeline_traces(
    workload: PipelineWorkload,
    *,
    map_cost_per_record_s: float,
    pair_cost_s: float,
    reduce_cost_per_record_s: float = 1.0e-5,
) -> list[JobTrace]:
    """Synthesize the job traces the pipeline would record at this size.

    ``map_cost_per_record_s`` is the measured per-read sketching cost and
    ``pair_cost_s`` the measured per-pair similarity cost (both from
    :func:`repro.mapreduce.costmodel.calibrate`-style measurements).
    Synthetic traces carry ``cpu_seconds`` so the simulator uses these
    calibrated values rather than its defaults.
    """
    w = workload
    traces: list[JobTrace] = []

    # ---- job 1: sketch ----------------------------------------------------
    sketch = JobTrace(job_name="sketch")
    reads_left = w.num_reads
    per_block = -(-w.num_reads // w.num_blocks)
    for b in range(w.num_blocks):
        records = min(per_block, reads_left)
        reads_left -= records
        if records <= 0:
            break
        sketch.map_tasks.append(
            TaskTrace(
                task_id=f"sketch-m{b:05d}",
                kind="map",
                records_in=records,
                records_out=records,
                bytes_in=min(w.block_size, w.fasta_bytes - b * w.block_size),
                bytes_out=records * (8 * w.num_hashes + 16),
                cpu_seconds=records * map_cost_per_record_s,
            )
        )
    sketch.reduce_tasks.append(
        TaskTrace(
            task_id="sketch-r0000",
            kind="reduce",
            records_in=w.num_reads,
            records_out=w.num_reads,
            bytes_out=w.sketch_bytes,
            cpu_seconds=w.num_reads * reduce_cost_per_record_s,
        )
    )
    sketch.shuffle_bytes = w.sketch_bytes
    traces.append(sketch)

    if w.hierarchical:
        # ---- job 2: all-pairs similarity, row-banded ---------------------
        sim = JobTrace(job_name="similarity")
        n = w.num_reads
        start = 0
        band_index = 0
        while start < n:
            stop = min(start + w.row_band, n)
            rows = stop - start
            pairs = w.pairs_for_rows(start, stop)
            if w.sparse_similarity:
                # Candidate join: the band reads its own sketches plus the
                # grouped candidate partitions, not the whole sketch set.
                bytes_in = int(w.sketch_bytes * rows / n * 3)
            else:
                bytes_in = w.sketch_bytes  # dense: broadcast all sketches
            sim.map_tasks.append(
                TaskTrace(
                    task_id=f"sim-m{band_index:05d}",
                    kind="map",
                    records_in=rows,
                    records_out=pairs,
                    bytes_in=bytes_in,
                    bytes_out=pairs * 12,
                    cpu_seconds=pairs * pair_cost_s,
                )
            )
            start = stop
            band_index += 1
        # Reduce side re-partitions matrix rows; it parallelises like the
        # map side (one reducer per handful of bands), so model it that
        # way — a single giant reducer would be a scheduling bug, not a
        # property of the pipeline.
        num_reducers = max(1, min(32, band_index))
        per_reducer = -(-w.total_pairs // num_reducers)
        for r in range(num_reducers):
            sim.reduce_tasks.append(
                TaskTrace(
                    task_id=f"sim-r{r:04d}",
                    kind="reduce",
                    records_in=per_reducer,
                    records_out=per_reducer,
                    cpu_seconds=per_reducer * reduce_cost_per_record_s * 0.1,
                )
            )
        sim.shuffle_bytes = w.total_pairs * 12
        traces.append(sim)

        # ---- job 3: agglomeration ------------------------------------------
        cluster = JobTrace(job_name="cluster")
        cluster.map_tasks.append(
            TaskTrace(
                task_id="cluster-m00000",
                kind="map",
                records_in=w.num_reads,
                records_out=w.num_reads,
                cpu_seconds=w.num_reads * reduce_cost_per_record_s,
            )
        )
        cluster.reduce_tasks.append(
            TaskTrace(
                task_id="cluster-r0000",
                kind="reduce",
                records_in=w.num_reads,
                records_out=w.num_reads,
                cpu_seconds=w.num_reads * reduce_cost_per_record_s,
            )
        )
        cluster.shuffle_bytes = w.num_reads * 16
        traces.append(cluster)
    else:
        # Greedy scan: a single reduce-side pass.  Expected comparisons are
        # N * C where C is the final cluster count; we bound with
        # N * sqrt(N) as a conservative mid-ground (the exact count is
        # data-dependent; Table III/V timings are regenerated from real
        # execution, not from this model).
        greedy = JobTrace(job_name="greedy-cluster")
        comparisons = int(w.num_reads * max(1.0, w.num_reads**0.5))
        greedy.reduce_tasks.append(
            TaskTrace(
                task_id="greedy-r0000",
                kind="reduce",
                records_in=w.num_reads,
                records_out=w.num_reads,
                cpu_seconds=comparisons * pair_cost_s,
            )
        )
        greedy.shuffle_bytes = w.sketch_bytes
        traces.append(greedy)

    return traces
