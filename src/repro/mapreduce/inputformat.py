"""Hadoop-style input formats: turning HDFS blocks into record splits.

Real Hadoop map tasks read one block each, but records (lines, FASTA
entries) do not align with block boundaries.  The classic contract —
implemented here exactly — is:

* a split owns every record that *starts* strictly after the split's
  first byte boundary (except the first split, which owns the first
  record too);
* a reader continues past its split's end to finish the record it
  started, reading into the next block.

:class:`TextInputFormat` yields one record per line;
:class:`FastaInputFormat` yields one record per FASTA entry (the
``FastaStorage`` loader's distributed-reading substrate): a record starts
at each ``>`` header at the beginning of a line.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import HdfsError
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.seq.fasta import read_fasta_text
from repro.seq.records import SequenceRecord


class TextInputFormat:
    """Line records over HDFS blocks, Hadoop boundary semantics."""

    def __init__(self, hdfs: SimulatedHDFS, path: str):
        self.hdfs = hdfs
        self.path = path
        self.meta = hdfs.stat(path)

    @property
    def num_splits(self) -> int:
        """One split per HDFS block."""
        return max(1, self.meta.num_blocks)

    def _block_start(self, index: int) -> int:
        return sum(b.size for b in self.meta.blocks[:index])

    def read_split(self, index: int) -> list[tuple[int, str]]:
        """Records of split ``index`` as ``(byte offset, line)`` pairs."""
        if not 0 <= index < self.num_splits:
            raise HdfsError(
                f"split {index} out of range for {self.path!r} "
                f"({self.num_splits} splits)"
            )
        start = self._block_start(index)
        end = start + self.meta.blocks[index].size if self.meta.blocks else 0

        # Hadoop LineRecordReader ownership: a split owns lines starting
        # in (start, end] (the first split also owns byte 0); readers run
        # past `end` to finish the last owned line.  A line starting
        # exactly at `end` belongs to THIS split because the next split's
        # reader discards everything up to its first newline.
        data = self.hdfs.get(self.path)
        out: list[tuple[int, str]] = []
        pos = start
        if index > 0:
            # Skip the (possibly partial) line owned by the previous split.
            newline = data.find(b"\n", start)
            if newline < 0:
                return []
            pos = newline + 1
        while pos <= end and pos < len(data):
            newline = data.find(b"\n", pos)
            if newline < 0:
                out.append((pos, data[pos:].decode("ascii")))
                break
            out.append((pos, data[pos:newline].decode("ascii")))
            pos = newline + 1
        return out

    def read_all(self) -> Iterator[tuple[int, str]]:
        """All records across all splits, in file order."""
        for split in range(self.num_splits):
            yield from self.read_split(split)


class FastaInputFormat:
    """FASTA records over HDFS blocks.

    A record starts at a ``>`` that begins a line; a split owns records
    starting within ``[split start, split end)`` (with the first split
    also owning a record at byte 0), reading past the boundary to finish
    its last record.  The union of all splits reproduces the file's
    records exactly once — the property that makes FASTA splittable on
    Hadoop, verified by the test suite.
    """

    def __init__(self, hdfs: SimulatedHDFS, path: str):
        self.hdfs = hdfs
        self.path = path
        self.meta = hdfs.stat(path)
        self._data = hdfs.get(path)

    @property
    def num_splits(self) -> int:
        return max(1, self.meta.num_blocks)

    def _record_starts(self) -> list[int]:
        starts = []
        data = self._data
        pos = 0
        while True:
            idx = data.find(b">", pos)
            if idx < 0:
                break
            if idx == 0 or data[idx - 1 : idx] == b"\n":
                starts.append(idx)
            pos = idx + 1
        return starts

    def read_split(self, index: int) -> list[SequenceRecord]:
        """FASTA records owned by split ``index``."""
        if not 0 <= index < self.num_splits:
            raise HdfsError(
                f"split {index} out of range for {self.path!r} "
                f"({self.num_splits} splits)"
            )
        if not self.meta.blocks:
            return []
        start = sum(b.size for b in self.meta.blocks[:index])
        end = start + self.meta.blocks[index].size
        # Ownership mirrors the line reader: a split owns records starting
        # in (start, end], the first split additionally owns byte 0.
        starts = self._record_starts()
        owned = [
            s for s in starts
            if (start < s <= end) or (index == 0 and s == 0)
        ]
        if not owned:
            return []
        records: list[SequenceRecord] = []
        for s in owned:
            nxt = next((t for t in starts if t > s), len(self._data))
            chunk = self._data[s:nxt].decode("ascii")
            records.extend(read_fasta_text(chunk))
        return records

    def read_all(self) -> list[SequenceRecord]:
        """All records across splits, in file order."""
        out: list[SequenceRecord] = []
        for split in range(self.num_splits):
            out.extend(self.read_split(split))
        return out
