"""Hadoop-style job counters.

Counters are grouped (``group:name``) and additive; mappers and reducers
receive a counters object through their optional ``context`` and the
runner merges per-task counters into the job result, mirroring how Hadoop
aggregates task counters at the JobTracker.

Aggregation is deterministic: :meth:`Counters.merge` re-canonicalises the
store into sorted key order after every merge, so no matter in which order
worker-local counters arrive (the multiprocess runner's completion order
varies run to run), two runs of the same seed produce byte-identical
counter dumps — ``as_dict``, iteration, ``repr``, pickling and
:meth:`Counters.dump_json` all observe the same sorted order.
"""

from __future__ import annotations

import json
from collections import defaultdict
from collections.abc import Iterator


class Counters:
    """Additive named counters, mergeable across tasks."""

    def __init__(self) -> None:
        self._values: dict[tuple[str, str], int] = defaultdict(int)

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``group:name``."""
        self._values[(group, name)] += amount

    def get(self, group: str, name: str) -> int:
        """Current value of ``group:name`` (0 if never incremented)."""
        return self._values.get((group, name), 0)

    def merge(self, other: "Counters") -> None:
        """Add all of ``other``'s counters into this object.

        Keys are folded in — and the whole store re-ordered — in sorted
        key order, so the aggregate's internal ordering is independent of
        the order tasks completed in.
        """
        for key in sorted(other._values):
            self._values[key] += other._values[key]
        self._values = defaultdict(
            int, {key: self._values[key] for key in sorted(self._values)}
        )

    def dump_json(self) -> str:
        """Canonical JSON dump (sorted groups and names, no whitespace
        variance) — byte-identical across runs that produced the same
        counter values."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    def total(self, group: str) -> int:
        """Sum of every counter in ``group`` (0 for an unknown group)."""
        return sum(v for (g, _), v in self._values.items() if g == group)

    def groups(self) -> list[str]:
        """Sorted list of counter groups seen so far."""
        return sorted({group for group, _ in self._values})

    def as_dict(self) -> dict[str, dict[str, int]]:
        """Nested ``{group: {name: value}}`` snapshot."""
        out: dict[str, dict[str, int]] = {}
        for (group, name), value in sorted(self._values.items()):
            out.setdefault(group, {})[name] = value
        return out

    def __iter__(self) -> Iterator[tuple[str, str, int]]:
        for (group, name), value in sorted(self._values.items()):
            yield group, name, value

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counters({self.as_dict()!r})"
