"""Hadoop-style job counters.

Counters are grouped (``group:name``) and additive; mappers and reducers
receive a counters object through their optional ``context`` and the
runner merges per-task counters into the job result, mirroring how Hadoop
aggregates task counters at the JobTracker.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterator


class Counters:
    """Additive named counters, mergeable across tasks."""

    def __init__(self) -> None:
        self._values: dict[tuple[str, str], int] = defaultdict(int)

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``group:name``."""
        self._values[(group, name)] += amount

    def get(self, group: str, name: str) -> int:
        """Current value of ``group:name`` (0 if never incremented)."""
        return self._values.get((group, name), 0)

    def merge(self, other: "Counters") -> None:
        """Add all of ``other``'s counters into this object."""
        for key, value in other._values.items():
            self._values[key] += value

    def total(self, group: str) -> int:
        """Sum of every counter in ``group`` (0 for an unknown group)."""
        return sum(v for (g, _), v in self._values.items() if g == group)

    def groups(self) -> list[str]:
        """Sorted list of counter groups seen so far."""
        return sorted({group for group, _ in self._values})

    def as_dict(self) -> dict[str, dict[str, int]]:
        """Nested ``{group: {name: value}}`` snapshot."""
        out: dict[str, dict[str, int]] = {}
        for (group, name), value in sorted(self._values.items()):
            out.setdefault(group, {})[name] = value
        return out

    def __iter__(self) -> Iterator[tuple[str, str, int]]:
        for (group, name), value in sorted(self._values.items()):
            yield group, name, value

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counters({self.as_dict()!r})"
