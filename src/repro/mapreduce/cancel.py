"""Cooperative cancellation scopes for job execution.

A :class:`CancelScope` carries a deadline and/or an explicit cancel flag
for one unit of work (typically one job submitted to the
:class:`~repro.mapreduce.service.JobService`).  The scope is installed in
a :mod:`contextvars` context variable while the job runs, and the runners
call :func:`check_cancelled` at every task boundary — the same
granularity at which Hadoop's JobTracker kills the tasks of a killed job.
Cancellation is therefore *cooperative*: a deadline that passes mid-task
takes effect at the next task boundary, never by interrupting user code.

The disabled path (no scope installed) is a single context-variable read,
so uncancellable callers — everything that existed before the service
layer — pay effectively nothing.
"""

from __future__ import annotations

import contextvars
import time
from collections.abc import Iterator
from contextlib import contextmanager

from repro.errors import DeadlineExceededError, JobCancelledError

_CURRENT_SCOPE: contextvars.ContextVar["CancelScope | None"] = contextvars.ContextVar(
    "repro_cancel_scope", default=None
)


class CancelScope:
    """Deadline + explicit-cancel state for one unit of work.

    ``deadline_s`` is an absolute time on ``clock`` (defaults to
    :func:`time.monotonic`); ``None`` means no deadline.  :meth:`cancel`
    flips the explicit flag (e.g. on service shutdown).  :meth:`check`
    raises the matching typed error when either condition holds.
    """

    __slots__ = ("deadline_s", "_clock", "_cancelled", "_reason")

    def __init__(self, *, deadline_s: float | None = None, clock=time.monotonic):
        self.deadline_s = deadline_s
        self._clock = clock
        self._cancelled = False
        self._reason = ""

    def cancel(self, reason: str = "cancelled") -> None:
        """Flag the scope; takes effect at the next :meth:`check`."""
        self._cancelled = True
        self._reason = reason

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def remaining(self) -> float | None:
        """Seconds until the deadline (negative if past), or None."""
        if self.deadline_s is None:
            return None
        return self.deadline_s - self._clock()

    def check(self, where: str = "") -> None:
        """Raise if the scope is cancelled or its deadline has passed."""
        suffix = f" at {where}" if where else ""
        if self._cancelled:
            raise JobCancelledError(f"job cancelled{suffix}: {self._reason}")
        if self.deadline_s is not None and self._clock() >= self.deadline_s:
            raise DeadlineExceededError(f"job deadline exceeded{suffix}")

    @contextmanager
    def activate(self) -> Iterator["CancelScope"]:
        """Install this scope for :func:`check_cancelled` callers."""
        token = _CURRENT_SCOPE.set(self)
        try:
            yield self
        finally:
            _CURRENT_SCOPE.reset(token)


def current_scope() -> CancelScope | None:
    """The active scope, or None when nothing is cancellable."""
    return _CURRENT_SCOPE.get()


def check_cancelled(where: str = "") -> None:
    """Cancellation point: no-op unless a scope is active and tripped."""
    scope = _CURRENT_SCOPE.get()
    if scope is not None:
        scope.check(where)
