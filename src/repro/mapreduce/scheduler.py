"""Multi-job cluster scheduling: FIFO vs fair sharing.

A production Hadoop cluster runs many users' clustering jobs at once; the
choice between the classic FIFO JobTracker queue and the Fair Scheduler
decides how a short 16S job behaves when submitted behind a 10-M-read
whole-metagenome run.  This module models both policies with a fluid
(rate-based) event simulation over job *work* measured in slot-seconds:

* **fifo** — all capacity goes to the oldest unfinished job (up to its
  parallelism cap), the remainder spilling to the next job;
* **fair** — capacity is split equally among active jobs, water-filling
  around parallelism caps.

Both policies are work-conserving, so total makespan is identical; what
changes is per-job latency — exactly the trade the Fair Scheduler was
built for.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.mapreduce.costmodel import HadoopCostModel, M1_LARGE_COST_MODEL
from repro.mapreduce.types import JobTrace

POLICIES = ("fifo", "fair")


@dataclass(frozen=True)
class WorkloadJob:
    """One submitted job: arrival time, total work, parallelism cap."""

    name: str
    arrival: float
    work: float  # slot-seconds
    max_parallelism: float = float("inf")

    def __post_init__(self) -> None:
        if not self.name:
            raise SimulationError("job name must be non-empty")
        if self.arrival < 0:
            raise SimulationError(f"arrival must be >= 0, got {self.arrival}")
        if self.work <= 0:
            raise SimulationError(f"work must be positive, got {self.work}")
        if self.max_parallelism <= 0:
            raise SimulationError("max_parallelism must be positive")


@dataclass(frozen=True)
class ScheduledJob:
    """Outcome for one job."""

    name: str
    arrival: float
    start: float
    finish: float

    @property
    def latency(self) -> float:
        """Submission-to-completion time."""
        return self.finish - self.arrival


def job_from_trace(
    trace: JobTrace,
    *,
    arrival: float = 0.0,
    cost_model: HadoopCostModel = M1_LARGE_COST_MODEL,
) -> WorkloadJob:
    """Convert a measured/synthetic trace into scheduler work units.

    Work is the sum of all task durations (slot-seconds); parallelism is
    capped by the job's task count (a 3-task job cannot use 100 slots).
    """
    durations = [cost_model.task_duration(t) for t in trace.map_tasks]
    durations += [cost_model.task_duration(t) for t in trace.reduce_tasks]
    if not durations:
        raise SimulationError(f"trace {trace.job_name!r} has no tasks")
    return WorkloadJob(
        name=trace.job_name,
        arrival=arrival,
        work=sum(durations),
        max_parallelism=float(len(durations)),
    )


def _rates(
    active: list[dict], capacity: float, policy: str
) -> None:
    """Assign ``rate`` to each active job dict in place."""
    for job in active:
        job["rate"] = 0.0
    remaining_capacity = capacity
    if policy == "fifo":
        for job in sorted(active, key=lambda j: (j["arrival"], j["name"])):
            rate = min(remaining_capacity, job["cap"])
            job["rate"] = rate
            remaining_capacity -= rate
            if remaining_capacity <= 0:
                break
        return
    # Fair: water-filling around caps.
    todo = list(active)
    while todo and remaining_capacity > 1e-12:
        share = remaining_capacity / len(todo)
        bounded = [j for j in todo if j["cap"] - j["rate"] <= share]
        if bounded:
            for job in bounded:
                grant = job["cap"] - job["rate"]
                job["rate"] = job["cap"]
                remaining_capacity -= grant
            todo = [j for j in todo if j not in bounded]
        else:
            for job in todo:
                job["rate"] += share
            remaining_capacity = 0.0


def simulate_schedule(
    jobs: Sequence[WorkloadJob],
    capacity: float,
    *,
    policy: str = "fifo",
) -> list[ScheduledJob]:
    """Run the fluid simulation; returns outcomes in completion order."""
    if policy not in POLICIES:
        raise SimulationError(
            f"unknown policy {policy!r}; expected one of {POLICIES}"
        )
    if capacity <= 0:
        raise SimulationError(f"capacity must be positive, got {capacity}")
    if not jobs:
        raise SimulationError("no jobs to schedule")
    names = [j.name for j in jobs]
    if len(set(names)) != len(names):
        raise SimulationError("job names must be unique")

    pending = sorted(jobs, key=lambda j: (j.arrival, j.name))
    arrivals = [(j.arrival, i) for i, j in enumerate(pending)]
    heapq.heapify(arrivals)

    active: list[dict] = []
    done: list[ScheduledJob] = []
    now = 0.0
    next_arrival = 0

    while len(done) < len(jobs):
        # Admit arrivals at the current time.
        while next_arrival < len(pending) and pending[next_arrival].arrival <= now + 1e-12:
            j = pending[next_arrival]
            active.append(
                {
                    "name": j.name,
                    "arrival": j.arrival,
                    "remaining": j.work,
                    "cap": min(j.max_parallelism, capacity),
                    "start": None,
                    "rate": 0.0,
                }
            )
            next_arrival += 1
        if not active:
            now = pending[next_arrival].arrival
            continue

        _rates(active, capacity, policy)
        for job in active:
            if job["rate"] > 0 and job["start"] is None:
                job["start"] = now

        # Time to next event: a completion under current rates or the
        # next arrival.
        horizon = float("inf")
        if next_arrival < len(pending):
            horizon = pending[next_arrival].arrival - now
        dt = horizon
        for job in active:
            if job["rate"] > 0:
                dt = min(dt, job["remaining"] / job["rate"])
        if dt == float("inf"):
            raise SimulationError("scheduler stalled: no progress possible")

        now += dt
        still_active = []
        for job in active:
            job["remaining"] -= job["rate"] * dt
            if job["remaining"] <= 1e-9:
                done.append(
                    ScheduledJob(
                        name=job["name"],
                        arrival=job["arrival"],
                        start=job["start"] if job["start"] is not None else now,
                        finish=now,
                    )
                )
            else:
                still_active.append(job)
        active = still_active

    return sorted(done, key=lambda s: (s.finish, s.name))


def mean_latency(outcomes: Sequence[ScheduledJob]) -> float:
    """Average submission-to-completion latency."""
    if not outcomes:
        raise SimulationError("no outcomes")
    return sum(o.latency for o in outcomes) / len(outcomes)
