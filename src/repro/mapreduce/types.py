"""Core types shared by the Map-Reduce engine components."""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field

from repro.errors import MapReduceError


def stable_hash(key: object) -> int:
    """Process-stable non-negative hash of an arbitrary picklable key.

    Python's built-in ``hash`` for strings is randomised per process, which
    would make partition assignment nondeterministic across runs and across
    the workers of the multiprocess runner.  We hash the pickled bytes with
    CRC32 instead — stable, fast, and good enough for load balancing.
    """
    try:
        payload = pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # unpicklable keys cannot cross the shuffle
        raise MapReduceError(f"key {key!r} is not picklable: {exc}") from exc
    return zlib.crc32(payload) & 0x7FFFFFFF


@dataclass(frozen=True)
class JobConf:
    """Execution configuration for one Map-Reduce job.

    Attributes
    ----------
    num_map_tasks:
        How many map tasks to split the input into (Hadoop derives this
        from HDFS block count; callers reading from
        :class:`~repro.mapreduce.hdfs.SimulatedHDFS` typically pass the
        file's block count).
    num_reduce_tasks:
        Number of reduce partitions.
    use_combiner:
        Run the job's combiner (when defined) on each map task's output
        before the shuffle.
    sort_output:
        Sort the final output by key (Hadoop guarantees per-reducer key
        order; sorting globally makes the serial runner deterministic).
    max_task_attempts:
        How many times a failing task attempt is retried before the whole
        job fails (Hadoop's ``mapred.map.max.attempts``; 1 = no retries).
    task_timeout:
        Wall-clock deadline per attempt in seconds; attempts exceeding it
        are abandoned and retried (``mapred.task.timeout``).  ``None``
        disables the deadline.
    speculative_margin:
        Straggler multiplier: a running task whose runtime exceeds
        ``margin x median(completed task durations)`` gets a speculative
        backup attempt; the first result wins and the loser's output is
        discarded.  ``0`` disables speculation.
    retry_backoff:
        Base of the exponential backoff slept between attempts
        (``backoff * 2**(attempt-1)`` seconds); 0 retries immediately.
    spill_threshold_bytes:
        Engage the external spill-to-disk shuffle
        (:class:`~repro.mapreduce.shuffle.SpillingShuffle`): per-partition
        map-output buffers exceeding this estimated byte size are sorted
        and spilled to CRC-guarded temp segment files, and reducers
        merge-iterate the sorted runs lazily (``0`` spills every
        non-empty buffer).  ``None`` (the default) keeps the in-memory
        shuffle; output is byte-identical either way.
    """

    num_map_tasks: int = 1
    num_reduce_tasks: int = 1
    use_combiner: bool = True
    sort_output: bool = True
    max_task_attempts: int = 1
    task_timeout: float | None = None
    speculative_margin: float = 0.0
    retry_backoff: float = 0.0
    spill_threshold_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.num_map_tasks < 1:
            raise MapReduceError(
                f"num_map_tasks must be >= 1, got {self.num_map_tasks}"
            )
        if self.num_reduce_tasks < 1:
            raise MapReduceError(
                f"num_reduce_tasks must be >= 1, got {self.num_reduce_tasks}"
            )
        if self.max_task_attempts < 1:
            raise MapReduceError(
                f"max_task_attempts must be >= 1, got {self.max_task_attempts}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise MapReduceError(
                f"task_timeout must be positive, got {self.task_timeout}"
            )
        if self.speculative_margin < 0:
            raise MapReduceError(
                f"speculative_margin must be >= 0, got {self.speculative_margin}"
            )
        if self.retry_backoff < 0:
            raise MapReduceError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        if self.spill_threshold_bytes is not None and self.spill_threshold_bytes < 0:
            raise MapReduceError(
                "spill_threshold_bytes must be >= 0 or None, got "
                f"{self.spill_threshold_bytes}"
            )


@dataclass
class TaskTrace:
    """Record/byte accounting for one map or reduce task.

    These traces drive the discrete-event simulator: the *work* a task did
    is real (measured from actual execution); only the wall-clock a given
    cluster would need is modeled.
    """

    task_id: str
    kind: str  # "map" | "reduce"
    records_in: int = 0
    records_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    cpu_seconds: float = 0.0
    # ---- attempt history (fault-tolerant execution) ----------------------
    attempts: int = 1  # attempts launched, including the winner
    failures: list[str] = field(default_factory=list)  # one reason per failed attempt
    speculative_win: bool = False  # a speculative backup attempt won
    recovered: bool = False  # output restored from a JobCheckpoint

    @property
    def retries(self) -> int:
        """Failed attempts that were re-executed."""
        return len(self.failures)


@dataclass
class JobTrace:
    """All task traces plus shuffle volume for one executed job."""

    job_name: str
    map_tasks: list[TaskTrace] = field(default_factory=list)
    reduce_tasks: list[TaskTrace] = field(default_factory=list)
    shuffle_bytes: int = 0

    @property
    def total_map_records(self) -> int:
        return sum(t.records_in for t in self.map_tasks)

    @property
    def total_reduce_records(self) -> int:
        return sum(t.records_in for t in self.reduce_tasks)

    @property
    def all_tasks(self) -> list[TaskTrace]:
        return self.map_tasks + self.reduce_tasks

    @property
    def total_attempts(self) -> int:
        """Attempts launched across all tasks (>= task count)."""
        return sum(t.attempts for t in self.all_tasks)

    @property
    def total_retries(self) -> int:
        """Failed attempts recorded across all tasks."""
        return sum(t.retries for t in self.all_tasks)

    @property
    def speculative_wins(self) -> int:
        """Tasks whose speculative backup attempt finished first."""
        return sum(1 for t in self.all_tasks if t.speculative_win)

    @property
    def recovered_tasks(self) -> int:
        """Tasks restored from a checkpoint instead of re-executed."""
        return sum(1 for t in self.all_tasks if t.recovered)
