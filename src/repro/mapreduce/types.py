"""Core types shared by the Map-Reduce engine components."""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field

from repro.errors import MapReduceError


def stable_hash(key: object) -> int:
    """Process-stable non-negative hash of an arbitrary picklable key.

    Python's built-in ``hash`` for strings is randomised per process, which
    would make partition assignment nondeterministic across runs and across
    the workers of the multiprocess runner.  We hash the pickled bytes with
    CRC32 instead — stable, fast, and good enough for load balancing.
    """
    try:
        payload = pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # unpicklable keys cannot cross the shuffle
        raise MapReduceError(f"key {key!r} is not picklable: {exc}") from exc
    return zlib.crc32(payload) & 0x7FFFFFFF


@dataclass(frozen=True)
class JobConf:
    """Execution configuration for one Map-Reduce job.

    Attributes
    ----------
    num_map_tasks:
        How many map tasks to split the input into (Hadoop derives this
        from HDFS block count; callers reading from
        :class:`~repro.mapreduce.hdfs.SimulatedHDFS` typically pass the
        file's block count).
    num_reduce_tasks:
        Number of reduce partitions.
    use_combiner:
        Run the job's combiner (when defined) on each map task's output
        before the shuffle.
    sort_output:
        Sort the final output by key (Hadoop guarantees per-reducer key
        order; sorting globally makes the serial runner deterministic).
    """

    num_map_tasks: int = 1
    num_reduce_tasks: int = 1
    use_combiner: bool = True
    sort_output: bool = True

    def __post_init__(self) -> None:
        if self.num_map_tasks < 1:
            raise MapReduceError(
                f"num_map_tasks must be >= 1, got {self.num_map_tasks}"
            )
        if self.num_reduce_tasks < 1:
            raise MapReduceError(
                f"num_reduce_tasks must be >= 1, got {self.num_reduce_tasks}"
            )


@dataclass
class TaskTrace:
    """Record/byte accounting for one map or reduce task.

    These traces drive the discrete-event simulator: the *work* a task did
    is real (measured from actual execution); only the wall-clock a given
    cluster would need is modeled.
    """

    task_id: str
    kind: str  # "map" | "reduce"
    records_in: int = 0
    records_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    cpu_seconds: float = 0.0


@dataclass
class JobTrace:
    """All task traces plus shuffle volume for one executed job."""

    job_name: str
    map_tasks: list[TaskTrace] = field(default_factory=list)
    reduce_tasks: list[TaskTrace] = field(default_factory=list)
    shuffle_bytes: int = 0

    @property
    def total_map_records(self) -> int:
        return sum(t.records_in for t in self.map_tasks)

    @property
    def total_reduce_records(self) -> int:
        return sum(t.records_in for t in self.reduce_tasks)
