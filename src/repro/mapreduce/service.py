"""Resilient multi-tenant job service over the Map-Reduce engine.

The paper's framework assumes a dedicated Hadoop cluster per analysis;
a shared deployment instead runs **many** clustering jobs from many
tenants against one pool of driver slots.  :class:`JobService` models
that deployment and the failure modes that come with it:

* **Admission control** — each tenant gets a bounded queue; a full queue
  sheds the submission with a typed :class:`~repro.errors.ServiceOverloadedError`
  carrying a retry-after hint (backpressure, not silent queuing).
* **Scheduling policy** — ``fifo`` (oldest submission first, across all
  tenants) or ``fair`` (least-service tenant first), the same two
  policies the fluid model in :mod:`repro.mapreduce.scheduler` analyses;
  :func:`fluid_prediction` replays a finished workload through that model
  so measured latencies can be validated against theory.
* **Deadlines and cancellation** — every job runs under a
  :class:`~repro.mapreduce.cancel.CancelScope`; a deadline that passes is
  enforced cooperatively at the next task boundary, exactly where
  Hadoop's JobTracker kills tasks of a killed job.
* **Retries** — job-level attempts with seeded, jittered exponential
  backoff (:class:`~repro.mapreduce.faults.RetryPolicy`), layered above
  the engine's own task-level attempts.
* **Circuit breaker** — a tenant whose jobs keep failing is tripped open
  (submissions rejected with :class:`~repro.errors.CircuitOpenError`)
  and re-admitted through a single half-open probe job.
* **Graceful degradation** — jobs submitted ``degradable=True`` are
  rerouted under queue pressure to the cheaper pipeline configuration
  (b-bit sketch wire, sparse similarity where exact) instead of shed.
* **Drain/shutdown** — :meth:`JobService.drain` stops admission and
  waits the backlog out; :meth:`JobService.shutdown` additionally
  cancels queued and running work.

Everything is deterministic given a deterministic workload: ticket ids
are sequence numbers, shedding depends only on queue occupancy, backoff
jitter is seeded, and :meth:`JobService.health` snapshots sort every
section.  When chaos-testing a service, give each concurrent job its own
:class:`~repro.mapreduce.faults.FaultPlan` built from pure rate/schedule
draws — a plan's speculation bookkeeping is driver-side mutable state
and must not be shared across service worker threads.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    JobCancelledError,
    ServiceError,
    ServiceOverloadedError,
    ServiceStoppedError,
)
from repro.mapreduce.cancel import CancelScope
from repro.mapreduce.faults import RetryPolicy
from repro.mapreduce.job import MapReduceJob, identity_reducer
from repro.mapreduce.scheduler import POLICIES, WorkloadJob, simulate_schedule
from repro.mapreduce.types import JobConf
from repro.obs.trace import NULL_TRACER

# Ticket lifecycle.  ``queued -> running -> done|failed`` is the happy
# path; ``shed`` never enters the queue, ``expired``/``cancelled`` can
# strike while queued or running.
STATUSES = (
    "queued",
    "running",
    "done",
    "failed",
    "shed",
    "expired",
    "cancelled",
)

_TERMINAL = frozenset(("done", "failed", "shed", "expired", "cancelled"))


# --------------------------------------------------------------------------
# Job specifications
# --------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class MapReduceSpec:
    """A raw Map-Reduce job to run through the service.

    ``degraded`` execution is a no-op for raw jobs — there is no cheaper
    equivalent of an arbitrary mapper/reducer; degradation is a property
    of the clustering pipeline (:class:`ClusterJobSpec`).
    """

    job: MapReduceJob
    inputs: tuple
    conf: JobConf | None = None

    def describe(self) -> str:
        return f"mapreduce:{self.job.name}"

    def execute(self, runner, *, degraded: bool = False):
        return runner.run(self.job, list(self.inputs), self.conf)


@dataclass(frozen=True, eq=False)
class ClusterJobSpec:
    """One MrMC-MinH clustering request (the service's real workload).

    Degraded execution walks the ladder the wire/sparse subsystems
    provide: the b-bit sketch wire (8 bits, positional estimator) always
    applies, and the sparse similarity stage is added whenever it is
    exact for the configured method (greedy, or hierarchical with single
    linkage).  The degraded result is an approximation — that is the
    contract of ``degradable=True`` — but it is itself deterministic.
    """

    records: tuple
    kmer_size: int = 5
    num_hashes: int = 100
    threshold: float = 0.9
    method: str = "hierarchical"
    linkage: str = "average"
    estimator: str | None = None
    seed: int = 0
    num_map_tasks: int = 4
    sparse: bool | str = "auto"

    def describe(self) -> str:
        return f"cluster:{self.method}:{len(self.records)}reads"

    def execute(self, runner, *, degraded: bool = False):
        from repro.cluster.pipeline import MrMCMinH

        kwargs: dict = dict(
            kmer_size=self.kmer_size,
            num_hashes=self.num_hashes,
            threshold=self.threshold,
            method=self.method,
            linkage=self.linkage,
            estimator=self.estimator,
            seed=self.seed,
            runner=runner,
            num_map_tasks=self.num_map_tasks,
            sparse=self.sparse,
        )
        if degraded:
            kwargs["estimator"] = "positional"
            kwargs["wire_bits"] = 8
            if self.method == "greedy" or self.linkage == "single":
                # Keep an explicitly requested engine chain on the engine;
                # otherwise degrade to the cheaper in-process join.
                kwargs["sparse"] = (
                    "engine" if self.sparse == "engine" else True
                )
        pipeline = MrMCMinH(**kwargs)
        return pipeline.fit(list(self.records))


class _SleepMapper:
    """Mapper that sleeps a fixed time per record (picklable)."""

    def __init__(self, seconds: float):
        self.seconds = seconds

    def __call__(self, key, value):
        time.sleep(self.seconds)
        yield key, value


class _FailingMapper:
    """Mapper that always raises (picklable); drives breaker tests."""

    def __call__(self, key, value):
        raise ValueError("mapper configured to fail")
        yield  # pragma: no cover - makes this a generator function


def sleep_spec(seconds: float, name: str = "sleep") -> MapReduceSpec:
    """A job with a known service time — the unit of load tests.

    One map task, one record, ``seconds`` of work: measured run time is
    deterministic up to scheduler noise, which is exactly what the
    fluid-model validation and the service benchmarks need.
    """
    job = MapReduceJob(
        name=name, mapper=_SleepMapper(seconds), reducer=identity_reducer
    )
    return MapReduceSpec(
        job=job,
        inputs=(("k", name),),
        conf=JobConf(num_map_tasks=1, num_reduce_tasks=1),
    )


def failing_spec(name: str = "doomed") -> MapReduceSpec:
    """A job whose every attempt fails — drives retry/breaker paths."""
    job = MapReduceJob(
        name=name, mapper=_FailingMapper(), reducer=identity_reducer
    )
    return MapReduceSpec(
        job=job,
        inputs=(("k", name),),
        conf=JobConf(num_map_tasks=1, num_reduce_tasks=1, max_task_attempts=1),
    )


# --------------------------------------------------------------------------
# Circuit breaker
# --------------------------------------------------------------------------


class CircuitBreaker:
    """Per-tenant failure breaker: ``closed -> open -> half_open``.

    ``threshold`` consecutive job failures trip the breaker open; while
    open every submission is rejected with a retry-after hint.  After
    ``cooldown`` seconds the next submission is admitted as the single
    half-open **probe**: its success closes the breaker, its failure
    re-opens it (and restarts the cooldown).  Callers hold the service
    lock around every method, so the breaker itself is lock-free.
    """

    def __init__(
        self,
        *,
        threshold: int = 3,
        cooldown: float = 5.0,
        clock=time.monotonic,
    ):
        if threshold < 1:
            raise ServiceError(f"breaker threshold must be >= 1, got {threshold}")
        if cooldown < 0:
            raise ServiceError(f"breaker cooldown must be >= 0, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self.state = "closed"
        self.failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False

    def admit(self, tenant: str) -> None:
        """Raise :class:`CircuitOpenError` unless a submission may enter."""
        if self.state == "closed":
            return
        if self.state == "open":
            waited = self._clock() - self._opened_at
            if waited < self.cooldown:
                raise CircuitOpenError(
                    f"circuit for tenant {tenant!r} is open after "
                    f"{self.failures} consecutive failures",
                    retry_after=self.cooldown - waited,
                )
            self.state = "half_open"
            self._probe_inflight = False
        # half_open: exactly one probe at a time.
        if self._probe_inflight:
            raise CircuitOpenError(
                f"circuit for tenant {tenant!r} is half-open; probe in flight",
                retry_after=self.cooldown,
            )
        self._probe_inflight = True

    def release_probe(self) -> None:
        """Free the half-open probe slot without judging the tenant.

        Used when an admitted probe never produces a verdict — shed at
        the queue, expired, or cancelled — so the breaker is not wedged
        waiting on a probe that will never report.
        """
        self._probe_inflight = False

    def record_success(self) -> None:
        self.failures = 0
        self.state = "closed"
        self._probe_inflight = False

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == "half_open" or self.failures >= self.threshold:
            self.state = "open"
            self._opened_at = self._clock()
            self._probe_inflight = False


# --------------------------------------------------------------------------
# Tickets
# --------------------------------------------------------------------------


class JobTicket:
    """Handle for one submitted job.

    All mutable fields are written under the service lock; readers
    synchronise through :attr:`event` (set exactly once, at the terminal
    transition).
    """

    __slots__ = (
        "id",
        "tenant",
        "spec",
        "seq",
        "degradable",
        "deadline_s",
        "status",
        "result_value",
        "error",
        "attempts",
        "degraded",
        "submit_s",
        "start_s",
        "finish_s",
        "event",
        "scope",
        "span",
        "degrade_hint",
    )

    def __init__(
        self,
        *,
        tenant: str,
        spec,
        seq: int,
        degradable: bool,
        deadline_s: float | None,
        submit_s: float,
    ):
        self.id = f"{tenant}-{seq:04d}"
        self.tenant = tenant
        self.spec = spec
        self.seq = seq
        self.degradable = degradable
        self.deadline_s = deadline_s  # absolute, on the service clock
        self.status = "queued"
        self.result_value = None
        self.error: BaseException | None = None
        self.attempts = 0
        self.degraded = False
        self.submit_s = submit_s
        self.start_s: float | None = None
        self.finish_s: float | None = None
        self.event = threading.Event()
        self.scope: CancelScope | None = None
        self.span = None
        self.degrade_hint = False

    @property
    def latency(self) -> float | None:
        """Submission-to-terminal seconds (None while in flight)."""
        if self.finish_s is None:
            return None
        return self.finish_s - self.submit_s

    @property
    def run_seconds(self) -> float | None:
        """Seconds spent actually running (None if never dispatched)."""
        if self.start_s is None or self.finish_s is None:
            return None
        return self.finish_s - self.start_s

    def done(self) -> bool:
        return self.status in _TERMINAL

    def result(self, timeout: float | None = None):
        """Block for the terminal state; return the job's result.

        Raises the stored typed error for ``failed``/``expired``/
        ``cancelled`` tickets and :class:`TimeoutError` if the ticket is
        still in flight after ``timeout`` seconds.
        """
        if not self.event.wait(timeout):
            raise TimeoutError(f"job {self.id} still {self.status}")
        if self.status == "done":
            return self.result_value
        if self.error is not None:
            raise self.error
        raise ServiceError(f"job {self.id} ended as {self.status} with no error")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobTicket(id={self.id!r}, status={self.status!r})"


@dataclass
class _TenantState:
    """Book-keeping for one tenant (all access under the service lock)."""

    name: str
    queue: list = field(default_factory=list)
    running: int = 0
    accepted: int = 0
    shed: int = 0
    completed: int = 0
    failed: int = 0
    expired: int = 0
    cancelled: int = 0
    degraded_runs: int = 0
    service_seconds: float = 0.0
    last_pop_seq: int = -1
    latencies: list = field(default_factory=list)
    breaker: CircuitBreaker | None = None


def _percentile(values, fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sequence."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


# --------------------------------------------------------------------------
# The service
# --------------------------------------------------------------------------


class JobService:
    """Long-lived executor of Map-Reduce jobs for many tenants.

    ``num_slots`` worker threads pull tickets from per-tenant bounded
    queues (depth ``queue_depth``) under the configured ``policy`` and
    execute them on ``runner`` (shared; the serial runner is reentrant
    per-call, and each multiprocess job owns its own pool).  See the
    module docstring for the full resilience feature list.

    Use as a context manager for scoped lifetimes::

        with JobService(num_slots=2) as svc:
            t = svc.submit("alice", sleep_spec(0.01))
            t.result(timeout=5)
    """

    def __init__(
        self,
        *,
        num_slots: int = 2,
        queue_depth: int = 4,
        policy: str = "fair",
        runner=None,
        retry: RetryPolicy | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 5.0,
        degrade_at: float = 0.75,
        tracer=None,
    ):
        if num_slots < 1:
            raise ServiceError(f"num_slots must be >= 1, got {num_slots}")
        if queue_depth < 1:
            raise ServiceError(f"queue_depth must be >= 1, got {queue_depth}")
        if policy not in POLICIES:
            raise ServiceError(
                f"unknown admission policy {policy!r}; expected one of {POLICIES}"
            )
        if not 0.0 < degrade_at <= 1.0:
            raise ServiceError(f"degrade_at must be in (0,1], got {degrade_at}")
        if runner is None:
            from repro.mapreduce.runner import SerialRunner

            runner = SerialRunner(trace=False)
        self.num_slots = num_slots
        self.queue_depth = queue_depth
        self.policy = policy
        self.runner = runner
        self.retry = retry or RetryPolicy(max_attempts=1)
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.degrade_at = degrade_at
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.metrics = self.tracer.metrics

        self._cond = threading.Condition()
        self._tenants: dict[str, _TenantState] = {}
        self._workers: list[threading.Thread] = []
        self._running_tickets: set[JobTicket] = set()
        self._next_seq = 0
        self._started = False
        self._draining = False
        self._stopped = False
        self._epoch = time.monotonic()

    # ---- clock -----------------------------------------------------------

    def now(self) -> float:
        """Seconds since service creation (the ticket timestamp clock)."""
        return time.monotonic() - self._epoch

    # ---- lifecycle -------------------------------------------------------

    def start(self) -> "JobService":
        """Spawn the worker slots (idempotent)."""
        with self._cond:
            if self._stopped:
                raise ServiceStoppedError("service has been shut down")
            if self._started:
                return self
            self._started = True
        for i in range(self.num_slots):
            worker = threading.Thread(
                target=self._worker_loop, name=f"job-service-slot-{i}", daemon=True
            )
            self._workers.append(worker)
            worker.start()
        return self

    def __enter__(self) -> "JobService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.drain()
        self.shutdown(wait=exc_type is None)

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admission and wait until queues and slots are empty.

        Returns True once drained; False if ``timeout`` elapsed first
        (admission stays closed either way — drain is one-way).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._draining = True
            self._cond.notify_all()
            while not self._idle_locked():
                self._expire_queued_locked()
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(
                    timeout=0.05 if remaining is None else min(0.05, remaining)
                )
            return True

    def shutdown(self, wait: bool = True, timeout: float = 10.0) -> None:
        """Stop the service.

        ``wait=True`` drains first; ``wait=False`` cancels every queued
        ticket and flags running scopes, which take effect at the next
        task boundary.  Either way the worker threads exit.
        """
        if wait:
            self.drain(timeout=timeout)
        with self._cond:
            self._draining = True
            self._stopped = True
            if not wait:
                for state in self._tenants.values():
                    for ticket in list(state.queue):
                        state.queue.remove(ticket)
                        self._finalize_locked(
                            ticket,
                            "cancelled",
                            error=JobCancelledError(
                                f"job {ticket.id} cancelled by shutdown"
                            ),
                        )
                for ticket in self._running_tickets:
                    if ticket.scope is not None:
                        ticket.scope.cancel("service shutdown")
            self._cond.notify_all()
        for worker in self._workers:
            worker.join(timeout=timeout)
        self._workers.clear()

    # ---- submission ------------------------------------------------------

    def submit(
        self,
        tenant: str,
        spec,
        *,
        deadline: float | None = None,
        degradable: bool = False,
    ) -> JobTicket:
        """Admit one job for ``tenant``; returns its :class:`JobTicket`.

        ``deadline`` is seconds from now; a job that cannot finish by
        then ends ``expired``.  Raises
        :class:`~repro.errors.ServiceOverloadedError` when the tenant's
        queue is full, :class:`~repro.errors.CircuitOpenError` while the
        tenant's breaker is open, and
        :class:`~repro.errors.ServiceStoppedError` once draining.
        """
        if not tenant:
            raise ServiceError("tenant name must be non-empty")
        if deadline is not None and deadline <= 0:
            raise ServiceError(f"deadline must be positive, got {deadline}")
        with self._cond:
            if self._stopped or self._draining:
                raise ServiceStoppedError(
                    f"service is {'stopped' if self._stopped else 'draining'}; "
                    f"not accepting jobs"
                )
            state = self._tenant_locked(tenant)
            state.breaker.admit(tenant)
            if len(state.queue) >= self.queue_depth:
                state.shed += 1
                state.breaker.release_probe()
                self.metrics.counter(f"service.jobs_shed.{tenant}").inc()
                raise ServiceOverloadedError(
                    f"tenant {tenant!r} queue is full "
                    f"({len(state.queue)}/{self.queue_depth})",
                    retry_after=self._retry_after_locked(),
                )
            seq = self._next_seq
            self._next_seq += 1
            now = self.now()
            ticket = JobTicket(
                tenant=tenant,
                spec=spec,
                seq=seq,
                degradable=degradable,
                deadline_s=None if deadline is None else now + deadline,
                submit_s=now,
            )
            ticket.span = self.tracer.start(
                f"service:{ticket.id}",
                kind="service_job",
                tenant=tenant,
                spec=spec.describe() if hasattr(spec, "describe") else repr(spec),
            )
            state.queue.append(ticket)
            state.accepted += 1
            self.metrics.counter(f"service.jobs_accepted.{tenant}").inc()
            self.metrics.gauge(f"service.queue_depth.{tenant}").set(len(state.queue))
            self._cond.notify()
            return ticket

    # ---- health ----------------------------------------------------------

    def health(self) -> dict:
        """Deterministically ordered snapshot of service state."""
        with self._cond:
            tenants = {}
            for name in sorted(self._tenants):
                state = self._tenants[name]
                entry = {
                    "queued": len(state.queue),
                    "running": state.running,
                    "accepted": state.accepted,
                    "shed": state.shed,
                    "completed": state.completed,
                    "failed": state.failed,
                    "expired": state.expired,
                    "cancelled": state.cancelled,
                    "degraded_runs": state.degraded_runs,
                    "breaker": state.breaker.state,
                    "breaker_failures": state.breaker.failures,
                }
                if state.latencies:
                    entry["latency_p50_ms"] = round(
                        1000 * _percentile(state.latencies, 0.50), 3
                    )
                    entry["latency_p99_ms"] = round(
                        1000 * _percentile(state.latencies, 0.99), 3
                    )
                tenants[name] = entry
            totals = {
                "accepted": sum(s.accepted for s in self._tenants.values()),
                "shed": sum(s.shed for s in self._tenants.values()),
                "completed": sum(s.completed for s in self._tenants.values()),
                "failed": sum(s.failed for s in self._tenants.values()),
                "expired": sum(s.expired for s in self._tenants.values()),
                "cancelled": sum(s.cancelled for s in self._tenants.values()),
                "queued": sum(len(s.queue) for s in self._tenants.values()),
                "running": sum(s.running for s in self._tenants.values()),
            }
            return {
                "policy": self.policy,
                "num_slots": self.num_slots,
                "queue_depth": self.queue_depth,
                "draining": self._draining,
                "stopped": self._stopped,
                "tenants": tenants,
                "totals": totals,
            }

    # ---- internals: locked helpers --------------------------------------

    def _tenant_locked(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = _TenantState(
                name=name,
                breaker=CircuitBreaker(
                    threshold=self.breaker_threshold,
                    cooldown=self.breaker_cooldown,
                ),
            )
            self._tenants[name] = state
        return state

    def _retry_after_locked(self) -> float:
        """Hint: backlog x mean service time / slots."""
        backlog = sum(len(s.queue) + s.running for s in self._tenants.values())
        completed = sum(s.completed + s.failed for s in self._tenants.values())
        total_service = sum(s.service_seconds for s in self._tenants.values())
        mean = (total_service / completed) if completed else 0.1
        return max(0.05, backlog * mean / self.num_slots)

    def _idle_locked(self) -> bool:
        return not self._running_tickets and all(
            not s.queue for s in self._tenants.values()
        )

    def _pressure_locked(self) -> float:
        """Queue occupancy across tenants in [0, 1]."""
        if not self._tenants:
            return 0.0
        capacity = len(self._tenants) * self.queue_depth
        return sum(len(s.queue) for s in self._tenants.values()) / capacity

    def _expire_queued_locked(self) -> None:
        """Fail queued tickets whose deadline has already passed."""
        now = self.now()
        for state in self._tenants.values():
            stale = [
                t
                for t in state.queue
                if t.deadline_s is not None and now >= t.deadline_s
            ]
            for ticket in stale:
                state.queue.remove(ticket)
                self._finalize_locked(
                    ticket,
                    "expired",
                    error=DeadlineExceededError(
                        f"job {ticket.id} deadline passed while queued"
                    ),
                )

    def _pop_next_locked(self) -> JobTicket | None:
        """Pick the next ticket under the configured policy."""
        candidates = [s for s in self._tenants.values() if s.queue]
        if not candidates:
            return None
        if self.policy == "fifo":
            state = min(candidates, key=lambda s: s.queue[0].seq)
        else:  # fair: least concurrently-served, then least historical service
            state = min(
                candidates,
                key=lambda s: (s.running, s.service_seconds, s.last_pop_seq),
            )
        ticket = state.queue.pop(0)
        state.last_pop_seq = ticket.seq
        state.running += 1
        ticket.status = "running"
        ticket.start_s = self.now()
        ticket.degrade_hint = self._pressure_locked() >= self.degrade_at
        self._running_tickets.add(ticket)
        self.metrics.gauge(f"service.queue_depth.{ticket.tenant}").set(
            len(state.queue)
        )
        return ticket

    def _finalize_locked(self, ticket: JobTicket, status: str, *, error=None, result=None):
        """Terminal transition: counters, metrics, span, waiter wake-up."""
        state = self._tenants[ticket.tenant]
        was_running = ticket in self._running_tickets
        self._running_tickets.discard(ticket)
        if was_running:
            state.running -= 1
        ticket.status = status
        ticket.error = error
        ticket.result_value = result
        ticket.finish_s = self.now()
        if ticket.run_seconds is not None:
            state.service_seconds += ticket.run_seconds
        if status in ("done", "failed"):
            state.latencies.append(ticket.latency)
            self.metrics.histogram("service.latency_seconds").observe(ticket.latency)
        if status == "done":
            state.completed += 1
            state.breaker.record_success()
        elif status == "failed":
            state.failed += 1
            state.breaker.record_failure()
        elif status == "expired":
            state.expired += 1
            # A deadline miss is load, not tenant misbehaviour: no
            # breaker verdict, but the probe slot must be released.
            state.breaker.release_probe()
        elif status == "cancelled":
            state.cancelled += 1
            state.breaker.release_probe()
        if ticket.degraded:
            state.degraded_runs += 1
        self.metrics.counter(f"service.jobs_{status}.{ticket.tenant}").inc()
        self.tracer.finish(
            ticket.span, status="ok" if status == "done" else "error"
        )
        ticket.event.set()
        self._cond.notify_all()

    # ---- internals: worker loop ------------------------------------------

    def _worker_loop(self) -> None:
        activation = (
            self.tracer.activate() if self.tracer.enabled else nullcontext()
        )
        with activation:
            while True:
                with self._cond:
                    ticket = None
                    while ticket is None:
                        if self._stopped:
                            return
                        self._expire_queued_locked()
                        ticket = self._pop_next_locked()
                        if ticket is None:
                            self._cond.wait(timeout=0.05)
                self._execute(ticket)

    def _execute(self, ticket: JobTicket) -> None:
        policy = self.retry
        attempt = 0
        while True:
            attempt += 1
            ticket.attempts = attempt
            degraded = ticket.degradable and (ticket.degrade_hint or attempt > 1)
            ticket.degraded = ticket.degraded or degraded
            scope = CancelScope(deadline_s=self._abs_deadline(ticket))
            with self._cond:
                ticket.scope = scope
                if degraded:
                    self.metrics.counter(
                        f"service.jobs_degraded.{ticket.tenant}"
                    ).inc()
            try:
                with scope.activate():
                    scope.check("dispatch")
                    result = ticket.spec.execute(self.runner, degraded=degraded)
            except DeadlineExceededError as exc:
                with self._cond:
                    self._finalize_locked(ticket, "expired", error=exc)
                return
            except JobCancelledError as exc:
                with self._cond:
                    self._finalize_locked(ticket, "cancelled", error=exc)
                return
            except Exception as exc:
                # Engine failures arrive as ReproError subtypes, user
                # errors as-is; both are retryable at the job level
                # (cancellation was already handled above) and fail the
                # job — never the slot — on exhaustion.
                if attempt >= policy.max_attempts:
                    with self._cond:
                        self._finalize_locked(ticket, "failed", error=exc)
                    return
                delay = policy.backoff_delay(attempt)
                remaining = scope.remaining()
                if remaining is not None and delay >= remaining:
                    with self._cond:
                        self._finalize_locked(
                            ticket,
                            "expired",
                            error=DeadlineExceededError(
                                f"job {ticket.id} cannot retry within its deadline"
                            ),
                        )
                    return
                self.metrics.counter(f"service.job_retries.{ticket.tenant}").inc()
                if delay > 0:
                    time.sleep(delay)
            else:
                with self._cond:
                    self._finalize_locked(ticket, "done", result=result)
                return

    def _abs_deadline(self, ticket: JobTicket) -> float | None:
        """Ticket deadline rebased onto ``time.monotonic`` for the scope."""
        if ticket.deadline_s is None:
            return None
        return self._epoch + ticket.deadline_s


# --------------------------------------------------------------------------
# Fluid-model validation
# --------------------------------------------------------------------------


def fluid_prediction(
    tickets, num_slots: int, policy: str
) -> dict[str, float]:
    """Replay finished tickets through the fluid scheduler model.

    Each ticket becomes a :class:`~repro.mapreduce.scheduler.WorkloadJob`
    with ``arrival`` = its submission offset and ``work`` = its
    *measured* run seconds (``max_parallelism=1``: one driver slot per
    job).  Returns ``{ticket_id: predicted_latency_seconds}`` — compare
    against ``ticket.latency`` to validate the service's scheduler
    against theory.  Only ``done``/``failed`` tickets (the ones that
    actually consumed a slot) participate.
    """
    finished = [t for t in tickets if t.run_seconds is not None]
    if not finished:
        return {}
    t0 = min(t.submit_s for t in finished)
    jobs = [
        WorkloadJob(
            name=t.id,
            arrival=t.submit_s - t0,
            work=max(t.run_seconds, 1e-9),
            max_parallelism=1.0,
        )
        for t in sorted(finished, key=lambda t: t.seq)
    ]
    outcomes = simulate_schedule(jobs, capacity=float(num_slots), policy=policy)
    return {o.name: o.latency for o in outcomes}
