"""Multiprocess job runner: real parallelism across local cores.

Map tasks and reduce partitions are dispatched to a ``multiprocessing``
pool.  Jobs must be defined with picklable (module-level) mapper/reducer
functions — the same constraint real Hadoop streaming imposes.  On a
single-core machine this degrades gracefully to serial execution.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from multiprocessing import get_context

from repro.errors import MapReduceError
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runner import JobResult, SerialRunner
from repro.mapreduce.shuffle import shuffle
from repro.mapreduce.types import JobConf
from repro.utils.chunking import chunk_indices


def _map_worker(args):
    job, split = args
    counters = Counters()
    out = []
    for key, value in split:
        emitted = job.run_mapper(key, value, counters)
        if emitted is not None:
            for pair in emitted:
                if not isinstance(pair, tuple) or len(pair) != 2:
                    raise MapReduceError(
                        f"mapper of job {job.name!r} emitted {pair!r}; "
                        "expected (key, value) tuples"
                    )
                out.append(pair)
    if job.combiner is not None:
        out = SerialRunner._combine(job, out)
    return out, counters


def _reduce_worker(args):
    job, groups = args
    counters = Counters()
    out = []
    for key, values in groups:
        emitted = job.run_reducer(key, values, counters)
        if emitted is not None:
            for pair in emitted:
                if not isinstance(pair, tuple) or len(pair) != 2:
                    raise MapReduceError(
                        f"reducer of job {job.name!r} emitted {pair!r}; "
                        "expected (key, value) tuples"
                    )
                out.append(pair)
    return out, counters


class MultiprocessRunner:
    """Run map and reduce tasks on a local process pool."""

    def __init__(self, num_workers: int | None = None):
        if num_workers is not None and num_workers < 1:
            raise MapReduceError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers or max(1, os.cpu_count() or 1)

    def run(
        self,
        job: MapReduceJob,
        inputs: Sequence[tuple],
        conf: JobConf | None = None,
    ) -> JobResult:
        """Execute ``job`` over ``inputs`` with process-level parallelism."""
        conf = conf or JobConf()
        counters = Counters()

        splits = [
            list(inputs[start:stop])
            for start, stop in chunk_indices(len(inputs), conf.num_map_tasks)
        ]
        # Effective combiner honours the conf flag.
        effective = job
        if not conf.use_combiner and job.combiner is not None:
            effective = MapReduceJob(
                name=job.name,
                mapper=job.mapper,
                reducer=job.reducer,
                combiner=None,
                partitioner=job.partitioner,
            )

        if self.num_workers == 1:
            map_results = [_map_worker((effective, s)) for s in splits]
        else:
            ctx = get_context("spawn" if os.name == "nt" else "fork")
            with ctx.Pool(self.num_workers) as pool:
                map_results = pool.map(_map_worker, [(effective, s) for s in splits])

        map_outputs = []
        for out, task_counters in map_results:
            map_outputs.append(out)
            counters.merge(task_counters)
        counters.increment("job", "map_input_records", len(inputs))
        counters.increment(
            "job", "map_output_records", sum(len(o) for o in map_outputs)
        )

        partitions, moved = shuffle(map_outputs, conf.num_reduce_tasks, job.partitioner)
        counters.increment("job", "shuffle_records", moved)

        if self.num_workers == 1:
            reduce_results = [_reduce_worker((effective, p)) for p in partitions]
        else:
            ctx = get_context("spawn" if os.name == "nt" else "fork")
            with ctx.Pool(self.num_workers) as pool:
                reduce_results = pool.map(
                    _reduce_worker, [(effective, p) for p in partitions]
                )

        output: list[tuple] = []
        for out, task_counters in reduce_results:
            output.extend(out)
            counters.merge(task_counters)
        counters.increment("job", "reduce_output_records", len(output))

        if conf.sort_output:
            try:
                output.sort(key=lambda kv: kv[0])
            except TypeError:
                output.sort(key=lambda kv: (type(kv[0]).__name__, repr(kv[0])))
        return JobResult(output=output, counters=counters, trace=None)
