"""Multiprocess job runner: real parallelism across local cores.

Map tasks and reduce partitions are dispatched to a ``multiprocessing``
pool.  Jobs must be defined with picklable (module-level) mapper/reducer
functions — the same constraint real Hadoop streaming imposes (checked up
front so the error is clear).  On a single-core machine this degrades
gracefully to serial in-process execution.

Execution is fault tolerant, mirroring the Hadoop TaskTracker protocol:

* every task attempt is dispatched asynchronously and retried with
  exponential backoff up to ``JobConf.max_task_attempts``;
* attempts that exceed ``JobConf.task_timeout`` are abandoned (their
  late results are discarded — the in-memory analogue of killing the
  attempt) and re-executed;
* with ``JobConf.speculative_margin > 0``, a task running longer than
  ``margin x median(completed durations)`` gets a concurrent speculative
  backup attempt; the first result wins and the loser's output is
  discarded exactly once;
* with a :class:`~repro.mapreduce.faults.FaultPlan`, every attempt ships
  a CRC32 of its output computed at production time and the driver
  verifies it on receipt, so injected shuffle corruption is detected and
  retried;
* a :class:`~repro.mapreduce.faults.JobCheckpoint` restores completed
  task outputs so a killed job resumes from the last barrier.

When a :class:`~repro.obs.trace.Tracer` is active in the driver, each
worker attempt records its own spans on a throw-away worker-local tracer
and ships them back with the attempt result; the driver merges them at
the task barrier (:meth:`~repro.obs.trace.Tracer.merge_payload` rebases
clocks and re-parents under the driver-side task span), so the final
span tree nests job -> stage -> task -> attempt across process
boundaries, with worker spans keeping their real OS pid.  Failed and
abandoned attempts are synthesised driver-side from observed timing.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from multiprocessing import get_context

from repro.errors import FaultError, MapReduceError, TaskFailedError
from repro.mapreduce.cancel import check_cancelled
from repro.mapreduce.counters import Counters
from repro.mapreduce.faults import (
    FaultPlan,
    JobCheckpoint,
    RetryPolicy,
    records_checksum,
)
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runner import JobResult, SerialRunner, _approx_bytes, _median
from repro.mapreduce.shuffle import (
    SpillingShuffle,
    partition_num_records,
    shuffle,
    sort_records,
)
from repro.mapreduce.types import JobConf, JobTrace, TaskTrace
from repro.obs.trace import NULL_TRACER, Tracer, current_tracer
from repro.utils.chunking import chunk_indices

_POLL_INTERVAL = 0.002


def _attempt_worker(args):
    """One task attempt, executed inside a pool worker (or inline).

    Returns ``(records, task_counters, checksum, wall_seconds, obs)``.
    The checksum is computed *before* any injected corruption — it models
    the producer-side IFile checksum that travels with the data; the
    driver recomputes it on receipt.  ``inline_deadline`` is only set on
    the single-worker path, where a hung attempt cannot be abandoned from
    outside and must give up by itself.  With ``obs_on``, the attempt is
    recorded on a worker-local tracer whose span payload rides back in
    ``obs`` for the driver to merge at the barrier (crashed attempts
    return nothing — the driver synthesises their spans).
    """
    job, kind, index, attempt, payload, plan, task_id, inline_deadline, obs_on = args
    tracer = Tracer() if obs_on else NULL_TRACER
    fault = plan.fault_for(job.name, kind, index, attempt) if plan is not None else None
    t0 = time.perf_counter()
    with tracer.span(
        f"attempt:{attempt}", kind="attempt", attempt=attempt, task_id=task_id
    ) as span:
        if fault is not None:
            span.attrs["fault"] = fault.kind
        if fault is not None and fault.kind == "crash":
            raise FaultError(
                fault.reason or "injected crash", task_id=task_id, attempt=attempt
            )
        if fault is not None and fault.kind == "hang":
            if inline_deadline is not None and fault.delay >= inline_deadline:
                raise FaultError(
                    f"attempt abandoned at task_timeout={inline_deadline}s "
                    f"(hang of {fault.delay}s)",
                    task_id=task_id,
                    attempt=attempt,
                )
            time.sleep(fault.delay)
        if fault is not None and fault.kind == "slow_node":
            time.sleep(fault.delay)  # degraded node: latency, not failure
        if kind == "map":
            out, task_counters = _map_body(job, payload)
        else:
            out, task_counters = _reduce_body(job, payload)
        checksum = records_checksum(out) if plan is not None else None
        if fault is not None and fault.kind == "corrupt":
            out = FaultPlan.corrupt_records(out, task_id)
    wall = time.perf_counter() - t0
    obs = tracer.export_payload() if obs_on else None
    return out, task_counters, checksum, wall, obs


def _map_body(job: MapReduceJob, split) -> tuple[list, Counters]:
    counters = Counters()
    out = []
    if job.batch_mapper is not None:
        emitted = job.run_batch_mapper(split, counters)
        if emitted is not None:
            for pair in emitted:
                if not isinstance(pair, tuple) or len(pair) != 2:
                    raise MapReduceError(
                        f"batch_mapper of job {job.name!r} emitted {pair!r}; "
                        "expected (key, value) tuples"
                    )
                out.append(pair)
    else:
        for key, value in split:
            emitted = job.run_mapper(key, value, counters)
            if emitted is not None:
                for pair in emitted:
                    if not isinstance(pair, tuple) or len(pair) != 2:
                        raise MapReduceError(
                            f"mapper of job {job.name!r} emitted {pair!r}; "
                            "expected (key, value) tuples"
                        )
                    out.append(pair)
    if job.combiner is not None:
        out = SerialRunner._combine(job, out)
    return out, counters


def _reduce_body(job: MapReduceJob, groups) -> tuple[list, Counters]:
    counters = Counters()
    out = []
    for key, values in groups:
        emitted = job.run_reducer(key, values, counters)
        if emitted is not None:
            for pair in emitted:
                if not isinstance(pair, tuple) or len(pair) != 2:
                    raise MapReduceError(
                        f"reducer of job {job.name!r} emitted {pair!r}; "
                        "expected (key, value) tuples"
                    )
                out.append(pair)
    return out, counters


@dataclass
class _Attempt:
    """One in-flight attempt of a task on the pool."""

    index: int
    number: int  # 1-based attempt number
    result: object  # AsyncResult
    started: float
    started_rel: float = 0.0  # submit time on the active tracer's clock
    speculative: bool = False
    abandoned: bool = False


@dataclass
class _TaskState:
    """Driver-side bookkeeping for one task of a phase."""

    index: int
    task_id: str
    payload: object
    records_in: int
    attempts_launched: int = 0
    failures: list[str] = field(default_factory=list)
    done: bool = False
    recovered: bool = False
    speculative_win: bool = False
    output: list = None
    counters: Counters = None
    wall: float = 0.0


class MultiprocessRunner:
    """Run map and reduce tasks on a local process pool with retries.

    ``trace=True`` records a :class:`~repro.mapreduce.types.JobTrace` with
    driver-measured wall times and full attempt history (off by default:
    the serial runner remains the calibrated trace source for the cluster
    simulator).  ``fault_plan``, ``checkpoint`` and ``retry`` mirror
    :class:`~repro.mapreduce.runner.SerialRunner`.
    """

    def __init__(
        self,
        num_workers: int | None = None,
        *,
        trace: bool = False,
        fault_plan: FaultPlan | None = None,
        checkpoint: JobCheckpoint | None = None,
        retry: RetryPolicy | None = None,
    ):
        if num_workers is not None and num_workers < 1:
            raise MapReduceError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers or max(1, os.cpu_count() or 1)
        self.trace = trace
        self.fault_plan = fault_plan
        self.checkpoint = checkpoint
        self.retry = retry

    def run(
        self,
        job: MapReduceJob,
        inputs: Sequence[tuple],
        conf: JobConf | None = None,
        *,
        fault_plan: FaultPlan | None = None,
        checkpoint: JobCheckpoint | None = None,
        retry: RetryPolicy | None = None,
        output_sink: Callable[[tuple], None] | None = None,
    ) -> JobResult:
        """Execute ``job`` over ``inputs`` with process-level parallelism.

        ``output_sink`` streams reduce output records to the callback as
        each reduce task completes instead of accumulating them (the
        returned ``JobResult.output`` is empty and ``sort_output`` does
        not apply); see :meth:`SerialRunner.run`.
        """
        conf = conf or JobConf()
        plan = fault_plan if fault_plan is not None else self.fault_plan
        ckpt = checkpoint if checkpoint is not None else self.checkpoint
        policy = retry or self.retry or RetryPolicy.from_conf(conf)
        counters = Counters()
        trace = JobTrace(job_name=job.name) if self.trace else None

        # Effective combiner honours the conf flag.
        effective = job
        if not conf.use_combiner and job.combiner is not None:
            effective = MapReduceJob(
                name=job.name,
                mapper=job.mapper,
                reducer=job.reducer,
                combiner=None,
                partitioner=job.partitioner,
                batch_mapper=job.batch_mapper,
                wire=job.wire,
            )

        pool = None
        if self.num_workers > 1:
            effective.ensure_picklable()
            ctx = get_context("spawn" if os.name == "nt" else "fork")
            pool = ctx.Pool(self.num_workers)
        tracer = current_tracer()
        try:
            with tracer.span(
                f"job:{job.name}", kind="job", job=job.name, runner="multiprocess",
                workers=self.num_workers,
            ) as job_span:
                if plan is not None:
                    plan.trigger_barrier("job_start", counters)

                splits = [
                    list(inputs[start:stop])
                    for start, stop in chunk_indices(len(inputs), conf.num_map_tasks)
                ]
                with tracer.span("map", kind="stage"):
                    map_states = self._run_phase(
                        pool,
                        effective,
                        kind="map",
                        payloads=splits,
                        records_in=[len(s) for s in splits],
                        policy=policy,
                        plan=plan,
                        checkpoint=ckpt,
                        counters=counters,
                    )
                map_outputs = [s.output for s in map_states]
                for state in map_states:
                    counters.merge(state.counters)
                    if trace is not None:
                        trace.map_tasks.append(self._task_trace(state, "map"))
                counters.increment("job", "map_input_records", len(inputs))
                counters.increment(
                    "job", "map_output_records", sum(len(o) for o in map_outputs)
                )

                if plan is not None:
                    plan.trigger_barrier("map_end", counters)

                # The try/finally spans shuffle AND reduce: spill segments
                # must be removed even when finish() itself fails
                # (unrepairable bit-rot), not just on reducer errors.
                spill: SpillingShuffle | None = None
                try:
                    with tracer.span("shuffle", kind="stage") as shuffle_span:
                        if job.wire is not None:
                            from repro.mapreduce.runner import _through_wire

                            map_outputs = _through_wire(
                                job, map_outputs, counters, trace
                            )
                        if conf.spill_threshold_bytes is not None:
                            spill = SpillingShuffle(
                                conf.num_reduce_tasks,
                                job.partitioner,
                                spill_threshold_bytes=conf.spill_threshold_bytes,
                                job_name=job.name,
                                fault_plan=plan,
                                counters=counters,
                            )
                            for out in map_outputs:
                                spill.add_task_output(out)
                            partitions, moved = spill.finish()
                            shuffle_span.attrs["spill_segments"] = (
                                spill.spill_segments
                            )
                            shuffle_span.attrs["spill_bytes"] = spill.spill_bytes
                        else:
                            partitions, moved = shuffle(
                                map_outputs, conf.num_reduce_tasks, job.partitioner
                            )
                        counters.increment("job", "shuffle_records", moved)
                        if trace is not None and job.wire is None:
                            trace.shuffle_bytes = sum(
                                _approx_bytes(p) for p in map_outputs
                            )
                        shuffle_span.attrs["records"] = moved

                    with tracer.span("reduce", kind="stage"):
                        reduce_states = self._run_phase(
                            pool,
                            effective,
                            kind="reduce",
                            payloads=partitions,
                            records_in=[
                                partition_num_records(p) for p in partitions
                            ],
                            policy=policy,
                            plan=plan,
                            checkpoint=ckpt,
                            counters=counters,
                        )
                    output: list[tuple] = []
                    reduce_output_records = 0
                    for state in reduce_states:
                        counters.merge(state.counters)
                        if trace is not None:
                            trace.reduce_tasks.append(
                                self._task_trace(state, "reduce")
                            )
                        reduce_output_records += len(state.output)
                        if output_sink is not None:
                            for record in state.output:
                                output_sink(record)
                        else:
                            output.extend(state.output)
                    counters.increment(
                        "job", "reduce_output_records", reduce_output_records
                    )
                finally:
                    if spill is not None:
                        spill.close()

                if plan is not None:
                    plan.trigger_barrier("job_end", counters)

                if trace is not None:
                    job_span.attrs["shuffle_bytes"] = trace.shuffle_bytes
                elif job.wire is not None:
                    job_span.attrs["shuffle_bytes"] = counters.get("wire", "bytes_wire")
                tracer.metrics.record_counters(counters)
        finally:
            if pool is not None:
                pool.terminate()
                pool.join()

        if conf.sort_output and output_sink is None:
            # Shares shuffle.sort_records so the mixed-type fallback
            # ordering cannot drift from the shuffle's grouping order.
            output = sort_records(output)
        return JobResult(output=output, counters=counters, trace=trace)

    # ---- phase execution ---------------------------------------------------

    def _run_phase(
        self,
        pool,
        job: MapReduceJob,
        *,
        kind: str,
        payloads: Sequence[object],
        records_in: Sequence[int],
        policy: RetryPolicy,
        plan: FaultPlan | None,
        checkpoint: JobCheckpoint | None,
        counters: Counters,
    ) -> list[_TaskState]:
        tag = "m" if kind == "map" else "r"
        states = [
            _TaskState(
                index=i,
                task_id=f"{job.name}-{tag}{i:04d}",
                payload=payload,
                records_in=records_in[i],
            )
            for i, payload in enumerate(payloads)
        ]

        tracer = current_tracer()
        phase_span = tracer.current_span()
        pending: list[_TaskState] = []
        for state in states:
            if checkpoint is not None and checkpoint.has(state.task_id):
                payload = checkpoint.load(state.task_id)
                state.output = payload["output"]
                state.counters = payload["counters"]
                saved: TaskTrace = payload["trace"]
                state.wall = saved.cpu_seconds
                state.attempts_launched = saved.attempts
                state.failures = list(saved.failures)
                state.speculative_win = saved.speculative_win
                state.done = True
                state.recovered = True
                counters.increment("fault", "tasks_recovered_from_checkpoint")
                if tracer.enabled:
                    span = tracer.start(
                        f"task:{state.task_id}", kind="task", parent=phase_span,
                        task_id=state.task_id, task_kind=kind, recovered=True,
                    )
                    tracer.finish(span)
                if plan is not None:
                    plan.note_task_complete()
            else:
                pending.append(state)

        if pool is None:
            self._run_phase_inline(
                job,
                kind,
                pending,
                policy=policy,
                plan=plan,
                counters=counters,
            )
        else:
            self._run_phase_pool(
                pool,
                job,
                kind,
                pending,
                policy=policy,
                plan=plan,
                counters=counters,
            )

        for state in pending:
            if checkpoint is not None:
                checkpoint.save(
                    state.task_id,
                    {
                        "output": state.output,
                        "counters": state.counters,
                        "trace": self._task_trace(state, kind),
                    },
                )
            if plan is not None:
                plan.note_task_complete()
        return states

    def _run_phase_inline(
        self,
        job: MapReduceJob,
        kind: str,
        pending: list[_TaskState],
        *,
        policy: RetryPolicy,
        plan: FaultPlan | None,
        counters: Counters,
    ) -> None:
        """Single-worker degradation: serial attempt loop, same semantics."""
        tracer = current_tracer()
        for state in pending:
            check_cancelled(state.task_id)
            speculative_retry = False
            with tracer.span(
                f"task:{state.task_id}", kind="task",
                task_id=state.task_id, task_kind=kind,
            ) as task_span:
                while True:
                    state.attempts_launched += 1
                    attempt = state.attempts_launched
                    started_rel = tracer.now()
                    obs_payload = None
                    try:
                        out, task_counters, checksum, wall, obs_payload = (
                            _attempt_worker(
                                (
                                    job,
                                    kind,
                                    state.index,
                                    attempt,
                                    state.payload,
                                    plan,
                                    state.task_id,
                                    policy.timeout,
                                    tracer.enabled,
                                )
                            )
                        )
                        self._verify_checksum(out, checksum, state.task_id, attempt)
                    except FaultError as exc:
                        injected = (
                            plan.fault_for(job.name, kind, state.index, attempt)
                            if plan is not None
                            else None
                        )
                        self._attempt_telemetry(
                            tracer, task_span, obs_payload, started_rel, attempt,
                            state.task_id, error=str(exc),
                            fault=injected.kind if injected else None,
                            speculative=speculative_retry,
                        )
                        self._note_failure(state, str(exc), policy, counters, exc)
                    except Exception as exc:
                        if policy.max_attempts == 1:
                            raise
                        self._attempt_telemetry(
                            tracer, task_span, obs_payload, started_rel, attempt,
                            state.task_id, error=f"{type(exc).__name__}: {exc}",
                            speculative=speculative_retry,
                        )
                        self._note_failure(
                            state, f"{type(exc).__name__}: {exc}", policy,
                            counters, exc,
                        )
                    else:
                        self._attempt_telemetry(
                            tracer, task_span, obs_payload, started_rel, attempt,
                            state.task_id, speculative=speculative_retry,
                            win=speculative_retry,
                        )
                        state.output = out
                        state.counters = task_counters
                        state.wall = wall
                        state.done = True
                        if speculative_retry:
                            state.speculative_win = True
                            counters.increment("fault", "speculative_wins")
                        break
                    speculative_retry = policy.speculative_margin > 0
                    delay = policy.backoff_delay(attempt)
                    if delay > 0:
                        time.sleep(delay)

    def _run_phase_pool(
        self,
        pool,
        job: MapReduceJob,
        kind: str,
        pending: list[_TaskState],
        *,
        policy: RetryPolicy,
        plan: FaultPlan | None,
        counters: Counters,
    ) -> None:
        """Asynchronous attempt scheduling with timeouts and speculation."""
        tracer = current_tracer()
        phase_span = tracer.current_span()
        by_index = {s.index: s for s in pending}
        active: list[_Attempt] = []
        next_backoff_at: dict[int, float] = {}
        completed_durations: list[float] = []
        task_spans: dict[int, object] = {}
        if tracer.enabled:
            for state in pending:
                task_spans[state.index] = tracer.start(
                    f"task:{state.task_id}", kind="task", parent=phase_span,
                    task_id=state.task_id, task_kind=kind,
                )

        def submit(state: _TaskState, *, speculative: bool) -> None:
            state.attempts_launched += 1
            attempt_no = state.attempts_launched
            args = (
                job,
                kind,
                state.index,
                attempt_no,
                state.payload,
                plan,
                state.task_id,
                None,
                tracer.enabled,
            )
            active.append(
                _Attempt(
                    index=state.index,
                    number=attempt_no,
                    result=pool.apply_async(_attempt_worker, (args,)),
                    started=time.monotonic(),
                    started_rel=tracer.now(),
                    speculative=speculative,
                )
            )

        for state in pending:
            submit(state, speculative=False)

        remaining = len(pending)
        while remaining > 0:
            check_cancelled(f"{kind} phase poll")
            progressed = False
            now = time.monotonic()
            for att in list(active):
                state = by_index[att.index]
                if att.result.ready():
                    active.remove(att)
                    progressed = True
                    if state.done or att.abandoned:
                        continue  # loser of a race / killed attempt: discard
                    obs_payload = None
                    try:
                        out, task_counters, checksum, wall, obs_payload = (
                            att.result.get()
                        )
                        self._verify_checksum(
                            out, checksum, state.task_id, att.number
                        )
                    except FaultError as exc:
                        injected = (
                            plan.fault_for(
                                job.name, kind, att.index, att.number
                            )
                            if plan is not None
                            else None
                        )
                        self._attempt_telemetry(
                            tracer, task_spans.get(att.index), obs_payload,
                            att.started_rel, att.number, state.task_id,
                            error=str(exc),
                            fault=injected.kind if injected else None,
                            speculative=att.speculative,
                        )
                        self._handle_pool_failure(
                            state, str(exc), policy, counters, exc, active,
                            next_backoff_at,
                        )
                    except Exception as exc:
                        if policy.max_attempts == 1:
                            raise
                        self._attempt_telemetry(
                            tracer, task_spans.get(att.index), obs_payload,
                            att.started_rel, att.number, state.task_id,
                            error=f"{type(exc).__name__}: {exc}",
                            speculative=att.speculative,
                        )
                        self._handle_pool_failure(
                            state,
                            f"{type(exc).__name__}: {exc}",
                            policy,
                            counters,
                            exc,
                            active,
                            next_backoff_at,
                        )
                    else:
                        self._attempt_telemetry(
                            tracer, task_spans.get(att.index), obs_payload,
                            att.started_rel, att.number, state.task_id,
                            speculative=att.speculative, win=att.speculative,
                        )
                        if tracer.enabled and att.index in task_spans:
                            tracer.finish(task_spans[att.index])
                        state.output = out
                        state.counters = task_counters
                        state.wall = wall
                        state.done = True
                        remaining -= 1
                        completed_durations.append(wall)
                        if att.speculative:
                            state.speculative_win = True
                            counters.increment("fault", "speculative_wins")
                    continue
                if state.done or att.abandoned:
                    continue
                runtime = now - att.started
                if policy.timeout is not None and runtime > policy.timeout:
                    # Abandon: the in-flight result will be discarded on
                    # arrival (the analogue of killing the attempt).
                    att.abandoned = True
                    progressed = True
                    self._attempt_telemetry(
                        tracer, task_spans.get(att.index), None,
                        att.started_rel, att.number, state.task_id,
                        error=f"attempt abandoned after task_timeout="
                              f"{policy.timeout}s",
                        speculative=att.speculative,
                    )
                    self._handle_pool_failure(
                        state,
                        f"attempt abandoned after task_timeout={policy.timeout}s",
                        policy,
                        counters,
                        None,
                        active,
                        next_backoff_at,
                    )
                    continue
                if (
                    policy.speculative_margin > 0
                    and completed_durations
                    and state.attempts_launched < policy.max_attempts
                    and sum(
                        1
                        for a in active
                        if a.index == att.index and not a.abandoned
                    )
                    < 2
                    and runtime
                    > policy.speculative_margin * _median(completed_durations)
                ):
                    submit(state, speculative=True)
                    counters.increment("fault", "speculative_attempts")
                    progressed = True

            # Launch retries whose backoff has elapsed.
            for index, when in list(next_backoff_at.items()):
                if now >= when:
                    del next_backoff_at[index]
                    submit(by_index[index], speculative=False)
                    progressed = True

            if not progressed:
                time.sleep(_POLL_INTERVAL)

    @staticmethod
    def _attempt_telemetry(
        tracer,
        task_span,
        obs_payload: dict | None,
        started_rel: float,
        attempt: int,
        task_id: str,
        *,
        error: str | None = None,
        fault: str | None = None,
        speculative: bool = False,
        win: bool = False,
    ) -> None:
        """Land one attempt's spans in the driver tracer.

        Successful attempts ship their own worker-recorded spans
        (``obs_payload``) which are merged under the driver-side task span
        with clocks rebased; crashed/abandoned attempts produced nothing,
        so a span is synthesised from the driver-observed window and the
        injected fault's kind (re-read from the deterministic plan) is
        tagged on.  Either way, failed and retried attempts end up as
        sibling ``attempt`` spans under one ``task`` span.
        """
        if not tracer.enabled:
            return
        if obs_payload is not None:
            merged = tracer.merge_payload(obs_payload, parent=task_span)
            parent_id = task_span.span_id if task_span is not None else None
            spans = [s for s in merged if s.parent_id == parent_id] or merged
        else:
            span = tracer.start(
                f"attempt:{attempt}", kind="attempt", parent=task_span,
                start_s=started_rel, attempt=attempt, task_id=task_id,
            )
            tracer.finish(span)
            spans = [span]
        for span in spans:
            if speculative:
                span.attrs["speculative"] = True
            if win:
                span.attrs["speculative_win"] = True
            if fault is not None:
                span.attrs.setdefault("fault", fault)
            if error is not None:
                span.status = "error"
                span.attrs["error"] = error

    @staticmethod
    def _note_failure(
        state: _TaskState,
        reason: str,
        policy: RetryPolicy,
        counters: Counters,
        cause: Exception | None,
    ) -> None:
        """Inline-path failure accounting (mirrors the serial runner)."""
        state.failures.append(reason)
        counters.increment("fault", "attempts_failed")
        if state.attempts_launched >= policy.max_attempts:
            raise TaskFailedError(state.task_id, state.failures) from cause
        counters.increment("fault", "task_retries")

    def _handle_pool_failure(
        self,
        state: _TaskState,
        reason: str,
        policy: RetryPolicy,
        counters: Counters,
        cause: Exception | None,
        active: list[_Attempt],
        next_backoff_at: dict[int, float],
    ) -> None:
        state.failures.append(reason)
        counters.increment("fault", "attempts_failed")
        has_live_attempt = any(
            a.index == state.index and not a.abandoned for a in active
        )
        if state.attempts_launched >= policy.max_attempts and not has_live_attempt:
            raise TaskFailedError(state.task_id, state.failures) from cause
        if state.attempts_launched < policy.max_attempts and not has_live_attempt:
            counters.increment("fault", "task_retries")
            delay = policy.backoff_delay(state.attempts_launched)
            next_backoff_at[state.index] = time.monotonic() + delay

    @staticmethod
    def _verify_checksum(out, checksum, task_id: str, attempt: int) -> None:
        if checksum is None:
            return
        if records_checksum(out) != checksum:
            raise FaultError(
                "corrupted shuffle partition (checksum mismatch)",
                task_id=task_id,
                attempt=attempt,
            )

    @staticmethod
    def _task_trace(state: _TaskState, kind: str) -> TaskTrace:
        return TaskTrace(
            task_id=state.task_id,
            kind=kind,
            records_in=state.records_in,
            records_out=len(state.output),
            bytes_out=_approx_bytes(state.output),
            cpu_seconds=state.wall,
            attempts=state.attempts_launched,
            failures=list(state.failures),
            speculative_win=state.speculative_win,
            recovered=state.recovered,
        )
