"""Deterministic random-number-generator plumbing.

Every stochastic component of the library (hash-family construction, genome
synthesis, read simulation, error injection) accepts either an integer seed
or a ready-made :class:`numpy.random.Generator`.  These helpers normalise
that input and derive stable child seeds so that a single top-level seed
reproduces an entire experiment bit-for-bit, regardless of evaluation
order.
"""

from __future__ import annotations

import hashlib

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces a fresh nondeterministic generator; an ``int`` seeds a
    new PCG64 generator; an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable 63-bit child seed from ``base_seed`` and labels.

    Uses BLAKE2 over the textual labels so derived streams are independent
    of each other and of dictionary/iteration order.  The same
    ``(base_seed, labels)`` pair always yields the same child seed.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(base_seed)).encode())
    for label in labels:
        h.update(b"\x1f")
        h.update(str(label).encode())
    return int.from_bytes(h.digest(), "little") & ((1 << 63) - 1)


def spawn_rngs(seed: int, n: int, *labels: object) -> list[np.random.Generator]:
    """Create ``n`` independent generators derived from ``seed``."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return [ensure_rng(derive_seed(seed, *labels, i)) for i in range(n)]
