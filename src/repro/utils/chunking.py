"""Index partitioning used by the parallel runners and the row-partitioned
pairwise similarity computation."""

from __future__ import annotations


def even_splits(n: int, parts: int) -> list[int]:
    """Split ``n`` items into ``parts`` sizes differing by at most one.

    Returns a list of ``parts`` sizes summing to ``n``.  Larger chunks come
    first, mirroring Hadoop's block-assignment behaviour.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    base, extra = divmod(n, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def chunk_indices(n: int, parts: int) -> list[tuple[int, int]]:
    """Return ``(start, stop)`` half-open ranges covering ``range(n)``.

    Empty ranges are included when ``parts > n`` so callers can zip the
    result against a fixed worker pool.
    """
    sizes = even_splits(n, parts)
    out: list[tuple[int, int]] = []
    start = 0
    for size in sizes:
        out.append((start, start + size))
        start += size
    return out
