"""Shared utilities: deterministic RNG handling, timing, chunking."""

from repro.utils.rng import derive_seed, ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch, format_duration
from repro.utils.chunking import chunk_indices, even_splits

__all__ = [
    "derive_seed",
    "ensure_rng",
    "spawn_rngs",
    "Stopwatch",
    "format_duration",
    "chunk_indices",
    "even_splits",
]
