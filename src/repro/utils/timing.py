"""Wall-clock measurement helpers used by the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    Example::

        sw = Stopwatch()
        with sw.lap("sketch"):
            compute_sketches(...)
        with sw.lap("cluster"):
            cluster(...)
        print(sw.laps["sketch"], sw.total)
    """

    laps: dict[str, float] = field(default_factory=dict)

    class _Lap:
        def __init__(self, sw: "Stopwatch", name: str):
            self._sw = sw
            self._name = name
            self._start = 0.0

        def __enter__(self) -> "Stopwatch._Lap":
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc) -> None:
            elapsed = time.perf_counter() - self._start
            self._sw.laps[self._name] = self._sw.laps.get(self._name, 0.0) + elapsed

    def lap(self, name: str) -> "Stopwatch._Lap":
        """Context manager accumulating elapsed time under ``name``."""
        return Stopwatch._Lap(self, name)

    @property
    def total(self) -> float:
        """Sum of all recorded laps in seconds."""
        return sum(self.laps.values())


def format_duration(seconds: float) -> str:
    """Render seconds as the paper's ``XmYYs`` / ``Y.Ys`` style strings."""
    if seconds < 0:
        raise ValueError("duration cannot be negative")
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, rem = divmod(seconds, 60.0)
    return f"{int(minutes)}m {rem:02.0f}s"
