"""Pairwise sequence alignment.

The paper evaluates clusterings with "average global sequence alignment
similarity" (W.Sim, Section IV-B); DOTUR/Mothur-style baselines cluster on
full alignment distances and ESPRIT on k-mer distance.  This package
implements global (Needleman–Wunsch) alignment with traceback, a banded
variant, and the ESPRIT k-mer distance.
"""

from repro.align.global_align import (
    AlignmentResult,
    ScoringScheme,
    global_align,
    global_identity,
)
from repro.align.banded import banded_identity
from repro.align.affine import AffineScheme, affine_align, affine_identity
from repro.align.kmerdist import kmer_distance, kmer_distance_matrix

__all__ = [
    "AlignmentResult",
    "ScoringScheme",
    "global_align",
    "global_identity",
    "banded_identity",
    "AffineScheme",
    "affine_align",
    "affine_identity",
    "kmer_distance",
    "kmer_distance_matrix",
]
