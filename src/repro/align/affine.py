"""Affine-gap global alignment (Gotoh's algorithm).

Linear gap penalties over-punish the long indels sequencers and evolution
actually produce; the standard remedy is the affine cost
``open + (length-1) * extend``.  Gotoh's three-matrix recurrence:

    M[i,j] = max(M, Ix, Iy)[i-1,j-1] + s(a_i, b_j)
    Ix[i,j] = max(M[i-1,j] + open, Ix[i-1,j] + extend)     (gap in b)
    Iy[i,j] = max(M[i,j-1] + open, Iy[i,j-1] + extend)     (gap in a)

Used as an optional scoring scheme for the W.Sim evaluator and exposed
for downstream analyses; the default linear scheme elsewhere matches the
paper's unspecified "global alignment" and is cross-validated against
this implementation in tests (affine with extend == open reduces to
linear).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SequenceError
from repro.align.global_align import AlignmentResult

_NEG = -1e18


@dataclass(frozen=True)
class AffineScheme:
    """Affine-gap scoring: match/mismatch plus open/extend penalties."""

    match: float = 1.0
    mismatch: float = -1.0
    gap_open: float = -2.0
    gap_extend: float = -0.5

    def __post_init__(self) -> None:
        if self.gap_open > 0 or self.gap_extend > 0:
            raise SequenceError("gap penalties must be <= 0")
        if self.gap_extend < self.gap_open:
            raise SequenceError(
                "gap_extend must be >= gap_open (extending cannot cost more "
                "than opening)"
            )
        if self.match <= self.mismatch:
            raise SequenceError("match score must exceed mismatch score")


def affine_align(
    seq_a: str, seq_b: str, scheme: AffineScheme | None = None
) -> AlignmentResult:
    """Optimal global alignment under affine gap costs, with traceback."""
    if not seq_a or not seq_b:
        raise SequenceError("cannot align empty sequences")
    scheme = scheme or AffineScheme()
    a = seq_a.upper()
    b = seq_b.upper()
    n, m = len(a), len(b)
    go, ge = scheme.gap_open, scheme.gap_extend

    M = np.full((n + 1, m + 1), _NEG)
    Ix = np.full((n + 1, m + 1), _NEG)  # gap in b (vertical)
    Iy = np.full((n + 1, m + 1), _NEG)  # gap in a (horizontal)
    M[0, 0] = 0.0
    for i in range(1, n + 1):
        Ix[i, 0] = go + ge * (i - 1)
    for j in range(1, m + 1):
        Iy[0, j] = go + ge * (j - 1)

    for i in range(1, n + 1):
        ai = a[i - 1]
        for j in range(1, m + 1):
            sub = scheme.match if ai == b[j - 1] else scheme.mismatch
            M[i, j] = max(M[i - 1, j - 1], Ix[i - 1, j - 1], Iy[i - 1, j - 1]) + sub
            Ix[i, j] = max(M[i - 1, j] + go, Ix[i - 1, j] + ge)
            Iy[i, j] = max(M[i, j - 1] + go, Iy[i, j - 1] + ge)

    # Traceback over the three matrices.
    out_a: list[str] = []
    out_b: list[str] = []
    matches = 0
    i, j = n, m
    state = int(np.argmax([M[n, m], Ix[n, m], Iy[n, m]]))  # 0=M 1=Ix 2=Iy
    score = float((M[n, m], Ix[n, m], Iy[n, m])[state])
    while i > 0 or j > 0:
        if state == 0 and i > 0 and j > 0:
            sub = scheme.match if a[i - 1] == b[j - 1] else scheme.mismatch
            prev = [M[i - 1, j - 1], Ix[i - 1, j - 1], Iy[i - 1, j - 1]]
            state_next = int(np.argmax(prev))
            out_a.append(a[i - 1])
            out_b.append(b[j - 1])
            if a[i - 1] == b[j - 1]:
                matches += 1
            i -= 1
            j -= 1
            state = state_next
        elif state == 1 and i > 0:
            out_a.append(a[i - 1])
            out_b.append("-")
            came_from_m = np.isclose(Ix[i, j], M[i - 1, j] + go)
            i -= 1
            state = 0 if came_from_m else 1
        elif state == 2 and j > 0:
            out_a.append("-")
            out_b.append(b[j - 1])
            came_from_m = np.isclose(Iy[i, j], M[i, j - 1] + go)
            j -= 1
            state = 0 if came_from_m else 2
        else:
            # Boundary: forced into the remaining pure-gap prefix.
            state = 1 if i > 0 else 2

    return AlignmentResult(
        aligned_a="".join(reversed(out_a)),
        aligned_b="".join(reversed(out_b)),
        score=score,
        matches=matches,
        length=len(out_a),
    )


def affine_identity(
    seq_a: str, seq_b: str, scheme: AffineScheme | None = None
) -> float:
    """Identity under the affine-gap optimum."""
    return affine_align(seq_a, seq_b, scheme).identity
