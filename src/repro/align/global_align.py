"""Global (Needleman–Wunsch) alignment with traceback.

The DP score rows are computed with vectorised NumPy: the in-row (gap from
left) dependency is resolved with the running-maximum identity

    row[j] = max_{l <= j} tmp[l] + g * (j - l)
           = g*j + cummax(tmp - g*arange)[j]

so each row costs O(m) vector work instead of an O(m) Python loop; the
pointer matrix is rebuilt from the scores during traceback.  Identity is
``matches / alignment_length``, the usual definition for the "percent
similarity" numbers the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SequenceError


@dataclass(frozen=True)
class ScoringScheme:
    """Linear gap-penalty scoring."""

    match: float = 1.0
    mismatch: float = -1.0
    gap: float = -1.0

    def __post_init__(self) -> None:
        if self.gap > 0:
            raise SequenceError(f"gap penalty must be <= 0, got {self.gap}")
        if self.match <= self.mismatch:
            raise SequenceError(
                "match score must exceed mismatch score "
                f"({self.match} <= {self.mismatch})"
            )


@dataclass(frozen=True)
class AlignmentResult:
    """Aligned strings plus score and identity."""

    aligned_a: str
    aligned_b: str
    score: float
    matches: int
    length: int

    @property
    def identity(self) -> float:
        """Fraction of alignment columns that are exact matches."""
        return self.matches / self.length if self.length else 0.0


def _score_matrix(a: np.ndarray, b: np.ndarray, scheme: ScoringScheme) -> np.ndarray:
    n, m = a.size, b.size
    g = scheme.gap
    H = np.empty((n + 1, m + 1), dtype=np.float64)
    H[0] = g * np.arange(m + 1)
    H[:, 0] = g * np.arange(n + 1)
    j_idx = np.arange(1, m + 1, dtype=np.float64)
    for i in range(1, n + 1):
        sub = np.where(b == a[i - 1], scheme.match, scheme.mismatch)
        tmp = np.maximum(H[i - 1, :-1] + sub, H[i - 1, 1:] + g)
        # Resolve the left-gap chain with a prefix max (see module doc):
        # row[j] = g*j + max over l <= j of (candidate[l] - g*l), where the
        # l = 0 candidate is the row-head boundary value.
        head = np.concatenate(([H[i, 0]], tmp - g * j_idx))
        run = np.maximum.accumulate(head)
        H[i, 1:] = g * j_idx + run[1:]
    return H


def global_align(
    seq_a: str, seq_b: str, scheme: ScoringScheme | None = None
) -> AlignmentResult:
    """Optimal global alignment of two DNA strings.

    The traceback's tie-break among co-optimal alignments (diagonal, then
    gap-in-b, then gap-in-a) is not invariant under swapping the inputs:
    equal-score alignments can differ in length, which would make
    ``identity`` depend on argument order.  The pair is therefore aligned
    in a canonical order and mirrored back, so ``global_align(a, b)`` and
    ``global_align(b, a)`` always describe the same alignment.

    Raises :class:`~repro.errors.SequenceError` for empty inputs.
    """
    if not seq_a or not seq_b:
        raise SequenceError("cannot align empty sequences")
    if (len(seq_b), seq_b.upper()) < (len(seq_a), seq_a.upper()):
        r = global_align(seq_b, seq_a, scheme)
        return AlignmentResult(
            aligned_a=r.aligned_b,
            aligned_b=r.aligned_a,
            score=r.score,
            matches=r.matches,
            length=r.length,
        )
    scheme = scheme or ScoringScheme()
    a = np.frombuffer(seq_a.upper().encode("ascii"), dtype=np.uint8)
    b = np.frombuffer(seq_b.upper().encode("ascii"), dtype=np.uint8)
    H = _score_matrix(a, b, scheme)

    # Traceback from scores (diagonal preferred, then up, then left).
    i, j = a.size, b.size
    out_a: list[str] = []
    out_b: list[str] = []
    matches = 0
    g = scheme.gap
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            sub = scheme.match if a[i - 1] == b[j - 1] else scheme.mismatch
            if np.isclose(H[i, j], H[i - 1, j - 1] + sub):
                out_a.append(seq_a[i - 1])
                out_b.append(seq_b[j - 1])
                if a[i - 1] == b[j - 1]:
                    matches += 1
                i -= 1
                j -= 1
                continue
        if i > 0 and np.isclose(H[i, j], H[i - 1, j] + g):
            out_a.append(seq_a[i - 1])
            out_b.append("-")
            i -= 1
            continue
        out_a.append("-")
        out_b.append(seq_b[j - 1])
        j -= 1

    aligned_a = "".join(reversed(out_a))
    aligned_b = "".join(reversed(out_b))
    return AlignmentResult(
        aligned_a=aligned_a,
        aligned_b=aligned_b,
        score=float(H[a.size, b.size]),
        matches=matches,
        length=len(aligned_a),
    )


def global_identity(
    seq_a: str, seq_b: str, scheme: ScoringScheme | None = None
) -> float:
    """Global-alignment identity in [0, 1] (convenience wrapper)."""
    return global_align(seq_a, seq_b, scheme).identity
