"""k-mer distance (the ESPRIT shortcut).

ESPRIT avoids full alignments by comparing k-mer count vectors: the
distance between sequences ``u`` and ``v`` with k-mer count vectors
``c_u``, ``c_v`` is

    d(u, v) = 1 - sum_w min(c_u[w], c_v[w]) / (min(|u|, |v|) - k + 1)

which upper-bounds alignment distance and is O(|u| + |v|) to evaluate.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import KmerError
from repro.seq.kmers import kmer_counts


def kmer_distance(seq_a: str, seq_b: str, k: int = 6) -> float:
    """ESPRIT-style k-mer distance in [0, 1] (0 = identical profiles)."""
    if len(seq_a) < k or len(seq_b) < k:
        raise KmerError(
            f"both sequences must be at least k={k} long "
            f"(got {len(seq_a)} and {len(seq_b)})"
        )
    ca = kmer_counts(seq_a, k, strict=False)
    cb = kmer_counts(seq_b, k, strict=False)
    shared = sum(min(ca[w], cb[w]) for w in ca.keys() & cb.keys())
    denom = min(len(seq_a), len(seq_b)) - k + 1
    if denom <= 0:
        raise KmerError("sequences too short for k-mer distance")
    return 1.0 - shared / denom


def kmer_distance_matrix(sequences: Sequence[str], k: int = 6) -> np.ndarray:
    """All-pairs k-mer distance matrix (symmetric, zero diagonal)."""
    n = len(sequences)
    counts = [kmer_counts(s, k, strict=False) for s in sequences]
    lengths = [len(s) for s in sequences]
    out = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        ci = counts[i]
        for j in range(i + 1, n):
            cj = counts[j]
            shared = sum(min(ci[w], cj[w]) for w in ci.keys() & cj.keys())
            denom = min(lengths[i], lengths[j]) - k + 1
            d = 1.0 - shared / denom if denom > 0 else 1.0
            out[i, j] = out[j, i] = d
    return out
