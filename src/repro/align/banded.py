"""Banded global alignment.

For near-identical sequences (the common case inside a cluster) the
optimal alignment path stays near the main diagonal; restricting the DP to
a band of half-width ``band`` makes identity computation O(n * band)
instead of O(n * m).  Used by the W.Sim evaluator when sampling many pairs
and by the UCLUST/CD-HIT/DOTUR baselines.

Falls back to the exact full DP when the length difference exceeds the
band (a banded DP cannot even reach the corner in that case).

The inner loop is deliberately plain Python over flat lists — profiling
showed per-cell dict lookups and small-array NumPy overhead both lose to
simple list indexing at these sequence lengths (tens to ~1000 bp).
"""

from __future__ import annotations

from repro.errors import SequenceError
from repro.align.global_align import ScoringScheme, global_align

_NEG = float("-inf")


def banded_identity(
    seq_a: str,
    seq_b: str,
    *,
    band: int = 32,
    scheme: ScoringScheme | None = None,
) -> float:
    """Identity of the best global alignment restricted to a diagonal band.

    The returned value is ``matches / alignment_length`` along the banded
    optimum.  ``band`` is the half-width in cells.
    """
    if band < 1:
        raise SequenceError(f"band must be >= 1, got {band}")
    if not seq_a or not seq_b:
        raise SequenceError("cannot align empty sequences")
    if abs(len(seq_a) - len(seq_b)) > band:
        return global_align(seq_a, seq_b, scheme).identity
    scheme = scheme or ScoringScheme()
    a = seq_a.upper()
    b = seq_b.upper()
    n, m = len(a), len(b)
    match, mismatch, gap = scheme.match, scheme.mismatch, scheme.gap

    # State per band cell, offset d = j - (i - band), valid j in
    # [max(0, i-band), min(m, i+band)].  Three parallel lists: score,
    # matches along best path, alignment length along best path.
    width = 2 * band + 1

    # Row i = 0: cells (0, j) for j in [0, band].
    prev_lo = 0
    prev_score = [_NEG] * (width + 1)
    prev_match = [0] * (width + 1)
    prev_len = [0] * (width + 1)
    for j in range(0, min(m, band) + 1):
        prev_score[j] = gap * j
        prev_len[j] = j

    for i in range(1, n + 1):
        lo = max(0, i - band)
        hi = min(m, i + band)
        cur_score = [_NEG] * (hi - lo + 1)
        cur_match = [0] * (hi - lo + 1)
        cur_len = [0] * (hi - lo + 1)
        ai = a[i - 1]
        for idx in range(hi - lo + 1):
            j = lo + idx
            if j == 0:
                cur_score[idx] = gap * i
                cur_match[idx] = 0
                cur_len[idx] = i
                continue
            # Ties between equal-score paths are broken lexicographically on
            # (score, matches, -length).  The tuple is invariant under
            # transposition (swapping the sequences swaps the "up" and
            # "left" candidates but not their tuples), which keeps the
            # reported identity symmetric in its arguments.
            best = _NEG
            best_m = 0
            best_l = 0
            # diagonal: prev row cell (i-1, j-1)
            pd = j - 1 - prev_lo
            if 0 <= pd < len(prev_score) and prev_score[pd] > _NEG:
                is_match = ai == b[j - 1]
                cand = prev_score[pd] + (match if is_match else mismatch)
                cand_m = prev_match[pd] + (1 if is_match else 0)
                cand_l = prev_len[pd] + 1
                if (cand, cand_m, -cand_l) > (best, best_m, -best_l):
                    best, best_m, best_l = cand, cand_m, cand_l
            # up: prev row cell (i-1, j)
            pu = j - prev_lo
            if 0 <= pu < len(prev_score) and prev_score[pu] > _NEG:
                cand = prev_score[pu] + gap
                cand_m = prev_match[pu]
                cand_l = prev_len[pu] + 1
                if (cand, cand_m, -cand_l) > (best, best_m, -best_l):
                    best, best_m, best_l = cand, cand_m, cand_l
            # left: current row cell (i, j-1)
            if idx > 0 and cur_score[idx - 1] > _NEG:
                cand = cur_score[idx - 1] + gap
                cand_m = cur_match[idx - 1]
                cand_l = cur_len[idx - 1] + 1
                if (cand, cand_m, -cand_l) > (best, best_m, -best_l):
                    best, best_m, best_l = cand, cand_m, cand_l
            cur_score[idx] = best
            cur_match[idx] = best_m
            cur_len[idx] = best_l
        prev_score, prev_match, prev_len = cur_score, cur_match, cur_len
        prev_lo = lo

    last = m - prev_lo
    if not (0 <= last < len(prev_score)) or prev_score[last] == _NEG:
        # Band never reached the corner (shouldn't happen given the guard).
        return global_align(seq_a, seq_b, scheme).identity
    total = prev_len[last]
    return prev_match[last] / total if total else 0.0
