"""The Table I environmental 16S samples (Sogin et al. seawater data).

The real samples are 454 amplicon libraries from North Atlantic Deep
Water and Axial Seamount vents; we regenerate synthetic equivalents that
match the published metadata (sample ids, read counts, ~60 bp mean length)
and the *rare biosphere* community structure the study is famous for: a
few abundant OTUs plus a long tail of rare ones, which is what drives the
~1 cluster per 8–10 reads ratio visible in Table V.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.datasets.sixteen_s import SixteenSModel, amplicon_reads
from repro.seq.error_models import PyrosequencingErrorModel
from repro.seq.records import SequenceRecord
from repro.utils.rng import derive_seed, ensure_rng


@dataclass(frozen=True)
class EnvironmentalSampleSpec:
    """One row of Table I."""

    sid: str
    site: str
    latitude: float
    longitude: float
    depth_m: int
    temperature_c: float
    num_reads: int


#: Table I verbatim.
SOGIN_SAMPLES = (
    EnvironmentalSampleSpec("53R", "Labrador seawater", 58.300, -29.133, 1400, 3.5, 11218),
    EnvironmentalSampleSpec("55R", "Oxygen minimum", 58.300, -29.133, 500, 7.1, 8680),
    EnvironmentalSampleSpec("112R", "Lower deep water", 50.400, -25.000, 4121, 2.3, 11132),
    EnvironmentalSampleSpec("115R", "Oxygen minimum", 50.400, -25.000, 550, 7.0, 13441),
    EnvironmentalSampleSpec("137", "Labrador seawater", 60.900, -38.516, 1710, 3.0, 12259),
    EnvironmentalSampleSpec("138", "Labrador seawater", 60.900, -38.516, 710, 3.5, 11554),
    EnvironmentalSampleSpec("FS312", "Bag City", 45.916, -129.983, 1529, 31.2, 52569),
    EnvironmentalSampleSpec("FS396", "Marker 52", 45.943, -129.985, 1537, 24.4, 73657),
)


def spec_by_sid(sid: str) -> EnvironmentalSampleSpec:
    """Look up a Table I sample by its SID."""
    for spec in SOGIN_SAMPLES:
        if spec.sid == sid:
            return spec
    raise DatasetError(
        f"unknown sample {sid!r}; known: {[s.sid for s in SOGIN_SAMPLES]}"
    )


def generate_environmental_sample(
    spec: EnvironmentalSampleSpec | str,
    *,
    num_reads: int | None = None,
    otus_per_read: float = 0.12,
    mean_read_length: int = 60,
    otu_divergence: float = 0.22,
    seed: int = 0,
    region: str | None = None,
) -> list[SequenceRecord]:
    """Synthesize one environmental sample.

    Parameters
    ----------
    spec:
        A Table I spec or its SID.
    num_reads:
        Override the paper-scale read count (benchmark drivers pass a
        scaled value).
    otus_per_read:
        Latent OTU richness per read; 0.12 reproduces Table V's observed
        cluster/read ratio (~1100 clusters for ~11 k reads).
    otu_divergence:
        Divergence between OTU 16S variable regions.
    region:
        When set, the OTU pool (16S genes and labels) derives from the
        region name instead of the sample id, so samples sharing a region
        contain the *same* organisms at sample-specific abundances — the
        structure beta-diversity comparisons measure.  Left ``None``,
        every sample gets its own pool.

    Returns labelled records (``record.label`` is the source OTU).
    """
    if isinstance(spec, str):
        spec = spec_by_sid(spec)
    total = num_reads if num_reads is not None else spec.num_reads
    if total < 1:
        raise DatasetError(f"num_reads must be >= 1, got {total}")
    if not 0.0 < otus_per_read <= 1.0:
        raise DatasetError(
            f"otus_per_read must be in (0,1], got {otus_per_read}"
        )
    pool_key = region if region is not None else spec.sid
    rng = ensure_rng(derive_seed(seed, "env", spec.sid))
    num_otus = max(3, int(round(total * otus_per_read)))

    # Rare-biosphere abundance: Zipf-like weights, heavy tail of
    # singletons.  With a shared region pool, each sample shuffles the
    # rank order (abundances differ between sites; organisms do not).
    ranks = np.arange(1, num_otus + 1, dtype=np.float64)
    weights = 1.0 / ranks
    weights /= weights.sum()
    if region is not None:
        rng.shuffle(weights)
    counts = rng.multinomial(total, weights)

    model = SixteenSModel(divergence=otu_divergence, seed=derive_seed(seed, "env-genes", pool_key))
    error_model = PyrosequencingErrorModel()
    reads: list[SequenceRecord] = []
    for o, count in enumerate(counts):
        if count == 0:
            continue
        otu = f"{pool_key}_OTU{o:05d}"
        gene = model.gene_for_taxon(otu)
        window = model.variable_window(gene, region=3)
        reads.extend(
            amplicon_reads(
                window,
                int(count),
                label=otu,
                id_prefix=f"{spec.sid}_{o:05d}",
                mean_length=mean_read_length,
                error_model=error_model,
                rng=rng,
            )
        )
    order = rng.permutation(len(reads))
    return [reads[int(i)] for i in order]
