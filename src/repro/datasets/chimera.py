"""Chimeric-read simulation.

PCR amplification of 16S libraries produces *chimeras* — artefactual
reads stitched from two parent templates when an aborted extension
product primes a different molecule in a later cycle.  Chimeras inflate
OTU counts (they match no real organism) and are a major confounder for
exactly the clustering task this paper evaluates; the Huse study behind
Table IV filters for them.

:func:`inject_chimeras` replaces a fraction of reads with two-parent
chimeras (single crossover at a random breakpoint), labelling them
``chimera:<parentA>+<parentB>`` so evaluations can quantify their effect.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import DatasetError
from repro.seq.records import SequenceRecord
from repro.utils.rng import ensure_rng

CHIMERA_PREFIX = "chimera:"


def make_chimera(
    parent_a: SequenceRecord,
    parent_b: SequenceRecord,
    *,
    breakpoint_fraction: float,
    read_id: str,
) -> SequenceRecord:
    """Join a 5' piece of ``parent_a`` with the 3' remainder of
    ``parent_b`` at the given fractional breakpoint."""
    if not 0.0 < breakpoint_fraction < 1.0:
        raise DatasetError(
            f"breakpoint_fraction must be in (0,1), got {breakpoint_fraction}"
        )
    cut_a = max(1, int(len(parent_a.sequence) * breakpoint_fraction))
    cut_b = min(
        len(parent_b.sequence) - 1,
        int(len(parent_b.sequence) * breakpoint_fraction),
    )
    sequence = parent_a.sequence[:cut_a] + parent_b.sequence[cut_b:]
    label = f"{CHIMERA_PREFIX}{parent_a.label}+{parent_b.label}"
    return SequenceRecord(
        read_id=read_id,
        sequence=sequence,
        header=f"{read_id} {label}",
        label=label,
    )


def inject_chimeras(
    records: Sequence[SequenceRecord],
    *,
    rate: float = 0.05,
    rng: np.random.Generator | int | None = None,
) -> list[SequenceRecord]:
    """Replace ``rate`` of the reads with two-parent chimeras.

    Parents are drawn from *different* source labels where possible
    (cross-template chimeras are the damaging kind).  Returns a new list
    of equal length; originals are never mutated.
    """
    if not 0.0 <= rate <= 1.0:
        raise DatasetError(f"rate must be in [0,1], got {rate}")
    if len(records) < 2:
        raise DatasetError("need at least two reads to form chimeras")
    rng = ensure_rng(rng)
    out = list(records)
    n_chimeras = int(round(rate * len(records)))
    if n_chimeras == 0:
        return out
    victims = rng.choice(len(records), size=n_chimeras, replace=False)
    for i, victim in enumerate(victims):
        a = records[int(victim)]
        # Prefer a parent from another template.
        for _attempt in range(10):
            b = records[int(rng.integers(len(records)))]
            if b.label != a.label or _attempt == 9:
                break
        breakpoint = float(rng.uniform(0.25, 0.75))
        out[int(victim)] = make_chimera(
            a, b, breakpoint_fraction=breakpoint,
            read_id=f"{a.read_id}_chim{i:04d}",
        )
    return out


def is_chimera(record: SequenceRecord) -> bool:
    """True when the record was produced by :func:`inject_chimeras`."""
    return bool(record.label) and record.label.startswith(CHIMERA_PREFIX)
