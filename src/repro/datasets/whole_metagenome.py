"""The Table II whole-metagenome samples (Chatterji et al. mixes + R1).

Each sample pools shotgun reads from a few genomes whose pairwise
relatedness is pinned by the table's "Taxonomic Difference" column and
whose composition is pinned by the bracketed GC contents.  We model the
phylogeny as a two-level star: a sample-level root ancestor, optional
subgroup ancestors (for samples mixing distant clades), and per-species
branches.  Pairwise divergence between two species is approximately the
sum of the branches connecting them, which we set so it matches
:data:`repro.datasets.taxonomy.RANK_DIVERGENCE` for the table's annotated
rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError
from repro.datasets.genomes import (
    mutate_genome,
    random_genome,
    random_substitution_bias,
)
from repro.datasets.reads import sample_community
from repro.seq.error_models import SubstitutionErrorModel
from repro.seq.records import SequenceRecord
from repro.utils.rng import derive_seed, ensure_rng


@dataclass(frozen=True)
class SpeciesSpec:
    """One organism in a sample: name, GC target, abundance and phylogeny
    placement (subgroup + branch divergence from the subgroup ancestor)."""

    name: str
    gc: float
    ratio: float
    subgroup: str = "g0"
    branch: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.gc <= 1.0:
            raise DatasetError(f"gc must be in [0,1], got {self.gc}")
        if self.ratio <= 0:
            raise DatasetError(f"ratio must be positive, got {self.ratio}")
        if not 0.0 <= self.branch <= 1.0:
            raise DatasetError(f"branch must be in [0,1], got {self.branch}")


@dataclass(frozen=True)
class WholeMetagenomeSpec:
    """One row of Table II."""

    sid: str
    species: tuple[SpeciesSpec, ...]
    num_reads: int
    taxonomic_difference: str = "-"
    num_clusters: int | None = None
    read_length: int = 1000
    has_truth: bool = True
    subgroup_divergence: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.species:
            raise DatasetError(f"sample {self.sid} has no species")
        if self.num_reads < len(self.species):
            raise DatasetError(
                f"sample {self.sid}: num_reads {self.num_reads} < species count"
            )


def _pair(sid, a, gca, b, gcb, rank_div, reads, ratio=(1, 1), diff="-", clusters=2):
    half = rank_div / 2.0
    return WholeMetagenomeSpec(
        sid=sid,
        species=(
            SpeciesSpec(a, gca, ratio[0], branch=half),
            SpeciesSpec(b, gcb, ratio[1], branch=half),
        ),
        num_reads=reads,
        taxonomic_difference=diff,
        num_clusters=clusters,
    )


#: Table II verbatim (rank divergences from taxonomy.RANK_DIVERGENCE:
#: species .03, genus .10, family .18, order .25, phylum .35, kingdom .45).
WHOLE_METAGENOME_SPECS: tuple[WholeMetagenomeSpec, ...] = (
    _pair("S1", "Bacillus halodurans", 0.44, "Bacillus subtilis", 0.44, 0.03, 49998, diff="Species"),
    _pair("S2", "Gluconobacter oxydans", 0.61, "Granulobacter bethesdensis", 0.59, 0.10, 49998, diff="Genus"),
    _pair("S3", "Escherichia coli", 0.51, "Yersinia pestis", 0.48, 0.10, 49998, diff="Genus"),
    _pair("S4", "Rhodopirellula baltica", 0.55, "Blastopirellula marina", 0.57, 0.10, 49998, diff="Genus"),
    _pair("S5", "Bacillus anthracis", 0.35, "Listeria monocytogenes", 0.38, 0.18, 49998, ratio=(1, 2), diff="Family"),
    _pair("S6", "Methanocaldococcus jannaschii", 0.31, "Methanococcus mariplaudis", 0.33, 0.18, 49998, diff="Family"),
    _pair("S7", "Thermofilum pendens", 0.58, "Pyrobaculum aerophilum", 0.51, 0.18, 49998, diff="Family"),
    _pair("S8", "Gluconobacter oxydans", 0.61, "Rhodospirillum rubrum", 0.65, 0.25, 49998, diff="Order"),
    WholeMetagenomeSpec(
        sid="S9",
        species=(
            SpeciesSpec("Gluconobacter oxydans", 0.61, 1, branch=0.09),
            SpeciesSpec("Granulobacter bethesdensis", 0.59, 1, branch=0.09),
            SpeciesSpec("Nitrobacter hamburgensis", 0.62, 8, branch=0.16),
        ),
        num_reads=49996,
        taxonomic_difference="Family,Order",
        num_clusters=3,
    ),
    WholeMetagenomeSpec(
        sid="S10",
        species=(
            SpeciesSpec("Escherichia coli", 0.51, 1, branch=0.125),
            SpeciesSpec("Pseudomonas putida", 0.62, 1, branch=0.125),
            SpeciesSpec("Bacillus anthracis", 0.35, 8, branch=0.225),
        ),
        num_reads=49996,
        taxonomic_difference="Order,Phylum",
        num_clusters=3,
    ),
    WholeMetagenomeSpec(
        sid="S11",
        species=(
            SpeciesSpec("Gluconobacter oxydans", 0.61, 1, branch=0.09),
            SpeciesSpec("Granulobacter bethesdensis", 0.59, 1, branch=0.09),
            SpeciesSpec("Nitrobacter hamburgensis", 0.62, 4, branch=0.16),
            SpeciesSpec("Rhodospirillum rubrum", 0.65, 4, branch=0.16),
        ),
        num_reads=99998,
        taxonomic_difference="Family,Order",
        num_clusters=4,
    ),
    WholeMetagenomeSpec(
        sid="S12",
        species=(
            SpeciesSpec("Escherichia coli", 0.51, 1, subgroup="proteo", branch=0.125),
            SpeciesSpec("Pseudomonas putida", 0.62, 1, subgroup="proteo", branch=0.125),
            SpeciesSpec("Thermofilum pendens", 0.58, 1, subgroup="archaea", branch=0.09),
            SpeciesSpec("Pyrobaculum aerophilum", 0.51, 1, subgroup="archaea", branch=0.09),
            SpeciesSpec("Bacillus anthracis", 0.35, 2, subgroup="firmicutes", branch=0.015),
            SpeciesSpec("Bacillus subtilis", 0.44, 14, subgroup="firmicutes", branch=0.015),
        ),
        num_reads=99994,
        taxonomic_difference="Species,Order,Family,Phylum,Kingdom",
        num_clusters=6,
        subgroup_divergence={"proteo": 0.05, "archaea": 0.16, "firmicutes": 0.12},
    ),
    _pair("S13", "Acinetobacter baumannii SDF", 0.40, "Pseudomonas entomophila L48", 0.64, 0.25, 4000),
    WholeMetagenomeSpec(
        sid="S14",
        species=(
            SpeciesSpec("Ehrlichia ruminantium Gardel", 0.27, 1, branch=0.09),
            SpeciesSpec("Anaplasma centrale Israel", 0.30, 1, branch=0.09),
            SpeciesSpec("Neorickettsia sennetsu Miyayama", 0.41, 1, branch=0.13),
        ),
        num_reads=6000,
        num_clusters=3,
    ),
    WholeMetagenomeSpec(
        sid="R1",
        species=(
            SpeciesSpec("Baumannia cicadellinicola", 0.33, 3, branch=0.15),
            SpeciesSpec("Sulcia muelleri", 0.22, 2, branch=0.20),
            SpeciesSpec("Wolbachia-like symbiont", 0.34, 1, branch=0.17),
        ),
        num_reads=7137,
        num_clusters=None,
        read_length=700,
        has_truth=False,
    ),
)


def spec_by_sid(sid: str) -> WholeMetagenomeSpec:
    """Look up a Table II sample by SID."""
    for spec in WHOLE_METAGENOME_SPECS:
        if spec.sid == sid:
            return spec
    raise DatasetError(
        f"unknown sample {sid!r}; known: "
        f"{[s.sid for s in WHOLE_METAGENOME_SPECS]}"
    )


def adjust_gc(
    genome: str, target_gc: float, rng: np.random.Generator | int | None = None
) -> str:
    """Shift a genome's composition toward ``target_gc`` by random
    substitutions of the over-represented base class."""
    if not genome:
        raise DatasetError("cannot adjust an empty genome")
    if not 0.0 <= target_gc <= 1.0:
        raise DatasetError(f"target_gc must be in [0,1], got {target_gc}")
    rng = ensure_rng(rng)
    chars = np.frombuffer(genome.encode("ascii"), dtype=np.uint8).copy()
    is_gc = (chars == ord("G")) | (chars == ord("C"))
    current = is_gc.mean()
    if abs(current - target_gc) < 1e-9:
        return genome
    if target_gc > current:
        donors = np.flatnonzero(~is_gc)
        p = (target_gc - current) / max(1e-12, 1.0 - current)
        new_bases = (ord("G"), ord("C"))
    else:
        donors = np.flatnonzero(is_gc)
        p = (current - target_gc) / max(1e-12, current)
        new_bases = (ord("A"), ord("T"))
    flip = donors[rng.random(donors.size) < p]
    chars[flip] = np.where(rng.random(flip.size) < 0.5, new_bases[0], new_bases[1])
    return chars.tobytes().decode("ascii")


def build_genomes(
    spec: WholeMetagenomeSpec,
    *,
    genome_length: int = 12000,
    seed: int = 0,
) -> list[tuple[str, str]]:
    """Generate the sample's genomes from its two-level star phylogeny."""
    if genome_length < spec.read_length:
        raise DatasetError(
            f"genome_length {genome_length} shorter than read_length "
            f"{spec.read_length}"
        )
    root_rng = ensure_rng(derive_seed(seed, "wm-root", spec.sid))
    root = random_genome(genome_length, gc_content=0.5, rng=root_rng)
    subgroup_ancestors: dict[str, str] = {}
    for sp in spec.species:
        if sp.subgroup not in subgroup_ancestors:
            d = spec.subgroup_divergence.get(sp.subgroup, 0.0)
            if d > 0:
                sub_rng = ensure_rng(derive_seed(seed, "wm-sub", spec.sid, sp.subgroup))
                subgroup_ancestors[sp.subgroup] = mutate_genome(
                    root,
                    d,
                    rng=sub_rng,
                    substitution_bias=random_substitution_bias(sub_rng),
                )
            else:
                subgroup_ancestors[sp.subgroup] = root
    out: list[tuple[str, str]] = []
    for sp in spec.species:
        rng = ensure_rng(derive_seed(seed, "wm-species", spec.sid, sp.name))
        # Lineage-specific substitution preferences give each species the
        # compositional signature composition-based binning relies on.
        bias = random_substitution_bias(rng)
        genome = mutate_genome(
            subgroup_ancestors[sp.subgroup],
            sp.branch,
            rng=rng,
            substitution_bias=bias,
        )
        genome = adjust_gc(genome, sp.gc, rng)
        out.append((sp.name, genome))
    return out


def generate_whole_metagenome_sample(
    spec: WholeMetagenomeSpec | str,
    *,
    num_reads: int | None = None,
    genome_length: int = 12000,
    error_rate: float = 0.005,
    seed: int = 0,
) -> list[SequenceRecord]:
    """Synthesize one Table II sample as labelled shotgun reads."""
    if isinstance(spec, str):
        spec = spec_by_sid(spec)
    total = num_reads if num_reads is not None else spec.num_reads
    genomes = build_genomes(spec, genome_length=genome_length, seed=seed)
    model = SubstitutionErrorModel(error_rate) if error_rate > 0 else None
    return sample_community(
        genomes,
        [sp.ratio for sp in spec.species],
        total,
        spec.read_length if genome_length >= spec.read_length else genome_length,
        error_model=model,
        rng=ensure_rng(derive_seed(seed, "wm-reads", spec.sid)),
    )
