"""Dataset simulators reproducing the paper's benchmark inputs.

Real sequencing data (Sogin seawater 16S samples, Huse 16S amplicons,
Chatterji whole-metagenome mixes, the sharpshooter sample) is not
redistributable here; these generators synthesise inputs matching the
*published summary statistics* of each dataset — read counts, lengths,
GC contents, mixing ratios, taxonomic-rank divergence and error rates —
per DESIGN.md substitution #2.
"""

from repro.datasets.taxonomy import (
    RANKS,
    RANK_DIVERGENCE,
    divergence_for_rank,
    Lineage,
)
from repro.datasets.genomes import GenomeSpec, random_genome, mutate_genome
from repro.datasets.reads import shotgun_reads, sample_community
from repro.datasets.sixteen_s import SixteenSModel, amplicon_reads
from repro.datasets.environmental import (
    SOGIN_SAMPLES,
    EnvironmentalSampleSpec,
    generate_environmental_sample,
)
from repro.datasets.environmental import spec_by_sid as spec_by_sid_env
from repro.datasets.whole_metagenome import spec_by_sid as spec_by_sid_wm
from repro.datasets.whole_metagenome import (
    WHOLE_METAGENOME_SPECS,
    WholeMetagenomeSpec,
    SpeciesSpec,
    generate_whole_metagenome_sample,
)
from repro.datasets.huse import HuseDatasetSpec, generate_huse_dataset
from repro.datasets.chimera import inject_chimeras, is_chimera, make_chimera

__all__ = [
    "RANKS",
    "RANK_DIVERGENCE",
    "divergence_for_rank",
    "Lineage",
    "GenomeSpec",
    "random_genome",
    "mutate_genome",
    "shotgun_reads",
    "sample_community",
    "SixteenSModel",
    "amplicon_reads",
    "SOGIN_SAMPLES",
    "EnvironmentalSampleSpec",
    "generate_environmental_sample",
    "spec_by_sid_env",
    "spec_by_sid_wm",
    "WHOLE_METAGENOME_SPECS",
    "WholeMetagenomeSpec",
    "SpeciesSpec",
    "generate_whole_metagenome_sample",
    "HuseDatasetSpec",
    "generate_huse_dataset",
    "inject_chimeras",
    "is_chimera",
    "make_chimera",
]
