"""Shotgun read simulation.

Whole-metagenome samples pool reads "fragmented from random positions of
the entire genome" of each member species (Section I).  The simulator
draws uniform start positions (optionally treating the genome as
circular), applies a sequencing-error model, and labels every read with
its source organism for ground-truth evaluation.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import DatasetError
from repro.seq.error_models import (
    PyrosequencingErrorModel,
    SubstitutionErrorModel,
)
from repro.seq.records import SequenceRecord
from repro.utils.rng import ensure_rng

ErrorModel = SubstitutionErrorModel | PyrosequencingErrorModel | None


def shotgun_reads(
    genome: str,
    num_reads: int,
    read_length: int,
    *,
    label: str,
    id_prefix: str = "read",
    error_model: ErrorModel = None,
    circular: bool = True,
    rng: np.random.Generator | int | None = None,
) -> list[SequenceRecord]:
    """Sample labelled reads from one genome.

    ``circular=True`` (bacterial chromosomes) lets reads wrap around the
    origin; otherwise start positions are restricted so every read is
    full-length.
    """
    if num_reads < 0:
        raise DatasetError(f"num_reads must be non-negative, got {num_reads}")
    if read_length < 1:
        raise DatasetError(f"read_length must be >= 1, got {read_length}")
    if len(genome) < read_length:
        raise DatasetError(
            f"genome of length {len(genome)} shorter than read_length "
            f"{read_length}"
        )
    rng = ensure_rng(rng)
    n = len(genome)
    if circular:
        starts = rng.integers(0, n, size=num_reads)
        doubled = genome + genome[: read_length - 1]
    else:
        starts = rng.integers(0, n - read_length + 1, size=num_reads)
        doubled = genome
    out: list[SequenceRecord] = []
    for i, start in enumerate(starts):
        fragment = doubled[int(start) : int(start) + read_length]
        if error_model is not None:
            fragment = error_model.apply(fragment, rng)
        if not fragment:
            continue
        out.append(
            SequenceRecord(
                read_id=f"{id_prefix}_{i:06d}",
                sequence=fragment,
                header=f"{id_prefix}_{i:06d} source={label}",
                label=label,
            )
        )
    return out


def sample_community(
    genomes: Sequence[tuple[str, str]],
    ratios: Sequence[float],
    total_reads: int,
    read_length: int,
    *,
    error_model: ErrorModel = None,
    rng: np.random.Generator | int | None = None,
    shuffle: bool = True,
) -> list[SequenceRecord]:
    """Pool reads from several genomes at given abundance ratios.

    ``genomes`` is ``[(name, sequence), ...]``; ``ratios`` need not be
    normalised (Table II writes them as e.g. ``1:1:8``).  The output is
    shuffled by default so clustering cannot exploit input grouping.
    """
    if len(genomes) != len(ratios):
        raise DatasetError(
            f"{len(genomes)} genomes but {len(ratios)} ratios"
        )
    if not genomes:
        raise DatasetError("sample_community needs at least one genome")
    if any(r <= 0 for r in ratios):
        raise DatasetError(f"ratios must be positive, got {list(ratios)}")
    if total_reads < len(genomes):
        raise DatasetError(
            f"total_reads={total_reads} cannot cover {len(genomes)} genomes"
        )
    rng = ensure_rng(rng)
    weights = np.asarray(ratios, dtype=np.float64)
    weights /= weights.sum()
    counts = np.floor(weights * total_reads).astype(int)
    counts[0] += total_reads - counts.sum()  # exact total
    counts = np.maximum(counts, 1)

    reads: list[SequenceRecord] = []
    for (name, genome), count in zip(genomes, counts):
        reads.extend(
            shotgun_reads(
                genome,
                int(count),
                read_length,
                label=name,
                id_prefix=name.replace(" ", "_"),
                error_model=error_model,
                rng=rng,
            )
        )
    if shuffle:
        order = rng.permutation(len(reads))
        reads = [reads[int(i)] for i in order]
    return reads
