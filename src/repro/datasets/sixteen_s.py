"""16S rRNA gene model and amplicon-read simulation.

Targeted metagenomics sequences a marker gene that "has a conserved
portion for detection (primer development) and a variable portion that
allows for categorization" (Section I).  :class:`SixteenSModel` builds a
gene family accordingly: a single conserved scaffold shared by every
taxon, interleaved with variable regions (V1..V9-style) that diverge per
taxon at a configurable rate.  :func:`amplicon_reads` then simulates a
454-style amplicon library over one variable window — short reads
(~60 bp average in the Sogin samples of Table I) with pyrosequencing
errors and natural length variation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError
from repro.datasets.genomes import mutate_genome, random_genome
from repro.seq.error_models import PyrosequencingErrorModel
from repro.seq.records import SequenceRecord
from repro.utils.rng import derive_seed, ensure_rng


@dataclass
class SixteenSModel:
    """Generator of related 16S gene sequences.

    Parameters
    ----------
    num_regions:
        Number of conserved/variable region pairs (9 in real 16S genes).
    conserved_length / variable_length:
        Per-region lengths; defaults give a ~1.5 kb gene like real 16S.
    divergence:
        Per-taxon divergence applied to variable regions (conserved
        regions are shared verbatim).
    seed:
        Master seed; every generated taxon derives its own stream.
    """

    num_regions: int = 9
    conserved_length: int = 100
    variable_length: int = 70
    divergence: float = 0.25
    seed: int = 0
    _conserved: list[str] = field(init=False, repr=False)
    _variable_ancestors: list[str] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_regions < 1:
            raise DatasetError(f"num_regions must be >= 1, got {self.num_regions}")
        if self.conserved_length < 1 or self.variable_length < 1:
            raise DatasetError("region lengths must be >= 1")
        if not 0.0 <= self.divergence <= 1.0:
            raise DatasetError(
                f"divergence must be in [0,1], got {self.divergence}"
            )
        rng = ensure_rng(derive_seed(self.seed, "16s-scaffold"))
        self._conserved = [
            random_genome(self.conserved_length, rng=rng)
            for _ in range(self.num_regions + 1)
        ]
        self._variable_ancestors = [
            random_genome(self.variable_length, rng=rng)
            for _ in range(self.num_regions)
        ]

    @property
    def gene_length(self) -> int:
        """Length of every generated gene (indels excepted)."""
        return (
            (self.num_regions + 1) * self.conserved_length
            + self.num_regions * self.variable_length
        )

    def gene_for_taxon(self, taxon: str) -> str:
        """Deterministic 16S gene for a named taxon."""
        if not taxon:
            raise DatasetError("taxon name must be non-empty")
        rng = ensure_rng(derive_seed(self.seed, "16s-taxon", taxon))
        parts: list[str] = []
        for r in range(self.num_regions):
            parts.append(self._conserved[r])
            parts.append(
                mutate_genome(
                    self._variable_ancestors[r],
                    self.divergence,
                    rng=rng,
                    indel_fraction=0.1,
                )
            )
        parts.append(self._conserved[-1])
        return "".join(parts)

    def variable_window(self, gene: str, *, region: int = 3, flank: int = 20) -> str:
        """The amplicon target: one variable region plus conserved flanks
        (primers sit in the conserved flanks, as in real 16S protocols)."""
        if not 0 <= region < self.num_regions:
            raise DatasetError(
                f"region must be in [0, {self.num_regions}), got {region}"
            )
        unit = self.conserved_length + self.variable_length
        start = region * unit + self.conserved_length - flank
        stop = region * unit + self.conserved_length + self.variable_length + flank
        start = max(0, start)
        stop = min(len(gene), stop)
        return gene[start:stop]


def amplicon_reads(
    template: str,
    num_reads: int,
    *,
    label: str,
    id_prefix: str = "amp",
    mean_length: int = 60,
    error_model: PyrosequencingErrorModel | None = None,
    rng: np.random.Generator | int | None = None,
) -> list[SequenceRecord]:
    """Simulate a 454 amplicon library from one template window.

    Reads start at the template's 5' end (that is where the primer sits)
    and run a geometric-ish variable length with the requested mean —
    matching the "unequal length sequences with average sequence length of
    60 bp" description of the Table I samples.
    """
    if num_reads < 0:
        raise DatasetError(f"num_reads must be non-negative, got {num_reads}")
    if mean_length < 10:
        raise DatasetError(f"mean_length must be >= 10, got {mean_length}")
    if len(template) < 10:
        raise DatasetError("template too short for amplicon simulation")
    rng = ensure_rng(rng)
    model = error_model or PyrosequencingErrorModel()
    out: list[SequenceRecord] = []
    for i in range(num_reads):
        length = int(
            np.clip(rng.normal(mean_length, mean_length * 0.15), 30, len(template))
        )
        fragment = template[:length]
        fragment = model.apply(fragment, rng)
        if not fragment:
            continue
        out.append(
            SequenceRecord(
                read_id=f"{id_prefix}_{i:06d}",
                sequence=fragment,
                header=f"{id_prefix}_{i:06d} otu={label}",
                label=label,
            )
        )
    return out
