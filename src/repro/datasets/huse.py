"""The Table IV 16S simulated dataset (Huse et al. style).

The original data pyrosequenced two PCR amplicon libraries built from 43
known 16S rRNA gene fragments on a Roche GS20, then filtered reads by
their error against the references ("reads with less than 3 % and 5 %
error").  We regenerate that setup: 43 reference genes from a shared 16S
model, GS20-length amplicon reads, and per-read substitution error drawn
uniformly below the error limit, so the 3 %-limit set is strictly cleaner
than the 5 %-limit set — the property Table IV exercises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.datasets.sixteen_s import SixteenSModel
from repro.seq.error_models import SubstitutionErrorModel
from repro.seq.records import SequenceRecord
from repro.utils.rng import derive_seed, ensure_rng


@dataclass(frozen=True)
class HuseDatasetSpec:
    """Parameters of the simulated amplicon benchmark.

    Paper scale: 345,000 reads over 43 references; ``num_reads`` is
    typically overridden with a scaled value in benchmarks.
    """

    num_references: int = 43
    num_reads: int = 345_000
    error_limit: float = 0.03
    read_length: int = 100  # GS20 nominal read length
    reference_divergence: float = 0.12

    def __post_init__(self) -> None:
        if self.num_references < 2:
            raise DatasetError("need at least 2 reference genes")
        if self.num_reads < self.num_references:
            raise DatasetError(
                f"num_reads {self.num_reads} < num_references "
                f"{self.num_references}"
            )
        if not 0.0 <= self.error_limit <= 0.5:
            raise DatasetError(
                f"error_limit must be in [0, 0.5], got {self.error_limit}"
            )
        if self.read_length < 30:
            raise DatasetError("read_length must be >= 30")


def generate_huse_dataset(
    spec: HuseDatasetSpec | None = None,
    *,
    num_reads: int | None = None,
    seed: int = 0,
) -> list[SequenceRecord]:
    """Simulate the Table IV amplicon set.

    Reads are drawn uniformly across the 43 references (the real libraries
    were near-even PCR pools); each read covers the reference's V6-style
    variable window from the 5' end at the GS20 read length, with a
    per-read substitution rate uniform in ``[0, error_limit]``.
    """
    spec = spec or HuseDatasetSpec()
    total = num_reads if num_reads is not None else spec.num_reads
    if total < spec.num_references:
        raise DatasetError(
            f"num_reads {total} < num_references {spec.num_references}"
        )
    rng = ensure_rng(derive_seed(seed, "huse", spec.error_limit))
    model = SixteenSModel(
        divergence=spec.reference_divergence,
        seed=derive_seed(seed, "huse-genes"),
    )
    windows = []
    for g in range(spec.num_references):
        gene = model.gene_for_taxon(f"REF{g:03d}")
        window = model.variable_window(gene, region=5, flank=30)
        windows.append(window)

    counts = rng.multinomial(total, np.full(spec.num_references, 1.0 / spec.num_references))
    reads: list[SequenceRecord] = []
    serial = 0
    for g, count in enumerate(counts):
        window = windows[g]
        label = f"REF{g:03d}"
        for _ in range(int(count)):
            length = min(spec.read_length, len(window))
            fragment = window[:length]
            rate = float(rng.uniform(0.0, spec.error_limit))
            fragment = SubstitutionErrorModel(rate).apply(fragment, rng)
            reads.append(
                SequenceRecord(
                    read_id=f"huse_{serial:06d}",
                    sequence=fragment,
                    header=f"huse_{serial:06d} ref={label}",
                    label=label,
                )
            )
            serial += 1
    order = rng.permutation(len(reads))
    return [reads[int(i)] for i in order]
