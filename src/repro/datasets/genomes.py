"""Synthetic genome generation with GC-content control.

Table II annotates every genome with its GC content (e.g., Bacillus
anthracis 0.35, Rhodospirillum rubrum 0.65) because composition-based
binning difficulty depends on it; the generator honours a target GC
fraction and :func:`mutate_genome` derives related genomes at a given
divergence (substitutions plus a small indel component).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.seq.alphabet import BASES
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class GenomeSpec:
    """Declarative description of one synthetic genome."""

    name: str
    length: int
    gc_content: float = 0.5

    def __post_init__(self) -> None:
        if not self.name:
            raise DatasetError("genome name must be non-empty")
        if self.length < 1:
            raise DatasetError(f"genome length must be >= 1, got {self.length}")
        if not 0.0 <= self.gc_content <= 1.0:
            raise DatasetError(
                f"gc_content must be in [0,1], got {self.gc_content}"
            )


def random_genome(
    length: int,
    *,
    gc_content: float = 0.5,
    rng: np.random.Generator | int | None = None,
) -> str:
    """Random genome with the requested expected GC fraction."""
    if length < 1:
        raise DatasetError(f"genome length must be >= 1, got {length}")
    if not 0.0 <= gc_content <= 1.0:
        raise DatasetError(f"gc_content must be in [0,1], got {gc_content}")
    rng = ensure_rng(rng)
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    codes = rng.choice(4, size=length, p=[at, gc, gc, at])  # A C G T
    return "".join(BASES[c] for c in codes)


def from_spec(spec: GenomeSpec, rng: np.random.Generator | int | None = None) -> str:
    """Generate the genome described by ``spec``."""
    return random_genome(spec.length, gc_content=spec.gc_content, rng=rng)


def random_substitution_bias(
    rng: np.random.Generator | int | None = None, *, concentration: float = 0.5
) -> np.ndarray:
    """Sample a species-specific substitution-preference matrix.

    Real lineages accumulate *directional* compositional drift (GC shifts,
    codon-usage bias), which is exactly what composition-based binning
    exploits; passing the result to :func:`mutate_genome` makes two taxa's
    k-mer profiles diverge proportionally to their branch lengths instead
    of staying maximum-entropy.  Rows are the current base (A,C,G,T order),
    columns the replacement distribution (zero diagonal, rows sum to 1).
    """
    rng = ensure_rng(rng)
    matrix = np.zeros((4, 4))
    for i in range(4):
        weights = rng.dirichlet(np.full(3, concentration))
        cols = [c for c in range(4) if c != i]
        matrix[i, cols] = weights
    return matrix


def mutate_genome(
    genome: str,
    divergence: float,
    *,
    rng: np.random.Generator | int | None = None,
    indel_fraction: float = 0.05,
    max_indel: int = 3,
    substitution_bias: np.ndarray | None = None,
) -> str:
    """Derive a related genome at the given per-site divergence.

    ``divergence`` of the events are applied per site; a fraction
    ``indel_fraction`` of events are short indels (length 1..``max_indel``)
    and the rest substitutions — matching how real genomes diverge mostly
    by point mutation.  ``substitution_bias`` (see
    :func:`random_substitution_bias`) skews replacement choices to model
    lineage-specific compositional drift; ``None`` keeps them uniform.
    """
    if not genome:
        raise DatasetError("cannot mutate an empty genome")
    if not 0.0 <= divergence <= 1.0:
        raise DatasetError(f"divergence must be in [0,1], got {divergence}")
    if not 0.0 <= indel_fraction <= 1.0:
        raise DatasetError(
            f"indel_fraction must be in [0,1], got {indel_fraction}"
        )
    if max_indel < 1:
        raise DatasetError(f"max_indel must be >= 1, got {max_indel}")
    if substitution_bias is not None:
        substitution_bias = np.asarray(substitution_bias, dtype=np.float64)
        if substitution_bias.shape != (4, 4):
            raise DatasetError(
                f"substitution_bias must be 4x4, got {substitution_bias.shape}"
            )
        if np.any(np.diag(substitution_bias) != 0) or not np.allclose(
            substitution_bias.sum(axis=1), 1.0
        ):
            raise DatasetError(
                "substitution_bias rows must sum to 1 with zero diagonal"
            )
    rng = ensure_rng(rng)
    if divergence == 0.0:
        return genome
    base_index = {b: i for i, b in enumerate(BASES)}
    out: list[str] = []
    i = 0
    n = len(genome)
    while i < n:
        ch = genome[i]
        if rng.random() < divergence:
            if rng.random() < indel_fraction:
                size = int(rng.integers(1, max_indel + 1))
                if rng.random() < 0.5:
                    i += size  # deletion
                    continue
                insert = "".join(
                    BASES[int(rng.integers(4))] for _ in range(size)
                )
                out.append(insert)
                out.append(ch)
            else:
                if substitution_bias is None:
                    choices = [b for b in BASES if b != ch]
                    out.append(choices[int(rng.integers(3))])
                else:
                    row = substitution_bias[base_index[ch]]
                    out.append(BASES[int(rng.choice(4, p=row))])
        else:
            out.append(ch)
        i += 1
    mutated = "".join(out)
    return mutated if mutated else genome[:1]
