"""MetaCluster-style two-phase binning.

MetaCluster (Yang et al. 2010) "implements a two-phase (top-down
separation and bottom-up merging) approach ... clusters are assigned on
the basis of k-mer frequency and Spearman distance computation"
(Section II).  We reproduce both phases:

1. **Top-down separation** — reads are represented by k-mer frequency
   vectors; recursive 2-means on rank-transformed vectors (Spearman
   correlation equals Pearson correlation of ranks) splits the sample
   until groups are small or compositionally tight.
2. **Bottom-up merging** — group centroids are merged greedily while the
   closest pair's Spearman distance is below the merge threshold.

MetaCluster is the slowest method in Table III because both phases scan
full frequency vectors repeatedly; the same relative cost shows up here.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ClusteringError
from repro.cluster.assignments import ClusterAssignment
from repro.seq.kmers import kmer_codes, max_kmer_code
from repro.seq.records import SequenceRecord
from repro.utils.rng import ensure_rng


def _frequency_vectors(records: Sequence[SequenceRecord], k: int) -> np.ndarray:
    dims = max_kmer_code(k)
    out = np.zeros((len(records), dims), dtype=np.float64)
    for i, rec in enumerate(records):
        codes = kmer_codes(rec.sequence, k, strict=False)
        if codes.size == 0:
            continue
        counts = np.bincount(codes, minlength=dims)
        out[i] = counts / codes.size
    return out


def _rank_transform(vectors: np.ndarray) -> np.ndarray:
    """Row-wise average ranks (ties get their midpoint), standardised so
    Euclidean distance on the result orders pairs like Spearman
    correlation does."""
    order = np.argsort(vectors, axis=1, kind="stable")
    ranks = np.empty_like(vectors)
    n = vectors.shape[1]
    rows = np.arange(vectors.shape[0])[:, None]
    ranks[rows, order] = np.arange(n, dtype=np.float64)
    # Standardise each row: zero mean, unit norm.
    ranks -= ranks.mean(axis=1, keepdims=True)
    norms = np.linalg.norm(ranks, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return ranks / norms


def spearman_distance(rank_a: np.ndarray, rank_b: np.ndarray) -> float:
    """1 - Spearman correlation for standardised rank vectors."""
    return float(1.0 - rank_a @ rank_b)


@dataclass
class MetaCluster:
    """Two-phase MetaCluster binning.

    Parameters
    ----------
    kmer_size:
        Composition word size (MetaCluster uses 4-/5-mers).
    max_group_size:
        Memory bound: groups larger than this are split unconditionally
        (real MetaCluster bounds its working-set the same way).  Groups
        at or below it split only via the gap criterion below.
    merge_distance:
        Bottom-up merging joins group centroids while their Spearman
        distance is below this value.
    min_split_spread:
        Stop splitting groups whose mean centroid distance is already
        below this (compositionally tight groups).
    min_variance_gain:
        A tentative 2-means split is kept only when it explains at least
        this fraction of the group's compositional spread (and the child
        centroids are at least ``merge_distance`` apart).  K-means on
        pure high-dimensional noise produces well-separated child
        centroids but barely shrinks within-child spread (~10-20 %),
        whereas a genuine multi-species split collapses it — this is the
        signal/noise test that keeps homogeneous groups whole.
    """

    kmer_size: int = 4
    max_group_size: int = 2000
    merge_distance: float = 0.12
    min_split_spread: float = 0.02
    min_variance_gain: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_group_size < 2:
            raise ClusteringError("max_group_size must be >= 2")
        if not 0.0 <= self.merge_distance <= 2.0:
            raise ClusteringError("merge_distance must be in [0, 2]")

    # -- phase 1: top-down ---------------------------------------------------

    def _two_means(
        self, ranks: np.ndarray, indices: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        data = ranks[indices]
        picks = rng.choice(len(indices), size=2, replace=False)
        centers = data[picks].copy()
        assignment = np.zeros(len(indices), dtype=np.int64)
        for _ in range(25):
            d0 = 1.0 - data @ centers[0]
            d1 = 1.0 - data @ centers[1]
            new_assignment = (d1 < d0).astype(np.int64)
            if np.array_equal(new_assignment, assignment) and _ > 0:
                break
            assignment = new_assignment
            for c in (0, 1):
                members = data[assignment == c]
                if len(members):
                    center = members.mean(axis=0)
                    norm = np.linalg.norm(center)
                    centers[c] = center / norm if norm else centers[c]
        left = indices[assignment == 0]
        right = indices[assignment == 1]
        return left, right

    def _separate(self, ranks: np.ndarray, rng: np.random.Generator) -> list[np.ndarray]:
        def centroid(idx: np.ndarray) -> np.ndarray:
            c = ranks[idx].mean(axis=0)
            n = np.linalg.norm(c)
            return c / n if n else c

        groups: list[np.ndarray] = []
        stack = [np.arange(ranks.shape[0])]
        while stack:
            idx = stack.pop()
            if len(idx) < 2:
                groups.append(idx)
                continue
            center = centroid(idx)
            spread = float(np.mean(1.0 - ranks[idx] @ center))
            if spread < self.min_split_spread:
                groups.append(idx)
                continue
            left, right = self._two_means(ranks, idx, rng)
            if len(left) == 0 or len(right) == 0:
                groups.append(idx)
                continue
            if len(idx) <= self.max_group_size:
                # Tentative split: keep it only when it truly explains the
                # group's spread (see min_variance_gain) and the children
                # are far enough apart that merging would not undo it.
                gap = spearman_distance(centroid(left), centroid(right))

                def group_spread(child: np.ndarray) -> float:
                    if len(child) < 2:
                        return 0.0
                    c = centroid(child)
                    return float(np.mean(1.0 - ranks[child] @ c))

                child_spread = (
                    len(left) * group_spread(left) + len(right) * group_spread(right)
                ) / len(idx)
                gain = 1.0 - child_spread / spread if spread > 0 else 1.0
                if gap < self.merge_distance or gain < self.min_variance_gain:
                    groups.append(idx)
                    continue
            stack.append(left)
            stack.append(right)
        return groups

    # -- phase 2: bottom-up ---------------------------------------------------

    def _merge(self, ranks: np.ndarray, groups: list[np.ndarray]) -> list[int]:
        centroids = []
        spreads = []
        for idx in groups:
            c = ranks[idx].mean(axis=0)
            n = np.linalg.norm(c)
            unit = c / n if n else c
            centroids.append(unit)
            spreads.append(
                float(np.mean(1.0 - ranks[idx] @ unit)) if len(idx) > 1 else 0.0
            )
        centroids = np.vstack(centroids)
        g = len(groups)
        group_label = list(range(g))
        sizes = [len(idx) for idx in groups]
        active = [True] * g

        def allowance(a: int, b: int) -> float:
            # Centroid-estimation noise: two same-population groups of
            # sizes na/nb sit ~ spread * sqrt(1/na + 1/nb) apart even
            # with identical true composition.
            s = max(spreads[a], spreads[b])
            return s * (1.0 / sizes[a] + 1.0 / sizes[b]) ** 0.5

        while True:
            best = (0.0, -1, -1)
            for a in range(g):
                if not active[a]:
                    continue
                for b in range(a + 1, g):
                    if not active[b]:
                        continue
                    d = spearman_distance(centroids[a], centroids[b])
                    margin = d - (self.merge_distance + allowance(a, b))
                    if margin < best[0]:
                        best = (margin, a, b)
            _, a, b = best
            if a < 0:
                break
            merged = (centroids[a] * sizes[a] + centroids[b] * sizes[b]) / (
                sizes[a] + sizes[b]
            )
            norm = np.linalg.norm(merged)
            centroids[a] = merged / norm if norm else merged
            sizes[a] += sizes[b]
            spreads[a] = max(spreads[a], spreads[b])
            active[b] = False
            for i in range(g):
                if group_label[i] == group_label[b]:
                    group_label[i] = group_label[a]
        return group_label

    # -- public API ------------------------------------------------------------

    def fit(self, records: Sequence[SequenceRecord]) -> ClusterAssignment:
        """Bin records and return cluster assignments."""
        if not records:
            raise ClusteringError("cannot cluster an empty sample")
        rng = ensure_rng(self.seed)
        vectors = _frequency_vectors(records, self.kmer_size)
        ranks = _rank_transform(vectors)
        groups = self._separate(ranks, rng)
        group_label = self._merge(ranks, groups)
        # Densify labels.
        mapping: dict[int, int] = {}
        labels = [0] * len(records)
        for gi, idx in enumerate(groups):
            lbl = group_label[gi]
            if lbl not in mapping:
                mapping[lbl] = len(mapping)
            for i in idx:
                labels[int(i)] = mapping[lbl]
        return ClusterAssignment.from_labels(
            [r.read_id for r in records], labels
        )


def metacluster_cluster(
    records: Sequence[SequenceRecord],
    *,
    kmer_size: int = 4,
    merge_distance: float = 0.12,
    max_group_size: int = 60,
    seed: int = 0,
) -> ClusterAssignment:
    """Functional wrapper around :class:`MetaCluster`."""
    return MetaCluster(
        kmer_size=kmer_size,
        merge_distance=merge_distance,
        max_group_size=max_group_size,
        seed=seed,
    ).fit(records)
