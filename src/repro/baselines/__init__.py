"""Reimplementations of the paper's comparison methods.

Each baseline follows the published core idea of the original tool
(DESIGN.md substitution #3):

* :func:`mc_lsh` — the authors' earlier LSH greedy clusterer (MC-LSH).
* :func:`cdhit_cluster` — CD-HIT: longest-first greedy with a common-word
  filter before alignment.
* :func:`uclust_cluster` — UCLUST: input-order greedy, candidate
  representatives ranked by shared words, bounded rejects.
* :func:`esprit_cluster` — ESPRIT: k-mer distance + hierarchical
  complete linkage.
* :func:`dotur_cluster` / :func:`mothur_cluster` — all-pairs alignment
  distance + hierarchical clustering (furthest neighbour; mothur rounds
  distances to 0.01 bins as the real tool does).
* :class:`MetaCluster` — two-phase top-down separation / bottom-up
  merging on k-mer frequency Spearman distance.

All return :class:`~repro.cluster.assignments.ClusterAssignment`.
"""

from repro.baselines.mclsh import mc_lsh
from repro.baselines.cdhit import cdhit_cluster
from repro.baselines.uclust import uclust_cluster
from repro.baselines.esprit import esprit_cluster
from repro.baselines.dotur import dotur_cluster, alignment_distance_matrix
from repro.baselines.mothur import mothur_cluster
from repro.baselines.metacluster import MetaCluster, metacluster_cluster

__all__ = [
    "mc_lsh",
    "cdhit_cluster",
    "uclust_cluster",
    "esprit_cluster",
    "dotur_cluster",
    "alignment_distance_matrix",
    "mothur_cluster",
    "MetaCluster",
    "metacluster_cluster",
]
