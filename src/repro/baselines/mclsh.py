"""MC-LSH: locality-sensitive-hashing greedy clustering.

The authors' previous work (refs [17], [18] of the paper) bins 16S
sequences with LSH: min-hash values are grouped into bands; two sequences
whose values collide in at least one band are *candidates*, and candidates
are verified with the estimated Jaccard similarity before joining a
cluster.  Compared to MrMC-MinH^g this skips most pairwise checks (only
band-colliding pairs are scored) at the cost of possibly missing
borderline joins — the behaviour visible in Tables IV/V where MC-LSH
produces slightly different cluster counts than MrMC-MinH^g.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ClusteringError, SketchError
from repro.cluster.assignments import ClusterAssignment
from repro.minhash.lsh import LshIndex
from repro.minhash.sketch import SketchingConfig, compute_sketches
from repro.minhash.similarity import estimate_jaccard
from repro.seq.records import SequenceRecord


def mc_lsh(
    records: Sequence[SequenceRecord],
    threshold: float,
    *,
    kmer_size: int = 15,
    num_hashes: int = 50,
    band_size: int = 5,
    seed: int = 0,
) -> ClusterAssignment:
    """Greedy LSH clustering of sequence records.

    Cluster representatives live in an :class:`~repro.minhash.lsh.LshIndex`;
    each incoming sequence is verified only against representatives it
    band-collides with.

    Parameters
    ----------
    threshold:
        Similarity threshold for joining a cluster representative.
    band_size:
        Min-hash values per LSH band; ``num_hashes`` must be divisible by
        it.  Smaller bands are more permissive candidate generators.
    """
    if not records:
        raise ClusteringError("cannot cluster an empty sample")
    if not 0.0 <= threshold <= 1.0:
        raise ClusteringError(f"threshold must be in [0,1], got {threshold}")
    try:
        index = LshIndex(num_hashes=num_hashes, band_size=band_size)
    except SketchError as exc:
        raise ClusteringError(str(exc)) from exc
    config = SketchingConfig(kmer_size=kmer_size, num_hashes=num_hashes, seed=seed)
    sketches = compute_sketches(records, config)
    if not sketches:
        raise ClusteringError("no sequence produced a sketch")

    rep_label: dict[str, int] = {}  # representative read id -> cluster label
    labels: list[int] = []
    for sketch in sketches:
        assigned = -1
        for rep_id in index.candidates(sketch):
            if estimate_jaccard(sketch, index.get(rep_id), estimator="set") >= threshold:
                assigned = rep_label[rep_id]
                break
        if assigned < 0:
            assigned = len(rep_label)
            rep_label[sketch.read_id] = assigned
            index.insert(sketch)
        labels.append(assigned)

    return ClusterAssignment.from_labels([s.read_id for s in sketches], labels)
