"""ESPRIT-style clustering.

ESPRIT (Sun et al. 2009) is "efficient in comparison to Mothur and DOTUR
because it computes k-mer distance for each pair of input sequences,
avoiding the expensive global alignment" and "implements several
heuristics to reduce the number of sequence comparisons" (Section II).

We follow that design: a cheap all-pairs k-mer distance pass first; pairs
whose k-mer distance already exceeds a generous cut cannot be similar and
are pruned (the heuristic), and only surviving pairs get a (banded)
alignment to refine the distance.  Complete-linkage hierarchical
clustering then runs on the hybrid matrix.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ClusteringError
from repro.align.banded import banded_identity
from repro.align.kmerdist import kmer_distance_matrix
from repro.cluster.assignments import ClusterAssignment
from repro.cluster.hierarchical import agglomerative_cluster
from repro.seq.records import SequenceRecord


def esprit_cluster(
    records: Sequence[SequenceRecord],
    threshold: float,
    *,
    word_size: int = 6,
    prune_margin: float = 0.25,
    refine_with_alignment: bool = True,
    band: int = 32,
) -> ClusterAssignment:
    """ESPRIT-style clustering at a similarity threshold.

    Parameters
    ----------
    prune_margin:
        Pairs with k-mer distance above ``(1 - threshold) + prune_margin``
        are pruned without alignment (k-mer distance lower-bounds
        alignment distance tightly enough at this margin).
    refine_with_alignment:
        Align surviving pairs to refine their similarity; turning this off
        clusters on raw k-mer distance (faster, ESPRIT's quick mode).
    """
    if not records:
        raise ClusteringError("cannot cluster an empty sample")
    if not 0.0 <= threshold <= 1.0:
        raise ClusteringError(f"threshold must be in [0,1], got {threshold}")
    if prune_margin < 0:
        raise ClusteringError(f"prune_margin must be >= 0, got {prune_margin}")

    n = len(records)
    sequences = [r.sequence for r in records]
    kdist = kmer_distance_matrix(sequences, k=word_size)
    similarity = 1.0 - kdist
    np.fill_diagonal(similarity, 1.0)

    if refine_with_alignment:
        cut = (1.0 - threshold) + prune_margin
        for i in range(n):
            for j in range(i + 1, n):
                if kdist[i, j] <= cut:
                    s = banded_identity(sequences[i], sequences[j], band=band)
                    similarity[i, j] = similarity[j, i] = s
                else:
                    # Pruned: keep a pessimistic similarity so the pair can
                    # never merge at the threshold.
                    similarity[i, j] = similarity[j, i] = min(
                        similarity[i, j], threshold - 1e-9
                    )

    return agglomerative_cluster(
        similarity,
        [r.read_id for r in records],
        threshold,
        linkage="complete",
    )
