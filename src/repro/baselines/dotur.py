"""DOTUR-style clustering: full alignment-distance matrix + hierarchical.

DOTUR (Schloss & Handelsman 2005) "computes an all-pairwise distance
matrix as input and then performs hierarchical clustering" (Section II) —
the exact, expensive approach the paper's Table V timings show running
10³–10⁴× slower than the sketch-based methods.  Distances here are
``1 - global alignment identity``; the default linkage is furthest
neighbour (DOTUR's default OTU definition).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ClusteringError
from repro.align.banded import banded_identity
from repro.cluster.assignments import ClusterAssignment
from repro.cluster.hierarchical import agglomerative_cluster
from repro.seq.records import SequenceRecord


def alignment_distance_matrix(
    records: Sequence[SequenceRecord], *, band: int | None = None
) -> np.ndarray:
    """All-pairs global-alignment identity matrix (the shared substrate of
    the DOTUR and Mothur baselines).  Returned values are *similarities*
    in [0, 1] with unit diagonal.

    ``band=None`` picks the band per pair: the length difference plus a
    small margin, which is exact for the near-identical pairs that matter
    and much faster than a fixed wide band on short reads.
    """
    n = len(records)
    if n == 0:
        raise ClusteringError("cannot build a matrix over no records")
    sequences = [r.sequence for r in records]
    lengths = [len(s) for s in sequences]
    out = np.eye(n, dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            pair_band = (
                band
                if band is not None
                else max(8, abs(lengths[i] - lengths[j]) + 8)
            )
            s = banded_identity(sequences[i], sequences[j], band=pair_band)
            out[i, j] = out[j, i] = s
    return out


def dotur_cluster(
    records: Sequence[SequenceRecord],
    threshold: float,
    *,
    linkage: str = "complete",
    band: int = 32,
    similarity: np.ndarray | None = None,
) -> ClusterAssignment:
    """DOTUR-style clustering at a similarity threshold.

    ``similarity`` lets callers (and the Mothur baseline) reuse a
    precomputed matrix instead of paying the quadratic alignment cost
    twice.
    """
    if not records:
        raise ClusteringError("cannot cluster an empty sample")
    if similarity is None:
        similarity = alignment_distance_matrix(records, band=band)
    return agglomerative_cluster(
        similarity,
        [r.read_id for r in records],
        threshold,
        linkage=linkage,
    )
