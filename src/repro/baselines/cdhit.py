"""CD-HIT-style greedy clustering.

CD-HIT (Li & Godzik 2006) sorts sequences by decreasing length, then
greedily assigns each sequence to the first existing cluster whose
representative passes (1) a short-word filter — two sequences at identity
``c`` must share a minimum number of k-length words, so most candidates
are rejected without alignment — and (2) a banded alignment identity check
against the threshold.  Sequences rejected by every representative found
a new cluster with themselves as representative.

CD-HIT is "intended for clustering sequences that are highly similar"
(Section II): with low thresholds the word filter loses selectivity, which
is why Table IV shows it over-estimating cluster counts on noisy reads.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ClusteringError
from repro.align.banded import banded_identity
from repro.cluster.assignments import ClusterAssignment
from repro.seq.kmers import kmer_set
from repro.seq.records import SequenceRecord


def required_shared_words(length: int, word_size: int, identity: float) -> int:
    """CD-HIT's word-count bound: a sequence pair at the given identity
    must share at least ``L - k + 1 - k * mismatches`` words."""
    mismatches = int(length * (1.0 - identity))
    return max(1, length - word_size + 1 - word_size * mismatches)


def cdhit_cluster(
    records: Sequence[SequenceRecord],
    threshold: float,
    *,
    word_size: int = 5,
    band: int = 32,
) -> ClusterAssignment:
    """Cluster records CD-HIT style at the given identity threshold."""
    if not records:
        raise ClusteringError("cannot cluster an empty sample")
    if not 0.0 <= threshold <= 1.0:
        raise ClusteringError(f"threshold must be in [0,1], got {threshold}")

    order = sorted(range(len(records)), key=lambda i: -len(records[i]))
    rep_words: list[set[int]] = []
    rep_sequences: list[str] = []
    labels: dict[str, int] = {}

    for i in order:
        rec = records[i]
        if len(rec.sequence) < word_size:
            # Too short for the word filter: give it its own cluster.
            labels[rec.read_id] = len(rep_sequences)
            rep_sequences.append(rec.sequence)
            rep_words.append(set())
            continue
        words = set(kmer_set(rec.sequence, word_size, strict=False).tolist())
        needed = required_shared_words(len(rec.sequence), word_size, threshold)
        assigned = -1
        for cluster_id, (rwords, rseq) in enumerate(zip(rep_words, rep_sequences)):
            if len(words & rwords) < min(needed, len(words)):
                continue
            if banded_identity(rec.sequence, rseq, band=band) >= threshold:
                assigned = cluster_id
                break
        if assigned < 0:
            assigned = len(rep_sequences)
            rep_sequences.append(rec.sequence)
            rep_words.append(words)
        labels[rec.read_id] = assigned

    return ClusterAssignment(labels)
