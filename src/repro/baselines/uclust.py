"""UCLUST-style greedy clustering.

UCLUST (Edgar 2010) processes sequences in input order; for each query it
ranks existing cluster representatives ("seeds") by the number of shared
words (the USEARCH "U-sort" heuristic), aligns against them best-first,
accepts the first seed whose identity clears the threshold, and gives up
after ``max_rejects`` failed alignments — the property that makes it
"orders of magnitude faster than BLAST" and slightly greedier than
CD-HIT.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

from repro.errors import ClusteringError
from repro.align.banded import banded_identity
from repro.cluster.assignments import ClusterAssignment
from repro.seq.kmers import kmer_set
from repro.seq.records import SequenceRecord


def uclust_cluster(
    records: Sequence[SequenceRecord],
    threshold: float,
    *,
    word_size: int = 8,
    max_rejects: int = 8,
    band: int = 32,
) -> ClusterAssignment:
    """Cluster records UCLUST style at the given identity threshold."""
    if not records:
        raise ClusteringError("cannot cluster an empty sample")
    if not 0.0 <= threshold <= 1.0:
        raise ClusteringError(f"threshold must be in [0,1], got {threshold}")
    if max_rejects < 1:
        raise ClusteringError(f"max_rejects must be >= 1, got {max_rejects}")

    # Inverted index: word -> seed ids containing it (U-sort substrate).
    word_index: dict[int, list[int]] = defaultdict(list)
    seed_sequences: list[str] = []
    labels: dict[str, int] = {}

    def add_seed(sequence: str) -> int:
        seed_id = len(seed_sequences)
        seed_sequences.append(sequence)
        if len(sequence) >= word_size:
            for w in set(kmer_set(sequence, word_size, strict=False).tolist()):
                word_index[w].append(seed_id)
        return seed_id

    for rec in records:
        if len(rec.sequence) < word_size:
            labels[rec.read_id] = add_seed(rec.sequence)
            continue
        words = set(kmer_set(rec.sequence, word_size, strict=False).tolist())
        shared: dict[int, int] = defaultdict(int)
        for w in words:
            for seed_id in word_index.get(w, ()):
                shared[seed_id] += 1
        # Best-first by shared word count (stable by seed id).
        candidates = sorted(shared.items(), key=lambda kv: (-kv[1], kv[0]))
        assigned = -1
        rejects = 0
        for seed_id, _count in candidates:
            if banded_identity(rec.sequence, seed_sequences[seed_id], band=band) >= threshold:
                assigned = seed_id
                break
            rejects += 1
            if rejects >= max_rejects:
                break
        if assigned < 0:
            assigned = add_seed(rec.sequence)
        labels[rec.read_id] = assigned

    return ClusterAssignment(labels)
