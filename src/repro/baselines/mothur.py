"""Mothur-style clustering.

Mothur (Schloss et al. 2009) reimplements DOTUR's matrix + hierarchical
approach inside a larger toolkit; like DOTUR it defaults to the
furthest-neighbour OTU definition, but it *bins distances* to a fixed
precision (0.01 by default) before clustering.  The binning makes its
cluster counts differ slightly from DOTUR's on the same data — exactly
the relationship visible between the DOTUR and Mothur rows of Tables IV
and V.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ClusteringError
from repro.baselines.dotur import alignment_distance_matrix
from repro.cluster.assignments import ClusterAssignment
from repro.cluster.hierarchical import agglomerative_cluster
from repro.seq.records import SequenceRecord


def mothur_cluster(
    records: Sequence[SequenceRecord],
    threshold: float,
    *,
    linkage: str = "complete",
    precision: float = 0.01,
    band: int = 32,
    similarity: np.ndarray | None = None,
) -> ClusterAssignment:
    """Mothur-style clustering: binned distances, furthest neighbour."""
    if not records:
        raise ClusteringError("cannot cluster an empty sample")
    if not 0.0 < precision <= 0.5:
        raise ClusteringError(f"precision must be in (0, 0.5], got {precision}")
    if similarity is None:
        similarity = alignment_distance_matrix(records, band=band)
    binned = np.round(np.asarray(similarity, dtype=np.float64) / precision) * precision
    binned = np.clip(binned, 0.0, 1.0)
    np.fill_diagonal(binned, 1.0)
    return agglomerative_cluster(
        binned,
        [r.read_id for r in records],
        threshold,
        linkage=linkage,
    )
