"""Min-wise hashing (Section III-A/B of the paper).

A sequence's k-mer feature set is sketched by ``n`` universal hash
functions ``h_i(x) = ((a_i * x + b_i) mod p) mod m`` (Equation 5); the
i-th sketch component is ``min_{x in I} h_i(x)`` (Equation 6).  The
probability two sets share a minimum under a random permutation equals
their Jaccard similarity (Equation 3), so comparing sketches estimates
Jaccard without any alignment.
"""

from repro.minhash.universal import UniversalHashFamily, next_prime, is_prime
from repro.minhash.sketch import (
    MinHashSketch,
    SketchingConfig,
    compute_sketch,
    compute_sketches,
    sketch_matrix,
)
from repro.minhash.similarity import (
    estimate_jaccard,
    exact_jaccard,
    positional_similarity,
    set_similarity,
    pairwise_similarity_matrix,
    condensed_to_square,
)

__all__ = [
    "UniversalHashFamily",
    "next_prime",
    "is_prime",
    "MinHashSketch",
    "SketchingConfig",
    "compute_sketch",
    "compute_sketches",
    "sketch_matrix",
    "estimate_jaccard",
    "exact_jaccard",
    "positional_similarity",
    "set_similarity",
    "pairwise_similarity_matrix",
    "condensed_to_square",
]
