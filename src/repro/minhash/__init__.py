"""Min-wise hashing (Section III-A/B of the paper).

A sequence's k-mer feature set is sketched by ``n`` universal hash
functions ``h_i(x) = ((a_i * x + b_i) mod p) mod m`` (Equation 5); the
i-th sketch component is ``min_{x in I} h_i(x)`` (Equation 6).  The
probability two sets share a minimum under a random permutation equals
their Jaccard similarity (Equation 3), so comparing sketches estimates
Jaccard without any alignment.

Two sketching paths produce byte-identical output: the per-record
reference (:func:`compute_sketch`) and the vectorised batch kernel
(:func:`compute_sketches_batch` / :func:`sketch_values_batch`), which is
what every production caller routes through.  :mod:`repro.minhash.wire`
adds the b-bit compressed wire format for shuffle traffic.
"""

from repro.minhash.universal import (
    UniversalHashFamily,
    cached_family,
    next_prime,
    is_prime,
)
from repro.minhash.sketch import (
    MinHashSketch,
    SketchingConfig,
    compute_sketch,
    compute_sketches,
    compute_sketches_batch,
    padded_value_sets,
    sketch_matrix,
    sketch_values_batch,
    sketches_from_matrix,
)
from repro.minhash.similarity import (
    estimate_jaccard,
    exact_jaccard,
    positional_similarity,
    set_similarity,
    pairwise_similarity_matrix,
    condensed_to_square,
)
from repro.minhash.wire import (
    SketchFrame,
    SketchWireCodec,
    collision_floor,
    corrected_jaccard,
    effective_threshold,
    pack_values,
    unpack_values,
)

__all__ = [
    "UniversalHashFamily",
    "cached_family",
    "next_prime",
    "is_prime",
    "MinHashSketch",
    "SketchingConfig",
    "compute_sketch",
    "compute_sketches",
    "compute_sketches_batch",
    "padded_value_sets",
    "sketch_matrix",
    "sketch_values_batch",
    "sketches_from_matrix",
    "estimate_jaccard",
    "exact_jaccard",
    "positional_similarity",
    "set_similarity",
    "pairwise_similarity_matrix",
    "condensed_to_square",
    "SketchFrame",
    "SketchWireCodec",
    "collision_floor",
    "corrected_jaccard",
    "effective_threshold",
    "pack_values",
    "unpack_values",
]
