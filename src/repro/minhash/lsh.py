"""Banded locality-sensitive hashing index over min-hash sketches.

The authors' earlier MC-LSH work (refs [17]/[18]) and the MC-LSH baseline
here rely on LSH *banding*: a sketch of ``n`` values is cut into
``n / band_size`` bands; two sequences become lookup candidates when any
band matches exactly.  For true Jaccard ``J`` the candidate probability is

    P(candidate) = 1 - (1 - J^r)^b      (r = band size, b = band count)

— an S-curve whose threshold sits near ``(1/b)^(1/r)``.  The index
supports incremental insertion (the access pattern of greedy clustering)
and batch queries.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence

from repro.errors import SketchError
from repro.minhash.sketch import MinHashSketch


class LshIndex:
    """Band-hash index over sketches of a fixed family."""

    def __init__(self, num_hashes: int, band_size: int):
        if band_size < 1:
            raise SketchError(f"band_size must be >= 1, got {band_size}")
        if num_hashes % band_size != 0:
            raise SketchError(
                f"band_size {band_size} must divide num_hashes {num_hashes}"
            )
        self.num_hashes = num_hashes
        self.band_size = band_size
        self.num_bands = num_hashes // band_size
        self._tables: list[dict[tuple, list[str]]] = [
            defaultdict(list) for _ in range(self.num_bands)
        ]
        self._sketches: dict[str, MinHashSketch] = {}

    def __len__(self) -> int:
        return len(self._sketches)

    def __contains__(self, read_id: str) -> bool:
        return read_id in self._sketches

    def _band_keys(self, sketch: MinHashSketch) -> list[tuple]:
        if len(sketch) != self.num_hashes:
            raise SketchError(
                f"sketch width {len(sketch)} does not match index width "
                f"{self.num_hashes}"
            )
        values = sketch.values.tolist()
        r = self.band_size
        return [tuple(values[b * r : (b + 1) * r]) for b in range(self.num_bands)]

    def insert(self, sketch: MinHashSketch) -> None:
        """Add a sketch to the index (read ids must be unique)."""
        if sketch.read_id in self._sketches:
            raise SketchError(f"read id {sketch.read_id!r} already indexed")
        for table, key in zip(self._tables, self._band_keys(sketch)):
            table[key].append(sketch.read_id)
        self._sketches[sketch.read_id] = sketch

    def insert_all(self, sketches: Iterable[MinHashSketch]) -> None:
        """Add many sketches."""
        for sketch in sketches:
            self.insert(sketch)

    def candidates(self, sketch: MinHashSketch) -> list[str]:
        """Read ids colliding with ``sketch`` in at least one band, in
        first-collision order (self excluded when indexed)."""
        seen: set[str] = set()
        out: list[str] = []
        for table, key in zip(self._tables, self._band_keys(sketch)):
            for read_id in table.get(key, ()):
                if read_id != sketch.read_id and read_id not in seen:
                    seen.add(read_id)
                    out.append(read_id)
        return out

    def get(self, read_id: str) -> MinHashSketch:
        """Retrieve an indexed sketch."""
        if read_id not in self._sketches:
            raise SketchError(f"read id {read_id!r} not in index")
        return self._sketches[read_id]

    @staticmethod
    def candidate_probability(jaccard: float, band_size: int, num_bands: int) -> float:
        """``1 - (1 - J^r)^b`` — the banding S-curve."""
        if not 0.0 <= jaccard <= 1.0:
            raise SketchError(f"jaccard must be in [0,1], got {jaccard}")
        if band_size < 1 or num_bands < 1:
            raise SketchError("band_size and num_bands must be >= 1")
        return 1.0 - (1.0 - jaccard**band_size) ** num_bands

    @staticmethod
    def threshold(band_size: int, num_bands: int) -> float:
        """Approximate Jaccard where the S-curve crosses 50 %:
        ``(1/b)^(1/r)``."""
        if band_size < 1 or num_bands < 1:
            raise SketchError("band_size and num_bands must be >= 1")
        return (1.0 / num_bands) ** (1.0 / band_size)


def all_candidate_pairs(
    sketches: Sequence[MinHashSketch], *, band_size: int
) -> set[tuple[str, str]]:
    """Candidate id pairs across a whole sketch set (order-normalised)."""
    if not sketches:
        return set()
    index = LshIndex(num_hashes=len(sketches[0]), band_size=band_size)
    pairs: set[tuple[str, str]] = set()
    for sketch in sketches:
        for other in index.candidates(sketch):
            pairs.add(tuple(sorted((sketch.read_id, other))))  # type: ignore[arg-type]
        index.insert(sketch)
    return pairs
