"""Universal hash family ``h_i(x) = ((a_i x + b_i) mod p) mod m``.

This is Equation 5 of the paper (Carter & Wegman universal hashing), used
to simulate min-wise independent permutations without materialising them:
instead of storing ``n`` permutations of the k-mer universe we store the
``2n`` coefficients ``a_i``/``b_i`` (Section III-B).

The prime ``p`` is chosen as the smallest prime strictly greater than the
universe size ``m`` (the paper's ``$DIV`` parameter: "a prime number
greater than size of feature set").  All arithmetic is performed in
``int64``; the universe is therefore capped so that ``(p-1) * (m-1) + (p-1)``
cannot overflow — k-mer sizes up to 15 (``m = 4**15``), which covers both
paper settings (k = 5 for whole-metagenome, k = 15 for 16S).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.errors import SketchError
from repro.utils.rng import ensure_rng

#: Largest universe size whose products stay inside int64 (see module doc).
MAX_UNIVERSE = 4**15


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test, exact for n < 3.3e24."""
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # These witnesses are sufficient for all n < 3.3e24 (Sorenson & Webster).
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


@lru_cache(maxsize=None)
def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``.

    Cached: the Miller-Rabin search runs once per distinct universe size,
    not once per sketch (hash families for a given ``k`` always probe the
    same ``n``).
    """
    if n < 1:
        raise SketchError(f"next_prime requires n >= 1, got {n}")
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


@dataclass(frozen=True)
class UniversalHashFamily:
    """``n`` universal hash functions over the universe ``[0, m)``.

    Parameters
    ----------
    num_hashes:
        ``n``, the number of hash functions (the paper's ``$NUMHASH``).
    universe_size:
        ``m``, the size of the feature universe (``4**k`` for k-mers).
    seed:
        Seed for drawing the ``a_i``/``b_i`` coefficients uniformly from
        ``{0, ..., p-1}`` (``a_i`` from ``{1, ..., p-1}`` so every function
        is a genuine permutation of Z_p before the final ``mod m``).
    prime:
        Optional explicit ``p``; defaults to ``next_prime(universe_size)``.
    """

    num_hashes: int
    universe_size: int
    seed: int = 0
    prime: int | None = None
    a: np.ndarray = field(init=False, repr=False, compare=False)
    b: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.num_hashes < 1:
            raise SketchError(f"num_hashes must be >= 1, got {self.num_hashes}")
        if self.universe_size < 2:
            raise SketchError(
                f"universe_size must be >= 2, got {self.universe_size}"
            )
        if self.universe_size > MAX_UNIVERSE:
            raise SketchError(
                f"universe_size {self.universe_size} exceeds the int64-safe "
                f"maximum {MAX_UNIVERSE} (k-mer size must be <= 15)"
            )
        p = self.prime if self.prime is not None else next_prime(self.universe_size)
        if p <= self.universe_size:
            raise SketchError(
                f"prime {p} must exceed universe_size {self.universe_size}"
            )
        if not is_prime(p):
            raise SketchError(f"{p} is not prime")
        object.__setattr__(self, "prime", p)
        rng = ensure_rng(self.seed)
        a = rng.integers(1, p, size=self.num_hashes, dtype=np.int64)
        b = rng.integers(0, p, size=self.num_hashes, dtype=np.int64)
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)

    def hash_values(self, items: np.ndarray) -> np.ndarray:
        """Hash every item under every function.

        Parameters
        ----------
        items:
            1-D ``int64`` array of feature codes in ``[0, universe_size)``.

        Returns
        -------
        Array of shape ``(num_hashes, len(items))`` with values in
        ``[0, universe_size)``.
        """
        items = np.asarray(items, dtype=np.int64)
        if items.ndim != 1:
            raise SketchError(f"items must be 1-D, got shape {items.shape}")
        if items.size and (items.min() < 0 or items.max() >= self.universe_size):
            raise SketchError(
                f"item codes must lie in [0, {self.universe_size}), got range "
                f"[{items.min()}, {items.max()}]"
            )
        # (n, 1) * (1, N) broadcasting — single vectorised pass.
        hashed = (self.a[:, None] * items[None, :] + self.b[:, None]) % self.prime
        return hashed % self.universe_size

    def min_hash(self, items: np.ndarray) -> np.ndarray:
        """Sketch of a feature set: ``min_x h_i(x)`` per hash function.

        Empty feature sets raise :class:`~repro.errors.SketchError` — a
        sequence with no k-mers cannot be sketched.
        """
        items = np.asarray(items, dtype=np.int64)
        if items.size == 0:
            raise SketchError("cannot sketch an empty feature set")
        return self.hash_values(items).min(axis=1)

    def collision_probability(self, jaccard: float) -> float:
        """Expected fraction of matching sketch components for a given true
        Jaccard similarity (Equation 3: it *is* the Jaccard similarity)."""
        if not 0.0 <= jaccard <= 1.0:
            raise SketchError(f"jaccard must be in [0,1], got {jaccard}")
        return jaccard


@lru_cache(maxsize=128)
def cached_family(
    num_hashes: int, universe_size: int, seed: int = 0
) -> UniversalHashFamily:
    """Shared :class:`UniversalHashFamily` for ``(num_hashes, universe, seed)``.

    Family construction draws coefficients and (before caching) ran a
    Miller-Rabin prime search per call; callers that sketch record-by-record
    without passing an explicit family used to pay that on every sequence.
    The family is immutable, so one shared instance per parameter triple is
    safe to hand out everywhere.
    """
    return UniversalHashFamily(
        num_hashes=num_hashes, universe_size=universe_size, seed=seed
    )
