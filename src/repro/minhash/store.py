"""Sketch persistence.

Sketching is the pipeline's linear-cost stage; real deployments sketch
once and re-cluster many times (threshold sweeps, linkage comparisons).
This module saves/loads whole sketch sets as a single compressed ``.npz``
bundle (values matrix + read ids + family key), refusing to mix bundles
from different hash families on load.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

import numpy as np

from repro.errors import SketchError
from repro.minhash.sketch import MinHashSketch, sketch_matrix, sketches_from_matrix

_FORMAT_VERSION = 1


def save_sketches(
    sketches: Sequence[MinHashSketch], path: str | os.PathLike
) -> None:
    """Write a sketch set to ``path`` (``.npz``)."""
    if not sketches:
        raise SketchError("refusing to save an empty sketch set")
    matrix = sketch_matrix(sketches)  # validates family compatibility
    read_ids = np.array([s.read_id for s in sketches], dtype=object)
    family_key = np.array(sketches[0].family_key, dtype=np.int64)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        values=matrix,
        read_ids=read_ids,
        family_key=family_key,
    )


def load_sketches(path: str | os.PathLike) -> list[MinHashSketch]:
    """Load a sketch set saved by :func:`save_sketches`."""
    try:
        with np.load(path, allow_pickle=True) as data:
            version = int(data["version"])
            if version != _FORMAT_VERSION:
                raise SketchError(
                    f"sketch bundle version {version} unsupported "
                    f"(expected {_FORMAT_VERSION})"
                )
            values = data["values"]
            read_ids = data["read_ids"]
            family_key = tuple(int(x) for x in data["family_key"])
    except Exception as exc:
        if isinstance(exc, SketchError):
            raise
        # numpy raises a zoo of exceptions on malformed archives
        # (OSError, ValueError, zipfile.BadZipFile, UnpicklingError...).
        raise SketchError(f"cannot load sketch bundle {path!r}: {exc}") from exc
    if values.ndim != 2 or values.shape[0] != read_ids.shape[0]:
        raise SketchError(
            f"corrupt sketch bundle: {values.shape} values for "
            f"{read_ids.shape[0]} ids"
        )
    return sketches_from_matrix(values, list(read_ids), family_key)  # type: ignore[arg-type]
