"""b-bit compressed sketch wire format for the shuffle layer.

Full min-hash values are int64; shipping them through the shuffle costs
64 bits per component.  b-bit minwise hashing (Li & Konig, CACM 2011; the
communication-efficient Jaccard setting of Besta et al.) keeps only the
lowest ``b`` bits of each component: two *equal* minima still match, and
two *different* minima collide on their low bits with probability
``c = 1 / 2**b``.  The positional match fraction therefore drifts from
the true Jaccard ``J`` to::

    E[match] = J + (1 - J) * c = c + (1 - c) * J

which is inverted by :func:`corrected_jaccard` (``J = (m - c)/(1 - c)``)
and folded into thresholds by :func:`effective_threshold`
(``theta_eff = c + (1 - c) * theta``) so clustering decisions made on
compressed sketches approximate the uncompressed ones while the shuffle
moves ``~b/64`` of the bytes.

The codec plugs into the Map-Reduce engine through the ``wire`` field of
:class:`~repro.mapreduce.job.MapReduceJob`: each map task's output is
packed into a :class:`SketchFrame` carrying a producer-side CRC32 (the
IFile-checksum model from the fault-tolerance layer), the shuffle
accounts the *frame* bytes, and the frame is verified + decoded on the
reduce side.  Decoding is lossy by design — the decoded sketches carry a
``family_key`` of ``(num_hashes, 2**b, seed)`` so they can never be
accidentally compared against uncompressed sketches.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import MapReduceError, SketchError
from repro.minhash.sketch import MinHashSketch, sketches_from_matrix

#: Supported b-bit widths: divisors of 8 keep np.packbits exact and the
#: payload layout trivially byte-aligned per component column.
SUPPORTED_BITS = (1, 2, 4, 8, 16, 32)


def collision_floor(bits: int) -> float:
    """``c = 1 / 2**b`` — chance two *unequal* minima match on b bits."""
    _check_bits(bits)
    return 1.0 / float(1 << bits)


def corrected_jaccard(match_fraction: float, bits: int) -> float:
    """Invert the b-bit match expectation back to a Jaccard estimate.

    ``E[match] = c + (1 - c) J`` gives ``J = (match - c) / (1 - c)``,
    clipped to ``[0, 1]`` (sampling noise can push the raw fraction below
    the collision floor).
    """
    c = collision_floor(bits)
    if not 0.0 <= match_fraction <= 1.0:
        raise SketchError(
            f"match fraction must be in [0,1], got {match_fraction}"
        )
    return min(1.0, max(0.0, (match_fraction - c) / (1.0 - c)))


def effective_threshold(threshold: float, bits: int) -> float:
    """Map a Jaccard threshold into b-bit match-fraction space.

    Comparing the *raw* b-bit match fraction against
    ``c + (1 - c) * theta`` is equivalent to comparing the corrected
    Jaccard estimate against ``theta``.
    """
    if not 0.0 <= threshold <= 1.0:
        raise SketchError(f"threshold must be in [0,1], got {threshold}")
    c = collision_floor(bits)
    return c + (1.0 - c) * threshold


def pack_values(matrix: np.ndarray, bits: int) -> bytes:
    """Pack the lowest ``bits`` of every matrix entry into a byte payload.

    Layout: entries in C order, each contributing ``bits`` bits, MSB
    first within each entry — ``np.packbits`` over the ``(N*H, bits)``
    bit plane.  ``unpack_values`` is the exact inverse of the masked
    values.
    """
    _check_bits(bits)
    matrix = np.asarray(matrix, dtype=np.int64)
    if matrix.ndim != 2:
        raise SketchError(f"expected a 2-D sketch matrix, got shape {matrix.shape}")
    masked = (matrix & ((1 << bits) - 1)).astype(np.uint64)
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint64)
    planes = ((masked[..., None] >> shifts) & 1).astype(np.uint8)
    return np.packbits(planes.reshape(-1)).tobytes()


def unpack_values(
    payload: bytes, num_records: int, num_hashes: int, bits: int
) -> np.ndarray:
    """Inverse of :func:`pack_values`: ``(num_records, num_hashes)`` int64."""
    _check_bits(bits)
    total_bits = num_records * num_hashes * bits
    expected = -(-total_bits // 8)
    if len(payload) != expected:
        raise SketchError(
            f"payload of {len(payload)} bytes does not hold "
            f"{num_records}x{num_hashes} values at {bits} bits "
            f"(expected {expected})"
        )
    planes = np.unpackbits(
        np.frombuffer(payload, dtype=np.uint8), count=total_bits
    ).reshape(num_records * num_hashes, bits)
    weights = (1 << np.arange(bits - 1, -1, -1, dtype=np.int64))
    values = planes.astype(np.int64) @ weights
    return values.reshape(num_records, num_hashes)


def _check_bits(bits: int) -> None:
    if bits not in SUPPORTED_BITS:
        raise SketchError(
            f"unsupported b-bit width {bits}; expected one of {SUPPORTED_BITS}"
        )


@dataclass(frozen=True)
class SketchFrame:
    """One map task's sketch output, packed for the wire.

    ``crc`` is computed by the *producer* over the payload at encode time
    and travels with the frame; :meth:`SketchWireCodec.decode_records`
    recomputes it on receipt, so corruption in transit is detected before
    any reducer consumes the data (the same producer-side IFile-checksum
    model the fault-injection layer exercises).
    """

    payload: bytes
    crc: int
    keys: tuple
    read_ids: tuple
    num_hashes: int
    bits: int
    seed: int

    @property
    def nbytes(self) -> int:
        """Payload size on the wire (the quantity the shuffle model bills)."""
        return len(self.payload)


class SketchWireCodec:
    """Encode/decode ``(key, MinHashSketch)`` map outputs as b-bit frames.

    Satisfies the ``wire`` protocol of
    :class:`~repro.mapreduce.job.MapReduceJob`: ``encode_records`` turns
    one task's record list into a :class:`SketchFrame`, ``decode_records``
    verifies the CRC and reconstitutes records.  Decoded sketches hold the
    low-b-bit values with ``family_key = (num_hashes, 2**bits, seed)``.
    """

    def __init__(self, bits: int = 8):
        _check_bits(bits)
        self.bits = bits

    def encode_records(self, records: list[tuple]) -> SketchFrame:
        keys = []
        read_ids = []
        rows = []
        num_hashes = None
        seed = 0
        for key, value in records:
            if not isinstance(value, MinHashSketch):
                raise MapReduceError(
                    f"sketch wire codec cannot encode {type(value).__name__}; "
                    "map outputs must be (key, MinHashSketch) pairs"
                )
            if num_hashes is None:
                num_hashes = len(value)
                seed = value.family_key[2]
            elif len(value) != num_hashes:
                raise MapReduceError(
                    "sketch wire codec requires equal-length sketches per task"
                )
            keys.append(key)
            read_ids.append(value.read_id)
            rows.append(value.values)
        matrix = (
            np.vstack(rows) if rows else np.empty((0, 0), dtype=np.int64)
        )
        payload = pack_values(matrix, self.bits) if rows else b""
        return SketchFrame(
            payload=payload,
            crc=zlib.crc32(payload),
            keys=tuple(keys),
            read_ids=tuple(read_ids),
            num_hashes=num_hashes or 0,
            bits=self.bits,
            seed=seed,
        )

    def decode_records(self, frame: SketchFrame) -> list[tuple]:
        if not isinstance(frame, SketchFrame):
            raise MapReduceError(
                f"sketch wire codec cannot decode {type(frame).__name__}"
            )
        if zlib.crc32(frame.payload) != frame.crc:
            raise MapReduceError(
                "corrupted sketch frame (checksum mismatch)"
            )
        if not frame.keys:
            return []
        values = unpack_values(
            frame.payload, len(frame.keys), frame.num_hashes, frame.bits
        )
        family_key = (frame.num_hashes, 1 << frame.bits, frame.seed)
        sketches = sketches_from_matrix(values, frame.read_ids, family_key)
        return list(zip(frame.keys, sketches))
