"""Jaccard-similarity estimation from min-hash sketches.

Two estimators are provided:

* ``positional`` — the classical MinHash estimator: the fraction of sketch
  components where the two minima coincide.  This is an unbiased estimator
  of Jaccard similarity (Equation 3).
* ``set`` — the estimator written in Algorithm 1 line 9 of the paper:
  treat each sketch as a *set* of values and compute
  ``|A ∩ B| / |A ∪ B|``.  When the universe is large the two estimators
  agree closely; the set form is what the published pseudocode uses, so it
  is the default for the greedy algorithm.

The pairwise matrix (used by the hierarchical algorithm, Algorithm 2
step 3) is computed row-by-row with full-width NumPy broadcasting; the
Map-Reduce layer partitions rows across tasks exactly as described in
Section III-C ("row-wise partition").
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import SketchError
from repro.minhash.sketch import MinHashSketch, padded_value_sets, sketch_matrix

ESTIMATORS = ("positional", "set")

#: Element budget for one broadcasted comparison block of the positional
#: matrix path (rows_per_block * N * num_hashes); bounds peak memory.
_BLOCK_BUDGET_ELEMENTS = 1 << 22


def exact_jaccard(set_a: np.ndarray, set_b: np.ndarray) -> float:
    """True Jaccard similarity of two feature sets (Equation 1)."""
    a = np.unique(np.asarray(set_a))
    b = np.unique(np.asarray(set_b))
    if a.size == 0 and b.size == 0:
        raise SketchError("Jaccard of two empty sets is undefined")
    inter = np.intersect1d(a, b, assume_unique=True).size
    union = a.size + b.size - inter
    return inter / union


def positional_similarity(s1: MinHashSketch, s2: MinHashSketch) -> float:
    """Fraction of matching sketch components (classical estimator)."""
    _check_pair(s1, s2)
    return float(np.mean(s1.values == s2.values))


def set_similarity(s1: MinHashSketch, s2: MinHashSketch) -> float:
    """Jaccard of sketch *value sets* — Algorithm 1 line 9 verbatim."""
    _check_pair(s1, s2)
    a, b = s1.value_set, s2.value_set
    union = len(a | b)
    if union == 0:
        raise SketchError("both sketches are empty")
    return len(a & b) / union


def estimate_jaccard(
    s1: MinHashSketch, s2: MinHashSketch, *, estimator: str = "set"
) -> float:
    """Estimate Jaccard similarity between two sketched sequences."""
    if estimator == "set":
        return set_similarity(s1, s2)
    if estimator == "positional":
        return positional_similarity(s1, s2)
    raise SketchError(f"unknown estimator {estimator!r}; expected one of {ESTIMATORS}")


def _check_pair(s1: MinHashSketch, s2: MinHashSketch) -> None:
    if not s1.compatible_with(s2):
        raise SketchError(
            f"sketches {s1.read_id!r} and {s2.read_id!r} use different hash "
            "families and cannot be compared"
        )
    if len(s1) != len(s2):
        raise SketchError(
            f"sketch lengths differ: {len(s1)} vs {len(s2)}"
        )


def pairwise_similarity_matrix(
    sketches: Sequence[MinHashSketch],
    *,
    estimator: str = "positional",
    row_range: tuple[int, int] | None = None,
) -> np.ndarray:
    """All-pairs estimated-Jaccard matrix for ``sketches``.

    Parameters
    ----------
    estimator:
        ``"positional"`` (vectorised, default for the matrix path) or
        ``"set"`` (paper-literal, slower).
    row_range:
        Optional ``(start, stop)`` half-open row slice: compute only those
        rows of the matrix.  This is the unit of parallelism used by the
        Map-Reduce similarity job (each task owns a band of rows).  The
        returned array then has shape ``(stop - start, N)``.

    Returns
    -------
    ``float64`` matrix; the full matrix is symmetric with unit diagonal.
    """
    if estimator not in ESTIMATORS:
        raise SketchError(
            f"unknown estimator {estimator!r}; expected one of {ESTIMATORS}"
        )
    n = len(sketches)
    if n == 0:
        return np.empty((0, 0), dtype=np.float64)
    start, stop = row_range if row_range is not None else (0, n)
    if not (0 <= start <= stop <= n):
        raise SketchError(f"row_range {row_range} out of bounds for N={n}")

    matrix = sketch_matrix(sketches)  # validates family compatibility

    if estimator == "positional":
        # Blocked broadcast: compare a band of rows against the whole
        # matrix at once instead of one row per Python iteration.
        num_hashes = matrix.shape[1]
        rows_per_block = max(1, _BLOCK_BUDGET_ELEMENTS // max(1, n * num_hashes))
        out = np.empty((stop - start, n), dtype=np.float64)
        for lo in range(start, stop, rows_per_block):
            hi = min(lo + rows_per_block, stop)
            equal = matrix[lo:hi, None, :] == matrix[None, :, :]
            out[lo - start : hi - start] = equal.mean(axis=2)
        return out

    # Set-based path: each row's distinct values live in a padded sorted
    # block, so one np.isin per row scores it against every other row at
    # once (pads are -1, never a hash value, so they can't match).
    padded, counts = padded_value_sets(matrix)
    out = np.empty((stop - start, n), dtype=np.float64)
    for i in range(start, stop):
        member = np.isin(padded, padded[i, : counts[i]])
        inter = member.sum(axis=1)
        # Sketches are non-empty, so the union never vanishes.
        out[i - start] = inter / (counts + counts[i] - inter)
    return out


def condensed_to_square(condensed: np.ndarray, n: int) -> np.ndarray:
    """Expand a condensed upper-triangle vector (scipy ``pdist`` layout)
    into a full symmetric matrix with unit diagonal."""
    expected = n * (n - 1) // 2
    condensed = np.asarray(condensed, dtype=np.float64)
    if condensed.size != expected:
        raise SketchError(
            f"condensed vector has {condensed.size} entries, expected {expected}"
        )
    out = np.eye(n, dtype=np.float64)
    idx = np.triu_indices(n, k=1)
    out[idx] = condensed
    out[(idx[1], idx[0])] = condensed
    return out
