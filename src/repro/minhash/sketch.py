"""Sketch computation for sequences (Equation 4/6 of the paper).

The end-to-end transform mirrors Figure 1: DNA string -> integer encoding
-> k-mer feature set -> per-hash minimum.  Two execution paths produce
byte-identical sketches:

* :func:`compute_sketch` — the per-record reference path (one sequence at
  a time, exactly the paper's per-row UDF chain);
* :func:`compute_sketches_batch` — the vectorised fast path: every
  sequence of the batch is 2-bit-encoded in a single NumPy pass (the
  sequences are joined with an ambiguous separator so windows can never
  straddle two records), all k-mer codes are hashed through the
  :class:`~repro.minhash.universal.UniversalHashFamily` as one
  ``(num_hashes, total_kmers)`` broadcast, and per-sequence minima fall
  out of ``np.minimum.reduceat`` over the record segments.  No Python
  loop runs per record.

:func:`compute_sketches` (the whole-sample API) routes through the batch
kernel; :func:`sketch_matrix` stacks results into an ``(N, n)`` matrix
ready for the row-partitioned pairwise similarity job.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import KmerError, SketchError
from repro.minhash.universal import UniversalHashFamily, cached_family
from repro.seq.alphabet import encode_dna
from repro.seq.kmers import kmer_set, max_kmer_code
from repro.seq.records import SequenceRecord

#: Upper bound on the ``(num_hashes, chunk)`` hash matrix evaluated at once
#: by the batch kernel; bounds peak memory while keeping passes large.
DEFAULT_CHUNK_KMERS = 1 << 20


@dataclass(frozen=True)
class SketchingConfig:
    """Parameters of the sketching stage.

    Matches the paper's input parameters: k-mer size ``k``, number of hash
    functions ``n`` (``$NUMHASH``), and the hash-family seed.  The paper's
    experiments use ``k=5, n=100`` for whole-metagenome reads (Table III)
    and ``k=15, n=50`` for 16S reads (Table V).
    """

    kmer_size: int
    num_hashes: int
    seed: int = 0
    strict: bool = False  # skip (rather than reject) ambiguous bases

    def __post_init__(self) -> None:
        if self.num_hashes < 1:
            raise SketchError(f"num_hashes must be >= 1, got {self.num_hashes}")
        # kmer_size validity is checked by max_kmer_code below.
        max_kmer_code(self.kmer_size)

    def make_family(self) -> UniversalHashFamily:
        """The (shared, cached) hash family implied by this configuration."""
        return cached_family(
            self.num_hashes, max_kmer_code(self.kmer_size), self.seed
        )


@dataclass(frozen=True)
class MinHashSketch:
    """A fixed-size sketch (Equation 4) for one sequence.

    ``values[i] = min over k-mers x of h_i(x)``.  Sketches are only
    comparable when produced by the same hash family; ``family_key``
    guards against accidental cross-family comparison.
    """

    read_id: str
    values: np.ndarray
    family_key: tuple[int, int, int] = (0, 0, 0)  # (num_hashes, universe, seed)

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.int64)
        if values.ndim != 1 or values.size == 0:
            raise SketchError(
                f"sketch values must be a non-empty 1-D array, got shape "
                f"{values.shape}"
            )
        object.__setattr__(self, "values", values)

    @property
    def value_set(self) -> frozenset:
        """The sketch values as a set (for the set-based estimator of
        Algorithm 1 line 9).

        Built lazily on first access: most pipelines (positional
        estimator, sparse collision join, the batch kernels) never touch
        the set form, and eagerly materialising a frozenset per sketch
        paid O(n) time and memory for nothing.
        """
        cached = self.__dict__.get("_value_set")
        if cached is None:
            cached = frozenset(self.values.tolist())
            object.__setattr__(self, "_value_set", cached)
        return cached

    def __len__(self) -> int:
        return int(self.values.size)

    def compatible_with(self, other: "MinHashSketch") -> bool:
        """True when both sketches come from the same hash family."""
        return self.family_key == other.family_key


def compute_sketch(
    record: SequenceRecord,
    config: SketchingConfig,
    family: UniversalHashFamily | None = None,
) -> MinHashSketch:
    """Sketch one sequence record.

    Sequences shorter than ``k`` (or whose valid windows are all ambiguous)
    raise :class:`~repro.errors.SketchError`, since they have an empty
    feature set.
    """
    if family is None:
        family = config.make_family()
    features = kmer_set(record.sequence, config.kmer_size, strict=config.strict)
    if features.size == 0:
        raise SketchError(
            f"sequence {record.read_id!r} yields no {config.kmer_size}-mers"
        )
    values = family.min_hash(features)
    key = (family.num_hashes, family.universe_size, config.seed)
    return MinHashSketch(read_id=record.read_id, values=values, family_key=key)


#: Universe sizes up to this get a precomputed per-family hash table
#: (``num_hashes x universe``, narrow dtype) instead of re-hashing codes.
SMALL_UNIVERSE_MAX = 1 << 16

#: Element budget for the blocked ``(records, windows, hashes)`` gather in
#: the small-universe path (bounds peak memory, not correctness).
_GATHER_BUDGET_ELEMENTS = 1 << 22


def _narrow_dtype(universe: int) -> np.dtype:
    """Smallest unsigned dtype that holds hash values in ``[0, universe)``."""
    if universe <= 1 << 8:
        return np.dtype(np.uint8)
    if universe <= 1 << 16:
        return np.dtype(np.uint16)
    return np.dtype(np.uint32)


def _segmented_min(
    table: np.ndarray, inverse: np.ndarray, segments: np.ndarray
) -> np.ndarray:
    """Per-segment minima of ``table[:, inverse]`` without materialising it.

    ``table`` is ``(num_hashes, d)``; ``inverse`` indexes its columns;
    ``segments`` are segment start offsets into ``inverse``.  Returns
    ``(num_segments, num_hashes)`` in the table's dtype.  The loop runs per
    hash function (fixed, 50–100), never per record: 1-D ``take`` +
    ``reduceat`` on contiguous buffers is an order of magnitude faster
    than the equivalent 2-D fancy-index + axis reduceat.
    """
    num_hashes = table.shape[0]
    out = np.empty((num_hashes, segments.size), dtype=table.dtype)
    buf = np.empty(inverse.size, dtype=table.dtype)
    for i in range(num_hashes):
        np.take(table[i], inverse, out=buf)
        np.minimum.reduceat(buf, segments, out=out[i])
    return out.T


def sketch_values_batch(
    sequences: Sequence[str],
    config: SketchingConfig,
    family: UniversalHashFamily | None = None,
    *,
    chunk_kmers: int = DEFAULT_CHUNK_KMERS,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised sketch kernel over a batch of sequences.

    Returns ``(values, kept)``: ``values`` is an ``(M, num_hashes)`` int64
    matrix of sketches, ``kept`` the indices of the ``M`` input sequences
    that produced at least one k-mer (the rest are dropped, mirroring
    :func:`compute_sketches`).  Output rows are byte-identical to
    :func:`compute_sketch` on the corresponding record.

    The kernel 2-bit-encodes the whole batch once (records joined with an
    ``N`` separator, which encodes to -1, so no window can span two
    records) and extracts every valid k-mer window in one strided pass.
    Small universes (``4**k <= 2**16``) hash each universe code exactly
    once into a cached per-family table and dedupe ``(record, code)``
    pairs through a presence matrix; large universes dedupe by sorting and
    hash each distinct code per chunk.  Either way the hash family is
    evaluated as one broadcasted pass over distinct codes and per-sequence
    minima come from segmented ``take``/``reduceat`` — no per-record
    Python loop anywhere.
    """
    k = config.kmer_size
    if family is None:
        family = config.make_family()
    num_records = len(sequences)
    universe = family.universe_size
    if chunk_kmers < 1:
        raise SketchError(f"chunk_kmers must be >= 1, got {chunk_kmers}")
    if num_records == 0:
        return np.empty((0, family.num_hashes), dtype=np.int64), np.empty(
            0, dtype=np.intp
        )

    codes = encode_dna("N".join(sequences), strict=False).astype(np.int64)
    lengths = np.fromiter(
        (len(s) for s in sequences), dtype=np.int64, count=num_records
    )
    starts = np.zeros(num_records + 1, dtype=np.int64)
    np.cumsum(lengths + 1, out=starts[1:])  # +1 for the separator

    if config.strict:
        _raise_first_strict_error(sequences, codes, starts, lengths, k)

    num_windows = codes.size - k + 1
    if num_windows > 0:
        # A window is valid iff it covers no invalid/separator position:
        # count invalid positions per window with one cumulative sum.
        bad = np.zeros(codes.size + 1, dtype=np.int64)
        np.cumsum(codes < 0, out=bad[1:])
        valid = bad[k:] == bad[:num_windows]
        weights = 4 ** np.arange(k - 1, -1, -1, dtype=np.int64)
        windows = np.lib.stride_tricks.sliding_window_view(codes, k)
        positions = np.flatnonzero(valid)
        window_codes = windows[valid] @ weights
        # A valid window contains no separator, so it lies inside exactly
        # one record: the one whose span covers its start position.
        owners = np.searchsorted(starts[1:], positions, side="right")
    else:
        window_codes = np.empty(0, dtype=np.int64)
        owners = np.empty(0, dtype=np.intp)

    minima = np.full(
        (num_records, family.num_hashes), np.iinfo(np.int64).max, dtype=np.int64
    )
    produced = np.zeros(num_records, dtype=bool)
    if universe <= SMALL_UNIVERSE_MAX:
        _small_universe_minima(
            family, universe, owners, window_codes, num_records, minima, produced
        )
    else:
        _large_universe_minima(
            family, universe, owners, window_codes, chunk_kmers, minima, produced
        )

    kept = np.flatnonzero(produced)
    return minima[kept], kept


def _small_universe_minima(
    family: UniversalHashFamily,
    universe: int,
    owners: np.ndarray,
    window_codes: np.ndarray,
    num_records: int,
    minima: np.ndarray,
    produced: np.ndarray,
) -> None:
    """Small-universe path: cached transposed hash table + blocked gather.

    Every universe code is hashed exactly once (cached on the family) into
    a ``(universe + 1, num_hashes)`` row-major table whose extra last row
    is the dtype maximum.  Per block of records, window codes scatter into
    a ``(block, max_windows)`` index matrix padded with that sentinel row,
    so one contiguous row-gather plus one ``min(axis=1)`` yields every
    record's sketch — padding can never lower a minimum.  Blocks are sized
    to keep the gathered ``(block, max_windows, num_hashes)`` tensor
    inside a fixed element budget; no per-record Python loop anywhere.
    """
    table = _hash_table_t(family)
    counts = np.bincount(owners, minlength=num_records)
    segments = np.zeros(num_records + 1, dtype=np.int64)
    np.cumsum(counts, out=segments[1:])
    np.greater(counts, 0, out=produced)
    width = int(counts.max(initial=0))
    if width == 0:
        return
    rows_per_block = max(
        1, _GATHER_BUDGET_ELEMENTS // (width * family.num_hashes)
    )
    for first in range(0, num_records, rows_per_block):
        last = min(first + rows_per_block, num_records)
        block_counts = counts[first:last]
        block_width = int(block_counts.max(initial=0))
        if block_width == 0:
            continue
        lo, hi = segments[first], segments[last]
        padded = np.full((last - first, block_width), universe, dtype=np.int64)
        rows = np.repeat(np.arange(last - first), block_counts)
        cols = np.arange(hi - lo) - np.repeat(segments[first:last] - lo, block_counts)
        padded[rows, cols] = window_codes[lo:hi]
        minima[first:last] = table[padded].min(axis=1)


def _large_universe_minima(
    family: UniversalHashFamily,
    universe: int,
    owners: np.ndarray,
    window_codes: np.ndarray,
    chunk_kmers: int,
    minima: np.ndarray,
    produced: np.ndarray,
) -> None:
    """Large-universe path: sort-based dedup, hash distinct codes per chunk.

    ``(record, code)`` pairs are deduped with one ``np.unique`` over the
    fused key ``record * universe + code`` (record-major, codes ascending
    within a record — the same order as the per-record feature sets); each
    chunk hashes only its distinct codes and gathers.
    """
    combined = np.unique(owners * universe + window_codes)
    owners_u = combined // universe
    codes_u = combined % universe
    dtype = _narrow_dtype(universe)
    for lo in range(0, combined.size, chunk_kmers):
        chunk_owners = owners_u[lo : lo + chunk_kmers]
        chunk_codes = codes_u[lo : lo + chunk_kmers]
        segments = np.concatenate(([0], np.flatnonzero(np.diff(chunk_owners)) + 1))
        segment_owner = chunk_owners[segments]
        distinct, inverse = np.unique(chunk_codes, return_inverse=True)
        table = family.hash_values(distinct).astype(dtype)
        segment_min = _segmented_min(table, inverse, segments)
        # A record's segment can straddle a chunk boundary, so fold with
        # minimum instead of assigning (segment owners are unique within
        # one chunk, so the fancy-indexed read/modify/write is safe).
        minima[segment_owner] = np.minimum(minima[segment_owner], segment_min)
        produced[segment_owner] = True


def _hash_table_t(family: UniversalHashFamily) -> np.ndarray:
    """Transposed ``(universe + 1, num_hashes)`` hash table for small universes.

    ``table[x, i] == family.hash_values([x])[i]`` in the smallest unsigned
    dtype that fits; the extra last row holds the dtype maximum and serves
    as the gather sentinel for padded window slots (it can never undercut
    a real minimum).  Computed once and cached on the (immutable) family —
    after that, hashing a window is a contiguous-row gather instead of
    modular arithmetic.
    """
    if family.universe_size > SMALL_UNIVERSE_MAX:
        raise SketchError(
            f"hash table for universe {family.universe_size} would exceed the "
            f"small-universe cap {SMALL_UNIVERSE_MAX}"
        )
    cached = getattr(family, "_hash_table_t", None)
    if cached is None:
        dtype = _narrow_dtype(family.universe_size)
        codes = np.arange(family.universe_size, dtype=np.int64)
        cached = np.empty((family.universe_size + 1, family.num_hashes), dtype=dtype)
        cached[:-1] = family.hash_values(codes).T
        cached[-1] = np.iinfo(dtype).max
        object.__setattr__(family, "_hash_table_t", cached)
    return cached


def _raise_first_strict_error(
    sequences: Sequence[str],
    codes: np.ndarray,
    starts: np.ndarray,
    lengths: np.ndarray,
    k: int,
) -> None:
    """Reproduce per-record strict-mode errors for the batch kernel.

    The per-record path raises ``SequenceError`` on the first ambiguous
    base (from ``encode_dna``) or ``KmerError`` for too-short sequences,
    in record order with ambiguity taking precedence within a record.
    Scan vectorised, then delegate to the per-record code so messages
    stay identical.
    """
    invalid = codes < 0
    invalid[starts[1:-1] - 1] = False  # separators are expected to be invalid
    bad_positions = np.flatnonzero(invalid)
    bad_record = (
        int(np.searchsorted(starts[1:], bad_positions[0], side="right"))
        if bad_positions.size
        else len(sequences)
    )
    short = np.flatnonzero(lengths < k)
    short_record = int(short[0]) if short.size else len(sequences)
    if min(bad_record, short_record) >= len(sequences):
        return
    if bad_record <= short_record:
        encode_dna(sequences[bad_record], strict=True)  # raises SequenceError
    raise KmerError(
        f"sequence of length {lengths[short_record]} is shorter than k={k}"
    )


def compute_sketches_batch(
    records: Sequence[SequenceRecord] | Iterable[SequenceRecord],
    config: SketchingConfig,
    family: UniversalHashFamily | None = None,
    *,
    chunk_kmers: int = DEFAULT_CHUNK_KMERS,
) -> list[MinHashSketch]:
    """Sketch a whole sample through the vectorised batch kernel.

    Byte-identical to running :func:`compute_sketch` per record with a
    shared family; records too short to produce any k-mer are skipped
    (mirrors real pipelines, which drop ultra-short reads).
    """
    records = list(records)
    if family is None:
        family = config.make_family()
    values, kept = sketch_values_batch(
        [rec.sequence for rec in records],
        config,
        family,
        chunk_kmers=chunk_kmers,
    )
    key = (family.num_hashes, family.universe_size, config.seed)
    return [
        MinHashSketch(read_id=records[i].read_id, values=values[row], family_key=key)
        for row, i in enumerate(kept)
    ]


def compute_sketches(
    records: Sequence[SequenceRecord] | Iterable[SequenceRecord],
    config: SketchingConfig,
) -> list[MinHashSketch]:
    """Sketch a whole sample with a single shared hash family.

    Delegates to :func:`compute_sketches_batch` — the vectorised kernel is
    the production path; the per-record loop survives as the reference
    implementation the equivalence tests compare against.
    """
    return compute_sketches_batch(records, config)


def sketches_from_matrix(
    values: np.ndarray,
    read_ids: Sequence[str],
    family_key: tuple[int, int, int],
) -> list[MinHashSketch]:
    """Wrap the rows of an ``(N, num_hashes)`` matrix as sketches."""
    values = np.asarray(values, dtype=np.int64)
    if values.ndim != 2 or values.shape[0] != len(read_ids):
        raise SketchError(
            f"matrix of shape {values.shape} does not match {len(read_ids)} ids"
        )
    return [
        MinHashSketch(read_id=str(read_ids[i]), values=values[i], family_key=family_key)
        for i in range(values.shape[0])
    ]


def sketch_matrix(sketches: Sequence[MinHashSketch]) -> np.ndarray:
    """Stack sketches into an ``(N, num_hashes)`` int64 matrix.

    All sketches must share a family and length.
    """
    if not sketches:
        return np.empty((0, 0), dtype=np.int64)
    first = sketches[0]
    for s in sketches[1:]:
        if not s.compatible_with(first):
            raise SketchError(
                f"sketch {s.read_id!r} comes from a different hash family than "
                f"{first.read_id!r}"
            )
    return np.vstack([s.values for s in sketches])


def padded_value_sets(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise sorted unique values, left-aligned and padded with -1.

    Returns ``(padded, counts)`` where ``padded[i, :counts[i]]`` holds the
    sorted distinct values of row ``i`` (the sketch's *value set*) and the
    remainder is -1 (never a legal hash value).  This is the vectorised
    substrate for the set-based estimator: intersections become
    ``np.isin`` over contiguous blocks instead of per-pair frozenset
    algebra.
    """
    matrix = np.asarray(matrix, dtype=np.int64)
    if matrix.ndim != 2:
        raise SketchError(f"expected a 2-D sketch matrix, got shape {matrix.shape}")
    if matrix.size == 0:
        return matrix.copy(), np.zeros(matrix.shape[0], dtype=np.int64)
    ordered = np.sort(matrix, axis=1)
    first = np.ones_like(ordered, dtype=bool)
    first[:, 1:] = ordered[:, 1:] != ordered[:, :-1]
    counts = first.sum(axis=1)
    slots = np.cumsum(first, axis=1) - 1
    padded = np.full_like(ordered, -1)
    # Duplicates land on the slot of their first occurrence, writing the
    # same value again — harmless, and it keeps the scatter fully vector.
    padded[np.arange(matrix.shape[0])[:, None], slots] = ordered
    return padded, counts
