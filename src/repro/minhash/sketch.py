"""Sketch computation for sequences (Equation 4/6 of the paper).

The end-to-end transform mirrors Figure 1: DNA string -> integer encoding
-> k-mer feature set -> per-hash minimum.  :func:`compute_sketches`
processes a whole sample; :func:`sketch_matrix` stacks the results into an
``(N, n)`` matrix ready for the row-partitioned pairwise similarity job.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import SketchError
from repro.minhash.universal import UniversalHashFamily
from repro.seq.kmers import kmer_set, max_kmer_code
from repro.seq.records import SequenceRecord


@dataclass(frozen=True)
class SketchingConfig:
    """Parameters of the sketching stage.

    Matches the paper's input parameters: k-mer size ``k``, number of hash
    functions ``n`` (``$NUMHASH``), and the hash-family seed.  The paper's
    experiments use ``k=5, n=100`` for whole-metagenome reads (Table III)
    and ``k=15, n=50`` for 16S reads (Table V).
    """

    kmer_size: int
    num_hashes: int
    seed: int = 0
    strict: bool = False  # skip (rather than reject) ambiguous bases

    def __post_init__(self) -> None:
        if self.num_hashes < 1:
            raise SketchError(f"num_hashes must be >= 1, got {self.num_hashes}")
        # kmer_size validity is checked by max_kmer_code below.
        max_kmer_code(self.kmer_size)

    def make_family(self) -> UniversalHashFamily:
        """Build the hash family implied by this configuration."""
        return UniversalHashFamily(
            num_hashes=self.num_hashes,
            universe_size=max_kmer_code(self.kmer_size),
            seed=self.seed,
        )


@dataclass(frozen=True)
class MinHashSketch:
    """A fixed-size sketch (Equation 4) for one sequence.

    ``values[i] = min over k-mers x of h_i(x)``.  Sketches are only
    comparable when produced by the same hash family; ``family_key``
    guards against accidental cross-family comparison.
    """

    read_id: str
    values: np.ndarray
    family_key: tuple[int, int, int] = (0, 0, 0)  # (num_hashes, universe, seed)

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.int64)
        if values.ndim != 1 or values.size == 0:
            raise SketchError(
                f"sketch values must be a non-empty 1-D array, got shape "
                f"{values.shape}"
            )
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "_value_set", frozenset(values.tolist()))

    @property
    def value_set(self) -> frozenset:
        """The sketch values as a set (for the set-based estimator of
        Algorithm 1 line 9)."""
        return self._value_set  # type: ignore[attr-defined]

    def __len__(self) -> int:
        return int(self.values.size)

    def compatible_with(self, other: "MinHashSketch") -> bool:
        """True when both sketches come from the same hash family."""
        return self.family_key == other.family_key


def compute_sketch(
    record: SequenceRecord,
    config: SketchingConfig,
    family: UniversalHashFamily | None = None,
) -> MinHashSketch:
    """Sketch one sequence record.

    Sequences shorter than ``k`` (or whose valid windows are all ambiguous)
    raise :class:`~repro.errors.SketchError`, since they have an empty
    feature set.
    """
    if family is None:
        family = config.make_family()
    features = kmer_set(record.sequence, config.kmer_size, strict=config.strict)
    if features.size == 0:
        raise SketchError(
            f"sequence {record.read_id!r} yields no {config.kmer_size}-mers"
        )
    values = family.min_hash(features)
    key = (family.num_hashes, family.universe_size, config.seed)
    return MinHashSketch(read_id=record.read_id, values=values, family_key=key)


def compute_sketches(
    records: Sequence[SequenceRecord] | Iterable[SequenceRecord],
    config: SketchingConfig,
) -> list[MinHashSketch]:
    """Sketch a whole sample with a single shared hash family.

    Records too short to produce any k-mer are skipped (mirrors real
    pipelines, which drop ultra-short reads); callers needing strictness
    can pre-validate lengths.
    """
    family = config.make_family()
    out: list[MinHashSketch] = []
    for rec in records:
        try:
            out.append(compute_sketch(rec, config, family))
        except SketchError:
            continue
    return out


def sketch_matrix(sketches: Sequence[MinHashSketch]) -> np.ndarray:
    """Stack sketches into an ``(N, num_hashes)`` int64 matrix.

    All sketches must share a family and length.
    """
    if not sketches:
        return np.empty((0, 0), dtype=np.int64)
    first = sketches[0]
    for s in sketches[1:]:
        if not s.compatible_with(first):
            raise SketchError(
                f"sketch {s.read_id!r} comes from a different hash family than "
                f"{first.read_id!r}"
            )
    return np.vstack([s.values for s in sketches])
