"""Species-diversity metrics over clusterings.

The paper motivates binning with "(ii) it allows computation of species
diversity metrics" (Section I) — for 16S surveys the OTU size
distribution feeds richness and evenness estimators.  This module
implements the standard set on top of
:class:`~repro.cluster.assignments.ClusterAssignment`:

* :func:`chao1` — abundance-based richness estimate (singleton/doubleton
  corrected), the headline number of the rare-biosphere studies the
  Table I samples come from;
* :func:`shannon_index` / :func:`simpson_index` — diversity/evenness;
* :func:`goods_coverage` — how completely the sample covers the
  community;
* :func:`rarefaction_curve` — expected OTU count vs subsample size.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.errors import EvaluationError
from repro.cluster.assignments import ClusterAssignment


def _abundances(assignment: ClusterAssignment) -> np.ndarray:
    return np.array(sorted(assignment.sizes().values(), reverse=True), dtype=np.int64)


def chao1(assignment: ClusterAssignment) -> float:
    """Chao1 richness estimator.

    ``S_obs + F1^2 / (2 * F2)`` with the bias-corrected form
    ``S_obs + F1 (F1 - 1) / (2 (F2 + 1))`` when doubletons are absent.
    """
    sizes = _abundances(assignment)
    s_obs = sizes.size
    f1 = int(np.sum(sizes == 1))
    f2 = int(np.sum(sizes == 2))
    if f2 > 0:
        return s_obs + f1 * f1 / (2.0 * f2)
    return s_obs + f1 * (f1 - 1) / 2.0


def shannon_index(assignment: ClusterAssignment) -> float:
    """Shannon entropy H' = -sum p_i ln p_i over OTU frequencies."""
    sizes = _abundances(assignment).astype(np.float64)
    p = sizes / sizes.sum()
    return float(-np.sum(p * np.log(p)))


def simpson_index(assignment: ClusterAssignment) -> float:
    """Simpson's diversity 1 - sum p_i^2 (probability two random reads
    come from different OTUs)."""
    sizes = _abundances(assignment).astype(np.float64)
    p = sizes / sizes.sum()
    return float(1.0 - np.sum(p * p))


def goods_coverage(assignment: ClusterAssignment) -> float:
    """Good's coverage estimate ``1 - F1 / N``."""
    sizes = _abundances(assignment)
    f1 = int(np.sum(sizes == 1))
    return 1.0 - f1 / int(sizes.sum())


def rarefaction_curve(
    assignment: ClusterAssignment,
    depths: Sequence[int] | None = None,
) -> list[tuple[int, float]]:
    """Analytic rarefaction: expected OTU count at each subsample depth.

    Uses the hypergeometric formula
    ``E[S_n] = S - sum_i C(N - N_i, n) / C(N, n)`` computed in log space
    for numerical stability.

    Parameters
    ----------
    depths:
        Subsample sizes; defaults to ten evenly spaced depths up to N.
    """
    sizes = _abundances(assignment)
    total = int(sizes.sum())
    if depths is None:
        depths = sorted({max(1, total * k // 10) for k in range(1, 11)})
    out: list[tuple[int, float]] = []
    for depth in depths:
        if not 1 <= depth <= total:
            raise EvaluationError(
                f"rarefaction depth {depth} outside [1, {total}]"
            )
        expected = 0.0
        for n_i in sizes:
            remaining = total - int(n_i)
            if remaining < depth:
                # The OTU is guaranteed to appear in any subsample.
                expected += 1.0
                continue
            log_absent = (
                _log_comb(remaining, depth) - _log_comb(total, depth)
            )
            expected += 1.0 - math.exp(log_absent)
        out.append((int(depth), expected))
    return out


def _log_comb(n: int, k: int) -> float:
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
