"""Weighted cluster accuracy (W.Acc, Section IV-B).

"Each cluster is designated by class/genera based on the most frequent
class in the cluster, and then the accuracy is evaluated by computing the
percent of correctly assigned sequences with respect to the designated
class.  The reported accuracy is averaged across all clusters, weighted by
the number of sequences in each cluster."

With size weights this reduces to (correct sequences) / (total sequences)
over the evaluated clusters; we keep the cluster-wise formulation to allow
the same code to report unweighted per-cluster accuracy too.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping

from repro.errors import EvaluationError
from repro.cluster.assignments import ClusterAssignment


def weighted_cluster_accuracy(
    assignment: ClusterAssignment,
    truth: Mapping[str, str],
    *,
    min_cluster_size: int = 1,
    as_percent: bool = True,
) -> float:
    """W.Acc for a clustering against ground-truth labels.

    Parameters
    ----------
    assignment:
        Predicted clustering.
    truth:
        ``read_id -> class label`` ground truth; every evaluated sequence
        must be present.
    min_cluster_size:
        Only clusters with at least this many sequences are evaluated
        (the paper's tables filter small clusters).
    as_percent:
        Return 0-100 (paper convention) instead of 0-1.
    """
    if min_cluster_size < 1:
        raise EvaluationError(f"min_cluster_size must be >= 1, got {min_cluster_size}")
    total = 0
    correct = 0
    evaluated_clusters = 0
    for label, members in assignment.clusters().items():
        if len(members) < min_cluster_size:
            continue
        try:
            classes = Counter(truth[read_id] for read_id in members)
        except KeyError as exc:
            raise EvaluationError(
                f"no ground-truth label for sequence {exc.args[0]!r}"
            ) from None
        majority = classes.most_common(1)[0][1]
        total += len(members)
        correct += majority
        evaluated_clusters += 1
    if evaluated_clusters == 0:
        raise EvaluationError(
            f"no cluster reaches min_cluster_size={min_cluster_size}"
        )
    accuracy = correct / total
    return accuracy * 100.0 if as_percent else accuracy
