"""Beta diversity: comparing communities *between* samples.

The Sogin study behind Table I compares microbial communities across
sites/depths; with clusterings (OTU tables) in hand, the standard
between-sample measures are:

* :func:`bray_curtis` — abundance-weighted dissimilarity;
* :func:`jaccard_distance` — presence/absence overlap;
* :func:`morisita_horn` — abundance similarity robust to sample size;
* :func:`beta_diversity_matrix` — any of the above across many samples.

Samples are represented as OTU abundance dicts; :func:`otu_table`
derives one from a clustering whose OTU identity is the cluster's
ground-truth-free label (for cross-sample comparison, cluster samples
*jointly* and split the assignment by sample id).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

import numpy as np

from repro.errors import EvaluationError
from repro.cluster.assignments import ClusterAssignment


def otu_table(
    assignment: ClusterAssignment,
    sample_of: Mapping[str, str],
) -> dict[str, dict[int, int]]:
    """Split one joint clustering into per-sample OTU abundance vectors.

    Parameters
    ----------
    sample_of:
        ``read_id -> sample id`` for every clustered read.

    Returns
    -------
    ``{sample id: {otu label: count}}``.
    """
    missing = [r for r in assignment if r not in sample_of]
    if missing:
        raise EvaluationError(
            f"no sample id for read {missing[0]!r} "
            f"({len(missing)} reads unmapped)"
        )
    table: dict[str, dict[int, int]] = {}
    for read_id, otu in assignment.items():
        sample = sample_of[read_id]
        bucket = table.setdefault(sample, {})
        bucket[otu] = bucket.get(otu, 0) + 1
    return table


def _validate(a: Mapping[int, int], b: Mapping[int, int]) -> None:
    if not a or not b:
        raise EvaluationError("beta diversity of an empty sample is undefined")
    if any(v < 0 for v in a.values()) or any(v < 0 for v in b.values()):
        raise EvaluationError("abundances must be non-negative")


def bray_curtis(a: Mapping[int, int], b: Mapping[int, int]) -> float:
    """Bray-Curtis dissimilarity ``1 - 2*C / (S_a + S_b)`` in [0, 1]."""
    _validate(a, b)
    shared = sum(min(a.get(k, 0), b.get(k, 0)) for k in set(a) | set(b))
    total = sum(a.values()) + sum(b.values())
    return 1.0 - 2.0 * shared / total


def jaccard_distance(a: Mapping[int, int], b: Mapping[int, int]) -> float:
    """Presence/absence Jaccard distance ``1 - |A ∩ B| / |A ∪ B|``."""
    _validate(a, b)
    sa = {k for k, v in a.items() if v > 0}
    sb = {k for k, v in b.items() if v > 0}
    union = sa | sb
    if not union:
        raise EvaluationError("both samples have zero abundance everywhere")
    return 1.0 - len(sa & sb) / len(union)


def morisita_horn(a: Mapping[int, int], b: Mapping[int, int]) -> float:
    """Morisita-Horn *similarity* in [0, 1] (1 = identical structure)."""
    _validate(a, b)
    keys = sorted(set(a) | set(b))
    xa = np.array([a.get(k, 0) for k in keys], dtype=np.float64)
    xb = np.array([b.get(k, 0) for k in keys], dtype=np.float64)
    na, nb = xa.sum(), xb.sum()
    if na == 0 or nb == 0:
        raise EvaluationError("both samples need positive totals")
    da = float(np.sum(xa * xa)) / (na * na)
    db = float(np.sum(xb * xb)) / (nb * nb)
    denom = (da + db) * na * nb
    if denom == 0:
        return 0.0
    return float(2.0 * np.sum(xa * xb) / denom)


METRICS: dict[str, Callable] = {
    "bray-curtis": bray_curtis,
    "jaccard": jaccard_distance,
    "morisita-horn": morisita_horn,
}


def beta_diversity_matrix(
    samples: Mapping[str, Mapping[int, int]] | Sequence[tuple[str, Mapping[int, int]]],
    *,
    metric: str = "bray-curtis",
) -> tuple[list[str], np.ndarray]:
    """Pairwise beta-diversity matrix across samples.

    Returns ``(sample ids, matrix)``; for similarity metrics
    (morisita-horn) the diagonal is 1, for distances it is 0.
    """
    if metric not in METRICS:
        raise EvaluationError(
            f"unknown metric {metric!r}; expected one of {sorted(METRICS)}"
        )
    items = list(samples.items()) if isinstance(samples, Mapping) else list(samples)
    if len(items) < 2:
        raise EvaluationError("need at least two samples")
    fn = METRICS[metric]
    ids = [name for name, _ in items]
    n = len(items)
    diag = 1.0 if metric == "morisita-horn" else 0.0
    out = np.full((n, n), diag, dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            value = fn(items[i][1], items[j][1])
            out[i, j] = out[j, i] = value
    return ids, out
