"""Evaluation metrics and report tables (Section IV-B).

* :func:`weighted_cluster_accuracy` — "W.Acc": each cluster is designated
  by its most frequent ground-truth class; accuracy is the percent of
  sequences matching the designation, averaged over clusters weighted by
  cluster size.
* :func:`weighted_cluster_similarity` — "W.Sim": average within-cluster
  global-alignment identity, weighted by cluster size, over clusters above
  a minimum size (the paper uses > 50 sequences).
* :mod:`repro.eval.metrics` — standard external metrics (purity, NMI,
  ARI) for additional validation.
"""

from repro.eval.accuracy import weighted_cluster_accuracy
from repro.eval.similarity import weighted_cluster_similarity
from repro.eval.metrics import (
    purity,
    normalized_mutual_information,
    adjusted_rand_index,
    contingency_table,
)
from repro.eval.diversity import (
    chao1,
    shannon_index,
    simpson_index,
    goods_coverage,
    rarefaction_curve,
)
from repro.eval.beta import (
    bray_curtis,
    jaccard_distance,
    morisita_horn,
    beta_diversity_matrix,
    otu_table,
)
from repro.eval.report import Table, format_table

__all__ = [
    "weighted_cluster_accuracy",
    "weighted_cluster_similarity",
    "purity",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "contingency_table",
    "chao1",
    "shannon_index",
    "simpson_index",
    "goods_coverage",
    "rarefaction_curve",
    "bray_curtis",
    "jaccard_distance",
    "morisita_horn",
    "beta_diversity_matrix",
    "otu_table",
    "Table",
    "format_table",
]
