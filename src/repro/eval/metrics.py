"""Standard external clustering metrics, implemented from scratch.

Purity, normalized mutual information (NMI) and adjusted Rand index (ARI)
supplement the paper's W.Acc/W.Sim for sanity checks and property-based
tests (e.g., a perfect clustering must score 1.0 on all three).
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.errors import EvaluationError
from repro.cluster.assignments import ClusterAssignment


def contingency_table(
    assignment: ClusterAssignment, truth: Mapping[str, str]
) -> tuple[np.ndarray, list[int], list[str]]:
    """Cluster-by-class count matrix.

    Returns ``(table, cluster_labels, class_labels)`` where ``table[i, j]``
    counts members of cluster ``cluster_labels[i]`` with true class
    ``class_labels[j]``.
    """
    missing = [r for r in assignment if r not in truth]
    if missing:
        raise EvaluationError(
            f"no ground-truth label for {len(missing)} sequences "
            f"(first: {missing[0]!r})"
        )
    cluster_labels = sorted(assignment.clusters())
    class_labels = sorted({truth[r] for r in assignment})
    cluster_index = {c: i for i, c in enumerate(cluster_labels)}
    class_index = {c: j for j, c in enumerate(class_labels)}
    table = np.zeros((len(cluster_labels), len(class_labels)), dtype=np.int64)
    for read_id in assignment:
        table[cluster_index[assignment[read_id]], class_index[truth[read_id]]] += 1
    return table, cluster_labels, class_labels


def purity(assignment: ClusterAssignment, truth: Mapping[str, str]) -> float:
    """Fraction of sequences matching their cluster's majority class."""
    table, _, _ = contingency_table(assignment, truth)
    return float(table.max(axis=1).sum() / table.sum())


def normalized_mutual_information(
    assignment: ClusterAssignment, truth: Mapping[str, str]
) -> float:
    """NMI with arithmetic-mean normalisation, in [0, 1]."""
    table, _, _ = contingency_table(assignment, truth)
    n = table.sum()
    pij = table / n
    pi = pij.sum(axis=1)
    pj = pij.sum(axis=0)
    nz = pij > 0
    mi = float(np.sum(pij[nz] * np.log(pij[nz] / np.outer(pi, pj)[nz])))
    h_c = -float(np.sum(pi[pi > 0] * np.log(pi[pi > 0])))
    h_k = -float(np.sum(pj[pj > 0] * np.log(pj[pj > 0])))
    if h_c == 0.0 and h_k == 0.0:
        return 1.0  # single cluster and single class: identical partitions
    denom = (h_c + h_k) / 2.0
    if denom == 0.0:
        return 0.0
    return max(0.0, min(1.0, mi / denom))


def adjusted_rand_index(
    assignment: ClusterAssignment, truth: Mapping[str, str]
) -> float:
    """ARI (chance-corrected Rand index); 1.0 iff partitions coincide."""
    table, _, _ = contingency_table(assignment, truth)
    n = table.sum()
    if n < 2:
        return 1.0

    def comb2(x: np.ndarray) -> np.ndarray:
        return x * (x - 1) / 2.0

    sum_ij = float(comb2(table).sum())
    sum_i = float(comb2(table.sum(axis=1)).sum())
    sum_j = float(comb2(table.sum(axis=0)).sum())
    total = float(comb2(np.array([n])).item())
    expected = sum_i * sum_j / total
    maximum = (sum_i + sum_j) / 2.0
    if maximum == expected:
        return 1.0
    return (sum_ij - expected) / (maximum - expected)
