"""Weighted within-cluster sequence similarity (W.Sim, Section IV-B).

"We report only the average global sequence alignment similarity (weighted
by number of sequences in a cluster) ... for clusters having number of
sequences greater than 50."

Computing identity for *every* pair inside large clusters is quadratic in
cluster size; like the paper's own evaluation tooling we estimate each
cluster's mean pairwise identity from a bounded random sample of pairs
(deterministic under ``seed``), using banded global alignment for speed.
Setting ``max_pairs_per_cluster=None`` forces the exact all-pairs value.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.errors import EvaluationError
from repro.align.banded import banded_identity
from repro.cluster.assignments import ClusterAssignment
from repro.utils.rng import ensure_rng


def weighted_cluster_similarity(
    assignment: ClusterAssignment,
    sequences: Mapping[str, str],
    *,
    min_cluster_size: int = 2,
    max_pairs_per_cluster: int | None = 100,
    band: int = 32,
    seed: int = 0,
    as_percent: bool = True,
) -> float:
    """W.Sim for a clustering.

    Parameters
    ----------
    sequences:
        ``read_id -> nucleotide string`` for every evaluated sequence.
    min_cluster_size:
        Only clusters at least this large contribute (the paper uses > 50
        on full-scale data; benchmark drivers pass a scaled value).
    max_pairs_per_cluster:
        Pair-sampling budget per cluster; ``None`` computes all pairs.
    band:
        Half-width for the banded alignment.
    """
    if min_cluster_size < 2:
        raise EvaluationError(
            f"min_cluster_size must be >= 2 for pairwise similarity, "
            f"got {min_cluster_size}"
        )
    if max_pairs_per_cluster is not None and max_pairs_per_cluster < 1:
        raise EvaluationError("max_pairs_per_cluster must be >= 1 or None")
    rng = ensure_rng(seed)

    weighted_sum = 0.0
    weight_total = 0
    evaluated = 0
    for label, members in sorted(assignment.clusters().items()):
        if len(members) < min_cluster_size:
            continue
        members = sorted(members)  # determinism regardless of set ordering
        try:
            seqs = [sequences[read_id] for read_id in members]
        except KeyError as exc:
            raise EvaluationError(
                f"no sequence provided for {exc.args[0]!r}"
            ) from None
        n = len(seqs)
        all_pairs = n * (n - 1) // 2
        if max_pairs_per_cluster is None or all_pairs <= max_pairs_per_cluster:
            pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        else:
            flat = rng.choice(all_pairs, size=max_pairs_per_cluster, replace=False)
            pairs = [_unrank_pair(int(p), n) for p in flat]
        identities = [banded_identity(seqs[i], seqs[j], band=band) for i, j in pairs]
        mean_identity = float(np.mean(identities))
        weighted_sum += mean_identity * n
        weight_total += n
        evaluated += 1
    if evaluated == 0:
        raise EvaluationError(
            f"no cluster reaches min_cluster_size={min_cluster_size}"
        )
    value = weighted_sum / weight_total
    return value * 100.0 if as_percent else value


def _unrank_pair(rank: int, n: int) -> tuple[int, int]:
    """Map ``rank`` in [0, n*(n-1)/2) to the rank-th (i, j) pair, i < j."""
    # Row i owns (n - 1 - i) pairs; walk rows (n is modest per cluster).
    i = 0
    row = n - 1
    while rank >= row:
        rank -= row
        i += 1
        row -= 1
    return i, i + 1 + rank
