"""Plain-text table rendering for the benchmark drivers.

The benchmark harness prints tables in the same row/column layout as the
paper's Tables III–V so paper-vs-measured comparison is a visual diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EvaluationError


@dataclass
class Table:
    """A simple column-aligned text table."""

    title: str
    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise EvaluationError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """Render with column alignment and a title rule."""
        return format_table(self.title, self.columns, self.rows)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(title: str, columns: list[str], rows: list[list[object]]) -> str:
    """Column-aligned text rendering used by every benchmark driver."""
    if not columns:
        raise EvaluationError("a table needs at least one column")
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in cells:
        if len(row) != len(columns):
            raise EvaluationError(
                f"row has {len(row)} values for {len(columns)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines = [title, "=" * max(len(title), len(header)), header, sep]
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
