"""MrMC-MinH: a Map-Reduce framework for clustering metagenomes.

Reproduction of Rasheed & Rangwala, *"A Map-Reduce Framework for
Clustering Metagenomes"* (IPPS 2013).  The headline API is
:class:`~repro.cluster.pipeline.MrMCMinH`; everything the paper's pipeline
depends on — sequence handling, min-wise hashing, a Map-Reduce engine with
simulated HDFS, a Pig dataflow layer, baseline clustering algorithms,
dataset simulators, evaluation metrics and a cluster-scaling simulator —
lives in the subpackages documented in DESIGN.md.
"""

from repro.cluster.pipeline import ClusteringRun, MrMCMinH
from repro.cluster.assignments import ClusterAssignment
from repro.cluster.greedy import greedy_cluster
from repro.cluster.hierarchical import agglomerative_cluster
from repro.minhash.sketch import (
    MinHashSketch,
    SketchingConfig,
    compute_sketches,
    compute_sketches_batch,
)
from repro.minhash.wire import SketchWireCodec
from repro.minhash.similarity import estimate_jaccard, exact_jaccard
from repro.seq.fasta import read_fasta, read_fasta_text, write_fasta
from repro.seq.records import SequenceRecord
from repro.eval.accuracy import weighted_cluster_accuracy
from repro.eval.similarity import weighted_cluster_similarity

__version__ = "1.0.0"

__all__ = [
    "MrMCMinH",
    "ClusteringRun",
    "ClusterAssignment",
    "greedy_cluster",
    "agglomerative_cluster",
    "MinHashSketch",
    "SketchingConfig",
    "compute_sketches",
    "estimate_jaccard",
    "exact_jaccard",
    "read_fasta",
    "read_fasta_text",
    "write_fasta",
    "SequenceRecord",
    "weighted_cluster_accuracy",
    "weighted_cluster_similarity",
    "__version__",
]
