"""Drivers regenerating Tables I–V.

Every driver returns ``(table, results)`` where ``table`` is a rendered
:class:`~repro.eval.report.Table` in the paper's layout and ``results``
are the structured rows.  Workloads are scaled by an
:class:`~repro.bench.harness.ExperimentScale` (paper-scale inputs are the
defaults recorded in the dataset specs; see DESIGN.md substitution #4).
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.baselines import (
    cdhit_cluster,
    dotur_cluster,
    esprit_cluster,
    mc_lsh,
    metacluster_cluster,
    mothur_cluster,
    uclust_cluster,
)
from repro.baselines.dotur import alignment_distance_matrix
from repro.bench.harness import (
    ExperimentScale,
    MethodResult,
    evaluate_assignment,
    timed,
)
from repro.cluster.pipeline import MrMCMinH
from repro.datasets.environmental import SOGIN_SAMPLES, generate_environmental_sample
from repro.datasets.huse import HuseDatasetSpec, generate_huse_dataset
from repro.datasets.whole_metagenome import (
    WHOLE_METAGENOME_SPECS,
    generate_whole_metagenome_sample,
)
from repro.eval.report import Table
from repro.mapreduce.simulator import ClusterSimulator, ClusterSpec

#: Paper parameters for the whole-metagenome experiments (Table III).
WHOLE_METAGENOME_KMER = 5
WHOLE_METAGENOME_HASHES = 100
#: Similarity threshold for the whole-metagenome runs.  The paper does
#: not print its Table III θ; 0.78 sits between the within- and
#: between-species sketch-similarity modes of the synthetic workload and
#: lands cluster counts in the paper's single-to-low-double-digit range.
WHOLE_METAGENOME_THETA = 0.78

#: Paper parameters for the 16S experiments (Tables IV/V): "15 k-mer and
#: 50 hash functions ... similarity threshold of 95%".
SIXTEEN_S_KMER = 15
SIXTEEN_S_HASHES = 50
SIXTEEN_S_THETA = 0.95


def run_table1() -> Table:
    """Table I: the environmental-sample metadata (verbatim specs)."""
    table = Table(
        title="Table I - Environmental DNA samples",
        columns=["SID", "Site", "La N", "Lo W", "Dep", "T", "Reads"],
    )
    for s in SOGIN_SAMPLES:
        table.add_row(
            s.sid, s.site, s.latitude, s.longitude, s.depth_m, s.temperature_c, s.num_reads
        )
    return table


def run_table2() -> Table:
    """Table II: the whole-metagenome sample inventory (verbatim specs)."""
    table = Table(
        title="Table II - Whole metagenomic sequence reads",
        columns=["SID", "Species", "Ratio", "Taxonomic Difference", "#Cluster", "#Reads"],
    )
    for s in WHOLE_METAGENOME_SPECS:
        species = ", ".join(f"{sp.name} [{sp.gc:.2f}]" for sp in s.species)
        ratio = ":".join(str(int(sp.ratio)) for sp in s.species)
        table.add_row(
            s.sid,
            species,
            ratio,
            s.taxonomic_difference,
            s.num_clusters if s.num_clusters is not None else "-",
            s.num_reads,
        )
    return table


def run_table3(
    scale: ExperimentScale | None = None,
    *,
    samples: Sequence[str] = ("S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8", "S9", "S10", "S11", "S12", "R1"),
    threshold: float = WHOLE_METAGENOME_THETA,
    modeled_nodes: int = 8,
) -> tuple[Table, list[MethodResult]]:
    """Table III: MrMC-MinH^h vs MrMC-MinH^g vs MetaCluster on the
    whole-metagenome samples.

    ``modeled_nodes`` is the EMR cluster size of the paper's runs (8
    M1 Large nodes); the modeled time column comes from scheduling the
    pipeline's real execution traces on the simulated cluster.
    """
    scale = scale or ExperimentScale()
    simulator = ClusterSimulator(ClusterSpec(num_nodes=modeled_nodes))
    results: list[MethodResult] = []
    table = Table(
        title=f"Table III - whole-metagenome clustering ({scale.num_reads} reads/sample)",
        columns=["SID", "Method", "#Cluster", "W.Acc", "W.Sim", "Time(s)", "EMR-model(s)"],
    )

    for sid in samples:
        reads = generate_whole_metagenome_sample(
            sid,
            num_reads=scale.num_reads,
            genome_length=scale.genome_length,
            seed=scale.seed,
        )
        with_truth = reads[0].label is not None and sid != "R1"

        # MrMC-MinH hierarchical.
        model_h = MrMCMinH(
            kmer_size=WHOLE_METAGENOME_KMER,
            num_hashes=WHOLE_METAGENOME_HASHES,
            threshold=threshold,
            method="hierarchical",
            seed=scale.seed,
        )
        run_h = model_h.fit(reads)
        res = evaluate_assignment(
            "MrMC-MinH^h", sid, run_h.assignment, reads, run_h.wall_seconds,
            scale=scale, with_accuracy=with_truth,
        )
        res.modeled_seconds = simulator.simulate_pipeline(run_h.traces).total_s
        results.append(res)

        # MrMC-MinH greedy.  The positional estimator is used here: with
        # k=5 the sketch-value universe is tiny (1024), so the paper's
        # set-based formula collapses duplicate minima and loses
        # resolution — see the estimator ablation for the comparison.
        model_g = MrMCMinH(
            kmer_size=WHOLE_METAGENOME_KMER,
            num_hashes=WHOLE_METAGENOME_HASHES,
            threshold=threshold,
            method="greedy",
            estimator="positional",
            seed=scale.seed,
        )
        run_g = model_g.fit(reads)
        res = evaluate_assignment(
            "MrMC-MinH^g", sid, run_g.assignment, reads, run_g.wall_seconds,
            scale=scale, with_accuracy=with_truth,
        )
        res.modeled_seconds = simulator.simulate_pipeline(run_g.traces).total_s
        results.append(res)

        # MetaCluster.
        assignment, seconds = timed(lambda: metacluster_cluster(reads, seed=scale.seed))
        results.append(
            evaluate_assignment(
                "MetaCluster", sid, assignment, reads, seconds,
                scale=scale, with_accuracy=with_truth,
            )
        )

    for r in results:
        table.add_row(
            r.sample,
            r.method,
            r.num_clusters,
            "-" if r.w_acc is None else r.w_acc,
            "-" if r.w_sim is None else r.w_sim,
            r.seconds,
            "-" if r.modeled_seconds is None else r.modeled_seconds,
        )
    return table, results


def _sixteen_s_methods(scale: ExperimentScale, records):
    """The eight Table IV/V methods as ``(name, callable, extra_seconds)``
    triples.  DOTUR and Mothur share one alignment-matrix computation but
    each is charged its full cost (the paper ran the real tools
    separately), so the matrix build time is returned as a surcharge for
    both."""
    theta = SIXTEEN_S_THETA
    shared: dict[str, object] = {}

    def matrix():
        if "m" not in shared:
            t0 = time.perf_counter()
            shared["m"] = alignment_distance_matrix(records)
            shared["t"] = time.perf_counter() - t0
        return shared["m"]

    def matrix_seconds() -> float:
        matrix()
        return float(shared["t"])  # type: ignore[arg-type]

    def hier():
        return MrMCMinH(
            kmer_size=SIXTEEN_S_KMER, num_hashes=SIXTEEN_S_HASHES,
            threshold=theta, method="hierarchical", seed=scale.seed,
        ).fit(records).assignment

    def greedy():
        return MrMCMinH(
            kmer_size=SIXTEEN_S_KMER, num_hashes=SIXTEEN_S_HASHES,
            threshold=theta, method="greedy", seed=scale.seed,
        ).fit(records).assignment

    return [
        ("MrMC-MinH^h", hier, lambda: 0.0),
        ("MrMC-MinH^g", greedy, lambda: 0.0),
        ("MC-LSH", lambda: mc_lsh(records, theta, kmer_size=SIXTEEN_S_KMER,
                                  num_hashes=SIXTEEN_S_HASHES, seed=scale.seed),
         lambda: 0.0),
        ("UCLUST", lambda: uclust_cluster(records, theta), lambda: 0.0),
        ("CD-HIT", lambda: cdhit_cluster(records, theta), lambda: 0.0),
        ("ESPRIT", lambda: esprit_cluster(records, theta), lambda: 0.0),
        ("DOTUR", lambda: dotur_cluster(records, theta, similarity=matrix()),
         matrix_seconds),
        ("Mothur", lambda: mothur_cluster(records, theta, similarity=matrix()),
         matrix_seconds),
    ]


def run_table4(
    scale: ExperimentScale | None = None,
    *,
    error_limits: Sequence[float] = (0.03, 0.05),
) -> tuple[Table, list[MethodResult]]:
    """Table IV: eight methods on the 43-reference 16S simulated set at
    3 % and 5 % read error."""
    scale = scale or ExperimentScale()
    results: list[MethodResult] = []
    table = Table(
        title=f"Table IV - 16S simulated dataset ({scale.num_reads} reads, 43 references)",
        columns=["Error", "Method", "#Cluster", "W.Sim"],
    )
    for limit in error_limits:
        spec = HuseDatasetSpec(error_limit=limit)
        records = generate_huse_dataset(spec, num_reads=scale.num_reads, seed=scale.seed)
        for name, fn, surcharge in _sixteen_s_methods(scale, records):
            assignment, seconds = timed(fn)
            res = evaluate_assignment(
                name, f"{limit:.0%}", assignment, records, seconds + surcharge(),
                scale=scale, with_accuracy=False,
            )
            results.append(res)
            table.add_row(
                f"{limit:.0%}", name, res.num_clusters,
                "-" if res.w_sim is None else res.w_sim,
            )
    return table, results


def run_table5(
    scale: ExperimentScale | None = None,
    *,
    samples: Sequence[str] = tuple(s.sid for s in SOGIN_SAMPLES),
) -> tuple[Table, list[MethodResult]]:
    """Table V: eight methods on the environmental 16S samples."""
    scale = scale or ExperimentScale()
    results: list[MethodResult] = []
    table = Table(
        title=f"Table V - 16S environmental samples ({scale.num_reads} reads/sample)",
        columns=["SID", "Method", "#Cluster", "W.Sim", "Time(s)"],
    )
    for sid in samples:
        records = generate_environmental_sample(
            sid, num_reads=scale.num_reads, seed=scale.seed
        )
        for name, fn, surcharge in _sixteen_s_methods(scale, records):
            assignment, seconds = timed(fn)
            res = evaluate_assignment(
                name, sid, assignment, records, seconds + surcharge(),
                scale=scale, with_accuracy=False,
            )
            results.append(res)
            table.add_row(
                sid, name, res.num_clusters,
                "-" if res.w_sim is None else res.w_sim, res.seconds,
            )
    return table, results
