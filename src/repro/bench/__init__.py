"""Experiment harness: one driver per paper table/figure.

Each driver generates the (scaled) workload, runs every method the paper
compares, computes the paper's metrics, and returns structured rows that
render in the same layout as the published table.  The benchmark scripts
under ``benchmarks/`` are thin wrappers around these drivers, and
EXPERIMENTS.md records paper-vs-measured values produced by them.
"""

from repro.bench.harness import MethodResult, ExperimentScale, evaluate_assignment
from repro.bench.tables import (
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.bench.figures import run_figure2, calibrate_from_measurement
from repro.bench.ablations import (
    run_estimator_ablation,
    run_num_hashes_ablation,
    run_kmer_ablation,
    run_linkage_ablation,
)

__all__ = [
    "MethodResult",
    "ExperimentScale",
    "evaluate_assignment",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_figure2",
    "calibrate_from_measurement",
    "run_estimator_ablation",
    "run_num_hashes_ablation",
    "run_kmer_ablation",
    "run_linkage_ablation",
]
