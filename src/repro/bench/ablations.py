"""Ablation drivers for the design choices DESIGN.md calls out.

These go beyond the paper's tables: they quantify how MrMC-MinH's results
depend on (a) the Jaccard estimator written in Algorithm 1 vs the
classical positional estimator, (b) the number of hash functions, (c) the
k-mer size (the paper switches 5 -> 15 between whole-metagenome and 16S
data), and (d) the hierarchical linkage policy (``$LINK``).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.bench.harness import ExperimentScale
from repro.cluster.pipeline import MrMCMinH
from repro.datasets.whole_metagenome import generate_whole_metagenome_sample
from repro.eval.accuracy import weighted_cluster_accuracy
from repro.eval.report import Table
from repro.minhash.sketch import SketchingConfig, compute_sketches
from repro.minhash.similarity import (
    estimate_jaccard,
    exact_jaccard,
)
from repro.seq.kmers import kmer_set


@dataclass
class AblationRow:
    """One setting's outcome."""

    setting: str
    num_clusters: int | None
    w_acc: float | None
    estimator_rmse: float | None = None


def _sample(scale: ExperimentScale, sid: str = "S10"):
    reads = generate_whole_metagenome_sample(
        sid, num_reads=scale.num_reads, genome_length=scale.genome_length,
        seed=scale.seed,
    )
    truth = {r.read_id: r.label for r in reads}
    return reads, truth


def run_estimator_ablation(
    scale: ExperimentScale | None = None,
    *,
    kmer_size: int = 5,
    num_hashes: int = 100,
    num_pairs: int = 300,
) -> tuple[Table, list[AblationRow]]:
    """Set-based (Algorithm 1 line 9) vs positional estimator: RMSE
    against exact Jaccard, plus downstream clustering quality."""
    scale = scale or ExperimentScale()
    reads, truth = _sample(scale)
    config = SketchingConfig(kmer_size=kmer_size, num_hashes=num_hashes, seed=scale.seed)
    sketches = compute_sketches(reads, config)
    feature_sets = {
        r.read_id: kmer_set(r.sequence, kmer_size, strict=False) for r in reads
    }
    rng = np.random.default_rng(scale.seed)
    n = len(sketches)
    pairs = [
        tuple(sorted(rng.choice(n, size=2, replace=False))) for _ in range(num_pairs)
    ]
    rows: list[AblationRow] = []
    for estimator in ("set", "positional"):
        errors = []
        for i, j in pairs:
            si, sj = sketches[int(i)], sketches[int(j)]
            est = estimate_jaccard(si, sj, estimator=estimator)
            true = exact_jaccard(feature_sets[si.read_id], feature_sets[sj.read_id])
            errors.append(est - true)
        rmse = float(np.sqrt(np.mean(np.square(errors))))
        assignment = MrMCMinH(
            kmer_size=kmer_size, num_hashes=num_hashes, threshold=0.78,
            method="greedy", estimator=estimator, seed=scale.seed,
        ).fit(reads).assignment
        rows.append(
            AblationRow(
                setting=estimator,
                num_clusters=assignment.num_clusters,
                w_acc=weighted_cluster_accuracy(
                    assignment, truth, min_cluster_size=scale.min_cluster_size
                ),
                estimator_rmse=rmse,
            )
        )
    table = Table(
        title="Ablation - Jaccard estimator",
        columns=["Estimator", "RMSE vs exact", "#Cluster", "W.Acc"],
    )
    for r in rows:
        table.add_row(r.setting, r.estimator_rmse, r.num_clusters, r.w_acc)
    return table, rows


def run_num_hashes_ablation(
    scale: ExperimentScale | None = None,
    *,
    hash_counts: Sequence[int] = (10, 25, 50, 100, 200),
    threshold: float = 0.78,
) -> tuple[Table, list[AblationRow]]:
    """Sketch width n: clustering quality as hash functions increase."""
    scale = scale or ExperimentScale()
    reads, truth = _sample(scale)
    rows: list[AblationRow] = []
    for n in hash_counts:
        assignment = MrMCMinH(
            kmer_size=5, num_hashes=n, threshold=threshold, seed=scale.seed,
        ).fit(reads).assignment
        rows.append(
            AblationRow(
                setting=f"n={n}",
                num_clusters=assignment.num_clusters,
                w_acc=weighted_cluster_accuracy(
                    assignment, truth, min_cluster_size=scale.min_cluster_size
                ),
            )
        )
    table = Table(
        title="Ablation - number of hash functions",
        columns=["Setting", "#Cluster", "W.Acc"],
    )
    for r in rows:
        table.add_row(r.setting, r.num_clusters, r.w_acc)
    return table, rows


def run_kmer_ablation(
    scale: ExperimentScale | None = None,
    *,
    kmer_sizes: Sequence[int] = (3, 5, 8, 12),
    threshold: float = 0.78,
) -> tuple[Table, list[AblationRow]]:
    """k-mer size: composition signal vs specificity on shotgun reads."""
    scale = scale or ExperimentScale()
    reads, truth = _sample(scale)
    rows: list[AblationRow] = []
    for k in kmer_sizes:
        assignment = MrMCMinH(
            kmer_size=k, num_hashes=100, threshold=threshold, seed=scale.seed,
        ).fit(reads).assignment
        rows.append(
            AblationRow(
                setting=f"k={k}",
                num_clusters=assignment.num_clusters,
                w_acc=weighted_cluster_accuracy(
                    assignment, truth, min_cluster_size=scale.min_cluster_size
                ),
            )
        )
    table = Table(
        title="Ablation - k-mer size",
        columns=["Setting", "#Cluster", "W.Acc"],
    )
    for r in rows:
        table.add_row(r.setting, r.num_clusters, r.w_acc)
    return table, rows


def run_linkage_ablation(
    scale: ExperimentScale | None = None,
    *,
    threshold: float = 0.78,
) -> tuple[Table, list[AblationRow]]:
    """$LINK: single vs average vs complete linkage."""
    scale = scale or ExperimentScale()
    reads, truth = _sample(scale)
    rows: list[AblationRow] = []
    for linkage in ("single", "average", "complete"):
        assignment = MrMCMinH(
            kmer_size=5, num_hashes=100, threshold=threshold,
            linkage=linkage, seed=scale.seed,
        ).fit(reads).assignment
        rows.append(
            AblationRow(
                setting=linkage,
                num_clusters=assignment.num_clusters,
                w_acc=weighted_cluster_accuracy(
                    assignment, truth, min_cluster_size=scale.min_cluster_size
                ),
            )
        )
    table = Table(
        title="Ablation - linkage policy",
        columns=["Linkage", "#Cluster", "W.Acc"],
    )
    for r in rows:
        table.add_row(r.setting, r.num_clusters, r.w_acc)
    return table, rows
