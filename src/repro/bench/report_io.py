"""Serialization of benchmark results.

EXPERIMENTS.md quotes numbers; these helpers make every driver's output
machine-readable too: JSON for archival/diffing across runs, and a
GitHub-flavoured markdown table for direct inclusion in docs.
"""

from __future__ import annotations

import json
import os
from collections.abc import Sequence
from dataclasses import asdict

from repro.errors import EvaluationError
from repro.bench.harness import MethodResult


def results_to_json(results: Sequence[MethodResult], *, indent: int = 2) -> str:
    """Serialize result rows to a JSON array."""
    return json.dumps([asdict(r) for r in results], indent=indent)


def results_from_json(text: str) -> list[MethodResult]:
    """Inverse of :func:`results_to_json`."""
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise EvaluationError(f"invalid results JSON: {exc}") from exc
    if not isinstance(raw, list):
        raise EvaluationError("results JSON must be an array")
    out = []
    for i, item in enumerate(raw):
        try:
            out.append(MethodResult(**item))
        except TypeError as exc:
            raise EvaluationError(f"results JSON entry {i} invalid: {exc}") from exc
    return out


def save_results(
    results: Sequence[MethodResult], path: str | os.PathLike
) -> None:
    """Write result rows to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(results_to_json(results))


def load_results(path: str | os.PathLike) -> list[MethodResult]:
    """Read result rows from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return results_from_json(fh.read())


def results_to_markdown(results: Sequence[MethodResult]) -> str:
    """Render result rows as a GitHub-flavoured markdown table."""
    if not results:
        raise EvaluationError("no results to render")
    header = "| Sample | Method | #Cluster | W.Acc | W.Sim | Time (s) | Modeled (s) |"
    rule = "|---|---|---|---|---|---|---|"

    def fmt(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    lines = [header, rule]
    for r in results:
        lines.append(
            "| "
            + " | ".join(
                [
                    r.sample,
                    r.method,
                    str(r.num_clusters),
                    fmt(r.w_acc),
                    fmt(r.w_sim),
                    fmt(r.seconds),
                    fmt(r.modeled_seconds),
                ]
            )
            + " |"
        )
    return "\n".join(lines)
