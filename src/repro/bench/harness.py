"""Shared experiment-harness plumbing."""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.errors import EvaluationError
from repro.cluster.assignments import ClusterAssignment
from repro.eval.accuracy import weighted_cluster_accuracy
from repro.eval.similarity import weighted_cluster_similarity
from repro.seq.records import SequenceRecord


@dataclass(frozen=True)
class ExperimentScale:
    """Scaled-down workload knobs (DESIGN.md substitution #4).

    ``min_cluster_size`` replaces the paper's ">50 sequences" metric
    filter proportionally at small sample sizes.
    """

    num_reads: int = 300
    genome_length: int = 8000
    min_cluster_size: int = 3
    max_pairs_per_cluster: int = 60
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_reads < 10:
            raise EvaluationError("num_reads must be >= 10")
        if self.min_cluster_size < 2:
            raise EvaluationError("min_cluster_size must be >= 2")


@dataclass
class MethodResult:
    """One method's row in a results table.

    ``num_clusters`` is the *trimmed* count — clusters with at least
    ``scale.min_cluster_size`` members — matching the paper's reporting
    ("single sequence clusters ... are not included"); the raw count is
    kept in ``num_clusters_total``.
    """

    method: str
    sample: str
    num_clusters: int
    w_acc: float | None
    w_sim: float | None
    seconds: float
    modeled_seconds: float | None = None
    num_clusters_total: int = 0


def evaluate_assignment(
    method: str,
    sample: str,
    assignment: ClusterAssignment,
    records: Sequence[SequenceRecord],
    seconds: float,
    *,
    scale: ExperimentScale,
    with_accuracy: bool = True,
) -> MethodResult:
    """Compute the paper's metrics (W.Acc, W.Sim, #Cluster) for one run."""
    sequences = {r.read_id: r.sequence for r in records}
    truth = {r.read_id: r.label for r in records if r.label is not None}
    w_acc = None
    if with_accuracy and truth:
        try:
            w_acc = weighted_cluster_accuracy(
                assignment, truth, min_cluster_size=scale.min_cluster_size
            )
        except EvaluationError:
            w_acc = None
    try:
        w_sim = weighted_cluster_similarity(
            assignment,
            sequences,
            min_cluster_size=scale.min_cluster_size,
            max_pairs_per_cluster=scale.max_pairs_per_cluster,
            seed=scale.seed,
        )
    except EvaluationError:
        w_sim = None
    trimmed = sum(
        1 for size in assignment.sizes().values() if size >= scale.min_cluster_size
    )
    return MethodResult(
        method=method,
        sample=sample,
        num_clusters=trimmed,
        w_acc=w_acc,
        w_sim=w_sim,
        seconds=seconds,
        num_clusters_total=assignment.num_clusters,
    )


def timed(fn: Callable[[], ClusterAssignment]) -> tuple[ClusterAssignment, float]:
    """Run a clustering callable, returning (assignment, wall seconds)."""
    t0 = time.perf_counter()
    assignment = fn()
    return assignment, time.perf_counter() - t0
