"""Driver regenerating Figure 2 (runtime vs nodes vs input size).

The paper sweeps 2–12 EMR nodes and 1 k–10 M input reads for the
hierarchical pipeline.  We (1) *measure* the two kernels — per-read
sketch cost and per-pair similarity cost — by really executing them on a
calibration sample, (2) synthesise the pipeline's task DAG for every
sweep point with :mod:`repro.mapreduce.workload`, and (3) schedule each
DAG on the discrete-event cluster simulator.  Only distributed wall-clock
is modeled; the work amounts are real (DESIGN.md substitution #1).
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.bench.harness import ExperimentScale
from repro.datasets.whole_metagenome import generate_whole_metagenome_sample
from repro.eval.report import Table
from repro.mapreduce.costmodel import HadoopCostModel, calibrate
from repro.mapreduce.simulator import ClusterSimulator, ClusterSpec
from repro.mapreduce.workload import PipelineWorkload, build_pipeline_traces
from repro.minhash.sketch import SketchingConfig, compute_sketches
from repro.minhash.similarity import pairwise_similarity_matrix


@dataclass
class Figure2Result:
    """Modeled runtimes: ``minutes[(num_reads, num_nodes)]``."""

    cost_model: HadoopCostModel
    minutes: dict[tuple[int, int], float] = field(default_factory=dict)

    def series(self, num_reads: int) -> list[tuple[int, float]]:
        """(nodes, minutes) series for one input size, sorted by nodes."""
        return sorted(
            (nodes, mins)
            for (reads, nodes), mins in self.minutes.items()
            if reads == num_reads
        )


def calibrate_from_measurement(
    *,
    calibration_reads: int = 200,
    genome_length: int = 8000,
    kmer_size: int = 5,
    num_hashes: int = 100,
    seed: int = 0,
    emr_slowdown: float = 4.0,
) -> HadoopCostModel:
    """Measure the real kernels and build a calibrated cost model.

    ``emr_slowdown`` scales measured per-record costs to the paper's 2013
    M1 Large JVM stack (slower cores, JVM text processing); it affects
    magnitudes only, never the curve shapes Figure 2 demonstrates.
    """
    reads = generate_whole_metagenome_sample(
        "S1", num_reads=calibration_reads, genome_length=genome_length, seed=seed
    )
    config = SketchingConfig(kmer_size=kmer_size, num_hashes=num_hashes, seed=seed)
    t0 = time.perf_counter()
    sketches = compute_sketches(reads, config)
    sketch_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    pairwise_similarity_matrix(sketches)
    pair_seconds = time.perf_counter() - t0
    pair_count = len(sketches) * len(sketches)  # the matrix job scores N^2 cells

    return calibrate(
        sketch_seconds=sketch_seconds * emr_slowdown,
        sketch_records=len(sketches),
        pair_seconds=pair_seconds * emr_slowdown,
        pair_count=pair_count,
    )


def run_figure2(
    *,
    node_counts: Sequence[int] = (2, 4, 6, 8, 10, 12),
    read_counts: Sequence[int] = (1_000, 10_000, 100_000, 1_000_000, 10_000_000),
    read_length: int = 1000,
    num_hashes: int = 100,
    cost_model: HadoopCostModel | None = None,
    scale: ExperimentScale | None = None,
    sparse_similarity: bool = True,
    candidates_per_row: int = 2000,
) -> tuple[Table, Figure2Result]:
    """Regenerate Figure 2's runtime surface.

    ``sparse_similarity`` (default, matching the magnitudes the paper's
    own Table III timings imply — see
    :class:`~repro.mapreduce.workload.PipelineWorkload`) scores only
    min-hash collision candidates; pass ``False`` to model the literal
    dense all-pairs job (its quadratic blow-up at 10 M reads is exactly
    why no real deployment runs it dense).

    Returns the rendered table (one row per input size, one column per
    node count, values in minutes) and the structured result.
    """
    scale = scale or ExperimentScale()
    if cost_model is None:
        cost_model = calibrate_from_measurement(
            calibration_reads=min(scale.num_reads, 300),
            genome_length=scale.genome_length,
            num_hashes=num_hashes,
            seed=scale.seed,
        )
    result = Figure2Result(cost_model=cost_model)
    for reads in read_counts:
        # Row-band size grows with input so the task count stays sane,
        # mirroring how a real deployment would set parallelism.
        row_band = int(np.clip(reads // 64, 500, 100_000))
        workload = PipelineWorkload(
            num_reads=reads,
            read_length=read_length,
            num_hashes=num_hashes,
            row_band=row_band,
            hierarchical=True,
            sparse_similarity=sparse_similarity,
            candidates_per_row=candidates_per_row,
        )
        traces = build_pipeline_traces(
            workload,
            map_cost_per_record_s=cost_model.map_cost_per_record_s,
            pair_cost_s=cost_model.pair_cost_s,
        )
        for nodes in node_counts:
            simulator = ClusterSimulator(ClusterSpec(num_nodes=nodes), cost_model)
            report = simulator.simulate_pipeline(traces)
            result.minutes[(reads, nodes)] = report.total_minutes

    table = Table(
        title="Figure 2 - modeled runtime (minutes) vs nodes and reads",
        columns=["Reads"] + [f"{n} nodes" for n in node_counts],
    )
    for reads in read_counts:
        row = [f"{reads:,}"]
        for nodes in node_counts:
            row.append(round(result.minutes[(reads, nodes)], 2))
        table.add_row(*row)
    return table, result
