"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything produced by this package with a single ``except`` clause
while still letting programming errors (``TypeError`` and friends)
propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class SequenceError(ReproError):
    """Invalid sequence data (bad alphabet, empty sequence, bad FASTA)."""


class FastaParseError(SequenceError):
    """Malformed FASTA/FASTQ input."""

    def __init__(self, message: str, line_number: int | None = None):
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class KmerError(SequenceError):
    """Invalid k-mer parameters (k out of range, sequence shorter than k)."""


class SketchError(ReproError):
    """Invalid min-hash sketch operation (mismatched families, bad params)."""


class ClusteringError(ReproError):
    """Invalid clustering input or parameters."""


class MapReduceError(ReproError):
    """Errors raised by the Map-Reduce engine."""


class HdfsError(MapReduceError):
    """Errors raised by the simulated HDFS layer."""


class PigError(ReproError):
    """Errors raised by the Pig dataflow layer."""


class PigParseError(PigError):
    """Syntax error in a Pig script."""

    def __init__(self, message: str, line_number: int | None = None):
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class DatasetError(ReproError):
    """Invalid dataset-generation parameters."""


class EvaluationError(ReproError):
    """Invalid evaluation input (empty clustering, label mismatch)."""


class SimulationError(MapReduceError):
    """Errors raised by the discrete-event cluster simulator."""
