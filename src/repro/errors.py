"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything produced by this package with a single ``except`` clause
while still letting programming errors (``TypeError`` and friends)
propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class SequenceError(ReproError):
    """Invalid sequence data (bad alphabet, empty sequence, bad FASTA)."""


class FastaParseError(SequenceError):
    """Malformed FASTA/FASTQ input."""

    def __init__(self, message: str, line_number: int | None = None):
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class KmerError(SequenceError):
    """Invalid k-mer parameters (k out of range, sequence shorter than k)."""


class SketchError(ReproError):
    """Invalid min-hash sketch operation (mismatched families, bad params)."""


class ClusteringError(ReproError):
    """Invalid clustering input or parameters."""


class ClusterConfigError(ClusteringError):
    """Invalid pipeline configuration (unknown method/linkage, bad ranges).

    Raised at construction time so misconfigured pipelines fail before any
    job is launched, not mid-run.
    """


class SparseCompatibilityError(ClusterConfigError):
    """Sparse mode requested for a shape it cannot compute exactly.

    The collision-candidate join is exact only for single-linkage
    hierarchical clustering and positional-estimator greedy clustering at
    θ > 0; other combinations must either run dense or accept an
    approximation the caller has not asked for, so they are rejected.
    Carries the offending configuration for programmatic handling.
    """

    def __init__(
        self,
        message: str,
        *,
        method: str | None = None,
        linkage: str | None = None,
        estimator: str | None = None,
    ):
        self.method = method
        self.linkage = linkage
        self.estimator = estimator
        super().__init__(message)


class WireCompatibilityError(ClusterConfigError):
    """``wire_bits`` requested with a configuration the b-bit collision
    correction cannot serve (currently: any non-positional estimator)."""


class MapReduceError(ReproError):
    """Errors raised by the Map-Reduce engine."""


class HdfsError(MapReduceError):
    """Errors raised by the simulated HDFS layer."""


class FaultError(MapReduceError):
    """An injected or detected task fault (crash, hang, corrupt output).

    Raised *inside* a task attempt by the fault-injection layer and by the
    runner's integrity checks; the runner catches it, records the attempt
    failure, and retries up to ``JobConf.max_task_attempts``.
    """

    def __init__(self, message: str, *, task_id: str | None = None, attempt: int | None = None):
        self.task_id = task_id
        self.attempt = attempt
        if task_id is not None:
            prefix = f"{task_id}" + (f" attempt {attempt}" if attempt is not None else "")
            message = f"{prefix}: {message}"
        super().__init__(message)


class TaskFailedError(MapReduceError):
    """A task exhausted all its attempts; carries the failure history."""

    def __init__(self, task_id: str, failures: list[str]):
        self.task_id = task_id
        self.failures = list(failures)
        super().__init__(
            f"task {task_id} failed after {len(failures)} attempt(s): "
            + "; ".join(failures)
        )


class JobKilledError(MapReduceError):
    """The whole job was killed mid-run (injected driver death).

    Completed task outputs survive in the job's
    :class:`~repro.mapreduce.faults.JobCheckpoint`; re-running the job with
    the same checkpoint resumes from the last barrier.
    """


class ServiceError(ReproError):
    """Errors raised by the multi-tenant job service layer."""


class ServiceOverloadedError(ServiceError):
    """Admission rejected: the tenant's queue is full (backpressure).

    ``retry_after`` is the service's estimate, in seconds, of when a
    resubmission is likely to be admitted (queue backlog divided by the
    observed drain rate).  Clients should treat it as a hint, not a
    guarantee — the canonical load-shedding contract.
    """

    def __init__(self, message: str, *, retry_after: float = 0.0):
        self.retry_after = retry_after
        super().__init__(f"{message} (retry after ~{retry_after:.2f}s)")


class CircuitOpenError(ServiceError):
    """Admission rejected: the tenant's circuit breaker is open.

    The breaker trips after repeated consecutive job failures and
    half-opens after ``retry_after`` seconds, at which point one probe
    job is admitted; its outcome closes or re-opens the circuit.
    """

    def __init__(self, message: str, *, retry_after: float = 0.0):
        self.retry_after = retry_after
        super().__init__(f"{message} (retry after ~{retry_after:.2f}s)")


class ServiceStoppedError(ServiceError):
    """Submission rejected: the service is draining or shut down."""


class DeadlineExceededError(ServiceError):
    """A job overran its deadline and was cancelled.

    Raised at the next cooperative cancellation point (task boundaries in
    the runners) once the deadline passes, or immediately at dispatch for
    jobs whose deadline expired while queued.
    """


class JobCancelledError(ServiceError):
    """A job was cancelled by the client or by service shutdown."""


class PigError(ReproError):
    """Errors raised by the Pig dataflow layer."""


class PigParseError(PigError):
    """Syntax error in a Pig script."""

    def __init__(self, message: str, line_number: int | None = None):
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class DatasetError(ReproError):
    """Invalid dataset-generation parameters."""


class EvaluationError(ReproError):
    """Invalid evaluation input (empty clustering, label mismatch)."""


class SimulationError(MapReduceError):
    """Errors raised by the discrete-event cluster simulator."""
