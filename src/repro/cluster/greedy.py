"""Greedy clustering — Algorithm 1 of the paper (MrMC-MinH^g).

Step-wise incremental procedure: take the first unassigned sequence as a
new cluster's representative, sweep the remaining unassigned sequences and
pull in every one whose estimated Jaccard similarity to the representative
is at least θ; repeat until everything is assigned.

The similarity test is the set-based sketch Jaccard of Algorithm 1 line 9
by default (``estimator="set"``); ``"positional"`` gives the classical
MinHash estimator (compared in the estimator ablation benchmark).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ClusteringError
from repro.cluster.assignments import ClusterAssignment
from repro.minhash.sketch import MinHashSketch, padded_value_sets, sketch_matrix


def greedy_cluster(
    sketches: Sequence[MinHashSketch],
    threshold: float,
    *,
    estimator: str = "set",
) -> ClusterAssignment:
    """Cluster sketched sequences greedily (Algorithm 1).

    Parameters
    ----------
    sketches:
        Sketches from one shared hash family, in input order (the paper
        "chooses the first sequence" — order matters and is preserved).
    threshold:
        θ in [0, 1].  θ=1 requires all min-wise values identical; lower
        values admit more sequences per cluster (fewer clusters total).
    estimator:
        ``"set"`` (paper pseudocode) or ``"positional"``.

    Returns
    -------
    :class:`~repro.cluster.assignments.ClusterAssignment` with cluster
    labels numbered in creation order.
    """
    if not sketches:
        raise ClusteringError("cannot cluster an empty sketch list")
    if not 0.0 <= threshold <= 1.0:
        raise ClusteringError(f"threshold must be in [0,1], got {threshold}")
    ids = [s.read_id for s in sketches]
    if len(set(ids)) != len(ids):
        raise ClusteringError("sketch read ids must be unique")

    n = len(sketches)
    matrix = sketch_matrix(sketches)  # validates family compatibility
    labels = np.full(n, -1, dtype=np.int64)
    next_label = 0
    unassigned = list(range(n))

    if estimator == "positional":
        while unassigned:
            rep = unassigned[0]
            rest = np.array(unassigned[1:], dtype=np.intp)
            labels[rep] = next_label
            if rest.size:
                sims = np.mean(matrix[rest] == matrix[rep], axis=1)
                joined = rest[sims >= threshold]
                labels[joined] = next_label
            next_label += 1
            unassigned = [i for i in unassigned[1:] if labels[i] < 0]
    elif estimator == "set":
        # Vectorised sweep: every representative scores all remaining
        # rows with one np.isin over their padded sorted value sets
        # (pads are -1, never a hash value, so they cannot match).
        padded, counts = padded_value_sets(matrix)
        while unassigned:
            rep = unassigned[0]
            rest = np.array(unassigned[1:], dtype=np.intp)
            labels[rep] = next_label
            if rest.size:
                member = np.isin(padded[rest], padded[rep, : counts[rep]])
                inter = member.sum(axis=1)
                sims = inter / (counts[rest] + counts[rep] - inter)
                joined = rest[sims >= threshold]
                labels[joined] = next_label
            next_label += 1
            unassigned = [i for i in unassigned[1:] if labels[i] < 0]
    else:
        raise ClusteringError(
            f"unknown estimator {estimator!r}; expected 'set' or 'positional'"
        )

    return ClusterAssignment.from_labels(ids, [int(v) for v in labels])
