"""Cluster consensus sequences.

OTU pipelines publish a *consensus* per cluster rather than a raw member
read: errors are random, so the per-column majority over member reads
cancels them.  We build a star alignment — every member globally aligned
to the cluster medoid — and vote per medoid column (insertions relative
to the medoid are dropped; deletions vote for a gap, and a gap majority
removes the column).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping, Sequence

from repro.errors import ClusteringError
from repro.align.global_align import global_align
from repro.cluster.assignments import ClusterAssignment
from repro.cluster.representatives import select_representatives
from repro.minhash.sketch import MinHashSketch


def consensus_sequence(
    member_sequences: Sequence[str],
    *,
    reference: str | None = None,
) -> str:
    """Majority-vote consensus of a set of sequences.

    ``reference`` anchors the star alignment (defaults to the first
    sequence).  Columns where a gap wins the vote are removed.
    """
    if not member_sequences:
        raise ClusteringError("cannot build a consensus of no sequences")
    anchor = reference if reference is not None else member_sequences[0]
    if not anchor:
        raise ClusteringError("anchor sequence is empty")
    votes: list[Counter] = [Counter() for _ in range(len(anchor))]
    for seq in member_sequences:
        if seq == anchor:
            for i, ch in enumerate(anchor):
                votes[i][ch] += 1
            continue
        result = global_align(anchor, seq)
        column = 0
        for a_ch, b_ch in zip(result.aligned_a, result.aligned_b):
            if a_ch == "-":
                continue  # insertion relative to the anchor: dropped
            votes[column][b_ch] += 1  # b_ch may be "-" (deletion vote)
            column += 1
    out = []
    for counter in votes:
        base, _count = counter.most_common(1)[0]
        if base != "-":
            out.append(base)
    if not out:
        raise ClusteringError("consensus collapsed to an empty sequence")
    return "".join(out)


def cluster_consensus(
    assignment: ClusterAssignment,
    sequences: Mapping[str, str],
    sketches: Sequence[MinHashSketch] | None = None,
    *,
    min_size: int = 2,
    max_members: int = 30,
) -> dict[int, str]:
    """Consensus sequence per cluster of at least ``min_size`` members.

    The medoid (when sketches are given) anchors each star alignment;
    ``max_members`` bounds the per-cluster alignment cost by sampling the
    first members in sorted id order.
    """
    if min_size < 1:
        raise ClusteringError(f"min_size must be >= 1, got {min_size}")
    if max_members < 1:
        raise ClusteringError(f"max_members must be >= 1, got {max_members}")
    anchors: dict[int, str] = {}
    if sketches is not None:
        big = {
            read_id: label
            for label, members in assignment.clusters().items()
            if len(members) >= min_size
            for read_id in members
        }
        if big:
            reps = select_representatives(
                ClusterAssignment(big), sketches, policy="medoid"
            )
            anchors = {label: rep for label, rep in reps.items()}

    out: dict[int, str] = {}
    for label, members in sorted(assignment.clusters().items()):
        if len(members) < min_size:
            continue
        members = sorted(members)[:max_members]
        missing = [m for m in members if m not in sequences]
        if missing:
            raise ClusteringError(f"no sequence for {missing[0]!r}")
        anchor_id = anchors.get(label)
        anchor = sequences[anchor_id] if anchor_id in sequences else None
        out[label] = consensus_sequence(
            [sequences[m] for m in members], reference=anchor
        )
    return out
