"""Dendrogram representation for agglomerative clustering.

The paper describes the dendrogram as "a series of merge steps for the
rows of the similarity matrix" cut at the similarity threshold θ.  We
store exactly that: ordered :class:`MergeStep` records in scipy-linkage
style (new cluster ids continue after the leaf ids), convertible to a
scipy linkage matrix for cross-validation in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.errors import ClusteringError


@dataclass(frozen=True)
class MergeStep:
    """One agglomeration: clusters ``left`` and ``right`` joined at
    ``similarity`` into a new cluster of ``size`` leaves."""

    left: int
    right: int
    similarity: float
    size: int


class Dendrogram:
    """Full merge history over ``num_leaves`` initial singleton clusters."""

    def __init__(self, num_leaves: int, steps: Sequence[MergeStep] = ()):
        if num_leaves < 1:
            raise ClusteringError(f"num_leaves must be >= 1, got {num_leaves}")
        self.num_leaves = num_leaves
        self.steps: list[MergeStep] = list(steps)
        self._validate()

    def _validate(self) -> None:
        if len(self.steps) > self.num_leaves - 1:
            raise ClusteringError(
                f"{len(self.steps)} merges exceed maximum "
                f"{self.num_leaves - 1} for {self.num_leaves} leaves"
            )
        seen: set[int] = set()
        for i, step in enumerate(self.steps):
            new_id = self.num_leaves + i
            for side in (step.left, step.right):
                if not 0 <= side < new_id:
                    raise ClusteringError(
                        f"merge {i} references invalid cluster id {side}"
                    )
                if side in seen:
                    raise ClusteringError(
                        f"merge {i} reuses already-merged cluster {side}"
                    )
            seen.update((step.left, step.right))

    def append(self, step: MergeStep) -> None:
        """Record one more merge (validates incrementally)."""
        self.steps.append(step)
        try:
            self._validate()
        except ClusteringError:
            self.steps.pop()
            raise

    @property
    def is_complete(self) -> bool:
        """True when everything has merged into a single cluster."""
        return len(self.steps) == self.num_leaves - 1

    def cut(self, threshold: float) -> list[int]:
        """Cluster labels after applying merges with
        ``similarity >= threshold`` only.

        Returns dense 0-based labels for the leaves, in leaf order.  A
        threshold of 1.0 keeps only perfect merges; 0.0 applies every
        recorded merge.
        """
        from repro.cluster.unionfind import UnionFind

        uf = UnionFind(self.num_leaves + len(self.steps))
        for i, step in enumerate(self.steps):
            if step.similarity >= threshold:
                new_id = self.num_leaves + i
                uf.union(step.left, new_id)
                uf.union(step.right, new_id)
        roots: dict[int, int] = {}
        labels = []
        for leaf in range(self.num_leaves):
            root = uf.find(leaf)
            if root not in roots:
                roots[root] = len(roots)
            labels.append(roots[root])
        return labels

    def to_scipy_linkage(self) -> np.ndarray:
        """Export as a scipy ``linkage`` matrix (distance = 1 - similarity).

        Only defined for complete dendrograms (scipy requires n-1 rows).
        """
        if not self.is_complete:
            raise ClusteringError(
                "scipy linkage export requires a complete dendrogram "
                f"({len(self.steps)}/{self.num_leaves - 1} merges recorded)"
            )
        out = np.zeros((len(self.steps), 4))
        for i, step in enumerate(self.steps):
            out[i] = (step.left, step.right, 1.0 - step.similarity, step.size)
        return out

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:
        return f"Dendrogram({self.num_leaves} leaves, {len(self.steps)} merges)"
