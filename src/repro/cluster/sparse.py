"""Sparse candidate-pair similarity via min-hash collision grouping.

The dense all-pairs job (Algorithm 2 step 3) is quadratic; at the paper's
scales (50 k–10 M reads) its own reported runtimes are only achievable if
the similarity job touches far fewer than N² pairs.  The Map-Reduce-native
way to do that is to group records by ``(hash index, min-hash value)``:
two sequences can only be similar if they collide in at least one sketch
component (the probability of at least one collision among n components
is ``1 - (1 - J)^n``, overwhelming for any J above threshold at n = 50+).

This module provides that path:

* :func:`candidate_pairs` — all pairs colliding in >= ``min_shared``
  sketch components, found by grouping (one pass over N·n entries);
* :func:`sparse_similarity` — estimated Jaccard for candidate pairs only;
* :func:`sparse_single_linkage` — exact single-linkage clustering at
  threshold θ over the candidate graph (a pair with zero collisions has
  estimated similarity 0, so no merge at θ > 0 is ever missed);
* :func:`sparse_greedy_cluster` — Algorithm 1 accelerated with the
  collision index: each new representative only scans its candidates.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

import numpy as np

from repro.errors import ClusteringError
from repro.cluster.assignments import ClusterAssignment
from repro.cluster.unionfind import UnionFind
from repro.minhash.sketch import MinHashSketch, sketch_matrix


def candidate_pair_arrays(
    sketches: Sequence[MinHashSketch],
    *,
    min_shared: int = 1,
    max_group: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised collision-candidate enumeration.

    Returns ``(ii, jj, collisions)`` int64 arrays with ``ii < jj``
    element-wise — the array form of :func:`candidate_pairs`, and what the
    sparse clustering paths consume directly.

    Per sketch component the column is sorted once (stable, so indices
    stay ascending within a collision group); group boundaries fall out of
    one ``diff``, and each group's ``C(s, 2)`` intra-group pairs are
    enumerated with a closed-form triangular decode instead of nested
    Python loops.  Pair multiplicities across components come from one
    ``np.unique`` over fused ``i * N + j`` keys.
    """
    if not sketches:
        raise ClusteringError("no sketches to index")
    if min_shared < 1:
        raise ClusteringError(f"min_shared must be >= 1, got {min_shared}")
    matrix = sketch_matrix(sketches)  # validates family compatibility
    n, n_hashes = matrix.shape
    empty = np.empty(0, dtype=np.int64)
    keys_per_hash: list[np.ndarray] = []
    for h in range(n_hashes):
        column = matrix[:, h]
        order = np.argsort(column, kind="stable")
        ordered = column[order]
        run_starts = np.concatenate(([0], np.flatnonzero(np.diff(ordered)) + 1))
        run_sizes = np.diff(np.concatenate((run_starts, [n])))
        keep = run_sizes >= 2
        if max_group is not None:
            keep &= run_sizes <= max_group
        starts = run_starts[keep]
        sizes = run_sizes[keep]
        if starts.size == 0:
            continue
        pair_counts = sizes * (sizes - 1) // 2
        total = int(pair_counts.sum())
        # p = local pair index within its group; decode p -> (x, y) with
        # 0 <= x < y < s via p = C(y, 2) + x (float sqrt + exact fix-up).
        offsets = np.cumsum(pair_counts) - pair_counts
        p = np.arange(total, dtype=np.int64) - np.repeat(offsets, pair_counts)
        y = ((np.sqrt(8.0 * p + 1.0) + 1.0) / 2.0).astype(np.int64)
        y = np.where(y * (y - 1) // 2 > p, y - 1, y)
        y = np.where(y * (y + 1) // 2 <= p, y + 1, y)
        x = p - y * (y - 1) // 2
        base = np.repeat(starts, pair_counts)
        ii = order[base + x]
        jj = order[base + y]
        keys_per_hash.append(ii * n + jj)
    if not keys_per_hash:
        return empty, empty, empty
    keys, collisions = np.unique(np.concatenate(keys_per_hash), return_counts=True)
    if min_shared > 1:
        mask = collisions >= min_shared
        keys = keys[mask]
        collisions = collisions[mask]
    return keys // n, keys % n, collisions.astype(np.int64)


def candidate_pairs(
    sketches: Sequence[MinHashSketch],
    *,
    min_shared: int = 1,
    max_group: int | None = None,
) -> dict[tuple[int, int], int]:
    """Collision-candidate pairs with their collision counts.

    Parameters
    ----------
    min_shared:
        Keep only pairs colliding in at least this many components.
    max_group:
        Skip collision groups larger than this (a degenerate value shared
        by everything generates quadratically many candidates — Hadoop
        implementations cap exactly this way).  ``None`` keeps all.

    Returns
    -------
    ``{(i, j): collisions}`` with ``i < j`` over sketch indices.
    """
    ii, jj, collisions = candidate_pair_arrays(
        sketches, min_shared=min_shared, max_group=max_group
    )
    return {
        (int(i), int(j)): int(c)
        for i, j, c in zip(ii.tolist(), jj.tolist(), collisions.tolist())
    }


def sparse_similarity(
    sketches: Sequence[MinHashSketch],
    *,
    min_shared: int = 1,
    max_group: int | None = None,
) -> dict[tuple[int, int], float]:
    """Positional estimated Jaccard for candidate pairs only.

    The collision count over ``n`` components *is* the positional match
    count, so similarity comes free from the grouping pass:
    ``sim = collisions / n``.
    """
    pairs = candidate_pairs(
        sketches, min_shared=min_shared, max_group=max_group
    )
    n = len(sketches[0])
    return {pair: c / n for pair, c in pairs.items()}


class _CollisionMapper:
    """Emit ``((hash index, value), sketch index)`` for every component —
    the grouping key of the Map-Reduce candidate-join."""

    def __call__(self, key, values):
        for h, value in enumerate(values):
            yield (h, int(value)), key


class _PairReducer:
    """Emit candidate pairs from one collision group."""

    def __init__(self, max_group: int | None):
        self.max_group = max_group

    def __call__(self, key, members):
        members = sorted(set(members))
        if len(members) < 2:
            return
        if self.max_group is not None and len(members) > self.max_group:
            return
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                yield (members[a], members[b]), 1


def candidate_pairs_mapreduce(
    sketches: Sequence[MinHashSketch],
    *,
    runner=None,
    num_map_tasks: int = 4,
    num_reduce_tasks: int = 4,
    max_group: int | None = None,
):
    """The same collision-candidate computation as :func:`candidate_pairs`,
    expressed as a Map-Reduce job (group by ``(hash index, value)``).

    Returns ``({(i, j): collisions}, job_result)`` — the engine result
    carries the trace the cluster simulator schedules, making the
    Figure 2 sparse-similarity cost model a measured quantity.
    """
    from repro.mapreduce.job import MapReduceJob
    from repro.mapreduce.runner import SerialRunner
    from repro.mapreduce.types import JobConf

    if not sketches:
        raise ClusteringError("no sketches to index")
    runner = runner or SerialRunner()
    job = MapReduceJob(
        name="sparse-candidates",
        mapper=_CollisionMapper(),
        reducer=_PairReducer(max_group),
    )
    inputs = [(i, s.values.tolist()) for i, s in enumerate(sketches)]
    result = runner.run(
        job,
        inputs,
        JobConf(num_map_tasks=num_map_tasks, num_reduce_tasks=num_reduce_tasks),
    )
    counts: dict[tuple[int, int], int] = defaultdict(int)
    for pair, one in result.output:
        counts[pair] += one
    return dict(counts), result


class SingleLinkageEdgeStream:
    """Incremental single-linkage clustering fed one edge at a time.

    Feed above-threshold ``(i, j)`` index pairs through :meth:`add` as
    they are produced (e.g. straight from a reducer's output stream) and
    call :meth:`finish` once: every edge merges two union-find components,
    so memory is O(N) regardless of how many edges stream past — never
    O(edges).  The result is independent of edge order and duplication —
    :meth:`UnionFind.labels` renumbers components in first-seen index
    order — which is what lets the in-process path and the MapReduce job
    chain (:mod:`repro.cluster.sparse_jobs`) produce byte-identical
    assignments from differently-ordered pair streams.
    """

    def __init__(self, read_ids: Sequence[str]):
        self.read_ids = list(read_ids)
        if not self.read_ids:
            raise ClusteringError("cannot cluster an empty sketch list")
        self._uf = UnionFind(len(self.read_ids))
        self.edges_seen = 0

    def add(self, i: int, j: int) -> None:
        self._uf.union(i, j)
        self.edges_seen += 1

    def finish(self) -> ClusterAssignment:
        return ClusterAssignment.from_labels(self.read_ids, self._uf.labels())


class GreedyEdgeStream:
    """Incremental Algorithm-1 clustering fed one edge at a time.

    Accumulates the adjacency (O(N + edges kept) — only *above-threshold*
    edges, the sparse survivors, not the full candidate list) and runs the
    assignment sweep in :meth:`finish`: indices are scanned in input
    order, the first unassigned index becomes a representative and claims
    all its still-unassigned neighbours.  Only the edge *set* matters
    (every neighbour of a representative gets the same label), so the
    result is order/duplication independent and shared by the in-process
    and engine paths.
    """

    def __init__(self, read_ids: Sequence[str]):
        self.read_ids = list(read_ids)
        if not self.read_ids:
            raise ClusteringError("cannot cluster an empty sketch list")
        if len(set(self.read_ids)) != len(self.read_ids):
            raise ClusteringError("sketch read ids must be unique")
        self._neighbours: dict[int, list[int]] = defaultdict(list)
        self.edges_seen = 0

    def add(self, i: int, j: int) -> None:
        self._neighbours[i].append(j)
        self._neighbours[j].append(i)
        self.edges_seen += 1

    def finish(self) -> ClusterAssignment:
        n = len(self.read_ids)
        labels = np.full(n, -1, dtype=np.int64)
        next_label = 0
        for i in range(n):
            if labels[i] >= 0:
                continue
            labels[i] = next_label
            for j in self._neighbours.get(i, ()):
                # Only sequences after i in input order can still be
                # unassigned; Algorithm 1 assigns them to the current rep.
                if labels[j] < 0:
                    labels[j] = next_label
            next_label += 1
        return ClusterAssignment.from_labels(
            self.read_ids, [int(v) for v in labels]
        )


def make_edge_stream(read_ids: Sequence[str], method: str):
    """Edge-stream clusterer for a pipeline method name.

    ``"hierarchical"`` maps to single linkage (what the sparse path
    computes exactly), ``"greedy"`` to the Algorithm-1 sweep.
    """
    if method == "greedy":
        return GreedyEdgeStream(read_ids)
    if method == "hierarchical":
        return SingleLinkageEdgeStream(read_ids)
    raise ClusteringError(
        f"unknown edge-stream method {method!r}; expected 'greedy' or 'hierarchical'"
    )


def single_linkage_from_edges(
    read_ids: Sequence[str],
    edges,
) -> ClusterAssignment:
    """Single-linkage clustering over a stream of above-threshold edges.

    Thin wrapper over :class:`SingleLinkageEdgeStream`; ``edges`` is any
    iterable (list or generator) of ``(i, j)`` index pairs and is consumed
    lazily — results are identical either way by construction.
    """
    stream = SingleLinkageEdgeStream(read_ids)
    for i, j in edges:
        stream.add(i, j)
    return stream.finish()


def greedy_from_edges(
    read_ids: Sequence[str],
    edges,
) -> ClusterAssignment:
    """Algorithm 1's assignment sweep over a stream of above-threshold edges.

    Thin wrapper over :class:`GreedyEdgeStream`; ``edges`` is consumed
    lazily, list or generator alike.
    """
    stream = GreedyEdgeStream(read_ids)
    for i, j in edges:
        stream.add(i, j)
    return stream.finish()


def sparse_single_linkage(
    sketches: Sequence[MinHashSketch],
    threshold: float,
    *,
    max_group: int | None = None,
) -> ClusterAssignment:
    """Exact single-linkage clustering at θ using only candidate pairs.

    Single linkage merges two clusters iff *some* cross pair reaches θ;
    pairs absent from the candidate set have estimated similarity below
    ``1/n`` (zero collisions), so for any θ > 0 the candidate graph
    contains every merging edge and the result equals the dense
    computation (with ``max_group=None``).
    """
    if not sketches:
        raise ClusteringError("cannot cluster an empty sketch list")
    if not 0.0 < threshold <= 1.0:
        raise ClusteringError(
            f"threshold must be in (0, 1] for the sparse path, got {threshold}"
        )
    ii, jj, collisions = candidate_pair_arrays(sketches, max_group=max_group)
    num_hashes = len(sketches[0])
    hits = collisions / num_hashes >= threshold
    return single_linkage_from_edges(
        [s.read_id for s in sketches],
        zip(ii[hits].tolist(), jj[hits].tolist()),
    )


def sparse_greedy_cluster(
    sketches: Sequence[MinHashSketch],
    threshold: float,
    *,
    max_group: int | None = None,
) -> ClusterAssignment:
    """Algorithm 1 with candidate pruning.

    Identical result to
    :func:`repro.cluster.greedy.greedy_cluster(..., estimator="positional")`
    for θ > 0 (zero-collision pairs cannot clear any positive θ), but each
    representative only scores sequences it collides with.
    """
    if not sketches:
        raise ClusteringError("cannot cluster an empty sketch list")
    if not 0.0 < threshold <= 1.0:
        raise ClusteringError(
            f"threshold must be in (0, 1] for the sparse path, got {threshold}"
        )
    ii, jj, collisions = candidate_pair_arrays(sketches, max_group=max_group)
    num_hashes = len(sketches[0])
    hits = collisions / num_hashes >= threshold
    # Only above-threshold edges can ever join a cluster; drop the rest
    # before the assignment sweep.
    return greedy_from_edges(
        [s.read_id for s in sketches],
        zip(ii[hits].tolist(), jj[hits].tolist()),
    )
