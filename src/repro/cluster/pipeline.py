"""End-to-end MrMC-MinH pipeline (Figure 1 / Algorithm 3).

:class:`MrMCMinH` is the library's headline API.  It chains the Map-Reduce
stages of the paper — FASTA load, integer encoding + k-merization +
min-hash sketching (one map job), row-partitioned all-pairs similarity
(hierarchical variant), and the clustering step — and returns cluster
assignments plus the execution traces the cluster simulator consumes.

Example::

    from repro import MrMCMinH, read_fasta
    model = MrMCMinH(kmer_size=5, num_hashes=100, threshold=0.9,
                     method="hierarchical", linkage="average")
    run = model.fit(read_fasta("sample.fa"))
    print(run.assignment.num_clusters)
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    ClusterConfigError,
    ClusteringError,
    SketchError,
    SparseCompatibilityError,
    WireCompatibilityError,
)
from repro.cluster.assignments import ClusterAssignment
from repro.cluster.greedy import greedy_cluster
from repro.cluster.hierarchical import LINKAGES, agglomerative_cluster
from repro.cluster.matrix import compute_similarity_matrix
from repro.mapreduce.counters import Counters
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.job import MapReduceJob, identity_reducer
from repro.mapreduce.runner import SerialRunner
from repro.obs.trace import current_tracer
from repro.mapreduce.types import JobConf, JobTrace, TaskTrace
from repro.minhash.sketch import (
    MinHashSketch,
    SketchingConfig,
    compute_sketch,
    sketch_values_batch,
)
from repro.minhash.wire import SketchWireCodec, effective_threshold
from repro.seq.fasta import format_fasta
from repro.seq.records import SequenceRecord

METHODS = ("greedy", "hierarchical")

#: Valid values of the pipeline's ``sparse`` parameter.
SPARSE_MODES = (False, True, "auto", "engine")

#: Below this many sketches ``sparse="auto"`` stays on the dense path —
#: the all-pairs matrix is cheap at small N and the dense estimators are
#: the paper-literal reference; above it the quadratic wall dominates and
#: auto switches to the MapReduce LSH chain when the configured shape is
#: one the sparse path computes exactly.
SPARSE_AUTO_CUTOFF = 4096


class _SketchMapper:
    """Picklable mapper: encode -> k-merize -> min-hash one record.

    Combines the paper's ``StringGenerator``, ``TranslateToKmer`` and
    ``CalculateMinwiseHash`` UDFs into one map stage (they are row-wise
    ``FOREACH`` steps that Pig would fuse into a single map task anyway).
    This is the reference path; :class:`_SketchBatchMapper` produces
    byte-identical output and is what map tasks actually run.
    """

    def __init__(self, config: SketchingConfig):
        self.config = config
        self.family = config.make_family()

    def __call__(self, key, value):
        read_id, sequence = value
        record = SequenceRecord(read_id=read_id, sequence=sequence)
        try:
            sketch = compute_sketch(record, self.config, self.family)
        except SketchError:
            return  # reads shorter than k are dropped, as in real pipelines
        yield key, sketch


class _SketchBatchMapper:
    """Whole-split sketch mapper backed by the vectorised batch kernel.

    One :func:`~repro.minhash.sketch.sketch_values_batch` call sketches
    the entire split — byte-identical to looping :class:`_SketchMapper`
    over it, including dropping reads that produce no k-mer.
    """

    def __init__(self, config: SketchingConfig):
        self.config = config

    def __call__(self, split):
        keys = []
        read_ids = []
        sequences = []
        for key, (read_id, sequence) in split:
            # Validate exactly like the per-record path does.
            SequenceRecord(read_id=read_id, sequence=sequence)
            keys.append(key)
            read_ids.append(read_id)
            sequences.append(sequence)
        family = self.config.make_family()
        values, kept = sketch_values_batch(sequences, self.config, family)
        family_key = (family.num_hashes, family.universe_size, self.config.seed)
        return [
            (
                keys[i],
                MinHashSketch(
                    read_id=read_ids[i], values=values[row], family_key=family_key
                ),
            )
            for row, i in enumerate(kept)
        ]


@dataclass
class ClusteringRun:
    """Everything produced by one pipeline execution."""

    assignment: ClusterAssignment
    sketches: list[MinHashSketch]
    similarity: np.ndarray | None
    traces: list[JobTrace]
    timings: dict[str, float]
    counters: Counters = field(default_factory=Counters)
    mode: str = "dense"
    """Similarity path actually taken: ``dense``, ``sparse`` or ``engine``."""
    sparse_stats: dict | None = None
    """Candidate/edge/round/shuffle accounting when a sparse path ran."""

    @property
    def wall_seconds(self) -> float:
        """Total measured wall-clock across pipeline stages."""
        return sum(self.timings.values())


class MrMCMinH:
    """The paper's clustering framework.

    Parameters
    ----------
    kmer_size, num_hashes:
        Sketching parameters ``k`` and ``n`` (``$KMER`` / ``$NUMHASH``).
        Paper settings: (5, 100) for whole-metagenome, (15, 50) for 16S.
    threshold:
        Similarity threshold θ (``$CUTOFF``).
    method:
        ``"hierarchical"`` (MrMC-MinH^h, Algorithm 2) or ``"greedy"``
        (MrMC-MinH^g, Algorithm 1).
    linkage:
        ``$LINK`` for the hierarchical method: single/average/complete.
    estimator:
        Sketch-comparison estimator; defaults to the paper-literal choice
        per method ("set" for greedy, "positional" for the matrix).
    seed:
        Hash-family seed.
    runner:
        Map-Reduce runner (defaults to a traced
        :class:`~repro.mapreduce.runner.SerialRunner`).
    num_map_tasks:
        Parallelism of the sketch and similarity jobs.
    sparse:
        Similarity-stage strategy.  ``"auto"`` (the default) runs the
        dense all-pairs job below ``sparse_cutoff`` sketches and the
        MapReduce LSH chain (:mod:`repro.cluster.sparse_jobs`) above it
        whenever the configured shape is sparse-exact; shapes that are
        not (θ <= 0, non-single hierarchical linkage, an explicitly
        requested non-positional estimator) stay dense at every size.
        ``True`` forces the in-process collision join, ``"engine"``
        forces the two-job chain on the engine, ``False`` forces dense.
        The sparse paths are exact for ``method="greedy"`` with the
        positional estimator and for ``method="hierarchical"`` with
        ``linkage="single"`` — the two shapes that scale to paper-sized
        inputs; forcing sparse for other combinations raises
        :class:`~repro.errors.SparseCompatibilityError`.  Note that when
        auto flips a default-estimator greedy run to the sparse chain it
        clusters with the positional estimator (the sparse-exact form)
        rather than the dense default ``"set"``; pass ``sparse=False``
        or ``estimator="set"`` to pin the paper-literal set estimator.
    sparse_cutoff:
        Sketch count at which ``sparse="auto"`` switches from dense to
        the engine chain.
    wire_bits:
        Ship sketches through the shuffle as b-bit compressed frames
        (see :mod:`repro.minhash.wire`), cutting sketch-job shuffle
        traffic to ``~b/64`` of the raw bytes.  Downstream clustering
        then runs on the low-b-bit sketches with the threshold mapped to
        ``c + (1 - c) * theta`` (``c = 2**-b``), which makes comparing
        raw b-bit match fractions equivalent to comparing
        collision-corrected Jaccard estimates against ``theta``.  That
        correction is only valid for the positional estimator, so the
        flag rejects ``estimator="set"`` combinations.
    spill_threshold_bytes:
        Engage the external spill-to-disk shuffle
        (:class:`~repro.mapreduce.shuffle.SpillingShuffle`) in every job
        the pipeline runs: per-partition map-output buffers over this
        size are sorted and spilled to CRC-guarded segment files and
        merged lazily, so shuffle memory stays bounded at ~1M-read
        scale.  The engine-sparse path additionally streams verified
        candidate edges straight into the clusterer.  ``None`` (default)
        keeps everything in memory; output is byte-identical either way.
    """

    def __init__(
        self,
        *,
        kmer_size: int = 5,
        num_hashes: int = 100,
        threshold: float = 0.9,
        method: str = "hierarchical",
        linkage: str = "average",
        estimator: str | None = None,
        seed: int = 0,
        runner=None,
        num_map_tasks: int = 4,
        sparse: bool | str = "auto",
        wire_bits: int | None = None,
        sparse_cutoff: int = SPARSE_AUTO_CUTOFF,
        spill_threshold_bytes: int | None = None,
    ):
        if method not in METHODS:
            raise ClusterConfigError(
                f"unknown method {method!r}; expected one of {METHODS}"
            )
        if linkage not in LINKAGES:
            raise ClusterConfigError(
                f"unknown linkage {linkage!r}; expected one of {LINKAGES}"
            )
        if not 0.0 <= threshold <= 1.0:
            raise ClusterConfigError(f"threshold must be in [0,1], got {threshold}")
        if num_map_tasks < 1:
            raise ClusterConfigError(
                f"num_map_tasks must be >= 1, got {num_map_tasks}"
            )
        if sparse not in SPARSE_MODES:
            raise ClusterConfigError(
                f"unknown sparse mode {sparse!r}; expected one of {SPARSE_MODES}"
            )
        if sparse_cutoff < 1:
            raise ClusterConfigError(
                f"sparse_cutoff must be >= 1, got {sparse_cutoff}"
            )
        if spill_threshold_bytes is not None and spill_threshold_bytes < 0:
            raise ClusterConfigError(
                "spill_threshold_bytes must be >= 0 or None, got "
                f"{spill_threshold_bytes}"
            )
        self.config = SketchingConfig(
            kmer_size=kmer_size, num_hashes=num_hashes, seed=seed
        )
        self.threshold = threshold
        self.method = method
        self.linkage = linkage
        # "auto" keeps the paper-literal dense default (set estimator for
        # greedy) and only switches estimator semantics when it actually
        # flips to the sparse chain at fit time.
        self._estimator_explicit = estimator is not None
        self.estimator = estimator or (
            "set"
            if method == "greedy" and sparse in (False, "auto")
            else "positional"
        )
        self.runner = runner or SerialRunner()
        self.num_map_tasks = num_map_tasks
        self.sparse = sparse
        self.sparse_cutoff = sparse_cutoff
        self.spill_threshold_bytes = spill_threshold_bytes
        self.wire_bits = wire_bits
        if wire_bits is not None:
            if self.estimator != "positional":
                raise WireCompatibilityError(
                    "wire_bits requires the positional estimator (the b-bit "
                    "collision correction does not apply to the set form)"
                )
            # Validates the bit width up front.
            effective_threshold(threshold, wire_bits)
        if sparse in (True, "engine"):
            if threshold <= 0.0:
                raise SparseCompatibilityError(
                    "sparse mode requires threshold > 0",
                    method=method,
                    linkage=linkage,
                    estimator=self.estimator,
                )
            if method == "hierarchical" and linkage != "single":
                raise SparseCompatibilityError(
                    "sparse hierarchical clustering is exact only for "
                    "single linkage; use linkage='single' or sparse=False",
                    method=method,
                    linkage=linkage,
                    estimator=self.estimator,
                )
            if method == "greedy" and self.estimator != "positional":
                raise SparseCompatibilityError(
                    "sparse greedy clustering uses the positional estimator; "
                    "drop estimator='set' or sparse=False",
                    method=method,
                    linkage=linkage,
                    estimator=self.estimator,
                )

    def _resolve_mode(self, num_sketches: int) -> str:
        """Resolve the ``sparse`` setting to a concrete similarity path.

        Returns one of ``"dense"``, ``"sparse"`` (in-process collision
        join) or ``"engine"`` (the :mod:`repro.cluster.sparse_jobs` two-job
        chain).  ``"auto"`` never raises: shapes the sparse path cannot
        compute exactly simply stay dense.
        """
        if self.sparse is True:
            return "sparse"
        if self.sparse == "engine":
            return "engine"
        if self.sparse is False:
            return "dense"
        # ---- "auto": dense small-N fallback, engine-sparse at scale ------
        if num_sketches < self.sparse_cutoff:
            return "dense"
        if self.threshold <= 0.0:
            return "dense"
        if self.method == "hierarchical" and self.linkage != "single":
            return "dense"
        if self._estimator_explicit and self.estimator != "positional":
            return "dense"
        return "engine"

    # ------------------------------------------------------------------ fit

    def fit(self, records: Sequence[SequenceRecord]) -> ClusteringRun:
        """Cluster a sample of sequence records.

        When a :class:`~repro.obs.trace.Tracer` is active the whole run is
        recorded under a ``pipeline:mrmcminh`` root span with one
        ``kind="phase"`` child per stage (``phase:sketch``,
        ``phase:similarity``, ``phase:cluster``); the engine nests its
        job/task/attempt spans underneath, and pipeline-level gauges
        (cluster count, sketch throughput, per-phase seconds) land in the
        tracer's metrics registry.
        """
        records = list(records)
        if not records:
            raise ClusteringError("cannot cluster an empty sample")
        tracer = current_tracer()
        with tracer.span(
            "pipeline:mrmcminh",
            kind="pipeline",
            method=self.method,
            sparse=str(self.sparse),
            num_records=len(records),
        ):
            return self._fit_traced(records, tracer)

    def _fit_traced(self, records: list[SequenceRecord], tracer) -> ClusteringRun:
        counters = Counters()
        traces: list[JobTrace] = []
        timings: dict[str, float] = {}

        # ---- stage 1: sketch job (encode + k-merize + min-hash) ---------
        t0 = time.perf_counter()
        with tracer.span("phase:sketch", kind="phase"):
            sketch_job = MapReduceJob(
                name="sketch",
                mapper=_SketchMapper(self.config),
                batch_mapper=_SketchBatchMapper(self.config),
                reducer=identity_reducer,
                wire=(
                    SketchWireCodec(self.wire_bits)
                    if self.wire_bits is not None
                    else None
                ),
            )
            inputs = [
                (i, (rec.read_id, rec.sequence)) for i, rec in enumerate(records)
            ]
            result = self.runner.run(
                sketch_job,
                inputs,
                JobConf(
                    num_map_tasks=self.num_map_tasks,
                    num_reduce_tasks=1,
                    spill_threshold_bytes=self.spill_threshold_bytes,
                ),
            )
            counters.merge(result.counters)
            if result.trace is not None:
                traces.append(result.trace)
            # Output is keyed by input index, so original order is preserved —
            # the greedy algorithm's "choose the first sequence" depends on it.
            sketches = [sketch for _, sketch in result.output]
        timings["sketch"] = time.perf_counter() - t0
        if timings["sketch"] > 0:
            tracer.metrics.gauge("pipeline.sketch_reads_per_sec").set(
                len(sketches) / timings["sketch"]
            )
        if not sketches:
            raise ClusteringError(
                f"no sequence produced a {self.config.kmer_size}-mer sketch"
            )

        # With b-bit sketches, raw match fractions drift up by the random
        # low-bit collision floor; thresholding at theta_eff on them is
        # exactly thresholding corrected Jaccard estimates at theta.
        theta = (
            effective_threshold(self.threshold, self.wire_bits)
            if self.wire_bits is not None
            else self.threshold
        )

        # ---- stage 2/3: similarity + clustering --------------------------
        similarity: np.ndarray | None = None
        sparse_stats: dict | None = None
        mode = self._resolve_mode(len(sketches))
        if mode == "engine":
            from repro.cluster.sparse_jobs import engine_sparse_cluster

            engine_run = engine_sparse_cluster(
                sketches,
                theta,
                method=self.method,
                runner=self.runner,
                num_map_tasks=self.num_map_tasks,
                num_reduce_tasks=self.num_map_tasks,
                stream=True,
                spill_threshold_bytes=self.spill_threshold_bytes,
            )
            counters.merge(engine_run.counters)
            traces.extend(engine_run.traces)
            timings["similarity"] = (
                engine_run.timings["lsh_candidates"] + engine_run.timings["verify"]
            )
            timings["cluster"] = engine_run.timings["cluster"]
            traces.append(
                _clustering_trace(
                    "sparse-cluster", len(sketches), timings["cluster"]
                )
            )
            assignment = engine_run.assignment
            sparse_stats = {
                "candidate_pairs": engine_run.candidate_pair_count,
                "edges": engine_run.edge_count,
                "rounds": engine_run.rounds,
                "shuffle_bytes": engine_run.shuffle_bytes,
                "streamed": engine_run.streamed,
                "spill_segments": engine_run.counters.get(
                    "shuffle", "spill_segments"
                ),
                "spill_bytes": engine_run.counters.get("shuffle", "spill_bytes"),
            }
        elif mode == "sparse":
            from repro.cluster.sparse import (
                candidate_pairs_mapreduce,
                sparse_greedy_cluster,
                sparse_single_linkage,
            )

            t0 = time.perf_counter()
            with tracer.span("phase:similarity", kind="phase"):
                # Run the collision join through the engine for its trace;
                # clustering itself consumes the direct API.
                _pairs, sim_result = candidate_pairs_mapreduce(
                    sketches,
                    runner=self.runner,
                    num_map_tasks=self.num_map_tasks,
                    num_reduce_tasks=self.num_map_tasks,
                )
                counters.merge(sim_result.counters)
                if sim_result.trace is not None:
                    traces.append(sim_result.trace)
            timings["similarity"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            with tracer.span("phase:cluster", kind="phase"):
                if self.method == "hierarchical":
                    assignment = sparse_single_linkage(sketches, theta)
                else:
                    assignment = sparse_greedy_cluster(sketches, theta)
            elapsed = time.perf_counter() - t0
            timings["cluster"] = elapsed
            traces.append(_clustering_trace("sparse-cluster", len(sketches), elapsed))
            sparse_stats = {
                "candidate_pairs": len(_pairs),
                "rounds": 1,
                "shuffle_bytes": (
                    sim_result.trace.shuffle_bytes
                    if sim_result.trace is not None
                    else 0
                ),
            }
        elif self.method == "hierarchical":
            t0 = time.perf_counter()
            with tracer.span("phase:similarity", kind="phase"):
                similarity, sim_result = compute_similarity_matrix(
                    sketches,
                    estimator=self.estimator,
                    runner=self.runner,
                    num_tasks=self.num_map_tasks,
                )
                counters.merge(sim_result.counters)
                if sim_result.trace is not None:
                    traces.append(sim_result.trace)
            timings["similarity"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            with tracer.span("phase:cluster", kind="phase"):
                assignment = agglomerative_cluster(
                    similarity,
                    [s.read_id for s in sketches],
                    theta,
                    linkage=self.linkage,
                )
            elapsed = time.perf_counter() - t0
            timings["cluster"] = elapsed
            traces.append(_clustering_trace("cluster", len(sketches), elapsed))
        else:
            t0 = time.perf_counter()
            with tracer.span("phase:cluster", kind="phase"):
                assignment = greedy_cluster(
                    sketches, theta, estimator=self.estimator
                )
            elapsed = time.perf_counter() - t0
            timings["cluster"] = elapsed
            traces.append(_clustering_trace("greedy-cluster", len(sketches), elapsed))

        counters.increment("pipeline", "sequences_clustered", len(sketches))
        counters.increment("pipeline", "clusters", assignment.num_clusters)
        tracer.metrics.gauge("pipeline.sequences").set(len(sketches))
        tracer.metrics.gauge("pipeline.clusters").set(assignment.num_clusters)
        for phase, seconds in timings.items():
            tracer.metrics.gauge(f"pipeline.phase_seconds.{phase}").set(seconds)
        return ClusteringRun(
            assignment=assignment,
            sketches=sketches,
            similarity=similarity,
            traces=traces,
            timings=timings,
            counters=counters,
            mode=mode,
            sparse_stats=sparse_stats,
        )

    # ------------------------------------------------------- HDFS round-trip

    def fit_hdfs(
        self,
        hdfs: SimulatedHDFS,
        input_path: str,
        output_path: str,
    ) -> ClusteringRun:
        """Full Figure-1 flow: FASTA on HDFS in, cluster labels on HDFS out.

        Input is read the way Hadoop map tasks read it: one split per
        HDFS block via :class:`~repro.mapreduce.inputformat.FastaInputFormat`
        (records spanning block boundaries handled by the ownership
        protocol), with one map task per split so the recorded trace's
        task count matches the file's block count — which is what the
        cluster simulator's locality scheduling consumes.

        The output file holds one ``read_id\\tcluster`` line per sequence,
        the format ``STORE ... INTO '$OUTPUT'`` produces in Algorithm 3.
        """
        from repro.mapreduce.inputformat import FastaInputFormat

        fmt = FastaInputFormat(hdfs, input_path)
        records: list[SequenceRecord] = []
        for split in range(fmt.num_splits):
            records.extend(fmt.read_split(split))
        if not records:
            raise ClusteringError(f"{input_path!r} contains no FASTA records")

        # One map task per block, as Hadoop would launch.
        original_tasks = self.num_map_tasks
        self.num_map_tasks = max(1, fmt.num_splits)
        try:
            run = self.fit(records)
        finally:
            self.num_map_tasks = original_tasks

        lines = [
            f"{read_id}\t{run.assignment[read_id]}"
            for read_id in (r.read_id for r in records)
            if read_id in run.assignment
        ]
        hdfs.put(output_path, "\n".join(lines) + "\n", overwrite=True)
        return run

    @staticmethod
    def stage_records(
        hdfs: SimulatedHDFS, path: str, records: Sequence[SequenceRecord]
    ) -> None:
        """Write records to HDFS as FASTA (the pipeline's input format)."""
        hdfs.put(path, format_fasta(records), overwrite=True)


def _clustering_trace(name: str, num_records: int, elapsed: float) -> JobTrace:
    """Trace for the driver-side clustering stage (single reduce task,
    matching Pig's GROUP ALL -> one reducer plan)."""
    trace = JobTrace(job_name=name)
    trace.reduce_tasks.append(
        TaskTrace(
            task_id=f"{name}-r0000",
            kind="reduce",
            records_in=num_records,
            records_out=num_records,
            cpu_seconds=elapsed,
        )
    )
    return trace
