"""Cluster-assignment result type.

The paper's output is "cluster label for each sequence" stored back to
HDFS; :class:`ClusterAssignment` is that mapping plus the bookkeeping the
evaluation metrics need (sizes, members, minimum-size filtering — the
paper reports metrics over clusters with more than 50 sequences).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping

from repro.errors import ClusteringError


class ClusterAssignment(Mapping):
    """Immutable mapping ``read_id -> cluster label`` with cluster views."""

    def __init__(self, labels: Mapping[str, int]):
        if not labels:
            raise ClusteringError("a clustering must assign at least one sequence")
        for read_id, label in labels.items():
            if not isinstance(label, int) or label < 0:
                raise ClusteringError(
                    f"label for {read_id!r} must be a non-negative int, got {label!r}"
                )
        self._labels = dict(labels)
        members: dict[int, list[str]] = {}
        for read_id, label in self._labels.items():
            members.setdefault(label, []).append(read_id)
        self._members = {k: tuple(v) for k, v in members.items()}

    # -- Mapping protocol ---------------------------------------------------

    def __getitem__(self, read_id: str) -> int:
        return self._labels[read_id]

    def __iter__(self):
        return iter(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    # -- cluster views --------------------------------------------------------

    @property
    def num_clusters(self) -> int:
        """Number of distinct clusters."""
        return len(self._members)

    @property
    def num_sequences(self) -> int:
        """Number of assigned sequences."""
        return len(self._labels)

    def members(self, label: int) -> tuple[str, ...]:
        """Read ids assigned to cluster ``label``."""
        if label not in self._members:
            raise ClusteringError(f"no cluster with label {label}")
        return self._members[label]

    def clusters(self) -> dict[int, tuple[str, ...]]:
        """All clusters as ``{label: (read ids...)}``."""
        return dict(self._members)

    def sizes(self) -> dict[int, int]:
        """Cluster sizes as ``{label: count}``."""
        return {label: len(ids) for label, ids in self._members.items()}

    def size_histogram(self) -> Counter:
        """``Counter`` over cluster sizes (diversity-style summaries)."""
        return Counter(self.sizes().values())

    def filter_min_size(self, min_size: int) -> "ClusterAssignment":
        """Clustering restricted to clusters of at least ``min_size``
        members (the paper filters at > 50 for reported metrics).

        Raises when nothing survives — metrics over an empty clustering
        are undefined.
        """
        if min_size < 1:
            raise ClusteringError(f"min_size must be >= 1, got {min_size}")
        kept = {
            read_id: label
            for label, ids in self._members.items()
            if len(ids) >= min_size
            for read_id in ids
        }
        if not kept:
            raise ClusteringError(
                f"no cluster has at least {min_size} members"
            )
        return ClusterAssignment(kept)

    def relabeled(self) -> "ClusterAssignment":
        """Copy with labels renumbered densely by decreasing cluster size
        (ties broken by smallest member id for determinism)."""
        order = sorted(
            self._members.items(), key=lambda kv: (-len(kv[1]), min(kv[1]))
        )
        mapping = {old: new for new, (old, _) in enumerate(order)}
        return ClusterAssignment(
            {read_id: mapping[label] for read_id, label in self._labels.items()}
        )

    @classmethod
    def from_labels(
        cls, read_ids: Iterable[str], labels: Iterable[int]
    ) -> "ClusterAssignment":
        """Build from parallel id/label sequences."""
        read_ids = list(read_ids)
        labels = list(labels)
        if len(read_ids) != len(labels):
            raise ClusteringError(
                f"{len(read_ids)} read ids but {len(labels)} labels"
            )
        if len(set(read_ids)) != len(read_ids):
            raise ClusteringError("read ids must be unique")
        return cls(dict(zip(read_ids, labels)))

    # -- persistence --------------------------------------------------------

    def to_tsv(self) -> str:
        """Render as ``read_id<TAB>label`` lines (the paper's HDFS output
        format), sorted by read id."""
        return "\n".join(
            f"{read_id}\t{label}" for read_id, label in sorted(self._labels.items())
        ) + "\n"

    @classmethod
    def from_tsv(cls, text: str) -> "ClusterAssignment":
        """Parse the :meth:`to_tsv` format."""
        labels: dict[str, int] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            parts = line.split("\t")
            if len(parts) != 2:
                raise ClusteringError(
                    f"line {lineno}: expected 'read_id<TAB>label', got {line!r}"
                )
            read_id, raw = parts
            if read_id in labels:
                raise ClusteringError(f"line {lineno}: duplicate read id {read_id!r}")
            try:
                labels[read_id] = int(raw)
            except ValueError:
                raise ClusteringError(
                    f"line {lineno}: label {raw!r} is not an integer"
                ) from None
        return cls(labels)

    def __repr__(self) -> str:
        return (
            f"ClusterAssignment({self.num_sequences} sequences, "
            f"{self.num_clusters} clusters)"
        )
