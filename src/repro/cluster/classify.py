"""Taxonomic classification of clusters against a reference database.

The downstream step the paper's introduction motivates: 16S clusters are
assigned "within different taxonomical groups" by comparing against known
marker genes.  Each cluster's medoid is scored against every reference,
labelled with the best reference above ``min_similarity``, or flagged as
an **orphan** ("unique species ... never been sequenced before") below it.

Two scoring modes:

* ``containment`` (default when records are supplied) — exact
  ``|query k-mers ∩ reference k-mers| / |query k-mers|``.  Symmetric
  Jaccard collapses when a 60–100 bp amplicon is compared against a
  1.5 kb gene (the intersection is bounded by the tiny query);
  containment is the standard fix for short-query-vs-long-reference.
* ``sketch`` — estimated Jaccard between min-hash sketches; appropriate
  when queries and references have comparable lengths.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.errors import ClusteringError, SketchError
from repro.cluster.assignments import ClusterAssignment
from repro.cluster.representatives import select_representatives
from repro.minhash.sketch import (
    MinHashSketch,
    SketchingConfig,
    compute_sketch,
)
from repro.minhash.similarity import estimate_jaccard
from repro.seq.kmers import kmer_set
from repro.seq.records import SequenceRecord


@dataclass(frozen=True)
class Classification:
    """Outcome for one cluster."""

    cluster: int
    reference: str | None  # None = orphan
    similarity: float
    representative: str

    @property
    def is_orphan(self) -> bool:
        return self.reference is None


class ReferenceDb:
    """Sketched reference sequences sharing the query hash family."""

    def __init__(
        self,
        references: Mapping[str, str] | Sequence[tuple[str, str]],
        config: SketchingConfig,
    ):
        items = (
            list(references.items())
            if isinstance(references, Mapping)
            else list(references)
        )
        if not items:
            raise ClusteringError("reference database is empty")
        names = [name for name, _ in items]
        if len(set(names)) != len(names):
            raise ClusteringError("reference names must be unique")
        self.config = config
        family = config.make_family()
        self._sketches: dict[str, MinHashSketch] = {}
        self._kmer_sets: dict[str, frozenset[int]] = {}
        for name, sequence in items:
            record = SequenceRecord(read_id=name, sequence=sequence)
            try:
                self._sketches[name] = compute_sketch(record, config, family)
            except SketchError as exc:
                raise ClusteringError(
                    f"reference {name!r} cannot be sketched: {exc}"
                ) from exc
            self._kmer_sets[name] = frozenset(
                kmer_set(sequence, config.kmer_size, strict=False).tolist()
            )

    def __len__(self) -> int:
        return len(self._sketches)

    def __contains__(self, name: str) -> bool:
        return name in self._sketches

    def best_match(
        self, sketch: MinHashSketch, *, estimator: str = "positional"
    ) -> tuple[str, float]:
        """Best-scoring reference for a query sketch (Jaccard estimate)."""
        best_name = ""
        best_sim = -1.0
        for name in sorted(self._sketches):
            sim = estimate_jaccard(sketch, self._sketches[name], estimator=estimator)
            if sim > best_sim:
                best_name, best_sim = name, sim
        return best_name, best_sim

    def best_containment(self, sequence: str) -> tuple[str, float]:
        """Best reference by exact k-mer containment of the query."""
        query = frozenset(
            kmer_set(sequence, self.config.kmer_size, strict=False).tolist()
        )
        if not query:
            raise ClusteringError(
                f"query too short for {self.config.kmer_size}-mers"
            )
        best_name = ""
        best_sim = -1.0
        for name in sorted(self._kmer_sets):
            sim = len(query & self._kmer_sets[name]) / len(query)
            if sim > best_sim:
                best_name, best_sim = name, sim
        return best_name, best_sim


def classify_clusters(
    assignment: ClusterAssignment,
    sketches: Sequence[MinHashSketch],
    references: ReferenceDb,
    *,
    min_similarity: float = 0.5,
    estimator: str = "positional",
    records: Sequence[SequenceRecord] | None = None,
) -> dict[int, Classification]:
    """Classify every cluster by its medoid's best reference match.

    When ``records`` are supplied, exact k-mer **containment** scores the
    medoid sequence against each reference (right for short reads vs
    full-length genes); otherwise the sketch Jaccard estimate is used.
    Clusters whose best match falls below ``min_similarity`` are orphans.
    """
    if not 0.0 <= min_similarity <= 1.0:
        raise ClusteringError(
            f"min_similarity must be in [0,1], got {min_similarity}"
        )
    by_id = {s.read_id: s for s in sketches}
    sequences = {r.read_id: r.sequence for r in records} if records else None
    reps = select_representatives(assignment, sketches, policy="medoid")
    out: dict[int, Classification] = {}
    for label, rep_id in sorted(reps.items()):
        if sequences is not None:
            if rep_id not in sequences:
                raise ClusteringError(f"no record for representative {rep_id!r}")
            name, sim = references.best_containment(sequences[rep_id])
        else:
            name, sim = references.best_match(by_id[rep_id], estimator=estimator)
        out[label] = Classification(
            cluster=label,
            reference=name if sim >= min_similarity else None,
            similarity=sim,
            representative=rep_id,
        )
    return out


def classification_summary(
    classifications: Mapping[int, Classification],
    assignment: ClusterAssignment,
) -> dict[str, int]:
    """Reads per assigned reference (orphans under ``"<orphan>"``)."""
    sizes = assignment.sizes()
    out: dict[str, int] = {}
    for label, c in classifications.items():
        key = c.reference if c.reference is not None else "<orphan>"
        out[key] = out.get(key, 0) + sizes[label]
    return out
