"""Post-clustering denoising: singleton rescue.

Sequencing errors strand reads in singleton clusters (the dominant
failure mode visible in the Table IV/V benchmarks: errored reads fall
below θ against every clean read).  The standard OTU-pipeline remedy is a
second, more permissive pass that re-attaches small clusters to their
nearest large cluster — implemented here over sketches, so it costs one
comparison per (small cluster, large-cluster representative) pair.
"""

from __future__ import annotations

from collections.abc import Sequence


from repro.errors import ClusteringError
from repro.cluster.assignments import ClusterAssignment
from repro.cluster.representatives import select_representatives
from repro.minhash.sketch import MinHashSketch
from repro.minhash.similarity import estimate_jaccard


def rescue_small_clusters(
    assignment: ClusterAssignment,
    sketches: Sequence[MinHashSketch],
    *,
    rescue_threshold: float,
    max_size: int = 1,
    estimator: str = "positional",
) -> ClusterAssignment:
    """Re-attach clusters of at most ``max_size`` members to the nearest
    large cluster when the (representative-level) similarity reaches
    ``rescue_threshold``.

    ``rescue_threshold`` should sit *below* the clustering θ — that gap
    is what lets errored reads rejoin their template's cluster.  Small
    clusters that match no large cluster stay as they are.  Returns a new
    assignment; label identity of large clusters is preserved.
    """
    if not 0.0 <= rescue_threshold <= 1.0:
        raise ClusteringError(
            f"rescue_threshold must be in [0,1], got {rescue_threshold}"
        )
    if max_size < 1:
        raise ClusteringError(f"max_size must be >= 1, got {max_size}")
    by_id = {s.read_id: s for s in sketches}
    missing = [r for r in assignment if r not in by_id]
    if missing:
        raise ClusteringError(f"no sketch for {missing[0]!r}")

    sizes = assignment.sizes()
    large = {label for label, size in sizes.items() if size > max_size}
    small = {label for label in sizes if label not in large}
    if not large or not small:
        return assignment

    large_assignment = ClusterAssignment(
        {r: lbl for r, lbl in assignment.items() if lbl in large}
    )
    reps = select_representatives(large_assignment, sketches, policy="medoid")

    relabel: dict[str, int] = dict(assignment)
    for label in sorted(small):
        members = assignment.members(label)
        # Score the small cluster's own medoid-ish member (first sorted)
        # against every large representative.
        probe = by_id[sorted(members)[0]]
        best_label = -1
        best_sim = rescue_threshold
        for big_label, rep_id in sorted(reps.items()):
            sim = estimate_jaccard(probe, by_id[rep_id], estimator=estimator)
            # First label to reach the threshold wins ties (deterministic).
            if sim > best_sim or (best_label < 0 and sim >= best_sim):
                best_sim = sim
                best_label = big_label
        if best_label >= 0:
            for member in members:
                relabel[member] = best_label
    return ClusterAssignment(relabel)
