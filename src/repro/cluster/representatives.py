"""Cluster-representative selection.

The paper's advantage (iii): binning "serves as a pre-processing step by
reducing computational complexity within several workflows that analyze
only cluster representatives, instead of individual sequences".  Two
policies are provided:

* ``medoid`` — the member with the highest mean estimated-Jaccard
  similarity to the rest of its cluster (most central);
* ``longest`` — the longest member (CD-HIT's convention: longest
  sequences seed clusters).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import ClusteringError
from repro.cluster.assignments import ClusterAssignment
from repro.minhash.sketch import MinHashSketch

POLICIES = ("medoid", "longest")


def select_representatives(
    assignment: ClusterAssignment,
    sketches: Sequence[MinHashSketch],
    *,
    policy: str = "medoid",
    sequences: Mapping[str, str] | None = None,
) -> dict[int, str]:
    """Pick one representative read id per cluster.

    Parameters
    ----------
    sketches:
        Sketches for (at least) every assigned sequence; required for the
        ``medoid`` policy.
    sequences:
        ``read_id -> sequence`` map; required for the ``longest`` policy.

    Returns
    -------
    ``{cluster label: representative read id}``.
    """
    if policy not in POLICIES:
        raise ClusteringError(
            f"unknown policy {policy!r}; expected one of {POLICIES}"
        )
    by_id = {s.read_id: s for s in sketches}

    out: dict[int, str] = {}
    for label, members in sorted(assignment.clusters().items()):
        members = sorted(members)
        if policy == "longest":
            if sequences is None:
                raise ClusteringError("policy 'longest' needs sequences")
            missing = [m for m in members if m not in sequences]
            if missing:
                raise ClusteringError(f"no sequence for {missing[0]!r}")
            out[label] = max(members, key=lambda m: (len(sequences[m]), m))
            continue

        missing = [m for m in members if m not in by_id]
        if missing:
            raise ClusteringError(f"no sketch for {missing[0]!r}")
        if len(members) == 1:
            out[label] = members[0]
            continue
        matrix = np.vstack([by_id[m].values for m in members])
        # Mean positional similarity of each member to the others.
        scores = []
        for i in range(len(members)):
            sims = np.mean(matrix == matrix[i], axis=1)
            scores.append((np.sum(sims) - 1.0) / (len(members) - 1))
        out[label] = members[int(np.argmax(scores))]
    return out


def representative_records(
    assignment: ClusterAssignment,
    sketches: Sequence[MinHashSketch],
    records: Sequence,
    *,
    policy: str = "medoid",
) -> list:
    """Return the record objects of each cluster's representative, in
    cluster-label order (the reduced dataset downstream tools consume)."""
    sequences = {r.read_id: r.sequence for r in records}
    reps = select_representatives(
        assignment, sketches, policy=policy, sequences=sequences
    )
    by_id = {r.read_id: r for r in records}
    missing = [rid for rid in reps.values() if rid not in by_id]
    if missing:
        raise ClusteringError(f"no record for representative {missing[0]!r}")
    return [by_id[reps[label]] for label in sorted(reps)]
