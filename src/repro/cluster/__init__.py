"""Core clustering algorithms of the paper.

* :mod:`repro.cluster.greedy` — Algorithm 1 (MrMC-MinH^g): incremental
  representative-based clustering over min-hash sketches.
* :mod:`repro.cluster.hierarchical` — Algorithm 2 (MrMC-MinH^h):
  agglomerative hierarchical clustering over the all-pairs estimated
  Jaccard matrix, with single/average/complete linkage and a similarity
  threshold cutoff.
* :mod:`repro.cluster.matrix` — the row-partitioned parallel pairwise
  similarity computation (Section III-C).
* :mod:`repro.cluster.pipeline` — the end-to-end MrMC-MinH Map-Reduce
  pipeline (Figure 1).
"""

from repro.cluster.assignments import ClusterAssignment
from repro.cluster.unionfind import UnionFind
from repro.cluster.dendrogram import Dendrogram, MergeStep
from repro.cluster.greedy import greedy_cluster
from repro.cluster.hierarchical import (
    LINKAGES,
    agglomerative_cluster,
    build_dendrogram,
    cut_dendrogram,
    multi_threshold_cut,
)
from repro.cluster.matrix import compute_similarity_matrix, similarity_band_job
from repro.cluster.pipeline import ClusteringRun, MrMCMinH
from repro.cluster.representatives import (
    representative_records,
    select_representatives,
)
from repro.cluster.sparse import (
    candidate_pairs,
    candidate_pairs_mapreduce,
    greedy_from_edges,
    single_linkage_from_edges,
    sparse_greedy_cluster,
    sparse_similarity,
    sparse_single_linkage,
)
from repro.cluster.sparse_jobs import (
    SparseEngineRun,
    engine_candidate_pairs,
    engine_sparse_cluster,
    run_sparse_jobs,
)
from repro.cluster.denoise import rescue_small_clusters
from repro.cluster.classify import (
    Classification,
    ReferenceDb,
    classification_summary,
    classify_clusters,
)
from repro.cluster.consensus import cluster_consensus, consensus_sequence

__all__ = [
    "ClusterAssignment",
    "UnionFind",
    "Dendrogram",
    "MergeStep",
    "greedy_cluster",
    "LINKAGES",
    "agglomerative_cluster",
    "build_dendrogram",
    "cut_dendrogram",
    "multi_threshold_cut",
    "compute_similarity_matrix",
    "similarity_band_job",
    "ClusteringRun",
    "MrMCMinH",
    "select_representatives",
    "representative_records",
    "candidate_pairs",
    "candidate_pairs_mapreduce",
    "greedy_from_edges",
    "single_linkage_from_edges",
    "sparse_similarity",
    "sparse_single_linkage",
    "sparse_greedy_cluster",
    "SparseEngineRun",
    "engine_candidate_pairs",
    "engine_sparse_cluster",
    "run_sparse_jobs",
    "rescue_small_clusters",
    "Classification",
    "ReferenceDb",
    "classification_summary",
    "classify_clusters",
    "cluster_consensus",
    "consensus_sequence",
]
