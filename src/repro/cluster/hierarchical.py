"""Agglomerative hierarchical clustering — Algorithm 2 (MrMC-MinH^h).

Builds a dendrogram from the all-pairs estimated-Jaccard matrix by
iteratively merging the most-similar pair under the chosen linkage policy
(single, average or complete — the paper's ``$LINK`` parameter), and cuts
it at the similarity threshold θ (``$CUTOFF``): merging stops when no pair
of clusters is at least θ similar.

Implementation: the classic "generic" agglomerative algorithm with exact
nearest-neighbour caches — O(N²) memory, roughly O(N²) time with
vectorised row updates.  Similarity-space Lance-Williams updates:

* single   — ``s_new = max(s_i, s_j)``
* complete — ``s_new = min(s_i, s_j)``
* average  — ``s_new = (n_i s_i + n_j s_j) / (n_i + n_j)``

All three linkages are *reducible*, but single linkage can still raise a
row's best similarity after a merge; the cache update therefore both
recomputes rows whose cached neighbour died and lifts caches where the
merged row beats them, keeping the caches exact.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ClusteringError
from repro.cluster.assignments import ClusterAssignment
from repro.cluster.dendrogram import Dendrogram, MergeStep

LINKAGES = ("single", "average", "complete")

_NEG = -np.inf


def _validate_similarity(similarity: np.ndarray) -> np.ndarray:
    s = np.asarray(similarity, dtype=np.float64)
    if s.ndim != 2 or s.shape[0] != s.shape[1]:
        raise ClusteringError(f"similarity must be square, got shape {s.shape}")
    if s.shape[0] < 1:
        raise ClusteringError("similarity matrix is empty")
    if not np.allclose(s, s.T, atol=1e-8):
        raise ClusteringError("similarity matrix must be symmetric")
    if np.any(s < -1e-9) or np.any(s > 1 + 1e-9):
        raise ClusteringError("similarities must lie in [0, 1]")
    return s.copy()


def build_dendrogram(
    similarity: np.ndarray,
    *,
    linkage: str = "average",
    stop_threshold: float | None = None,
) -> Dendrogram:
    """Agglomerate a similarity matrix into a dendrogram.

    Parameters
    ----------
    similarity:
        Symmetric ``(N, N)`` matrix of similarities in [0, 1]; the
        diagonal is ignored.
    linkage:
        One of :data:`LINKAGES`.
    stop_threshold:
        When given, stop once the best available merge similarity drops
        below it (the paper's θ cutoff applied during construction — the
        resulting partial dendrogram's active clusters are the final
        clustering).  ``None`` builds the complete dendrogram.
    """
    if linkage not in LINKAGES:
        raise ClusteringError(
            f"unknown linkage {linkage!r}; expected one of {LINKAGES}"
        )
    if stop_threshold is not None and not 0.0 <= stop_threshold <= 1.0:
        raise ClusteringError(
            f"stop_threshold must be in [0,1], got {stop_threshold}"
        )
    s = _validate_similarity(similarity)
    n = s.shape[0]
    dendrogram = Dendrogram(n)
    if n == 1:
        return dendrogram

    np.fill_diagonal(s, _NEG)
    active = np.ones(n, dtype=bool)
    sizes = np.ones(n, dtype=np.int64)
    cluster_ids = np.arange(n, dtype=np.int64)  # dendrogram id living in each slot

    nn_idx = np.argmax(s, axis=1)
    nn_sim = s[np.arange(n), nn_idx]

    for step in range(n - 1):
        # Best merge among active slots.
        masked = np.where(active, nn_sim, _NEG)
        i = int(np.argmax(masked))
        best = masked[i]
        if best == _NEG:
            break
        if stop_threshold is not None and best < stop_threshold:
            break
        j = int(nn_idx[i])
        if i > j:
            i, j = j, i

        si, sj = s[i], s[j]
        ni, nj = sizes[i], sizes[j]
        if linkage == "single":
            merged = np.maximum(si, sj)
        elif linkage == "complete":
            merged = np.minimum(si, sj)
        else:  # average
            merged = (ni * si + nj * sj) / (ni + nj)

        new_id = n + step
        dendrogram.append(
            MergeStep(
                left=int(cluster_ids[i]),
                right=int(cluster_ids[j]),
                similarity=float(best),
                size=int(ni + nj),
            )
        )

        # Merged cluster lives in slot i; slot j dies.
        merged[i] = _NEG
        merged[~active] = _NEG
        s[i, :] = merged
        s[:, i] = merged
        s[j, :] = _NEG
        s[:, j] = _NEG
        active[j] = False
        sizes[i] = ni + nj
        cluster_ids[i] = new_id
        nn_sim[j] = _NEG

        if not np.any(active & (np.arange(n) != i)):
            break

        # Exact cache maintenance:
        # (1) slot i gets a fresh neighbour;
        nn_idx[i] = int(np.argmax(s[i]))
        nn_sim[i] = s[i, nn_idx[i]]
        # (2) rows whose cached neighbour was i or j recompute;
        stale = active & ((nn_idx == i) | (nn_idx == j))
        stale[i] = False
        for m in np.flatnonzero(stale):
            nn_idx[m] = int(np.argmax(s[m]))
            nn_sim[m] = s[m, nn_idx[m]]
        # (3) rows where the merged cluster now beats the cache are lifted
        #     (single linkage can increase similarities).
        col = s[:, i]
        lift = active & (col > nn_sim)
        lift[i] = False
        nn_sim[lift] = col[lift]
        nn_idx[lift] = i

    return dendrogram


def cut_dendrogram(dendrogram: Dendrogram, threshold: float) -> list[int]:
    """Labels for the dendrogram's leaves after cutting at similarity
    ``threshold`` (apply only merges with similarity >= threshold)."""
    if not 0.0 <= threshold <= 1.0:
        raise ClusteringError(f"threshold must be in [0,1], got {threshold}")
    return dendrogram.cut(threshold)


def multi_threshold_cut(
    dendrogram: Dendrogram,
    read_ids: Sequence[str],
    thresholds: Sequence[float],
) -> dict[float, ClusterAssignment]:
    """Cut one dendrogram at several thresholds.

    The paper: "Clustering results at different hierarchical taxonomic
    levels are also produced by setting similarity threshold within a
    cluster" — one dendrogram build serves every taxonomic level.  The
    dendrogram must have been built without a ``stop_threshold`` (or with
    one at or below ``min(thresholds)``), otherwise low-threshold cuts
    would be missing merges.

    Returns ``{threshold: assignment}``; cuts are nested (every cluster
    at a lower threshold is a union of clusters at any higher one).
    """
    if not thresholds:
        raise ClusteringError("multi_threshold_cut needs at least one threshold")
    if len(read_ids) != dendrogram.num_leaves:
        raise ClusteringError(
            f"{len(read_ids)} read ids for a {dendrogram.num_leaves}-leaf "
            "dendrogram"
        )
    out: dict[float, ClusterAssignment] = {}
    for theta in thresholds:
        if not 0.0 <= theta <= 1.0:
            raise ClusteringError(f"threshold must be in [0,1], got {theta}")
        labels = dendrogram.cut(theta)
        out[theta] = ClusterAssignment.from_labels(read_ids, labels)
    return out


def agglomerative_cluster(
    similarity: np.ndarray,
    read_ids: Sequence[str],
    threshold: float,
    *,
    linkage: str = "average",
) -> ClusterAssignment:
    """End-to-end Algorithm 2: matrix -> dendrogram -> θ cut -> labels."""
    similarity = np.asarray(similarity)
    if len(read_ids) != similarity.shape[0]:
        raise ClusteringError(
            f"{len(read_ids)} read ids for a {similarity.shape[0]}-row matrix"
        )
    if not 0.0 <= threshold <= 1.0:
        raise ClusteringError(f"threshold must be in [0,1], got {threshold}")
    dendrogram = build_dendrogram(
        similarity, linkage=linkage, stop_threshold=threshold
    )
    labels = dendrogram.cut(threshold)
    return ClusterAssignment.from_labels(read_ids, labels)
