"""Row-partitioned all-pairs similarity as a Map-Reduce job.

Section III-C: "the calculation of all pairwise similarity is performed in
parallel by performing a row-wise partition".  Each map task owns a band
of matrix rows and scores them against *all* sketches (the Pig script's
``GROUP ALL`` broadcast of the sketch set, Algorithm 3 steps 6–7); the
reduce side reassembles the bands in row order.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ClusteringError
from repro.mapreduce.job import MapReduceJob, identity_reducer
from repro.mapreduce.runner import JobResult, SerialRunner
from repro.mapreduce.types import JobConf
from repro.minhash.sketch import MinHashSketch
from repro.minhash.similarity import pairwise_similarity_matrix
from repro.utils.chunking import chunk_indices


class _BandMapper:
    """Picklable mapper holding the broadcast sketch set."""

    def __init__(self, sketches: Sequence[MinHashSketch], estimator: str):
        self.sketches = list(sketches)
        self.estimator = estimator

    def __call__(self, key, value):
        start, stop = value
        band = pairwise_similarity_matrix(
            self.sketches, estimator=self.estimator, row_range=(start, stop)
        )
        yield start, band


def similarity_band_job(
    sketches: Sequence[MinHashSketch], *, estimator: str = "positional"
) -> MapReduceJob:
    """Build the similarity Map-Reduce job over a fixed sketch set."""
    if not sketches:
        raise ClusteringError("cannot build a similarity job over no sketches")
    return MapReduceJob(
        name="similarity",
        mapper=_BandMapper(sketches, estimator),
        reducer=identity_reducer,
    )


def compute_similarity_matrix(
    sketches: Sequence[MinHashSketch],
    *,
    estimator: str = "positional",
    runner=None,
    num_tasks: int = 4,
) -> tuple[np.ndarray, JobResult]:
    """All-pairs similarity via the Map-Reduce band job.

    Parameters
    ----------
    runner:
        Any object with ``run(job, inputs, conf)`` — defaults to a traced
        :class:`~repro.mapreduce.runner.SerialRunner`.
    num_tasks:
        Number of row bands (map tasks).

    Returns
    -------
    ``(matrix, job_result)`` — the assembled ``(N, N)`` matrix and the
    engine result (counters + trace for the cluster simulator).
    """
    n = len(sketches)
    if n == 0:
        raise ClusteringError("cannot compute a similarity matrix over no sketches")
    if num_tasks < 1:
        raise ClusteringError(f"num_tasks must be >= 1, got {num_tasks}")
    runner = runner or SerialRunner()
    bands = [
        (b, (start, stop))
        for b, (start, stop) in enumerate(chunk_indices(n, min(num_tasks, n)))
        if stop > start
    ]
    job = similarity_band_job(sketches, estimator=estimator)
    result = runner.run(
        job,
        [(band_id, rng) for band_id, rng in bands],
        JobConf(num_map_tasks=len(bands), num_reduce_tasks=1, sort_output=True),
    )
    matrix = np.empty((n, n), dtype=np.float64)
    filled = 0
    for start, band in result.output:
        matrix[start : start + band.shape[0]] = band
        filled += band.shape[0]
    if filled != n:
        raise ClusteringError(
            f"similarity job returned {filled} rows for an {n}-sequence input"
        )
    return matrix, result
