"""Disjoint-set forest with union by size and path compression.

Used by the single-linkage fast path and by the MetaCluster baseline's
merge phase.
"""

from __future__ import annotations

from repro.errors import ClusteringError


class UnionFind:
    """Classic disjoint-set structure over ``range(n)``."""

    def __init__(self, n: int):
        if n < 0:
            raise ClusteringError(f"size must be non-negative, got {n}")
        self._parent = list(range(n))
        self._size = [1] * n
        self._count = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def num_sets(self) -> int:
        """Number of disjoint sets currently represented."""
        return self._count

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with path compression)."""
        self._check(x)
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; False if already joined."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._count -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` share a set."""
        return self.find(a) == self.find(b)

    def set_size(self, x: int) -> int:
        """Size of the set containing ``x``."""
        return self._size[self.find(x)]

    def labels(self) -> list[int]:
        """Dense 0-based set labels in first-seen order."""
        mapping: dict[int, int] = {}
        out = []
        for x in range(len(self._parent)):
            root = self.find(x)
            if root not in mapping:
                mapping[root] = len(mapping)
            out.append(mapping[root])
        return out

    def _check(self, x: int) -> None:
        if not 0 <= x < len(self._parent):
            raise ClusteringError(
                f"element {x} out of range for UnionFind of size {len(self._parent)}"
            )
