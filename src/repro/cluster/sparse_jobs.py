"""LSH candidate generation and verification as first-class MapReduce jobs.

:mod:`repro.cluster.sparse` computes collision-candidate pairs in-process
with vectorised numpy; this module expresses the *same* computation as a
two-job chain on the real engine — the LSH-on-MapReduce pattern of
Sunarso et al. (*Scalable Protein Sequence Similarity Search using LSH
and MapReduce*) applied to the paper's min-hash sketches::

    job 1  "lsh-candidates"
        map     sketch i            -> ((band_index, band_hash), i)
        reduce  collision group     -> ((i, j), 1) deduplicated pairs
    job 2  "verify-candidates"
        map     identity            (combiner sums per-pair multiplicity)
        reduce  ((i, j), counts)    -> ((i, j), (collisions, match))
                                        verified against side-data sketches
    driver  above-threshold edges   -> union-find / greedy sweep
                                        (repro.cluster.sparse helpers)

With ``band_size=1`` (the default) the banding key is ``(hash index,
min-hash value)`` — exactly the grouping of
:func:`repro.cluster.sparse.candidate_pairs` — so the chain's candidate
pairs, collision counts and final assignments are **byte-identical** to
the in-process path for the exact shapes (single linkage, positional
greedy, θ > 0, ``max_group=None``).  Wider bands hash ``band_size``
consecutive components into one key with the engine's process-stable
hash; banding then under-generates relative to the collision join (only
full-band matches collide), trading recall for fewer candidates, and the
verify job is what keeps precision exact.

The verify round always scores pairs against the *side-data sketches*,
not the shuffled collision multiplicities.  The two are equal when no
group is capped; with ``max_group`` set, capping truncates collision
counts (the in-process paths threshold those truncated counts) while the
verify job restores the true positional match over the surviving
candidates — the engine chain is at least as accurate as the in-process
capped join, at the cost of exact equivalence under capping.

Following Ene et al. (*Fast Clustering using MapReduce*), the chain is
measured in **rounds** and **shuffle bytes**, not just wall-clock:
:class:`SparseEngineRun` carries both, and an active
:mod:`repro.obs` tracer records ``phase:lsh-candidates`` /
``phase:verify`` / ``phase:cluster`` spans plus
``sparse_jobs.*`` gauges.
"""

from __future__ import annotations

import time
import zlib
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ClusteringError, SparseCompatibilityError
from repro.cluster.assignments import ClusterAssignment
from repro.cluster.sparse import (
    greedy_from_edges,
    make_edge_stream,
    single_linkage_from_edges,
)
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import MapReduceJob, identity_mapper
from repro.mapreduce.types import JobConf, JobTrace, stable_hash
from repro.minhash.sketch import MinHashSketch, sketch_matrix
from repro.minhash.wire import effective_threshold, pack_values, unpack_values
from repro.obs.trace import current_tracer

ENGINE_METHODS = ("hierarchical", "greedy")


# --------------------------------------------------------------- side data


@dataclass(frozen=True)
class SketchSideData:
    """Distributed-cache analogue: the sketch matrix every verify task reads.

    The verify reducer needs random access to all sketches, which Hadoop
    ships via the DistributedCache rather than the shuffle.  The payload
    is either the full-precision little-endian int64 matrix
    (``bits=None``, exact verification) or a b-bit packed plane from
    :func:`repro.minhash.wire.pack_values` (verification happens in
    low-bit space against :func:`effective_threshold`).  The CRC mirrors
    the wire frames' IFile-checksum model.
    """

    payload: bytes
    crc: int
    num_records: int
    num_hashes: int
    bits: int | None

    @classmethod
    def pack(cls, matrix: np.ndarray, bits: int | None = None) -> "SketchSideData":
        matrix = np.ascontiguousarray(np.asarray(matrix, dtype=np.int64))
        if matrix.ndim != 2:
            raise ClusteringError(
                f"expected a 2-D sketch matrix, got shape {matrix.shape}"
            )
        if bits is None:
            payload = matrix.astype("<i8").tobytes()
        else:
            payload = pack_values(matrix, bits)
        return cls(
            payload=payload,
            crc=zlib.crc32(payload),
            num_records=matrix.shape[0],
            num_hashes=matrix.shape[1],
            bits=bits,
        )

    def matrix(self) -> np.ndarray:
        """Decode (and CRC-verify) the payload back to an int64 matrix."""
        if zlib.crc32(self.payload) != self.crc:
            raise ClusteringError("sketch side data failed its CRC check")
        if self.bits is None:
            return (
                np.frombuffer(self.payload, dtype="<i8")
                .reshape(self.num_records, self.num_hashes)
                .astype(np.int64)
            )
        return unpack_values(
            self.payload, self.num_records, self.num_hashes, self.bits
        )

    @property
    def nbytes(self) -> int:
        return len(self.payload)


# ------------------------------------------------------------ job 1: bands


class LshBandMapper:
    """Emit ``((band_index, band_hash), sketch_index)`` for every band.

    ``band_size=1`` reproduces the collision join of
    :mod:`repro.cluster.sparse` exactly: the band hash *is* the min-hash
    value and the band index is the hash index.  Wider bands hash the
    component tuple with :func:`~repro.mapreduce.types.stable_hash` so
    keys stay process-stable across the multiprocess runner's workers.
    """

    def __init__(self, band_size: int = 1):
        self.band_size = band_size

    def __call__(self, key, values):
        r = self.band_size
        if r == 1:
            for h, value in enumerate(values):
                yield (h, int(value)), key
            return
        for b in range(len(values) // r):
            band = tuple(int(v) for v in values[b * r : (b + 1) * r])
            yield (b, stable_hash(band)), key


class CandidatePairReducer:
    """One collision group -> its deduplicated intra-group pairs.

    Emits ``((i, j), 1)`` with ``i < j``; the verify job sums the
    multiplicities into per-pair collision counts.  Groups larger than
    ``max_group`` are dropped — the degenerate-value cap real Hadoop LSH
    jobs apply, mirrored from :func:`repro.cluster.sparse.candidate_pairs`.
    """

    def __init__(self, max_group: int | None = None):
        self.max_group = max_group

    def __call__(self, key, members):
        members = sorted(set(members))
        if len(members) < 2:
            return
        if self.max_group is not None and len(members) > self.max_group:
            return
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                yield (members[a], members[b]), 1


# ----------------------------------------------------------- job 2: verify


def sum_combiner(key, values):
    """Sum per-pair multiplicities map-side to shrink the shuffle."""
    yield key, sum(values)


class VerifyReducer:
    """Aggregate collision counts and verify every candidate pair.

    Sums the pair's multiplicities into its collision count, drops pairs
    below ``min_shared``, then scores the pair against the side-data
    sketches: ``match`` is the positional match fraction — computed over
    the low b bits when the side data is b-bit packed, in which case the
    driver thresholds it at :func:`effective_threshold` rather than θ.
    Emits ``((i, j), (collisions, match))`` for *all* surviving
    candidates so the candidate set and the edge set both come out of one
    reduce pass.
    """

    def __init__(self, side: SketchSideData, min_shared: int = 1):
        self.side = side
        self.min_shared = min_shared
        self._matrix: np.ndarray | None = None

    def __getstate__(self):
        # The decoded matrix is a per-process cache; ship only the frame.
        state = dict(self.__dict__)
        state["_matrix"] = None
        return state

    def __call__(self, pair, counts):
        if self._matrix is None:
            self._matrix = self.side.matrix()
        collisions = int(sum(counts))
        if collisions < self.min_shared:
            return
        i, j = pair
        matches = int(np.count_nonzero(self._matrix[i] == self._matrix[j]))
        yield pair, (collisions, matches / self.side.num_hashes)


# ----------------------------------------------------------------- driver


@dataclass
class SparseEngineRun:
    """Everything produced by one run of the two-job LSH chain."""

    pairs: dict[tuple[int, int], int]
    """Candidate pairs ``{(i, j): collisions}`` — equals
    :func:`repro.cluster.sparse.candidate_pairs` at ``band_size=1``."""

    matches: dict[tuple[int, int], float]
    """Verified positional match fraction per candidate pair."""

    edges: list[tuple[int, int]]
    """Candidate pairs whose verified match cleared the threshold."""

    assignment: ClusterAssignment | None
    """Final clustering (``None`` when run without a threshold)."""

    traces: list[JobTrace]
    counters: Counters
    timings: dict[str, float]
    threshold: float | None
    band_size: int = 1
    wire_bits: int | None = None
    side_data_bytes: int = 0
    candidate_pair_count: int = 0
    """Verified candidate pairs seen (equals ``len(pairs)`` when collected;
    the only pair accounting available in streamed runs)."""
    edge_count: int = 0
    """Above-threshold edges (equals ``len(edges)`` when collected)."""
    streamed: bool = False
    """True when the verify output was streamed straight into the
    clusterer — ``pairs``/``matches``/``edges`` are then left empty."""

    @property
    def rounds(self) -> int:
        """MapReduce rounds consumed (Ene et al.'s cost measure)."""
        return len(self.traces)

    @property
    def shuffle_bytes(self) -> int:
        """Total shuffle volume across the chain's jobs."""
        return sum(t.shuffle_bytes for t in self.traces)

    @property
    def wall_seconds(self) -> float:
        return sum(self.timings.values())


def run_sparse_jobs(
    sketches: Sequence[MinHashSketch],
    threshold: float | None = None,
    *,
    method: str = "hierarchical",
    runner=None,
    band_size: int = 1,
    min_shared: int = 1,
    max_group: int | None = None,
    wire_bits: int | None = None,
    num_map_tasks: int = 4,
    num_reduce_tasks: int = 4,
    stream: bool = False,
    spill_threshold_bytes: int | None = None,
) -> SparseEngineRun:
    """Run the LSH candidate chain, optionally through to a clustering.

    Parameters
    ----------
    threshold:
        Similarity threshold θ in ``(0, 1]``.  ``None`` stops after the
        verify job (candidate generation only, no assignment).
    method:
        ``"hierarchical"`` (exact single linkage via union-find over the
        edge stream) or ``"greedy"`` (Algorithm 1's sweep, positional
        estimator semantics).
    band_size:
        Sketch components per LSH band; must divide ``num_hashes``.
        ``1`` is exact w.r.t. the in-process collision join.
    wire_bits:
        Verify against b-bit packed side-data sketches instead of full
        precision; edges are thresholded at
        ``effective_threshold(threshold, wire_bits)``.
    stream:
        Feed the verify job's output records straight into the edge-stream
        clusterer (``output_sink``) instead of collecting them in the
        driver: the full candidate-pair list is never materialized
        (``pairs``/``matches``/``edges`` stay empty; the counts survive as
        ``candidate_pair_count``/``edge_count``).  Assignments are
        byte-identical to the collected path because both clusterers are
        edge-order/duplication independent.  Requires a ``threshold``.
    spill_threshold_bytes:
        Forwarded to both jobs' :class:`JobConf` — engages the external
        spill-to-disk shuffle so the chain's group-bys also stop being
        memory-bound.  ``None`` keeps the in-memory shuffle.
    """
    from repro.mapreduce.runner import SerialRunner

    if not sketches:
        raise ClusteringError("no sketches to index")
    if stream and threshold is None:
        raise ClusteringError(
            "stream=True requires a threshold (edges stream into a clusterer)"
        )
    if min_shared < 1:
        raise ClusteringError(f"min_shared must be >= 1, got {min_shared}")
    if method not in ENGINE_METHODS:
        raise ClusteringError(
            f"unknown method {method!r}; expected one of {ENGINE_METHODS}"
        )
    matrix = sketch_matrix(sketches)  # validates family compatibility
    n, num_hashes = matrix.shape
    if band_size < 1 or num_hashes % band_size != 0:
        raise SparseCompatibilityError(
            f"band_size must be >= 1 and divide num_hashes "
            f"({num_hashes}), got {band_size}"
        )
    if threshold is not None and not 0.0 < threshold <= 1.0:
        raise ClusteringError(
            f"threshold must be in (0, 1] for the sparse path, got {threshold}"
        )
    theta = threshold
    if threshold is not None and wire_bits is not None:
        theta = effective_threshold(threshold, wire_bits)

    runner = runner or SerialRunner()
    tracer = current_tracer()
    counters = Counters()
    traces: list[JobTrace] = []
    timings: dict[str, float] = {}

    # ---- round 1: banding map + pair-emitting reduce ---------------------
    t0 = time.perf_counter()
    with tracer.span(
        "phase:lsh-candidates",
        kind="phase",
        band_size=band_size,
        num_records=n,
    ):
        band_job = MapReduceJob(
            name="lsh-candidates",
            mapper=LshBandMapper(band_size),
            reducer=CandidatePairReducer(max_group),
        )
        inputs = [(i, s.values.tolist()) for i, s in enumerate(sketches)]
        band_result = runner.run(
            band_job,
            inputs,
            JobConf(
                num_map_tasks=num_map_tasks,
                num_reduce_tasks=num_reduce_tasks,
                spill_threshold_bytes=spill_threshold_bytes,
            ),
        )
        counters.merge(band_result.counters)
        if band_result.trace is not None:
            traces.append(band_result.trace)
    timings["lsh_candidates"] = time.perf_counter() - t0

    # ---- round 2: per-pair count aggregation + sketch verification -------
    t0 = time.perf_counter()
    with tracer.span(
        "phase:verify",
        kind="phase",
        candidate_records=len(band_result.output),
        wire_bits=wire_bits,
    ):
        side = SketchSideData.pack(matrix, wire_bits)
        verify_job = MapReduceJob(
            name="verify-candidates",
            mapper=identity_mapper,
            combiner=sum_combiner,
            reducer=VerifyReducer(side, min_shared),
        )
        verify_conf = JobConf(
            num_map_tasks=num_map_tasks,
            num_reduce_tasks=num_reduce_tasks,
            spill_threshold_bytes=spill_threshold_bytes,
        )
        clusterer = None
        pair_count = 0
        if stream:
            # Edges flow from the reducers straight into the incremental
            # clusterer: the driver holds O(N) union-find / adjacency
            # state, never the O(pairs) candidate list.
            clusterer = make_edge_stream([s.read_id for s in sketches], method)

            def sink(record):
                nonlocal pair_count
                (i, j), (_collisions, match) = record
                pair_count += 1
                if float(match) >= theta:
                    clusterer.add(int(i), int(j))

            verify_result = runner.run(
                verify_job, band_result.output, verify_conf, output_sink=sink
            )
        else:
            verify_result = runner.run(
                verify_job, band_result.output, verify_conf
            )
        counters.merge(verify_result.counters)
        if verify_result.trace is not None:
            traces.append(verify_result.trace)
    timings["verify"] = time.perf_counter() - t0

    pairs: dict[tuple[int, int], int] = {}
    matches: dict[tuple[int, int], float] = {}
    edges: list[tuple[int, int]] = []
    if not stream:
        for (i, j), (collisions, match) in verify_result.output:
            pair = (int(i), int(j))
            pairs[pair] = int(collisions)
            matches[pair] = float(match)
        if theta is not None:
            edges = [pair for pair, match in matches.items() if match >= theta]
        pair_count = len(pairs)
    edge_count = clusterer.edges_seen if clusterer is not None else len(edges)

    # ---- driver: union-find / greedy sweep over the edge stream ----------
    assignment: ClusterAssignment | None = None
    if threshold is not None:
        t0 = time.perf_counter()
        with tracer.span("phase:cluster", kind="phase", num_edges=edge_count):
            if clusterer is not None:
                assignment = clusterer.finish()
            else:
                read_ids = [s.read_id for s in sketches]
                if method == "hierarchical":
                    assignment = single_linkage_from_edges(read_ids, edges)
                else:
                    assignment = greedy_from_edges(read_ids, edges)
        timings["cluster"] = time.perf_counter() - t0
        counters.increment("sparse_jobs", "clusters", assignment.num_clusters)

    shuffle_bytes = sum(t.shuffle_bytes for t in traces)
    counters.increment("sparse_jobs", "candidate_pairs", pair_count)
    counters.increment("sparse_jobs", "edges", edge_count)
    counters.increment("sparse_jobs", "rounds", len(traces))
    tracer.metrics.gauge("sparse_jobs.candidate_pairs").set(pair_count)
    tracer.metrics.gauge("sparse_jobs.edges").set(edge_count)
    tracer.metrics.gauge("sparse_jobs.rounds").set(len(traces))
    tracer.metrics.gauge("sparse_jobs.shuffle_bytes").set(shuffle_bytes)
    tracer.metrics.gauge("sparse_jobs.side_data_bytes").set(side.nbytes)

    return SparseEngineRun(
        pairs=pairs,
        matches=matches,
        edges=edges,
        assignment=assignment,
        traces=traces,
        counters=counters,
        timings=timings,
        threshold=threshold,
        band_size=band_size,
        wire_bits=wire_bits,
        side_data_bytes=side.nbytes,
        candidate_pair_count=pair_count,
        edge_count=edge_count,
        streamed=stream,
    )


def engine_candidate_pairs(
    sketches: Sequence[MinHashSketch],
    *,
    runner=None,
    band_size: int = 1,
    min_shared: int = 1,
    max_group: int | None = None,
    num_map_tasks: int = 4,
    num_reduce_tasks: int = 4,
    spill_threshold_bytes: int | None = None,
) -> tuple[dict[tuple[int, int], int], SparseEngineRun]:
    """Candidate pairs via the job chain; drop-in for
    :func:`repro.cluster.sparse.candidate_pairs` (returns the run too)."""
    run = run_sparse_jobs(
        sketches,
        None,
        runner=runner,
        band_size=band_size,
        min_shared=min_shared,
        max_group=max_group,
        num_map_tasks=num_map_tasks,
        num_reduce_tasks=num_reduce_tasks,
        spill_threshold_bytes=spill_threshold_bytes,
    )
    return run.pairs, run


def engine_sparse_cluster(
    sketches: Sequence[MinHashSketch],
    threshold: float,
    *,
    method: str = "hierarchical",
    runner=None,
    band_size: int = 1,
    max_group: int | None = None,
    wire_bits: int | None = None,
    num_map_tasks: int = 4,
    num_reduce_tasks: int = 4,
    stream: bool = False,
    spill_threshold_bytes: int | None = None,
) -> SparseEngineRun:
    """Cluster through the job chain.

    At ``band_size=1`` / ``wire_bits=None`` the assignment is
    byte-identical to :func:`repro.cluster.sparse.sparse_single_linkage`
    (``method="hierarchical"``) or
    :func:`repro.cluster.sparse.sparse_greedy_cluster`
    (``method="greedy"``) at the same ``max_group`` — streamed or not.
    """
    if threshold is None:
        raise ClusteringError("engine_sparse_cluster requires a threshold")
    return run_sparse_jobs(
        sketches,
        threshold,
        method=method,
        runner=runner,
        band_size=band_size,
        max_group=max_group,
        wire_bits=wire_bits,
        num_map_tasks=num_map_tasks,
        num_reduce_tasks=num_reduce_tasks,
        stream=stream,
        spill_threshold_bytes=spill_threshold_bytes,
    )
