"""Sequence-set summary statistics.

The numbers every assembly/binning paper tabulates about its inputs:
read-length distribution, N50, GC distribution.  Used by the dataset
tests (to verify generators hit the published statistics) and by the
examples when describing their synthetic samples.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import SequenceError
from repro.seq.records import SequenceRecord


@dataclass(frozen=True)
class SequenceSetStats:
    """Summary of one read set."""

    count: int
    total_bases: int
    min_length: int
    max_length: int
    mean_length: float
    median_length: float
    n50: int
    gc_mean: float
    gc_std: float

    def describe(self) -> str:
        """One-paragraph human rendering."""
        return (
            f"{self.count} sequences, {self.total_bases:,} bp total; "
            f"length {self.min_length}-{self.max_length} "
            f"(mean {self.mean_length:.1f}, median {self.median_length:.0f}, "
            f"N50 {self.n50}); GC {100 * self.gc_mean:.1f}% "
            f"± {100 * self.gc_std:.1f}%"
        )


def n50(lengths: Sequence[int]) -> int:
    """N50: the length L such that sequences of length >= L cover at
    least half the total bases."""
    if not lengths:
        raise SequenceError("N50 of an empty set is undefined")
    ordered = sorted(lengths, reverse=True)
    total = sum(ordered)
    running = 0
    for length in ordered:
        running += length
        if 2 * running >= total:
            return length
    return ordered[-1]  # pragma: no cover - loop always returns


def sequence_set_stats(records: Sequence[SequenceRecord]) -> SequenceSetStats:
    """Compute :class:`SequenceSetStats` for a read set."""
    if not records:
        raise SequenceError("cannot summarise an empty read set")
    lengths = np.array([len(r) for r in records], dtype=np.int64)
    gcs = np.array([r.gc for r in records], dtype=np.float64)
    return SequenceSetStats(
        count=len(records),
        total_bases=int(lengths.sum()),
        min_length=int(lengths.min()),
        max_length=int(lengths.max()),
        mean_length=float(lengths.mean()),
        median_length=float(np.median(lengths)),
        n50=n50(lengths.tolist()),
        gc_mean=float(gcs.mean()),
        gc_std=float(gcs.std()),
    )


def length_histogram(
    records: Sequence[SequenceRecord], *, num_bins: int = 10
) -> list[tuple[int, int, int]]:
    """``(bin start, bin end, count)`` rows over read lengths."""
    if not records:
        raise SequenceError("cannot histogram an empty read set")
    if num_bins < 1:
        raise SequenceError(f"num_bins must be >= 1, got {num_bins}")
    lengths = np.array([len(r) for r in records])
    counts, edges = np.histogram(lengths, bins=num_bins)
    return [
        (int(edges[i]), int(edges[i + 1]), int(counts[i]))
        for i in range(len(counts))
    ]
