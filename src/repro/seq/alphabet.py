"""DNA alphabet handling and 2-bit integer encoding.

The paper's ``StringGenerator`` UDF "maps the DNA alphabets into integer
value"; we use the standard 2-bit code A=0, C=1, G=2, T=3.  Encoding is
vectorised through a 256-entry lookup table so whole sequences convert in a
single NumPy pass.  Ambiguity codes (N, R, Y, ...) map to -1 and are either
rejected or skipped depending on the caller.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SequenceError

#: Canonical DNA bases in code order.
BASES = "ACGT"

#: Base character -> 2-bit code.
BASE_TO_CODE = {"A": 0, "C": 1, "G": 2, "T": 3}

#: 2-bit code -> base character.
CODE_TO_BASE = {v: k for k, v in BASE_TO_CODE.items()}

#: Watson-Crick complement map (upper-case only).
_COMPLEMENT = str.maketrans("ACGT", "TGCA")

# 256-entry lookup: byte value of a base character -> code, -1 otherwise.
_LUT = np.full(256, -1, dtype=np.int8)
for _base, _code in BASE_TO_CODE.items():
    _LUT[ord(_base)] = _code
    _LUT[ord(_base.lower())] = _code

_DECODE_LUT = np.frombuffer(BASES.encode(), dtype=np.uint8)


def is_valid_dna(sequence: str) -> bool:
    """True when ``sequence`` is non-empty and contains only A/C/G/T
    (case-insensitive)."""
    if not sequence:
        return False
    raw = np.frombuffer(sequence.encode("ascii", "replace"), dtype=np.uint8)
    return bool(np.all(_LUT[raw] >= 0))


def sanitize(sequence: str, *, replacement: str = "") -> str:
    """Upper-case ``sequence`` and strip or replace non-ACGT characters.

    With the default empty ``replacement`` ambiguous bases are removed;
    passing e.g. ``"A"`` substitutes them instead (some tools do this for
    N runs).
    """
    if replacement and replacement not in BASE_TO_CODE:
        raise SequenceError(f"replacement must be one of {BASES}, got {replacement!r}")
    out = []
    for ch in sequence.upper():
        if ch in BASE_TO_CODE:
            out.append(ch)
        elif replacement:
            out.append(replacement)
    return "".join(out)


def encode_dna(sequence: str, *, strict: bool = True) -> np.ndarray:
    """Encode a DNA string to an ``int8`` array of 2-bit codes.

    With ``strict=True`` (default) any character outside A/C/G/T raises
    :class:`~repro.errors.SequenceError`.  With ``strict=False`` invalid
    positions are returned as -1 for the caller to handle (the k-mer
    extractor skips windows containing them).
    """
    if not sequence:
        return np.empty(0, dtype=np.int8)
    try:
        raw = np.frombuffer(sequence.encode("ascii"), dtype=np.uint8)
    except UnicodeEncodeError as exc:
        raise SequenceError(f"non-ASCII character in sequence: {exc}") from None
    codes = _LUT[raw]
    if strict and np.any(codes < 0):
        bad_pos = int(np.argmax(codes < 0))
        raise SequenceError(
            f"invalid DNA character {sequence[bad_pos]!r} at position {bad_pos}"
        )
    return codes


def decode_dna(codes: np.ndarray) -> str:
    """Inverse of :func:`encode_dna` for arrays of 0..3 codes."""
    codes = np.asarray(codes)
    if codes.size == 0:
        return ""
    if np.any((codes < 0) | (codes > 3)):
        raise SequenceError("codes outside 0..3 cannot be decoded")
    return _DECODE_LUT[codes.astype(np.intp)].tobytes().decode("ascii")


def reverse_complement(sequence: str) -> str:
    """Reverse complement of an A/C/G/T string."""
    if not is_valid_dna(sequence) and sequence:
        raise SequenceError("reverse_complement requires a pure ACGT sequence")
    return sequence.upper().translate(_COMPLEMENT)[::-1]


def gc_content(sequence: str) -> float:
    """Fraction of G/C bases, as reported in Table II's ``[]`` brackets."""
    if not sequence:
        raise SequenceError("gc_content of an empty sequence is undefined")
    seq = sequence.upper()
    gc = sum(1 for ch in seq if ch in "GC")
    acgt = sum(1 for ch in seq if ch in BASE_TO_CODE)
    if acgt == 0:
        raise SequenceError("sequence contains no unambiguous bases")
    return gc / acgt
