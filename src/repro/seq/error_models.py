"""Sequencing-error models for the dataset simulators.

Two models cover the paper's benchmarks:

* :class:`SubstitutionErrorModel` — uniform per-base substitutions, used for
  the whole-metagenome shotgun reads (Table II/III) and for the Table IV
  "reads up to 3 %/5 % error" sets.
* :class:`PyrosequencingErrorModel` — 454/Roche-style errors dominated by
  homopolymer-length miscalls (insertions/deletions inside runs of a single
  base) plus a low substitution floor, mimicking the GS20/454 platforms
  behind the Huse and Sogin datasets (Sections IV-A.1 and IV-A.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.seq.alphabet import BASES
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class SubstitutionErrorModel:
    """Independent per-base substitution errors at ``rate``."""

    rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise DatasetError(f"substitution rate must be in [0,1], got {self.rate}")

    def apply(self, sequence: str, rng: np.random.Generator) -> str:
        if self.rate == 0.0 or not sequence:
            return sequence
        chars = list(sequence)
        hits = np.flatnonzero(rng.random(len(chars)) < self.rate)
        for i in hits:
            current = chars[i]
            choices = [b for b in BASES if b != current]
            chars[i] = choices[int(rng.integers(len(choices)))]
        return "".join(chars)


@dataclass(frozen=True)
class PyrosequencingErrorModel:
    """454-style error model.

    Parameters
    ----------
    indel_rate:
        Per-homopolymer-run probability of a length miscall (one base
        inserted or deleted at the run).
    substitution_rate:
        Residual per-base substitution probability.
    """

    indel_rate: float = 0.01
    substitution_rate: float = 0.002

    def __post_init__(self) -> None:
        for name, value in (
            ("indel_rate", self.indel_rate),
            ("substitution_rate", self.substitution_rate),
        ):
            if not 0.0 <= value <= 1.0:
                raise DatasetError(f"{name} must be in [0,1], got {value}")

    def apply(self, sequence: str, rng: np.random.Generator) -> str:
        if not sequence:
            return sequence
        # First the substitution floor.
        seq = SubstitutionErrorModel(self.substitution_rate).apply(sequence, rng)
        if self.indel_rate == 0.0:
            return seq
        # Then walk homopolymer runs and miscall lengths.
        out: list[str] = []
        i = 0
        n = len(seq)
        while i < n:
            j = i
            while j < n and seq[j] == seq[i]:
                j += 1
            run = seq[i:j]
            if rng.random() < self.indel_rate:
                if rng.random() < 0.5 and len(run) > 1:
                    run = run[:-1]  # undercall
                else:
                    run = run + run[0]  # overcall
            out.append(run)
            i = j
        result = "".join(out)
        return result if result else seq[:1]


def apply_errors(
    sequence: str,
    model: SubstitutionErrorModel | PyrosequencingErrorModel | None,
    rng: np.random.Generator | int | None,
) -> str:
    """Apply ``model`` to ``sequence`` (identity when ``model`` is None)."""
    if model is None:
        return sequence
    return model.apply(sequence, ensure_rng(rng))
