"""Sequence substrate: DNA alphabet, records, FASTA I/O, k-mer extraction,
and sequencing-error models.

This package provides everything the paper's pipeline needs upstream of
min-wise hashing: parsing FASTA files from (simulated) HDFS, encoding DNA
into integers (the paper's ``StringGenerator`` UDF) and extracting k-mer
feature sets (the ``TranslateToKmer`` UDF).
"""

from repro.seq.alphabet import (
    BASES,
    BASE_TO_CODE,
    CODE_TO_BASE,
    encode_dna,
    decode_dna,
    reverse_complement,
    gc_content,
    is_valid_dna,
    sanitize,
)
from repro.seq.records import SequenceRecord
from repro.seq.fasta import (
    read_fasta,
    read_fasta_text,
    write_fasta,
    format_fasta,
)
from repro.seq.kmers import (
    kmer_codes,
    kmer_set,
    kmer_strings,
    kmer_counts,
    max_kmer_code,
)
from repro.seq.error_models import (
    SubstitutionErrorModel,
    PyrosequencingErrorModel,
    apply_errors,
)
from repro.seq.fastq import (
    FastqRecord,
    read_fastq,
    read_fastq_text,
    fastq_to_fasta,
)
from repro.seq.stats import (
    SequenceSetStats,
    sequence_set_stats,
    length_histogram,
    n50,
)

__all__ = [
    "BASES",
    "BASE_TO_CODE",
    "CODE_TO_BASE",
    "encode_dna",
    "decode_dna",
    "reverse_complement",
    "gc_content",
    "is_valid_dna",
    "sanitize",
    "SequenceRecord",
    "read_fasta",
    "read_fasta_text",
    "write_fasta",
    "format_fasta",
    "kmer_codes",
    "kmer_set",
    "kmer_strings",
    "kmer_counts",
    "max_kmer_code",
    "SubstitutionErrorModel",
    "PyrosequencingErrorModel",
    "apply_errors",
    "FastqRecord",
    "read_fastq",
    "read_fastq_text",
    "fastq_to_fasta",
    "SequenceSetStats",
    "sequence_set_stats",
    "length_histogram",
    "n50",
]
