"""FASTA reading and writing.

This is the ``FastaStorage`` UDF substrate from Algorithm 3: sequences
arrive as FASTA text (from disk or from the simulated HDFS) and leave the
loader as :class:`~repro.seq.records.SequenceRecord` tuples.

Supports multi-line sequences, blank lines, comments (``;`` lines, an old
FASTA convention), and CRLF input.  Headers of the form ``>id rest`` split
into ``read_id = id`` and ``header`` keeping the full line.
"""

from __future__ import annotations

import io
import os
from collections.abc import Iterable, Iterator

from repro.errors import FastaParseError
from repro.seq.records import SequenceRecord


def read_fasta_text(text: str) -> list[SequenceRecord]:
    """Parse FASTA from an in-memory string."""
    return list(iter_fasta(io.StringIO(text)))


def read_fasta(path: str | os.PathLike) -> list[SequenceRecord]:
    """Parse a FASTA file from the local filesystem."""
    with open(path, "r", encoding="ascii") as fh:
        return list(iter_fasta(fh))


def iter_fasta(lines: Iterable[str]) -> Iterator[SequenceRecord]:
    """Stream records from an iterable of lines.

    Raises :class:`~repro.errors.FastaParseError` on sequence data before
    the first header, empty records, or duplicate-empty headers.
    """
    header: str | None = None
    header_line = 0
    chunks: list[str] = []
    lineno = 0

    def flush() -> SequenceRecord:
        sequence = "".join(chunks)
        if not sequence:
            raise FastaParseError(f"record {header!r} has no sequence", header_line)
        read_id = header.split()[0] if header.split() else ""
        if not read_id:
            raise FastaParseError("empty FASTA header", header_line)
        return SequenceRecord(read_id=read_id, sequence=sequence, header=header)

    for lineno, raw in enumerate(lines, start=1):
        line = raw.rstrip("\r\n")
        if not line.strip():
            continue
        if line.startswith(";"):
            continue
        if line.startswith(">"):
            if header is not None:
                yield flush()
            header = line[1:].strip()
            header_line = lineno
            chunks = []
        else:
            if header is None:
                raise FastaParseError("sequence data before first '>' header", lineno)
            chunks.append(line.strip())
    if header is not None:
        yield flush()


def format_fasta(records: Iterable[SequenceRecord], *, width: int = 70) -> str:
    """Render records as FASTA text with lines wrapped at ``width``."""
    if width <= 0:
        raise FastaParseError(f"line width must be positive, got {width}")
    parts: list[str] = []
    for rec in records:
        parts.append(f">{rec.header or rec.read_id}")
        seq = rec.sequence
        for start in range(0, len(seq), width):
            parts.append(seq[start : start + width])
    return "\n".join(parts) + ("\n" if parts else "")


def write_fasta(
    records: Iterable[SequenceRecord], path: str | os.PathLike, *, width: int = 70
) -> None:
    """Write records to a FASTA file on the local filesystem."""
    with open(path, "w", encoding="ascii") as fh:
        fh.write(format_fasta(records, width=width))
