"""FASTQ parsing and quality-aware preprocessing.

Modern sequencers emit FASTQ (sequence + per-base Phred qualities); the
paper's pipeline consumes FASTA, so real deployments convert after
quality control.  This module provides the conversion path: a strict
four-line FASTQ parser, Phred decoding (Sanger +33 encoding), and the
standard quality-trimming operations (leading/trailing low-quality bases,
sliding-window trim, mean-quality filter).
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.errors import FastaParseError
from repro.seq.records import SequenceRecord

#: Sanger Phred offset.
PHRED_OFFSET = 33


@dataclass(frozen=True)
class FastqRecord:
    """One FASTQ entry: record plus Phred quality scores."""

    record: SequenceRecord
    qualities: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.qualities) != len(self.record.sequence):
            raise FastaParseError(
                f"{self.record.read_id!r}: {len(self.qualities)} quality "
                f"scores for a {len(self.record.sequence)}-base sequence"
            )

    @property
    def mean_quality(self) -> float:
        """Mean Phred score."""
        return float(np.mean(self.qualities))

    def trimmed(
        self,
        *,
        min_quality: int = 20,
        window: int = 4,
    ) -> SequenceRecord | None:
        """Quality-trim and return the surviving record (None if empty).

        Leading/trailing bases below ``min_quality`` are cut, then a
        sliding window scans from the 5' end and truncates at the first
        window whose mean drops below ``min_quality`` (Trimmomatic-style).
        """
        q = np.asarray(self.qualities)
        good = q >= min_quality
        if not good.any():
            return None
        start = int(np.argmax(good))
        stop = len(q) - int(np.argmax(good[::-1]))
        q = q[start:stop]
        seq = self.record.sequence[start:stop]
        if window > 0 and len(q) >= window:
            means = np.convolve(q, np.ones(window) / window, mode="valid")
            bad = np.flatnonzero(means < min_quality)
            if bad.size:
                cut = int(bad[0])
                seq = seq[:cut]
        if not seq:
            return None
        return SequenceRecord(
            read_id=self.record.read_id,
            sequence=seq,
            header=self.record.header,
            label=self.record.label,
        )


def decode_qualities(text: str) -> tuple[int, ...]:
    """Decode a Sanger-encoded quality string to Phred scores."""
    scores = tuple(ord(c) - PHRED_OFFSET for c in text)
    if any(s < 0 or s > 93 for s in scores):
        raise FastaParseError("quality string contains non-Sanger characters")
    return scores


def encode_qualities(scores: Iterable[int]) -> str:
    """Inverse of :func:`decode_qualities`."""
    out = []
    for s in scores:
        if not 0 <= s <= 93:
            raise FastaParseError(f"Phred score {s} outside 0..93")
        out.append(chr(s + PHRED_OFFSET))
    return "".join(out)


def iter_fastq(lines: Iterable[str]) -> Iterator[FastqRecord]:
    """Parse four-line FASTQ entries from an iterable of lines."""
    block: list[str] = []
    lineno = 0
    for lineno, raw in enumerate(lines, start=1):
        line = raw.rstrip("\r\n")
        if not line and not block:
            continue
        block.append(line)
        if len(block) < 4:
            continue
        header, seq, plus, quals = block
        block = []
        if not header.startswith("@"):
            raise FastaParseError(
                f"expected '@' header, got {header[:20]!r}", lineno - 3
            )
        if not plus.startswith("+"):
            raise FastaParseError(
                f"expected '+' separator, got {plus[:20]!r}", lineno - 1
            )
        read_id = header[1:].split()[0] if header[1:].split() else ""
        if not read_id:
            raise FastaParseError("empty FASTQ header", lineno - 3)
        yield FastqRecord(
            record=SequenceRecord(read_id=read_id, sequence=seq, header=header[1:]),
            qualities=decode_qualities(quals),
        )
    if block:
        raise FastaParseError(
            f"truncated FASTQ record ({len(block)}/4 lines)", lineno
        )


def read_fastq_text(text: str) -> list[FastqRecord]:
    """Parse FASTQ from an in-memory string."""
    return list(iter_fastq(text.splitlines()))


def read_fastq(path: str | os.PathLike) -> list[FastqRecord]:
    """Parse a FASTQ file from the local filesystem."""
    with open(path, "r", encoding="ascii") as fh:
        return list(iter_fastq(fh))


def fastq_to_fasta(
    entries: Iterable[FastqRecord],
    *,
    min_quality: int = 20,
    min_length: int = 30,
    min_mean_quality: float = 0.0,
) -> list[SequenceRecord]:
    """Quality-control FASTQ into the FASTA records the pipeline consumes.

    Applies per-read mean-quality filtering, quality trimming, and a
    minimum surviving length.
    """
    out: list[SequenceRecord] = []
    for entry in entries:
        if entry.mean_quality < min_mean_quality:
            continue
        trimmed = entry.trimmed(min_quality=min_quality)
        if trimmed is not None and len(trimmed) >= min_length:
            out.append(trimmed)
    return out
