"""Vectorised k-mer extraction (the paper's ``TranslateToKmer`` UDF).

A k-mer over A/C/G/T maps to an integer in ``[0, 4**k)`` using the 2-bit
code of :mod:`repro.seq.alphabet`; the paper notes the maximum feature-set
size is ``n = 4**k`` (Section III-A).  Extraction uses a sliding-window
dot product over the encoded sequence — one NumPy pass, no Python loop per
position — following the vectorisation idiom from the HPC guides.

For k <= 31 codes fit in ``int64`` (2 bits per base, 62 bits).  Windows
containing ambiguous bases (code -1) are dropped in non-strict mode.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KmerError
from repro.seq.alphabet import encode_dna

#: Largest supported k (2*k bits must fit in a signed 64-bit integer).
MAX_K = 31


def max_kmer_code(k: int) -> int:
    """``4**k``, the size of the k-mer universe (``m`` in Equation 5)."""
    _check_k(k)
    return 4**k


def _check_k(k: int) -> None:
    if not isinstance(k, (int, np.integer)):
        raise KmerError(f"k must be an integer, got {type(k).__name__}")
    if k < 1 or k > MAX_K:
        raise KmerError(f"k must be in 1..{MAX_K}, got {k}")


def kmer_codes(sequence: str, k: int, *, strict: bool = True) -> np.ndarray:
    """All overlapping k-mer codes of ``sequence`` in positional order.

    Returns an ``int64`` array of length ``len(sequence) - k + 1``.  With
    ``strict=False``, windows covering ambiguous characters are omitted
    (the array is correspondingly shorter).  A sequence shorter than ``k``
    raises :class:`~repro.errors.KmerError` in strict mode and returns an
    empty array otherwise.
    """
    _check_k(k)
    codes = encode_dna(sequence, strict=strict).astype(np.int64)
    n = codes.size - k + 1
    if n <= 0:
        if strict:
            raise KmerError(
                f"sequence of length {codes.size} is shorter than k={k}"
            )
        return np.empty(0, dtype=np.int64)
    # Sliding windows via stride tricks: shape (n, k) view, then weighted sum.
    windows = np.lib.stride_tricks.sliding_window_view(codes, k)
    weights = 4 ** np.arange(k - 1, -1, -1, dtype=np.int64)
    if strict:
        return windows @ weights
    valid = np.all(windows >= 0, axis=1)
    return windows[valid] @ weights


def kmer_set(sequence: str, k: int, *, strict: bool = True) -> np.ndarray:
    """Sorted unique k-mer codes — the feature set ``I_s`` of Section III-A."""
    return np.unique(kmer_codes(sequence, k, strict=strict))


def kmer_counts(sequence: str, k: int, *, strict: bool = True) -> dict[int, int]:
    """Multiplicity of each k-mer code (used by the MetaCluster baseline)."""
    codes = kmer_codes(sequence, k, strict=strict)
    values, counts = np.unique(codes, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def kmer_strings(sequence: str, k: int) -> list[str]:
    """Overlapping k-mers as strings, in positional order (reference
    implementation used for cross-checking the vectorised path in tests)."""
    _check_k(k)
    if len(sequence) < k:
        raise KmerError(f"sequence of length {len(sequence)} is shorter than k={k}")
    seq = sequence.upper()
    return [seq[i : i + k] for i in range(len(seq) - k + 1)]


def code_to_kmer(code: int, k: int) -> str:
    """Decode an integer k-mer code back to its string (test helper)."""
    _check_k(k)
    if code < 0 or code >= 4**k:
        raise KmerError(f"code {code} out of range for k={k}")
    out = []
    for _ in range(k):
        out.append("ACGT"[code % 4])
        code //= 4
    return "".join(reversed(out))
