"""Sequence record type flowing through the pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SequenceError
from repro.seq.alphabet import gc_content


@dataclass(frozen=True)
class SequenceRecord:
    """A single read or reference sequence.

    Attributes
    ----------
    read_id:
        Unique identifier (the FASTA header token, ``readid`` in Alg. 3).
    sequence:
        Upper-case nucleotide string.
    header:
        Full FASTA description line (without the leading ``>``).
    label:
        Optional ground-truth label (species/OTU) used by the evaluation
        metrics; carried separately from the header so simulated datasets
        can attach taxonomy without leaking it to the clustering code.
    """

    read_id: str
    sequence: str
    header: str = ""
    label: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.read_id:
            raise SequenceError("read_id must be non-empty")
        if not self.sequence:
            raise SequenceError(f"sequence for {self.read_id!r} is empty")
        object.__setattr__(self, "sequence", self.sequence.upper())

    def __len__(self) -> int:
        return len(self.sequence)

    @property
    def gc(self) -> float:
        """GC fraction of this record's sequence."""
        return gc_content(self.sequence)

    def with_label(self, label: str) -> "SequenceRecord":
        """Copy of this record carrying a ground-truth label."""
        return SequenceRecord(self.read_id, self.sequence, self.header, label)
