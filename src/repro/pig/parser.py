"""Parser for the Pig-Latin subset Algorithm 3 uses.

Supported statements (case-insensitive keywords, ``;`` terminated,
``--`` comments, ``$NAME`` parameter substitution):

* ``alias = LOAD '<path>' USING <Udf> [AS (<schema>)];``
* ``alias = FOREACH <src> GENERATE <item> [, <item>...];`` where an item
  is ``FLATTEN(<Udf>(<args>)) [AS (<schema>)]``, ``FLATTEN(<field>)`` or
  a bare ``<field>``;
* ``alias = GROUP <src> ALL;`` / ``alias = GROUP <src> BY <field>;``
* ``STORE <alias> INTO '<path>';``

Arguments inside a UDF call may be field names, ``Alias.Field``
broadcast references (Pig scalar projection), quoted strings, or numeric
literals.  Schema entries ``name:type`` keep only the name (like Pig,
types are advisory).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import PigParseError


@dataclass(frozen=True)
class FieldRef:
    """Reference to a field of the FOREACH input relation."""

    name: str


@dataclass(frozen=True)
class BroadcastRef:
    """``Alias.Field`` reference to another relation's column/bag."""

    alias: str
    field: str


@dataclass(frozen=True)
class Literal:
    """A constant argument (string or number)."""

    value: object


@dataclass(frozen=True)
class UdfCall:
    """A UDF invocation inside GENERATE."""

    udf_name: str
    args: tuple
    schema: tuple[str, ...] = ()
    flatten: bool = True


@dataclass(frozen=True)
class FieldProj:
    """A bare (or FLATTEN-wrapped) field projection inside GENERATE."""

    name: str


@dataclass(frozen=True)
class Statement:
    """One parsed statement."""

    kind: str  # load | foreach | group | store | filter | distinct | limit | order | union
    alias: str = ""
    source: str = ""
    path: str = ""
    udf_name: str = ""
    schema: tuple[str, ...] = ()
    items: tuple = ()
    group_by: str | None = None  # None means GROUP ALL
    # FILTER: field <op> literal
    filter_field: str = ""
    filter_op: str = ""
    filter_value: object = None
    # LIMIT
    limit: int = 0
    # ORDER BY
    order_field: str = ""
    order_desc: bool = False
    # UNION
    sources: tuple[str, ...] = ()
    # JOIN: source BY join_left, join_source BY join_right
    join_source: str = ""
    join_left: str = ""
    join_right: str = ""
    line: int = 0


_SCHEMA_ENTRY = re.compile(r"^\s*([A-Za-z_][\w]*)\s*(?::\s*[\w()]+)?\s*$")


def _parse_schema(text: str, line: int) -> tuple[str, ...]:
    names = []
    for entry in _split_top_level(text):
        m = _SCHEMA_ENTRY.match(entry)
        if not m:
            raise PigParseError(f"bad schema entry {entry!r}", line)
        names.append(m.group(1))
    if not names:
        raise PigParseError("empty schema", line)
    return tuple(names)


def _split_top_level(text: str) -> list[str]:
    """Split on commas not nested inside parentheses or quotes."""
    parts: list[str] = []
    depth = 0
    quote = None
    current: list[str] = []
    for ch in text:
        if quote:
            current.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in "'\"":
            quote = ch
            current.append(ch)
        elif ch == "(":
            depth += 1
            current.append(ch)
        elif ch == ")":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


_NUMBER = re.compile(r"^-?\d+(\.\d+)?$")
_NAME = re.compile(r"^[A-Za-z_][\w]*$")
_DOTTED = re.compile(r"^([A-Za-z_][\w]*)\.([A-Za-z_][\w]*)$")


def _parse_arg(text: str, line: int):
    text = text.strip()
    if not text:
        raise PigParseError("empty UDF argument", line)
    if text[0] in "'\"":
        if len(text) < 2 or text[-1] != text[0]:
            raise PigParseError(f"unterminated string {text!r}", line)
        return Literal(text[1:-1])
    if _NUMBER.match(text):
        return Literal(float(text) if "." in text else int(text))
    m = _DOTTED.match(text)
    if m:
        return BroadcastRef(alias=m.group(1), field=m.group(2))
    if _NAME.match(text):
        return FieldRef(text)
    raise PigParseError(f"cannot parse argument {text!r}", line)


_FLATTEN_CALL = re.compile(
    r"^FLATTEN\s*\(\s*([A-Za-z_][\w]*)\s*\((.*)\)\s*\)\s*"
    r"(?:AS\s*\((.*)\))?$",
    re.IGNORECASE | re.DOTALL,
)
_FLATTEN_FIELD = re.compile(
    r"^FLATTEN\s*\(\s*([A-Za-z_][\w]*)\s*\)$", re.IGNORECASE
)


def _parse_generate_item(text: str, line: int):
    text = text.strip()
    m = _FLATTEN_CALL.match(text)
    if m:
        udf_name, arg_text, schema_text = m.group(1), m.group(2), m.group(3)
        args = tuple(
            _parse_arg(a, line) for a in _split_top_level(arg_text) if a.strip()
        )
        schema = _parse_schema(schema_text, line) if schema_text else ()
        return UdfCall(udf_name=udf_name, args=args, schema=schema, flatten=True)
    m = _FLATTEN_FIELD.match(text)
    if m:
        return FieldProj(m.group(1))
    if _NAME.match(text):
        return FieldProj(text)
    raise PigParseError(f"cannot parse GENERATE item {text!r}", line)


_LOAD = re.compile(
    r"^([A-Za-z_][\w]*)\s*=\s*LOAD\s+'([^']*)'\s+USING\s+([A-Za-z_][\w]*)"
    r"(?:\s*\(\s*\))?\s*(?:AS\s*\((.*)\))?$",
    re.IGNORECASE | re.DOTALL,
)
_FOREACH = re.compile(
    r"^([A-Za-z_][\w]*)\s*=\s*FOREACH\s+([A-Za-z_][\w]*)\s+GENERATE\s+(.*)$",
    re.IGNORECASE | re.DOTALL,
)
_GROUP = re.compile(
    r"^([A-Za-z_][\w]*)\s*=\s*GROUP\s+([A-Za-z_][\w]*)\s+"
    r"(ALL|BY\s+[A-Za-z_][\w]*)$",
    re.IGNORECASE,
)
_STORE = re.compile(
    r"^STORE\s+([A-Za-z_][\w]*)\s+INTO\s+'([^']*)'$", re.IGNORECASE
)
_FILTER = re.compile(
    r"^([A-Za-z_][\w]*)\s*=\s*FILTER\s+([A-Za-z_][\w]*)\s+BY\s+"
    r"([A-Za-z_][\w]*)\s*(==|!=|>=|<=|>|<)\s*(.+)$",
    re.IGNORECASE,
)
_DISTINCT = re.compile(
    r"^([A-Za-z_][\w]*)\s*=\s*DISTINCT\s+([A-Za-z_][\w]*)$", re.IGNORECASE
)
_LIMIT = re.compile(
    r"^([A-Za-z_][\w]*)\s*=\s*LIMIT\s+([A-Za-z_][\w]*)\s+(\d+)$", re.IGNORECASE
)
_ORDER = re.compile(
    r"^([A-Za-z_][\w]*)\s*=\s*ORDER\s+([A-Za-z_][\w]*)\s+BY\s+"
    r"([A-Za-z_][\w]*)\s*(DESC|ASC)?$",
    re.IGNORECASE,
)
_UNION = re.compile(
    r"^([A-Za-z_][\w]*)\s*=\s*UNION\s+(.+)$", re.IGNORECASE
)
_JOIN = re.compile(
    r"^([A-Za-z_][\w]*)\s*=\s*JOIN\s+([A-Za-z_][\w]*)\s+BY\s+([A-Za-z_][\w]*)"
    r"\s*,\s*([A-Za-z_][\w]*)\s+BY\s+([A-Za-z_][\w]*)$",
    re.IGNORECASE,
)


def substitute_params(text: str, params: dict[str, object]) -> str:
    """Replace ``$NAME`` occurrences with ``str(params[NAME])``."""

    def repl(m: re.Match) -> str:
        name = m.group(1)
        if name not in params:
            raise PigParseError(f"undefined parameter ${name}")
        return str(params[name])

    return re.sub(r"\$([A-Za-z_][\w]*)", repl, text)


def parse_script(text: str, params: dict[str, object] | None = None) -> list[Statement]:
    """Parse a script into statements (after parameter substitution)."""
    if params:
        text = substitute_params(text, params)
    # Strip -- comments, then split on ';'.
    lines = []
    for raw in text.splitlines():
        stripped = raw.split("--", 1)[0]
        lines.append(stripped)
    body = "\n".join(lines)
    statements: list[Statement] = []
    offset = 1
    for chunk in body.split(";"):
        stmt_text = chunk.strip()
        line = offset + chunk[: len(chunk) - len(chunk.lstrip())].count("\n")
        offset += chunk.count("\n")
        if not stmt_text:
            continue
        normalized = " ".join(stmt_text.split())
        m = _LOAD.match(stmt_text) or _LOAD.match(normalized)
        if m:
            schema = _parse_schema(m.group(4), line) if m.group(4) else ()
            statements.append(
                Statement(
                    kind="load",
                    alias=m.group(1),
                    path=m.group(2),
                    udf_name=m.group(3),
                    schema=schema,
                    line=line,
                )
            )
            continue
        m = _FOREACH.match(normalized)
        if m:
            items = tuple(
                _parse_generate_item(item, line)
                for item in _split_top_level(m.group(3))
            )
            if not items:
                raise PigParseError("FOREACH with empty GENERATE list", line)
            statements.append(
                Statement(
                    kind="foreach",
                    alias=m.group(1),
                    source=m.group(2),
                    items=items,
                    line=line,
                )
            )
            continue
        m = _GROUP.match(normalized)
        if m:
            tail = m.group(3)
            group_by = None if tail.upper() == "ALL" else tail.split()[1]
            statements.append(
                Statement(
                    kind="group",
                    alias=m.group(1),
                    source=m.group(2),
                    group_by=group_by,
                    line=line,
                )
            )
            continue
        m = _STORE.match(normalized)
        if m:
            statements.append(
                Statement(kind="store", alias=m.group(1), path=m.group(2), line=line)
            )
            continue
        m = _FILTER.match(normalized)
        if m:
            value = _parse_arg(m.group(5), line)
            if not isinstance(value, Literal):
                raise PigParseError(
                    "FILTER comparisons support literal right-hand sides only",
                    line,
                )
            statements.append(
                Statement(
                    kind="filter",
                    alias=m.group(1),
                    source=m.group(2),
                    filter_field=m.group(3),
                    filter_op=m.group(4),
                    filter_value=value.value,
                    line=line,
                )
            )
            continue
        m = _DISTINCT.match(normalized)
        if m:
            statements.append(
                Statement(kind="distinct", alias=m.group(1), source=m.group(2), line=line)
            )
            continue
        m = _LIMIT.match(normalized)
        if m:
            statements.append(
                Statement(
                    kind="limit",
                    alias=m.group(1),
                    source=m.group(2),
                    limit=int(m.group(3)),
                    line=line,
                )
            )
            continue
        m = _ORDER.match(normalized)
        if m:
            statements.append(
                Statement(
                    kind="order",
                    alias=m.group(1),
                    source=m.group(2),
                    order_field=m.group(3),
                    order_desc=(m.group(4) or "").upper() == "DESC",
                    line=line,
                )
            )
            continue
        m = _JOIN.match(normalized)
        if m:
            statements.append(
                Statement(
                    kind="join",
                    alias=m.group(1),
                    source=m.group(2),
                    join_left=m.group(3),
                    join_source=m.group(4),
                    join_right=m.group(5),
                    line=line,
                )
            )
            continue
        m = _UNION.match(normalized)
        if m:
            sources = tuple(s.strip() for s in m.group(2).split(","))
            if len(sources) < 2 or not all(_NAME.match(s) for s in sources):
                raise PigParseError(
                    f"UNION needs two or more relation names, got {m.group(2)!r}",
                    line,
                )
            statements.append(
                Statement(kind="union", alias=m.group(1), sources=sources, line=line)
            )
            continue
        raise PigParseError(f"cannot parse statement: {normalized[:80]!r}", line)
    if not statements:
        raise PigParseError("script contains no statements")
    return statements
