"""The Pig interpreter: execute parsed statements as Map-Reduce jobs.

Every FOREACH and GROUP statement compiles to one
:class:`~repro.mapreduce.job.MapReduceJob` executed on the configured
runner, so a full script run leaves a chain of
:class:`~repro.mapreduce.types.JobTrace` records — the same observability
the real Pig-on-Hadoop stack gives through its JobTracker, and the input
the cluster simulator schedules.

``MRMC_MINH_SCRIPT`` transcribes Algorithm 3.  Two schema clarifications
against the paper's listing (which elides them):

* ``CalculatePairwiseSimilarity`` also receives the sequence id and emits
  ``(rowindex, seqid, simrow)`` so the clustering UDF can align matrix
  rows and columns;
* the clustering UDFs receive the matrix-row fields explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PigError
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runner import SerialRunner
from repro.mapreduce.types import JobConf, JobTrace
from repro.minhash.universal import next_prime
from repro.pig.parser import (
    BroadcastRef,
    FieldProj,
    FieldRef,
    Literal,
    Statement,
    UdfCall,
    parse_script,
)
from repro.pig.relations import Relation
from repro.pig.udf import get_udf

#: Algorithm 3, transcribed (see module docstring for schema notes).
MRMC_MINH_SCRIPT = """
A = LOAD '$INPUT' USING FastaStorage AS (readid:chararray, d:int, seq:bytearray, header:chararray);
B = FOREACH A GENERATE FLATTEN (StringGenerator(seq, readid)) AS (seq:chararray, seqid:chararray);
C = FOREACH B GENERATE FLATTEN (TranslateToKmer(seq, seqid, $KMER)) AS (seqkmer:long, seqid2:chararray);
E = FOREACH C GENERATE FLATTEN (CalculateMinwiseHash(seqkmer, seqid2, $NUMHASH, $DIV)) AS (minwise:long, seqid3:chararray);
F = FOREACH E GENERATE FLATTEN (minwise), FLATTEN (seqid3);
I = GROUP F ALL;
J = FOREACH F GENERATE FLATTEN (CalculatePairwiseSimilarity(minwise, seqid3, I.F)) AS (rowindex:int, seqid:chararray, simrow);
K = FOREACH J GENERATE FLATTEN (AgglomerativeHierarchicalClustering(rowindex, seqid, simrow, '$LINK', $NUMHASH, $CUTOFF)) AS (seqid4:chararray, clusterlabel:int);
L = FOREACH I GENERATE FLATTEN (GreedyClustering(I.F, $NUMHASH, $CUTOFF)) AS (seqid5:chararray, clusterlabel2:int);
STORE K INTO '$OUTPUT1';
STORE L INTO '$OUTPUT2';
"""


def default_params(
    *,
    input_path: str,
    output_hier: str = "/out/hier",
    output_greedy: str = "/out/greedy",
    kmer: int = 5,
    num_hashes: int = 100,
    cutoff: float = 0.9,
    link: str = "average",
) -> dict[str, object]:
    """Parameter dictionary for ``MRMC_MINH_SCRIPT``.

    ``DIV`` is derived as the paper prescribes: "a prime number greater
    than size of feature set", i.e. ``next_prime(4**k)``.
    """
    return {
        "INPUT": input_path,
        "OUTPUT1": output_hier,
        "OUTPUT2": output_greedy,
        "KMER": kmer,
        "NUMHASH": num_hashes,
        "DIV": next_prime(4**kmer),
        "CUTOFF": cutoff,
        "LINK": link,
    }


@dataclass
class ScriptResult:
    """Relations, stored outputs and job traces of one script run."""

    relations: dict[str, Relation]
    stored: dict[str, str] = field(default_factory=dict)  # path -> alias
    traces: list[JobTrace] = field(default_factory=list)


class _RowUdfMapper:
    """Mapper applying a row-mode UDF (or plain projection) per record."""

    def __init__(self, apply_fn):
        self.apply_fn = apply_fn

    def __call__(self, key, value):
        for out in self.apply_fn(value):
            yield key, out


class PigEngine:
    """Execute Pig scripts against a simulated HDFS."""

    def __init__(self, hdfs: SimulatedHDFS, *, runner=None, num_map_tasks: int = 4):
        self.hdfs = hdfs
        self.runner = runner or SerialRunner()
        self.num_map_tasks = max(1, num_map_tasks)

    # ---- public API ----------------------------------------------------------

    def run(self, script: str, params: dict[str, object] | None = None) -> ScriptResult:
        """Parse and execute a script; returns all relations and traces."""
        statements = parse_script(script, params)
        result = ScriptResult(relations={})
        for stmt in statements:
            if stmt.kind == "load":
                self._exec_load(stmt, result)
            elif stmt.kind == "foreach":
                self._exec_foreach(stmt, result)
            elif stmt.kind == "group":
                self._exec_group(stmt, result)
            elif stmt.kind == "store":
                self._exec_store(stmt, result)
            elif stmt.kind == "filter":
                self._exec_filter(stmt, result)
            elif stmt.kind == "distinct":
                self._exec_distinct(stmt, result)
            elif stmt.kind == "limit":
                self._exec_limit(stmt, result)
            elif stmt.kind == "order":
                self._exec_order(stmt, result)
            elif stmt.kind == "union":
                self._exec_union(stmt, result)
            elif stmt.kind == "join":
                self._exec_join(stmt, result)
            else:  # pragma: no cover - parser only emits known kinds
                raise PigError(f"unknown statement kind {stmt.kind!r}")
        return result

    # ---- statement execution ---------------------------------------------------

    def _exec_load(self, stmt: Statement, result: ScriptResult) -> None:
        spec = get_udf(stmt.udf_name)
        if spec.mode != "loader":
            raise PigError(
                f"LOAD requires a loader UDF; {stmt.udf_name!r} is {spec.mode}"
            )
        rows = list(spec.func(self.hdfs, stmt.path))
        fields = stmt.schema or tuple(f"f{i}" for i in range(len(rows[0]) if rows else 1))
        relation = Relation(name=stmt.alias, fields=fields, rows=rows)
        relation.validate_rows()
        result.relations[stmt.alias] = relation

    def _exec_group(self, stmt: Statement, result: ScriptResult) -> None:
        source = self._relation(stmt.source, result)
        if stmt.group_by is None:
            # GROUP ALL: single row ("all", [rows...]).
            relation = Relation(
                name=stmt.alias,
                fields=("group", stmt.source),
                rows=[("all", list(source.rows))],
            )
        else:
            key_idx = source.field_index(stmt.group_by)
            job = MapReduceJob(
                name=f"pig-group-{stmt.alias}",
                mapper=_GroupMapper(key_idx),
                reducer=_collect_reducer,
            )
            res = self.runner.run(
                job,
                [(i, row) for i, row in enumerate(source.rows)],
                JobConf(num_map_tasks=self.num_map_tasks, num_reduce_tasks=1),
            )
            if res.trace is not None:
                result.traces.append(res.trace)
            relation = Relation(
                name=stmt.alias,
                fields=("group", stmt.source),
                rows=[(k, bag) for k, bag in res.output],
            )
        result.relations[stmt.alias] = relation

    _FILTER_OPS = {
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
    }

    def _exec_filter(self, stmt: Statement, result: ScriptResult) -> None:
        source = self._relation(stmt.source, result)
        idx = source.field_index(stmt.filter_field)
        op = self._FILTER_OPS[stmt.filter_op]
        rows = [row for row in source.rows if op(row[idx], stmt.filter_value)]
        result.relations[stmt.alias] = Relation(
            name=stmt.alias, fields=source.fields, rows=rows
        )

    def _exec_distinct(self, stmt: Statement, result: ScriptResult) -> None:
        source = self._relation(stmt.source, result)
        seen: set = set()
        rows = []
        for row in source.rows:
            if row not in seen:
                seen.add(row)
                rows.append(row)
        result.relations[stmt.alias] = Relation(
            name=stmt.alias, fields=source.fields, rows=rows
        )

    def _exec_limit(self, stmt: Statement, result: ScriptResult) -> None:
        source = self._relation(stmt.source, result)
        result.relations[stmt.alias] = Relation(
            name=stmt.alias, fields=source.fields, rows=list(source.rows[: stmt.limit])
        )

    def _exec_order(self, stmt: Statement, result: ScriptResult) -> None:
        source = self._relation(stmt.source, result)
        idx = source.field_index(stmt.order_field)
        rows = sorted(source.rows, key=lambda r: r[idx], reverse=stmt.order_desc)
        result.relations[stmt.alias] = Relation(
            name=stmt.alias, fields=source.fields, rows=rows
        )

    def _exec_union(self, stmt: Statement, result: ScriptResult) -> None:
        relations = [self._relation(src, result) for src in stmt.sources]
        first = relations[0]
        for rel in relations[1:]:
            if len(rel.fields) != len(first.fields):
                raise PigError(
                    f"UNION arity mismatch: {first.name!r} has "
                    f"{len(first.fields)} fields, {rel.name!r} has "
                    f"{len(rel.fields)}"
                )
        rows = [row for rel in relations for row in rel.rows]
        result.relations[stmt.alias] = Relation(
            name=stmt.alias, fields=first.fields, rows=rows
        )

    def _exec_join(self, stmt: Statement, result: ScriptResult) -> None:
        """Equi-join as a reduce-side Map-Reduce job (Pig's default join):
        both inputs are tagged and shuffled on the join key; each reducer
        cross-products the two sides of its key group."""
        left = self._relation(stmt.source, result)
        right = self._relation(stmt.join_source, result)
        left_idx = left.field_index(stmt.join_left)
        right_idx = right.field_index(stmt.join_right)

        job = MapReduceJob(
            name=f"pig-join-{stmt.alias}",
            mapper=_JoinMapper(),
            reducer=_JoinReducer(),
        )
        inputs = [(("L", row[left_idx]), row) for row in left.rows]
        inputs += [(("R", row[right_idx]), row) for row in right.rows]
        res = self.runner.run(
            job,
            inputs,
            JobConf(num_map_tasks=self.num_map_tasks, num_reduce_tasks=1),
        )
        if res.trace is not None:
            result.traces.append(res.trace)
        # Disambiguate duplicated field names Pig-style: alias::field.
        fields = tuple(f"{stmt.source}::{f}" for f in left.fields) + tuple(
            f"{stmt.join_source}::{f}" for f in right.fields
        )
        relation = Relation(
            name=stmt.alias,
            fields=fields,
            rows=[row for _key, row in res.output],
        )
        relation.validate_rows()
        result.relations[stmt.alias] = relation

    def _exec_store(self, stmt: Statement, result: ScriptResult) -> None:
        relation = self._relation(stmt.alias, result)
        lines = ["\t".join(str(v) for v in row) for row in relation.rows]
        self.hdfs.put(stmt.path, "\n".join(lines) + "\n", overwrite=True)
        result.stored[stmt.path] = stmt.alias

    def _exec_foreach(self, stmt: Statement, result: ScriptResult) -> None:
        source = self._relation(stmt.source, result)

        # Pure projection (possibly FLATTEN-wrapped field refs).
        if all(isinstance(item, FieldProj) for item in stmt.items):
            indices = [source.field_index(item.name) for item in stmt.items]
            rows = [tuple(row[i] for i in indices) for row in source.rows]
            relation = Relation(
                name=stmt.alias,
                fields=tuple(item.name for item in stmt.items),
                rows=rows,
            )
            result.relations[stmt.alias] = relation
            return

        if len(stmt.items) != 1 or not isinstance(stmt.items[0], UdfCall):
            raise PigError(
                f"line {stmt.line}: GENERATE supports either a projection "
                "list or a single FLATTEN(Udf(...)) call"
            )
        call = stmt.items[0]
        spec = get_udf(call.udf_name)
        if spec.mode == "loader":
            raise PigError(f"loader UDF {call.udf_name!r} cannot run in FOREACH")

        if spec.mode == "row":
            rows = self._run_row_udf(stmt, call, spec, source, result)
        else:
            rows = self._run_grouped_udf(stmt, call, spec, source, result)

        fields = call.schema or tuple(
            f"f{i}" for i in range(len(rows[0]) if rows else 1)
        )
        relation = Relation(name=stmt.alias, fields=fields, rows=rows)
        relation.validate_rows()
        result.relations[stmt.alias] = relation

    # ---- UDF execution -----------------------------------------------------------

    def _resolve_static(self, arg, result: ScriptResult):
        """Resolve literal/broadcast args (same value for every row)."""
        if isinstance(arg, Literal):
            return arg.value
        if isinstance(arg, BroadcastRef):
            rel = self._relation(arg.alias, result)
            # Alias.Field on a GROUP result yields the grouped bag; on a
            # plain relation it yields the column.
            if rel.fields == ("group", arg.field):
                bags = [bag for _key, bag in rel.rows]
                if len(bags) == 1:
                    return bags[0]
                return [row for bag in bags for row in bag]
            return rel.column(arg.field)
        raise PigError(f"argument {arg!r} is not static")

    def _run_row_udf(self, stmt, call, spec, source, result) -> list[tuple]:
        static = {
            i: self._resolve_static(arg, result)
            for i, arg in enumerate(call.args)
            if not isinstance(arg, FieldRef)
        }
        field_idx = {
            i: source.field_index(arg.name)
            for i, arg in enumerate(call.args)
            if isinstance(arg, FieldRef)
        }

        def apply_fn(row):
            args = [
                static[i] if i in static else row[field_idx[i]]
                for i in range(len(call.args))
            ]
            out = spec.func(*args)
            return list(out) if out is not None else []

        job = MapReduceJob(
            name=f"pig-foreach-{stmt.alias}",
            mapper=_RowUdfMapper(apply_fn),
            reducer=_flatten_reducer,
        )
        res = self.runner.run(
            job,
            [(i, row) for i, row in enumerate(source.rows)],
            JobConf(num_map_tasks=self.num_map_tasks, num_reduce_tasks=1),
        )
        if res.trace is not None:
            result.traces.append(res.trace)
        return [row for _key, row in res.output]

    def _run_grouped_udf(self, stmt, call, spec, source, result) -> list[tuple]:
        literals = [
            self._resolve_static(arg, result)
            for arg in call.args
            if not isinstance(arg, FieldRef)
        ]
        field_args = [arg for arg in call.args if isinstance(arg, FieldRef)]

        if spec.group_key is not None:
            # Group rows by the key field; bag = the other field per row.
            if len(field_args) < 2:
                raise PigError(
                    f"grouped UDF {call.udf_name!r} needs a value field and "
                    "a key field"
                )
            key_ref = call.args[spec.group_key]
            if not isinstance(key_ref, FieldRef):
                raise PigError(
                    f"grouped UDF {call.udf_name!r}: group_key argument must "
                    "be a field reference"
                )
            key_idx = source.field_index(key_ref.name)
            value_fields = [
                source.field_index(arg.name)
                for arg in field_args
                if arg.name != key_ref.name
            ]
            job = MapReduceJob(
                name=f"pig-foreach-{stmt.alias}",
                mapper=_KeyedMapper(key_idx, value_fields),
                reducer=_GroupedUdfReducer(spec.func, literals),
            )
            res = self.runner.run(
                job,
                [(i, row) for i, row in enumerate(source.rows)],
                JobConf(num_map_tasks=self.num_map_tasks, num_reduce_tasks=1),
            )
            if res.trace is not None:
                result.traces.append(res.trace)
            return [row for _key, row in res.output]

        # GROUP-ALL semantics: one bag from the whole input.
        if field_args:
            indices = [source.field_index(arg.name) for arg in field_args]
            if len(indices) == 1:
                bag = [row[indices[0]] for row in source.rows]
            else:
                bag = [tuple(row[i] for i in indices) for row in source.rows]
        else:
            # Bag comes from a broadcast reference (e.g. GreedyClustering(I.F, ...)).
            broadcasts = [a for a in call.args if isinstance(a, BroadcastRef)]
            if not broadcasts:
                raise PigError(
                    f"grouped UDF {call.udf_name!r} has neither field "
                    "references nor a broadcast bag"
                )
            bag = self._resolve_static(broadcasts[0], result)
            literals = [
                self._resolve_static(a, result)
                for a in call.args
                if isinstance(a, Literal)
            ]
        out = spec.func(bag, *literals)
        return list(out) if out is not None else []

    def _relation(self, alias: str, result: ScriptResult) -> Relation:
        if alias not in result.relations:
            raise PigError(f"unknown relation {alias!r}")
        return result.relations[alias]


# ---- picklable job pieces --------------------------------------------------------


class _GroupMapper:
    def __init__(self, key_idx: int):
        self.key_idx = key_idx

    def __call__(self, key, row):
        yield row[self.key_idx], row


def _collect_reducer(key, values):
    yield key, list(values)


def _flatten_reducer(key, values):
    for value in values:
        yield key, value


class _JoinMapper:
    """Route tagged join inputs by their key: ('L'|'R', key) -> key."""

    def __call__(self, tagged_key, row):
        side, key = tagged_key
        yield key, (side, row)


class _JoinReducer:
    """Cross-product the two sides of one key group."""

    def __call__(self, key, values):
        lefts = [row for side, row in values if side == "L"]
        rights = [row for side, row in values if side == "R"]
        for lrow in lefts:
            for rrow in rights:
                yield key, tuple(lrow) + tuple(rrow)


class _KeyedMapper:
    def __init__(self, key_idx: int, value_fields: list[int]):
        self.key_idx = key_idx
        self.value_fields = value_fields

    def __call__(self, key, row):
        if len(self.value_fields) == 1:
            value = row[self.value_fields[0]]
        else:
            value = tuple(row[i] for i in self.value_fields)
        yield row[self.key_idx], value


class _GroupedUdfReducer:
    def __init__(self, func, literals):
        self.func = func
        self.literals = literals

    def __call__(self, key, values):
        out = self.func(list(values), key, *self.literals)
        if out is not None:
            for row in out:
                yield key, row
