"""Pig data model: relations of tuples with named fields."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PigError


@dataclass
class Relation:
    """A named bag of tuples with a flat field schema.

    Pig relations are bags of tuples; fields are accessed by name.  We
    keep the schema as a simple name tuple (types are not enforced —
    neither does Pig until a UDF complains).
    """

    name: str
    fields: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise PigError("relation name must be non-empty")
        if not self.fields:
            raise PigError(f"relation {self.name!r} must declare fields")
        if len(set(self.fields)) != len(self.fields):
            raise PigError(
                f"relation {self.name!r} has duplicate fields {self.fields}"
            )

    def field_index(self, name: str) -> int:
        """Index of a field by name."""
        try:
            return self.fields.index(name)
        except ValueError:
            raise PigError(
                f"relation {self.name!r} has no field {name!r} "
                f"(fields: {list(self.fields)})"
            ) from None

    def column(self, name: str) -> list:
        """All values of one field."""
        idx = self.field_index(name)
        return [row[idx] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def validate_rows(self) -> None:
        """Check every row's arity against the schema."""
        width = len(self.fields)
        for i, row in enumerate(self.rows):
            if not isinstance(row, tuple) or len(row) != width:
                raise PigError(
                    f"relation {self.name!r} row {i} has arity "
                    f"{len(row) if isinstance(row, tuple) else 'non-tuple'}; "
                    f"schema expects {width}"
                )
