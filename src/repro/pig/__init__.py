"""A Pig-Latin dataflow layer over the Map-Reduce engine.

The paper implements MrMC-MinH "using the Pig scripting language and
Java": Algorithm 3 is a nine-statement Pig script whose UDFs do the real
work.  This package provides the subset of Pig needed to run that script
verbatim:

* :mod:`repro.pig.relations` — the relation/tuple data model;
* :mod:`repro.pig.udf` — the UDF registry plus the paper's seven UDFs
  (``FastaStorage``, ``StringGenerator``, ``TranslateToKmer``,
  ``CalculateMinwiseHash``, ``CalculatePairwiseSimilarity``,
  ``AgglomerativeHierarchicalClustering``, ``GreedyClustering``);
* :mod:`repro.pig.parser` — parser for the LOAD / FOREACH…GENERATE /
  GROUP / STORE subset (with ``$PARAM`` substitution and ``FLATTEN``);
* :mod:`repro.pig.engine` — the interpreter, executing each statement as
  a Map-Reduce job against a :class:`~repro.mapreduce.hdfs.SimulatedHDFS`.

``MRMC_MINH_SCRIPT`` is Algorithm 3 transcribed; running it through
:class:`~repro.pig.engine.PigEngine` reproduces the full published
dataflow end-to-end.
"""

from repro.pig.relations import Relation
from repro.pig.udf import UDF_REGISTRY, UdfSpec, register_udf, get_udf
from repro.pig.parser import parse_script, Statement
from repro.pig.engine import PigEngine, MRMC_MINH_SCRIPT, default_params

__all__ = [
    "Relation",
    "UDF_REGISTRY",
    "UdfSpec",
    "register_udf",
    "get_udf",
    "parse_script",
    "Statement",
    "PigEngine",
    "MRMC_MINH_SCRIPT",
    "default_params",
]
