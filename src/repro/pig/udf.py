"""UDF registry and the paper's seven user-defined functions.

Pig UDFs come in flavours; we model the three Algorithm 3 needs:

* ``loader`` — used in ``LOAD ... USING Udf`` (``FastaStorage``);
* ``row`` — applied per input tuple inside ``FOREACH ... GENERATE``;
  returning an iterable of tuples which ``FLATTEN`` expands;
* ``grouped`` — *algebraic* UDFs that need all rows sharing a key (e.g.
  ``CalculateMinwiseHash`` needs every k-mer of a sequence).  The engine
  inserts the implicit GROUP BY (``group_key`` names the UDF argument to
  group on), exactly the rewrite Pig's combiner-aware algebraic interface
  performs.

Values flowing between UDFs are plain Python tuples; min-wise signatures
travel as tuples of ints so they survive the (pickling) shuffle.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import PigError
from repro.cluster.greedy import greedy_cluster
from repro.cluster.hierarchical import agglomerative_cluster
from repro.minhash.sketch import MinHashSketch
from repro.minhash.universal import UniversalHashFamily
from repro.seq.alphabet import sanitize
from repro.seq.fasta import read_fasta_text
from repro.seq.kmers import kmer_codes


@dataclass(frozen=True)
class UdfSpec:
    """A registered UDF: callable plus execution flavour."""

    name: str
    func: Callable
    mode: str = "row"  # "row" | "grouped" | "loader"
    #: For grouped UDFs: index of the argument carrying the grouping key,
    #: or ``None`` to group the whole relation (GROUP ALL semantics).
    group_key: int | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("row", "grouped", "loader"):
            raise PigError(f"unknown UDF mode {self.mode!r}")
        if self.mode != "grouped" and self.group_key is not None:
            raise PigError(
                f"UDF {self.name!r}: group_key only applies to grouped mode"
            )


UDF_REGISTRY: dict[str, UdfSpec] = {}


def register_udf(
    name: str, *, mode: str = "row", group_key: int | None = None
) -> Callable:
    """Decorator registering a UDF under ``name``."""

    def wrap(func: Callable) -> Callable:
        if name in UDF_REGISTRY:
            raise PigError(f"UDF {name!r} is already registered")
        UDF_REGISTRY[name] = UdfSpec(name=name, func=func, mode=mode, group_key=group_key)
        return func

    return wrap


def get_udf(name: str) -> UdfSpec:
    """Look up a UDF by name."""
    if name not in UDF_REGISTRY:
        raise PigError(
            f"unknown UDF {name!r}; registered: {sorted(UDF_REGISTRY)}"
        )
    return UDF_REGISTRY[name]


# --------------------------------------------------------------------------
# Algorithm 3's UDFs
# --------------------------------------------------------------------------


@register_udf("FastaStorage", mode="loader")
def fasta_storage(hdfs, path: str):
    """``LOAD '$INPUT' using FastaStorage as (readid, d, seq, header)``."""
    text = hdfs.get_text(path)
    for rec in read_fasta_text(text):
        yield (rec.read_id, len(rec.sequence), rec.sequence, rec.header)


@register_udf("StringGenerator")
def string_generator(seq, seqid):
    """Normalise the DNA alphabet (Step 2): upper-case, drop ambiguity
    codes — the integer encoding itself happens inside TranslateToKmer."""
    cleaned = sanitize(str(seq))
    if not cleaned:
        return
    yield (cleaned, seqid)


@register_udf("TranslateToKmer")
def translate_to_kmer(seq, seqid, kmer_size):
    """Explode a sequence into (k-mer code, seqid) rows (Step 3)."""
    k = int(kmer_size)
    codes = kmer_codes(str(seq), k, strict=False)
    for code in codes.tolist():
        yield (code, seqid)


@register_udf("CalculateMinwiseHash", mode="grouped", group_key=1)
def calculate_minwise_hash(kmer_bag, seqid, num_hashes, div, *, _kmer_size=None):
    """Min-wise signature of one sequence's k-mer bag (Step 4).

    Grouped UDF: ``kmer_bag`` holds every k-mer code of the sequence
    ``seqid``.  ``div`` is the paper's ``$DIV`` prime (p > m); the
    universe size m is recovered as the largest power of four below p,
    matching ``$DIV = next_prime(4**k)`` as the engine's default params
    construct it.
    """
    p = int(div)
    n = int(num_hashes)
    m = 4
    while m * 4 < p:
        m *= 4
    family = UniversalHashFamily(num_hashes=n, universe_size=m, prime=p, seed=0)
    items = np.unique(np.asarray(list(kmer_bag), dtype=np.int64))
    if items.size == 0:
        return
    values = family.min_hash(items)
    yield (tuple(int(v) for v in values), seqid)


@register_udf("CalculatePairwiseSimilarity")
def calculate_pairwise_similarity(minwise, seqid, all_rows):
    """One row of the all-pairs similarity matrix (Step 7).

    ``all_rows`` is the broadcast bag (Pig's ``I.F`` scalar reference):
    the full list of (minwise, seqid) tuples in relation order.  Emits
    ``(row_index, seqid, (similarities...))`` using the positional
    estimator — ``row_index`` is this sequence's position in the broadcast
    bag so the downstream clustering UDF can align rows and columns.
    """
    mine = np.asarray(minwise, dtype=np.int64)
    row_index = -1
    sims = []
    for idx, (other_minwise, other_id) in enumerate(all_rows):
        other = np.asarray(other_minwise, dtype=np.int64)
        sims.append(float(np.mean(mine == other)))
        if other_id == seqid and row_index < 0:
            row_index = idx
    if row_index < 0:
        raise PigError(f"sequence {seqid!r} missing from the broadcast bag")
    yield (row_index, seqid, tuple(sims))


@register_udf("AgglomerativeHierarchicalClustering", mode="grouped")
def agglomerative_hierarchical_clustering(row_bag, link, num_hashes, cutoff):
    """Assemble the matrix rows and agglomerate (Step 8).

    Grouped over the whole relation (GROUP ALL): ``row_bag`` holds every
    ``(row_index, seqid, similarity_row)`` tuple.  Emits ``(seqid, label)``
    rows.
    """
    rows = sorted(row_bag, key=lambda r: r[0])
    ids = [r[1] for r in rows]
    matrix = np.asarray([r[2] for r in rows], dtype=np.float64)
    if matrix.shape[0] != matrix.shape[1]:
        raise PigError(
            f"similarity rows form a {matrix.shape} matrix; expected square"
        )
    assignment = agglomerative_cluster(
        _symmetrised(matrix), ids, float(cutoff), linkage=str(link)
    )
    for read_id in ids:
        yield (read_id, assignment[read_id])


@register_udf("GreedyClustering", mode="grouped")
def greedy_clustering(bag, num_hashes, cutoff):
    """Greedy clustering over the sketch bag (Step 9).

    ``bag`` holds every ``(minwise, seqid)`` tuple (GROUP ALL).  Emits
    ``(seqid, label)`` rows.
    """
    n = int(num_hashes)
    sketches = [
        MinHashSketch(
            read_id=seqid,
            values=np.asarray(minwise, dtype=np.int64),
            family_key=(n, 0, 0),
        )
        for minwise, seqid in bag
    ]
    if not sketches:
        return
    assignment = greedy_cluster(sketches, float(cutoff), estimator="set")
    for sketch in sketches:
        yield (sketch.read_id, assignment[sketch.read_id])


def _symmetrised(matrix: np.ndarray) -> np.ndarray:
    """Average a near-symmetric matrix with its transpose and pin the
    diagonal to 1 (row ordering can introduce tiny asymmetries)."""
    sym = (matrix + matrix.T) / 2.0
    np.fill_diagonal(sym, 1.0)
    return np.clip(sym, 0.0, 1.0)
