"""Command-line interface.

Subcommands::

    repro cluster   FASTA            cluster a sample, write read->label TSV
    repro diversity FASTA            cluster + richness/diversity report
    repro beta      FASTA FASTA...   joint clustering + beta-diversity matrix
    repro stats     FASTA            sequence-set summary statistics
    repro pig       FASTA            run the Algorithm 3 Pig script end-to-end
    repro simulate                   modeled runtime for a cluster/input sweep
    repro bench     {table3,table4,table5,figure2}   regenerate a paper table
    repro obs report RUN.jsonl       summarize a telemetry run log
    repro obs chrome RUN.jsonl       convert a run log to a Chrome/Perfetto trace
    repro service demo               job-service workload vs fluid-model latency
    repro service stress             overload burst: shedding, breaker, drain

Every command prints to stdout; ``cluster`` also writes ``--output``.
``cluster`` and ``diversity`` accept ``--obs RUN.jsonl`` and
``--chrome-trace TRACE.json`` to record the run's telemetry (span tree +
metrics) for ``repro obs`` to consume.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import ExperimentScale
from repro.cluster.pipeline import METHODS, MrMCMinH
from repro.cluster.hierarchical import LINKAGES
from repro.eval.diversity import (
    chao1,
    goods_coverage,
    rarefaction_curve,
    shannon_index,
    simpson_index,
)
from repro.seq.fasta import read_fasta


def _add_pipeline_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("fasta", help="input FASTA file")
    parser.add_argument("--kmer", type=int, default=5, help="k-mer size ($KMER)")
    parser.add_argument(
        "--hashes", type=int, default=100, help="number of hash functions ($NUMHASH)"
    )
    parser.add_argument(
        "--threshold", type=float, default=0.9, help="similarity threshold ($CUTOFF)"
    )
    parser.add_argument("--method", choices=METHODS, default="hierarchical")
    parser.add_argument("--linkage", choices=LINKAGES, default="average")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--engine-sparse", action="store_true",
        help="force the LSH candidate-generation MapReduce job chain "
        "(default: auto — dense below the size cutoff, engine-sparse above)",
    )
    parser.add_argument(
        "--spill-threshold", type=int, default=None, metavar="BYTES",
        help="engage the external spill-to-disk shuffle: per-partition "
        "map-output buffers over this size spill to CRC-guarded segment "
        "files (0 = spill everything; default: in-memory shuffle)",
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--obs", metavar="RUN.jsonl", default=None,
        help="record run telemetry (spans + metrics) to this JSONL log",
    )
    parser.add_argument(
        "--chrome-trace", metavar="TRACE.json", default=None,
        help="also write a Chrome/Perfetto trace of the run",
    )


def _fit(args) -> tuple:
    records = read_fasta(args.fasta)
    model = MrMCMinH(
        kmer_size=args.kmer,
        num_hashes=args.hashes,
        threshold=args.threshold,
        method=args.method,
        linkage=args.linkage,
        seed=args.seed,
        sparse="engine" if getattr(args, "engine_sparse", False) else "auto",
        spill_threshold_bytes=getattr(args, "spill_threshold", None),
    )
    obs_log = getattr(args, "obs", None)
    chrome_path = getattr(args, "chrome_trace", None)
    if not obs_log and not chrome_path:
        return records, model.fit(records)

    from repro.obs import Tracer, write_chrome_trace

    tracer = Tracer()
    with tracer.activate():
        run = model.fit(records)
    if obs_log:
        tracer.write_jsonl(obs_log)
        print(f"# telemetry: run log -> {obs_log}", file=sys.stderr)
    if chrome_path:
        write_chrome_trace(tracer.spans, chrome_path)
        print(f"# telemetry: chrome trace -> {chrome_path}", file=sys.stderr)
    return records, run


def cmd_cluster(args) -> int:
    records, run = _fit(args)
    assignment = run.assignment
    if args.rescue is not None:
        from repro.cluster.denoise import rescue_small_clusters

        assignment = rescue_small_clusters(
            assignment, run.sketches, rescue_threshold=args.rescue
        )
    lines = [f"{rid}\t{label}" for rid, label in sorted(assignment.items())]
    if args.output:
        with open(args.output, "w", encoding="ascii") as fh:
            fh.write("\n".join(lines) + "\n")
    else:
        print("\n".join(lines))
    print(
        f"# {assignment.num_sequences} sequences -> "
        f"{assignment.num_clusters} clusters "
        f"({run.wall_seconds:.2f}s, {run.mode} similarity path)",
        file=sys.stderr,
    )
    if run.sparse_stats:
        stats = run.sparse_stats
        print(
            f"# sparse: {stats['candidate_pairs']} candidate pairs, "
            f"{stats['rounds']} round(s), "
            f"{stats['shuffle_bytes']} shuffle bytes",
            file=sys.stderr,
        )
        if stats.get("streamed"):
            print(
                f"# streamed: {stats.get('edges', 0)} edges fed incrementally, "
                f"{stats.get('spill_segments', 0)} spill segment(s), "
                f"{stats.get('spill_bytes', 0)} spill bytes",
                file=sys.stderr,
            )
    return 0


def cmd_stats(args) -> int:
    from repro.seq.stats import length_histogram, sequence_set_stats

    records = read_fasta(args.fasta)
    stats = sequence_set_stats(records)
    print(stats.describe())
    print("length histogram:")
    for start, stop, count in length_histogram(records):
        bar = "#" * max(1, int(50 * count / max(1, stats.count)))
        print(f"  {start:6d}-{stop:6d}  {count:6d}  {bar}")
    return 0


def cmd_beta(args) -> int:
    from repro.eval.beta import beta_diversity_matrix, otu_table
    from repro.eval.report import Table
    from repro.seq.records import SequenceRecord

    reads = []
    sample_of = {}
    for path in args.fastas:
        sample_records = read_fasta(path)
        for r in sample_records:
            record = SequenceRecord(f"{path}:{r.read_id}", r.sequence, r.header)
            reads.append(record)
            sample_of[record.read_id] = path
    model = MrMCMinH(
        kmer_size=args.kmer,
        num_hashes=args.hashes,
        threshold=args.threshold,
        method=args.method,
        seed=args.seed,
    )
    run = model.fit(reads)
    tables = otu_table(run.assignment, sample_of)
    ids, matrix = beta_diversity_matrix(tables, metric=args.metric)
    table = Table(title=f"Beta diversity ({args.metric})", columns=["Sample"] + ids)
    for i, sid in enumerate(ids):
        table.add_row(sid, *[round(v, 3) for v in matrix[i]])
    print(table.render())
    return 0


def cmd_diversity(args) -> int:
    _records, run = _fit(args)
    a = run.assignment
    print(f"sequences:        {a.num_sequences}")
    print(f"OTUs observed:    {a.num_clusters}")
    print(f"Chao1 richness:   {chao1(a):.1f}")
    print(f"Shannon index:    {shannon_index(a):.3f}")
    print(f"Simpson index:    {simpson_index(a):.3f}")
    print(f"Good's coverage:  {goods_coverage(a):.3f}")
    print("rarefaction:")
    for depth, expected in rarefaction_curve(a):
        print(f"  {depth:8d} reads -> {expected:8.1f} OTUs")
    return 0


def cmd_pig(args) -> int:
    from repro.mapreduce.hdfs import SimulatedHDFS
    from repro.pig import MRMC_MINH_SCRIPT, PigEngine, default_params

    with open(args.fasta, "r", encoding="ascii") as fh:
        text = fh.read()
    hdfs = SimulatedHDFS(num_datanodes=args.nodes)
    hdfs.put("/input.fa", text)
    params = default_params(
        input_path="/input.fa",
        kmer=args.kmer,
        num_hashes=args.hashes,
        cutoff=args.threshold,
        link=args.linkage,
    )
    result = PigEngine(hdfs).run(MRMC_MINH_SCRIPT, params)
    print("jobs:", ", ".join(t.job_name for t in result.traces))
    for path in ("/out/hier", "/out/greedy"):
        lines = hdfs.get_text(path).strip().splitlines()
        labels = {line.split("\t")[1] for line in lines}
        print(f"{path}: {len(lines)} sequences, {len(labels)} clusters")
        if args.show:
            print("\n".join(lines))
    return 0


def cmd_simulate(args) -> int:
    from repro.bench.figures import run_figure2

    table, _result = run_figure2(
        node_counts=tuple(args.nodes_list),
        read_counts=tuple(args.reads_list),
        scale=ExperimentScale(num_reads=args.calibration_reads, genome_length=5000),
    )
    print(table.render())
    return 0


def cmd_obs_report(args) -> int:
    from repro.obs import report_from_jsonl

    print(report_from_jsonl(args.run_log).render())
    return 0


def cmd_obs_chrome(args) -> int:
    from repro.obs import read_jsonl, write_chrome_trace

    spans, _metrics, _meta = read_jsonl(args.run_log)
    write_chrome_trace(spans, args.output)
    print(f"wrote {args.output} ({len(spans)} spans)")
    return 0


def cmd_bench(args) -> int:
    scale = ExperimentScale(
        num_reads=args.reads,
        genome_length=5000,
        min_cluster_size=2,
        max_pairs_per_cluster=20,
    )
    if args.target == "table3":
        from repro.bench.tables import run_table3

        table, _results = run_table3(scale, samples=tuple(args.samples or ("S1", "S8", "R1")))
    elif args.target == "table4":
        from repro.bench.tables import run_table4

        table, _results = run_table4(scale)
    elif args.target == "table5":
        from repro.bench.tables import run_table5

        table, _results = run_table5(scale, samples=tuple(args.samples or ("53R", "FS312")))
    else:
        from repro.bench.figures import run_figure2

        table, _results = run_figure2(scale=scale)
    print(table.render())
    return 0


def cmd_service_demo(args) -> int:
    from repro.errors import ServiceOverloadedError
    from repro.mapreduce.service import JobService, fluid_prediction, sleep_spec

    tenants = [f"tenant{i}" for i in range(args.tenants)]
    svc = JobService(
        num_slots=args.slots,
        queue_depth=args.queue_depth,
        policy=args.policy,
    )
    tickets = []
    shed = 0
    # Submit the whole burst before starting the slots: admission (and
    # any shedding) then depends only on queue depth, not thread timing.
    for j in range(args.jobs):
        for tenant in tenants:
            try:
                tickets.append(
                    svc.submit(
                        tenant, sleep_spec(args.job_seconds, name=f"{tenant}-j{j}")
                    )
                )
            except ServiceOverloadedError:
                shed += 1
    svc.start()
    for t in tickets:
        t.result(timeout=60)
    svc.shutdown()

    predicted = fluid_prediction(tickets, args.slots, args.policy)
    print(
        f"policy={args.policy} slots={args.slots} "
        f"jobs={len(tickets)} shed={shed}"
    )
    print(f"{'job':<16}{'tenant':<10}{'measured_s':>12}{'fluid_s':>10}")
    for t in tickets:
        print(
            f"{t.id:<16}{t.tenant:<10}{t.latency:>12.3f}"
            f"{predicted.get(t.id, float('nan')):>10.3f}"
        )
    health = svc.health()
    print(f"totals: {health['totals']}")
    return 0


def cmd_service_stress(args) -> int:
    import json
    import time as _time

    from repro.errors import CircuitOpenError, ServiceOverloadedError
    from repro.mapreduce.faults import RetryPolicy
    from repro.mapreduce.service import JobService, failing_spec, sleep_spec

    svc = JobService(
        num_slots=args.slots,
        queue_depth=args.queue_depth,
        policy=args.policy,
        retry=RetryPolicy(max_attempts=2, backoff=0.01, jitter=1.0, seed=args.seed),
        breaker_threshold=2,
        breaker_cooldown=0.2,
    )
    tenants = [f"tenant{i}" for i in range(args.tenants)]
    accepted, shed, rejected = [], 0, 0
    # Overload burst: every tenant submits more than its queue holds.
    for j in range(args.queue_depth * 3):
        for tenant in tenants:
            try:
                accepted.append(
                    svc.submit(
                        tenant,
                        sleep_spec(args.job_seconds, name=f"{tenant}-j{j}"),
                        degradable=True,
                    )
                )
            except ServiceOverloadedError:
                shed += 1
    svc.start()
    for t in accepted:
        t.result(timeout=60)
    # One tenant misbehaves until its breaker trips.
    bad = tenants[0]
    for _ in range(3):
        try:
            svc.submit(bad, failing_spec()).event.wait(30)
        except CircuitOpenError:
            rejected += 1
    _time.sleep(0.25)  # cooldown, then the probe job closes the breaker
    svc.submit(bad, sleep_spec(args.job_seconds)).result(timeout=60)
    drained = svc.drain(timeout=30)
    health = svc.health()
    svc.shutdown()
    print(
        f"accepted={len(accepted)} shed={shed} breaker_rejections={rejected} "
        f"drained={drained}"
    )
    print(f"breaker[{bad}]={health['tenants'][bad]['breaker']}")
    print(f"totals: {health['totals']}")
    if args.health_json:
        with open(args.health_json, "w") as fh:
            json.dump(health, fh, indent=2, sort_keys=True)
        print(f"wrote {args.health_json}")
    ok = (
        drained
        and health["tenants"][bad]["breaker"] == "closed"
        and health["totals"]["queued"] == 0
        and health["totals"]["running"] == 0
    )
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MrMC-MinH: Map-Reduce clustering of metagenomes",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("cluster", help="cluster a FASTA sample")
    _add_pipeline_args(p)
    p.add_argument("--output", help="write read\\tlabel TSV here (default stdout)")
    p.add_argument(
        "--rescue", type=float, default=None, metavar="THETA2",
        help="re-attach singletons to large clusters at this lower threshold",
    )
    _add_obs_args(p)
    p.set_defaults(fn=cmd_cluster)

    p = sub.add_parser("stats", help="sequence-set summary statistics")
    p.add_argument("fasta", help="input FASTA file")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("beta", help="beta diversity across samples")
    p.add_argument("fastas", nargs="+", help="one FASTA per sample (>= 2)")
    p.add_argument("--kmer", type=int, default=15)
    p.add_argument("--hashes", type=int, default=50)
    p.add_argument("--threshold", type=float, default=0.95)
    p.add_argument("--method", choices=METHODS, default="hierarchical")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--metric", choices=["bray-curtis", "jaccard", "morisita-horn"],
        default="bray-curtis",
    )
    p.set_defaults(fn=cmd_beta)

    p = sub.add_parser("diversity", help="cluster + diversity report")
    _add_pipeline_args(p)
    _add_obs_args(p)
    p.set_defaults(fn=cmd_diversity)

    p = sub.add_parser("pig", help="run the Algorithm 3 Pig script")
    _add_pipeline_args(p)
    p.add_argument("--nodes", type=int, default=4, help="simulated HDFS datanodes")
    p.add_argument("--show", action="store_true", help="print all output rows")
    p.set_defaults(fn=cmd_pig)

    p = sub.add_parser("simulate", help="modeled runtime sweep (Figure 2)")
    p.add_argument(
        "--nodes-list", type=int, nargs="+", default=[2, 4, 6, 8, 10, 12]
    )
    p.add_argument(
        "--reads-list", type=int, nargs="+",
        default=[1_000, 10_000, 100_000, 1_000_000, 10_000_000],
    )
    p.add_argument("--calibration-reads", type=int, default=150)
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("bench", help="regenerate one paper table/figure")
    p.add_argument("target", choices=["table3", "table4", "table5", "figure2"])
    p.add_argument("--reads", type=int, default=120, help="reads per sample")
    p.add_argument("--samples", nargs="*", help="sample SIDs (table3/table5)")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser("obs", help="telemetry tooling (run logs, reports, traces)")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    pr = obs_sub.add_parser("report", help="summarize a JSONL run log")
    pr.add_argument("run_log", help="run log from --obs or Tracer.write_jsonl")
    pr.set_defaults(fn=cmd_obs_report)
    pc = obs_sub.add_parser(
        "chrome", help="convert a JSONL run log to a Chrome/Perfetto trace"
    )
    pc.add_argument("run_log", help="run log from --obs or Tracer.write_jsonl")
    pc.add_argument(
        "-o", "--output", default="trace.json", help="trace file to write"
    )
    pc.set_defaults(fn=cmd_obs_chrome)

    p = sub.add_parser(
        "service", help="multi-tenant job service (demo and stress harness)"
    )
    svc_sub = p.add_subparsers(dest="service_command", required=True)

    def _add_service_args(sp) -> None:
        sp.add_argument("--slots", type=int, default=2, help="driver slots")
        sp.add_argument("--queue-depth", type=int, default=2)
        sp.add_argument("--policy", choices=["fifo", "fair"], default="fair")
        sp.add_argument("--tenants", type=int, default=3)
        sp.add_argument(
            "--job-seconds", type=float, default=0.02, help="per-job service time"
        )

    sd = svc_sub.add_parser(
        "demo", help="run a small workload; compare measured vs fluid-model latency"
    )
    _add_service_args(sd)
    sd.add_argument("--jobs", type=int, default=2, help="jobs per tenant")
    sd.set_defaults(fn=cmd_service_demo)

    ss = svc_sub.add_parser(
        "stress", help="overload burst: shedding, breaker trip/recovery, drain"
    )
    _add_service_args(ss)
    ss.add_argument("--seed", type=int, default=0, help="backoff jitter seed")
    ss.add_argument(
        "--health-json", default=None, metavar="PATH",
        help="write the final health snapshot as JSON (CI artifact)",
    )
    ss.set_defaults(fn=cmd_service_stress)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `repro obs report ... | head`) closed
        # the pipe; exit quietly like standard unix tools.
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
