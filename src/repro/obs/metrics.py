"""Typed metrics registry: counters, gauges, histograms.

One registry holds every metric of a run under dotted names
(``mr.wire.bytes_wire``, ``pipeline.phase_seconds.sketch``, ...), so the
fragments the engine used to scatter — the Hadoop-style job ``Counters``,
wire-codec byte accounting, pipeline timings, fault/retry counts — land in
one deterministic store that the exporters and the perf-trajectory
snapshot both read.

Three instrument types, Prometheus-flavoured:

* :class:`Counter` — monotonically increasing integer/float.
* :class:`Gauge` — last-write-wins value.
* :class:`Histogram` — fixed bucket boundaries chosen at creation;
  observations land in the first bucket whose upper bound is ``>=`` the
  value (plus an overflow bucket), with running sum and count.

The existing job :class:`~repro.mapreduce.counters.Counters` plumbing
adapts on via :meth:`MetricsRegistry.record_counters`, which maps every
``group:name`` job counter onto a registry counter ``<prefix>.group.name``.

Snapshots are byte-deterministic: :meth:`MetricsRegistry.snapshot` emits
every metric in sorted name order, which is what makes the telemetry
section of ``BENCH_<date>.json`` diffable across runs.
"""

from __future__ import annotations

from bisect import bisect_left

# Durations in seconds: sub-millisecond kernels up to multi-minute jobs.
DEFAULT_SECONDS_BUCKETS = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)
# Payload sizes in bytes: single records up to multi-GB shuffles.
DEFAULT_BYTES_BUCKETS = (
    256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 16_777_216, 268_435_456,
)


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """Last-write-wins value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value


class Histogram:
    """Histogram with fixed bucket boundaries.

    ``counts[i]`` counts observations ``<= buckets[i]``; the final slot is
    the overflow bucket.  Boundaries are fixed at creation so merged and
    repeated runs always bucket identically.
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, buckets: tuple[float, ...]):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(
                f"histogram {self.__class__.__name__} {name!r} needs ascending "
                f"bucket boundaries, got {buckets!r}"
            )
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: int | float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1


class MetricsRegistry:
    """Create-on-first-use store of named metrics."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, factory, type_name: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif type(metric).__name__.lower() != type_name:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__.lower()}, not {type_name}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name), "gauge")

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS
    ) -> Histogram:
        metric = self._get(name, lambda: Histogram(name, buckets), "histogram")
        if metric.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with boundaries "
                f"{metric.buckets}, got {tuple(buckets)}"
            )
        return metric

    # ---- adapters --------------------------------------------------------

    def record_counters(self, counters, prefix: str = "mr") -> None:
        """Fold a job's Hadoop-style counters into the registry.

        Each ``group:name`` job counter increments the registry counter
        ``<prefix>.<group>.<name>``.  Iteration over ``Counters`` is in
        sorted key order, so registration order — and therefore snapshot
        content — is deterministic.  Call once per finished job result;
        amounts accumulate across jobs.
        """
        for group, name, value in counters:
            self.counter(f"{prefix}.{group}.{name}").inc(value)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (in sorted name order)."""
        for name in sorted(other._metrics):
            metric = other._metrics[name]
            if isinstance(metric, Counter):
                self.counter(name).inc(metric.value)
            elif isinstance(metric, Gauge):
                self.gauge(name).set(metric.value)
            else:
                mine = self.histogram(name, metric.buckets)
                for i, c in enumerate(metric.counts):
                    mine.counts[i] += c
                mine.sum += metric.sum
                mine.count += metric.count

    # ---- access ----------------------------------------------------------

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def value(self, name: str, default: int | float = 0) -> int | float:
        """Scalar value of a counter/gauge (``default`` if unregistered)."""
        metric = self._metrics.get(name)
        if metric is None or isinstance(metric, Histogram):
            return default
        return metric.value

    def snapshot(self) -> dict:
        """Deterministic ``{counters, gauges, histograms}`` snapshot,
        every section in sorted name order."""
        counters: dict[str, int | float] = {}
        gauges: dict[str, int | float] = {}
        histograms: dict[str, dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = {
                    "buckets": list(metric.buckets),
                    "counts": list(metric.counts),
                    "sum": metric.sum,
                    "count": metric.count,
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def __len__(self) -> int:
        return len(self._metrics)


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()
    name = ""
    value = 0
    sum = 0.0
    count = 0
    buckets = ()
    counts = ()

    def inc(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Disabled registry: all instruments are the shared no-op."""

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_SECONDS_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def record_counters(self, counters, prefix: str = "mr") -> None:
        pass

    def merge(self, other) -> None:
        pass

    def get(self, name: str) -> None:
        return None

    def value(self, name: str, default: int | float = 0) -> int | float:
        return default

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def __len__(self) -> int:
        return 0


NULL_METRICS = NullMetrics()
