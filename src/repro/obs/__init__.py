"""``repro.obs`` — unified telemetry: span tracing, metrics, run reports.

The engine's observability layer.  One activated :class:`Tracer` captures
the whole story of a run — pipeline phases, Map-Reduce jobs, task
attempts (including retries, speculation and injected faults), shuffle
volume, wire compression — as a span tree plus a typed metrics registry,
and the exporters turn that into a JSONL run log, a Perfetto-loadable
Chrome trace, or a human-readable report::

    from repro.obs import Tracer, build_report

    tracer = Tracer()
    with tracer.activate():
        run = MrMCMinH(...).fit(records)
    tracer.write_jsonl("run.jsonl")
    print(build_report(tracer.spans, tracer.metrics.snapshot()).render())

See DESIGN.md's "Observability" section for the span model and metric
taxonomy, and ``repro obs report --help`` for the CLI.
"""

from repro.obs.export import (
    chrome_trace_events,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BYTES_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import RunReport, build_report, report_from_jsonl
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer, current_tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "current_tracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_BYTES_BUCKETS",
    "write_jsonl",
    "read_jsonl",
    "chrome_trace_events",
    "write_chrome_trace",
    "RunReport",
    "build_report",
    "report_from_jsonl",
]
