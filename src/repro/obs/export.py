"""Telemetry exporters: JSONL event log and Chrome trace-event JSON.

**JSONL** is the durable run log: one JSON object per line — a ``meta``
header, one ``span`` line per span, and a final ``metrics`` line holding
the registry snapshot.  It round-trips losslessly through
:func:`read_jsonl` and is what ``repro obs report`` consumes.

**Chrome trace-event JSON** (the ``B``/``E`` duration-event flavour) loads
directly into Perfetto / ``chrome://tracing``.  Span trees become nested
begin/end pairs; concurrent spans that share a process (the multiprocess
driver's overlapping task spans, speculative attempt races) are spread
across synthetic thread tracks so that every track's event stream is
strictly well-nested — the invariant the trace-event format requires and
the test suite validates.
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.obs.trace import Span, Tracer

JSONL_SCHEMA = 1


# --------------------------------------------------------------- JSONL


def write_jsonl(tracer: Tracer, path) -> None:
    """Write a tracer's spans and metrics as a JSONL run log."""
    with open(path, "w", encoding="ascii") as fh:
        header = {
            "type": "meta",
            "schema": JSONL_SCHEMA,
            "epoch_wall": tracer.epoch_wall,
            "pid": tracer.pid,
            "num_spans": len(tracer.spans),
        }
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for span in tracer.spans:
            record = {"type": "span", **span.to_dict()}
            fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        metrics = {"type": "metrics", "snapshot": tracer.metrics.snapshot()}
        fh.write(json.dumps(metrics, sort_keys=True) + "\n")


def read_jsonl(path) -> tuple[list[Span], dict, dict]:
    """Read a JSONL run log back: ``(spans, metrics_snapshot, meta)``."""
    spans: list[Span] = []
    metrics: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    meta: dict = {}
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            rtype = record.get("type")
            if rtype == "span":
                spans.append(Span.from_dict(record))
            elif rtype == "metrics":
                metrics = record.get("snapshot", metrics)
            elif rtype == "meta":
                meta = record
    return spans, metrics, meta


# ------------------------------------------------- Chrome trace events


def _span_end(span: Span) -> float:
    """Effective end time (open spans render as zero-length)."""
    return span.end_s if span.end_s is not None else span.start_s


def _fits_track(span: Span, occupants: list[Span]) -> bool:
    """A span may join a track iff it is disjoint from or strictly nests
    with every span already on it (laminar family — what keeps the
    track's ``B``/``E`` stream well-formed)."""
    s0, s1 = span.start_s, _span_end(span)
    for other in occupants:
        o0, o1 = other.start_s, _span_end(other)
        if s1 <= o0 or o1 <= s0:  # disjoint
            continue
        if (o0 <= s0 and s1 <= o1) or (s0 <= o0 and o1 <= s1):  # nested
            continue
        return False
    return True


def _assign_tracks(spans: Sequence[Span]) -> dict[int, int]:
    """Map ``span_id -> tid`` such that each (pid, tid) stream nests.

    Greedy interval scheduling: spans are placed longest-first onto the
    lowest track they fit (preferring their parent's track), so the small
    number of genuinely-concurrent spans fan out onto extra tracks while
    serial runs collapse onto track 0.
    """
    tids: dict[int, int] = {}
    by_pid: dict[int, list[Span]] = {}
    for span in spans:
        by_pid.setdefault(span.pid, []).append(span)
    for members in by_pid.values():
        tracks: list[list[Span]] = []
        # Parents before children (ids are allocated in open order), then
        # earliest-start first for deterministic placement.
        for span in sorted(members, key=lambda s: (s.start_s, -(_span_end(s) - s.start_s), s.span_id)):
            preferred = tids.get(span.parent_id) if span.parent_id is not None else None
            order = list(range(len(tracks)))
            if preferred is not None and preferred < len(tracks):
                order.remove(preferred)
                order.insert(0, preferred)
            for tid in order:
                if _fits_track(span, tracks[tid]):
                    tracks[tid].append(span)
                    tids[span.span_id] = tid
                    break
            else:
                tracks.append([span])
                tids[span.span_id] = len(tracks) - 1
    return tids


def chrome_trace_events(spans: Sequence[Span]) -> list[dict]:
    """Convert spans into Chrome trace-event ``B``/``E`` pairs.

    Timestamps are microseconds from the tracer epoch.  Events are emitted
    per (pid, tid) track in nesting order — a depth-first walk of each
    track's containment forest — so every ``B`` closes with a matching
    ``E`` and timestamps never go backwards within a track.
    """
    tids = _assign_tracks(spans)
    events: list[dict] = []

    # Group spans per (pid, tid) and build each track's containment forest.
    tracks: dict[tuple[int, int], list[Span]] = {}
    for span in spans:
        tracks.setdefault((span.pid, tids[span.span_id]), []).append(span)

    for (pid, tid) in sorted(tracks):
        members = sorted(
            tracks[(pid, tid)],
            key=lambda s: (s.start_s, -(_span_end(s) - s.start_s), s.span_id),
        )
        stack: list[Span] = []
        for span in members:
            while stack and not (
                stack[-1].start_s <= span.start_s
                and _span_end(span) <= _span_end(stack[-1])
            ):
                closed = stack.pop()
                events.append(_event("E", closed, tid))
            events.append(_event("B", span, tid))
            stack.append(span)
        while stack:
            events.append(_event("E", stack.pop(), tid))
    return events


def _event(phase: str, span: Span, tid: int) -> dict:
    ts = span.start_s if phase == "B" else _span_end(span)
    event = {
        "name": span.name,
        "cat": span.kind,
        "ph": phase,
        "ts": round(ts * 1e6, 3),
        "pid": span.pid,
        "tid": tid,
    }
    if phase == "B":
        args = {"status": span.status, **span.attrs}
        event["args"] = {k: args[k] for k in sorted(args)}
    return event


def write_chrome_trace(spans: Sequence[Span], path) -> None:
    """Write a Perfetto-loadable Chrome trace JSON file."""
    document = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="ascii") as fh:
        json.dump(document, fh, default=str)
        fh.write("\n")
