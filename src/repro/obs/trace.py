"""Span-based tracer for the Map-Reduce engine and cluster pipeline.

A :class:`Span` is one named, timed interval of work — a pipeline phase, a
job, a task, a task *attempt* — carrying free-form attributes and an
ok/error status.  Spans form a tree: the currently open span is tracked in
a :mod:`contextvars` context variable, so nested ``with tracer.span(...)``
blocks parent correctly through any call depth, across threads, and across
the serial runner's inline attempt loop.

The tracer is **opt-in and dependency-free**.  Nothing is recorded unless
a :class:`Tracer` has been activated::

    tracer = Tracer()
    with tracer.activate():
        run = MrMCMinH(...).fit(records)
    tracer.write_jsonl("run.jsonl")

Instrumented code always goes through :func:`current_tracer`, which
returns a shared no-op :class:`NullTracer` when nothing is active; the
disabled path is a single context-variable read plus a reused null context
manager, so leaving telemetry off costs effectively nothing (<2% on the
pinned perf-trajectory workload, which is the gate).

Child processes cannot append to the driver's span list.  The
multiprocess runner therefore gives each worker attempt its own
throw-away tracer, ships the finished spans back with the attempt result
(:meth:`Tracer.export_payload`), and the driver merges them at the task
barrier with :meth:`Tracer.merge_payload` — span ids are remapped, times
are rebased onto the driver's clock via the wall-clock epoch carried in
the payload, and the worker's root spans are re-parented under the
driver-side task span.  Worker spans keep their real OS pid, so a Chrome
trace of a multiprocess run shows per-process tracks.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.metrics import NULL_METRICS, MetricsRegistry

_CURRENT_TRACER: contextvars.ContextVar["Tracer | None"] = contextvars.ContextVar(
    "repro_obs_tracer", default=None
)
_CURRENT_SPAN: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_span", default=None
)


@dataclass
class Span:
    """One named, timed interval with attributes and a status.

    Times are seconds on the owning tracer's monotonic clock (zero at
    tracer creation); ``epoch_wall`` on the tracer anchors them to wall
    time.  ``end_s`` is ``None`` while the span is open.
    """

    name: str
    span_id: int
    parent_id: int | None
    start_s: float
    end_s: float | None = None
    kind: str = "span"  # "pipeline" | "phase" | "chain" | "job" | "task" | "attempt" | ...
    status: str = "ok"  # "ok" | "error"
    pid: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Span length in seconds (0 for a still-open span)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "kind": self.kind,
            "status": self.status,
            "pid": self.pid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start_s=data["start_s"],
            end_s=data.get("end_s"),
            kind=data.get("kind", "span"),
            status=data.get("status", "ok"),
            pid=data.get("pid", 0),
            attrs=dict(data.get("attrs", {})),
        )


class Tracer:
    """Collects spans and metrics for one run.

    ``enabled`` is True; the :class:`NullTracer` twin is the disabled
    implementation behind the same interface.
    """

    enabled = True

    def __init__(self) -> None:
        self.epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()
        self.pid = os.getpid()
        self.spans: list[Span] = []
        self.metrics = MetricsRegistry()
        # itertools.count is atomic under the GIL, so span ids stay unique
        # when service worker threads share one tracer.
        self._ids = itertools.count(1)

    # ---- clock -----------------------------------------------------------

    def now(self) -> float:
        """Seconds since tracer creation on the monotonic clock."""
        return time.perf_counter() - self._epoch_perf

    # ---- span creation ---------------------------------------------------

    def _new_id(self) -> int:
        return next(self._ids)

    @contextmanager
    def span(self, name: str, *, kind: str = "span", **attrs) -> Iterator[Span]:
        """Open a span as the current context; close it on exit.

        The span parents under whatever span is current when it opens.  An
        exception escaping the block marks the span ``status="error"`` and
        records the exception text before re-raising.
        """
        parent = _CURRENT_SPAN.get()
        span = Span(
            name=name,
            span_id=self._new_id(),
            parent_id=parent.span_id if parent is not None else None,
            start_s=self.now(),
            kind=kind,
            pid=self.pid,
            attrs=dict(attrs),
        )
        self.spans.append(span)
        token = _CURRENT_SPAN.set(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            _CURRENT_SPAN.reset(token)
            span.end_s = self.now()

    def start(
        self,
        name: str,
        *,
        kind: str = "span",
        parent: Span | None = None,
        start_s: float | None = None,
        **attrs,
    ) -> Span:
        """Manual span open (does not touch the context variable).

        For code that interleaves many concurrent spans from one thread —
        the multiprocess driver's polling loop — where ``with`` blocks
        cannot express the overlap.
        """
        span = Span(
            name=name,
            span_id=self._new_id(),
            parent_id=parent.span_id if parent is not None else None,
            start_s=self.now() if start_s is None else start_s,
            kind=kind,
            pid=self.pid,
            attrs=dict(attrs),
        )
        self.spans.append(span)
        return span

    def finish(
        self, span: Span, *, end_s: float | None = None, status: str | None = None
    ) -> Span:
        """Close a manually opened span."""
        span.end_s = self.now() if end_s is None else end_s
        if status is not None:
            span.status = status
        return span

    def current_span(self) -> Span | None:
        """The innermost open context-managed span, if any."""
        return _CURRENT_SPAN.get()

    # ---- activation ------------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Make this tracer the one :func:`current_tracer` returns."""
        token = _CURRENT_TRACER.set(self)
        try:
            yield self
        finally:
            _CURRENT_TRACER.reset(token)

    # ---- cross-process merge ---------------------------------------------

    def export_payload(self) -> dict:
        """Package finished spans for shipping across a process boundary.

        Span times stay on this tracer's clock; ``epoch_wall`` lets the
        receiver rebase them (both clocks tick real seconds, so only the
        origin differs).
        """
        return {
            "epoch_wall": self.epoch_wall,
            "pid": self.pid,
            "spans": [s.to_dict() for s in self.spans],
        }

    def merge_payload(self, payload: dict, *, parent: Span | None = None) -> list[Span]:
        """Merge spans recorded by another tracer (typically in a worker).

        Ids are remapped into this tracer's id space, times are rebased
        using the wall-clock epoch difference, and spans with no parent in
        the payload are re-parented under ``parent``.  Returns the merged
        spans (appended to :attr:`spans`).
        """
        offset = payload["epoch_wall"] - self.epoch_wall
        remap: dict[int, int] = {}
        merged: list[Span] = []
        for data in payload["spans"]:
            span = Span.from_dict(data)
            remap[span.span_id] = self._new_id()
            span.span_id = remap[span.span_id]
            if span.parent_id is not None and span.parent_id in remap:
                span.parent_id = remap[span.parent_id]
            elif parent is not None:
                span.parent_id = parent.span_id
            else:
                span.parent_id = None
            span.start_s += offset
            if span.end_s is not None:
                span.end_s += offset
            self.spans.append(span)
            merged.append(span)
        return merged

    # ---- convenience -----------------------------------------------------

    def write_jsonl(self, path) -> None:
        """Write the JSONL event log (see :mod:`repro.obs.export`)."""
        from repro.obs.export import write_jsonl

        write_jsonl(self, path)


class _NullSpan:
    """Inert span: accepts attribute writes, records nothing."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = None
    start_s = 0.0
    end_s = 0.0
    kind = "null"
    pid = 0
    duration_s = 0.0

    # ``span.status = "error"`` and ``span.attrs["k"] = v`` must both be
    # no-ops without allocating.
    @property
    def status(self) -> str:
        return "ok"

    @status.setter
    def status(self, value) -> None:
        pass

    @property
    def attrs(self) -> "_DiscardDict":
        return _DISCARD

    def to_dict(self) -> dict:  # pragma: no cover - debugging aid
        return {}


class _DiscardDict(dict):
    """Dict that silently drops writes (shared by every null span)."""

    def __setitem__(self, key, value) -> None:
        pass

    def setdefault(self, key, default=None):
        return default

    def update(self, *args, **kwargs) -> None:
        pass


_DISCARD = _DiscardDict()
_NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Reusable context manager yielding the shared null span."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CTX = _NullSpanContext()


class NullTracer:
    """Disabled tracer: every operation is a constant-time no-op."""

    enabled = False
    epoch_wall = 0.0
    pid = 0
    spans: list = []
    metrics = NULL_METRICS

    def now(self) -> float:
        return 0.0

    def span(self, name: str, *, kind: str = "span", **attrs) -> _NullSpanContext:
        return _NULL_CTX

    def start(self, name: str, **kwargs) -> _NullSpan:
        return _NULL_SPAN

    def finish(self, span, **kwargs) -> _NullSpan:
        return _NULL_SPAN

    def current_span(self) -> None:
        return None

    def export_payload(self) -> dict:
        return {"epoch_wall": 0.0, "pid": 0, "spans": []}

    def merge_payload(self, payload: dict, *, parent=None) -> list:
        return []

    def write_jsonl(self, path) -> None:  # pragma: no cover - nothing to write
        raise RuntimeError("cannot export from a NullTracer; activate a Tracer first")


NULL_TRACER = NullTracer()


def current_tracer() -> Tracer | NullTracer:
    """The active tracer, or the shared no-op tracer when none is active."""
    return _CURRENT_TRACER.get() or NULL_TRACER
