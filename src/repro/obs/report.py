"""Run reports: turn a span tree + metrics snapshot into a run-level story.

:func:`build_report` digests the telemetry of one run — wherever it came
from (a live :class:`~repro.obs.trace.Tracer`, a JSONL log read back by
:func:`~repro.obs.export.read_jsonl`, or modeled spans synthesised by
``SimReport.to_spans``) — into a :class:`RunReport`: total wall-clock,
per-phase durations, per-job shuffle volume, the critical path through
the span tree, and fault/retry activity.  ``repro obs report <run.jsonl>``
renders it for humans; tests assert on the structured fields.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.obs.trace import Span


def _duration(span: Span) -> float:
    return span.duration_s


@dataclass
class PhaseSummary:
    """Aggregate of every phase span sharing one name."""

    name: str
    seconds: float
    count: int


@dataclass
class JobSummary:
    """Aggregate of one job span and its task/attempt children."""

    name: str
    seconds: float
    tasks: int
    attempts: int
    failed_attempts: int
    shuffle_bytes: int


@dataclass
class RunReport:
    """Structured summary of one telemetry log."""

    wall_seconds: float
    phases: list[PhaseSummary] = field(default_factory=list)
    jobs: list[JobSummary] = field(default_factory=list)
    critical_path: list[tuple[str, float]] = field(default_factory=list)
    num_spans: int = 0
    attempts: int = 0
    failed_attempts: int = 0
    speculative_wins: int = 0
    recovered_tasks: int = 0
    shuffle_bytes: int = 0
    shuffle_records: int = 0
    retries: int = 0
    metrics: dict = field(default_factory=dict)

    @property
    def phase_seconds(self) -> float:
        """Sum of per-phase durations (compare against wall_seconds)."""
        return sum(p.seconds for p in self.phases)

    @property
    def phase_coverage(self) -> float:
        """Fraction of wall-clock explained by phase spans."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.phase_seconds / self.wall_seconds

    def render(self) -> str:
        """Human-readable multi-section report."""
        lines: list[str] = []
        lines.append("== run report ==")
        lines.append(
            f"wall-clock: {self.wall_seconds:.4f}s over {self.num_spans} spans"
        )
        if self.phases:
            lines.append("")
            lines.append("per-phase wall-clock:")
            for phase in self.phases:
                share = (
                    phase.seconds / self.wall_seconds if self.wall_seconds > 0 else 0.0
                )
                lines.append(
                    f"  {phase.name:<24} {phase.seconds:>10.4f}s  "
                    f"{share:>6.1%}  x{phase.count}"
                )
            lines.append(
                f"  {'(phase total)':<24} {self.phase_seconds:>10.4f}s  "
                f"{self.phase_coverage:>6.1%}"
            )
        if self.jobs:
            lines.append("")
            lines.append("jobs:")
            lines.append(
                "  name                     seconds    tasks  attempts  "
                "failed  shuffle_bytes"
            )
            for job in self.jobs:
                lines.append(
                    f"  {job.name:<22} {job.seconds:>9.4f}  {job.tasks:>7d}  "
                    f"{job.attempts:>8d}  {job.failed_attempts:>6d}  "
                    f"{job.shuffle_bytes:>13d}"
                )
        lines.append("")
        lines.append(
            "shuffle: "
            f"{self.shuffle_bytes} bytes across {self.shuffle_records} records"
        )
        lines.append(
            "faults: "
            f"{self.failed_attempts} failed attempt(s), {self.retries} retrie(s), "
            f"{self.speculative_wins} speculative win(s), "
            f"{self.recovered_tasks} checkpoint-recovered task(s)"
        )
        if self.critical_path:
            path = " -> ".join(
                f"{name} ({seconds:.4f}s)" for name, seconds in self.critical_path
            )
            lines.append(f"critical path: {path}")
        else:
            lines.append("critical path: (no spans)")
        return "\n".join(lines)


def build_report(spans: Sequence[Span], metrics: dict | None = None) -> RunReport:
    """Digest spans (and an optional metrics snapshot) into a report."""
    metrics = metrics or {"counters": {}, "gauges": {}, "histograms": {}}
    report = RunReport(wall_seconds=0.0, num_spans=len(spans), metrics=metrics)
    if not spans:
        return report

    by_id = {s.span_id: s for s in spans}
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    roots = children.get(None, [])

    start = min(s.start_s for s in spans)
    end = max(s.end_s if s.end_s is not None else s.start_s for s in spans)
    report.wall_seconds = end - start

    # ---- phases -----------------------------------------------------------
    phase_acc: dict[str, PhaseSummary] = {}
    phase_kind = "phase" if any(s.kind == "phase" for s in spans) else "job"
    for span in spans:
        if span.kind != phase_kind:
            continue
        acc = phase_acc.get(span.name)
        if acc is None:
            phase_acc[span.name] = PhaseSummary(span.name, _duration(span), 1)
        else:
            acc.seconds += _duration(span)
            acc.count += 1
    report.phases = list(phase_acc.values())

    # ---- jobs / tasks / attempts -----------------------------------------
    counters = metrics.get("counters", {})
    for span in spans:
        if span.kind == "attempt":
            report.attempts += 1
            if span.status == "error":
                report.failed_attempts += 1
            if span.attrs.get("speculative_win"):
                report.speculative_wins += 1
        elif span.kind == "task" and span.attrs.get("recovered"):
            report.recovered_tasks += 1

    def _descendants(span: Span):
        stack = [span]
        while stack:
            node = stack.pop()
            for child in children.get(node.span_id, ()):
                yield child
                stack.append(child)

    for span in spans:
        if span.kind != "job":
            continue
        tasks = attempts = failed = 0
        for sub in _descendants(span):
            if sub.kind == "task":
                tasks += 1
            elif sub.kind == "attempt":
                attempts += 1
                if sub.status == "error":
                    failed += 1
        report.jobs.append(
            JobSummary(
                name=span.name,
                seconds=_duration(span),
                tasks=tasks,
                attempts=attempts,
                failed_attempts=failed,
                shuffle_bytes=int(span.attrs.get("shuffle_bytes", 0)),
            )
        )
        report.shuffle_bytes += int(span.attrs.get("shuffle_bytes", 0))
    report.shuffle_records = int(counters.get("mr.job.shuffle_records", 0))
    report.retries = int(counters.get("mr.fault.task_retries", 0))
    if report.retries == 0 and report.failed_attempts:
        # Metrics may be absent (e.g. pure span logs); fall back to spans.
        report.retries = report.failed_attempts

    # ---- critical path ----------------------------------------------------
    if roots:
        node = max(roots, key=lambda s: (_duration(s), -s.start_s))
        while node is not None:
            report.critical_path.append((node.name, _duration(node)))
            kids = children.get(node.span_id, [])
            node = max(kids, key=lambda s: (_duration(s), -s.start_s)) if kids else None
    return report


def report_from_jsonl(path) -> RunReport:
    """Convenience: read a JSONL run log and build its report."""
    from repro.obs.export import read_jsonl

    spans, metrics, _meta = read_jsonl(path)
    return build_report(spans, metrics)
