"""Taxonomic profiling: cluster, classify, and report community structure.

Run:  python examples/taxonomic_classification.py

The paper's end-to-end use case: 16S reads are binned (MrMC-MinH), each
OTU is classified against a reference database of known marker genes, and
the community profile — including *orphan* OTUs from never-sequenced
organisms, which the paper's introduction calls out as the thing targeted
surveys can miss — is reported with a singleton-rescue pass to recover
errored reads first.
"""

from repro import MrMCMinH
from repro.cluster.classify import (
    ReferenceDb,
    classification_summary,
    classify_clusters,
)
from repro.cluster.denoise import rescue_small_clusters
from repro.datasets.sixteen_s import SixteenSModel, amplicon_reads
from repro.eval.report import Table
from repro.minhash.sketch import SketchingConfig
from repro.utils.rng import ensure_rng


def main() -> None:
    model = SixteenSModel(divergence=0.25, seed=42)
    known = [f"Taxon_{chr(65 + i)}" for i in range(5)]     # A..E in references
    community = known[:3] + ["Unknown_X"]                  # X is not in the DB
    abundances = [120, 60, 30, 25]

    rng = ensure_rng(42)
    reads = []
    for taxon, count in zip(community, abundances):
        window = model.variable_window(model.gene_for_taxon(taxon), region=2, flank=30)
        reads.extend(
            amplicon_reads(window, count, label=taxon, id_prefix=taxon,
                           mean_length=90, rng=rng)
        )
    print(f"community: {len(reads)} reads from {len(community)} organisms "
          f"(one absent from the reference database)")

    config = SketchingConfig(kmer_size=8, num_hashes=64, seed=42)
    run = MrMCMinH(
        kmer_size=config.kmer_size, num_hashes=config.num_hashes,
        threshold=0.5, seed=42,
    ).fit(reads)
    print(f"clustered into {run.assignment.num_clusters} OTUs")

    rescued = rescue_small_clusters(
        run.assignment, run.sketches, rescue_threshold=0.25, max_size=1
    )
    print(f"after singleton rescue: {rescued.num_clusters} OTUs")

    db = ReferenceDb(
        {name: model.gene_for_taxon(name) for name in known}, config
    )
    classes = classify_clusters(
        rescued, run.sketches, db, min_similarity=0.5, records=reads
    )
    summary = classification_summary(classes, rescued)

    table = Table(
        title="Community profile",
        columns=["Assigned taxon", "Reads", "Fraction"],
    )
    total = sum(summary.values())
    for name in sorted(summary, key=summary.get, reverse=True):
        table.add_row(name, summary[name], f"{100 * summary[name] / total:.1f}%")
    print()
    print(table.render())

    orphans = [c for c in classes.values() if c.is_orphan]
    print(f"\n{len(orphans)} orphan OTU(s) — candidate novel organisms "
          f"(best reference similarity "
          f"{max((c.similarity for c in orphans), default=0):.2f})")


if __name__ == "__main__":
    main()
