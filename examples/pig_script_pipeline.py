"""Run the paper's actual Pig script (Algorithm 3) end-to-end.

Run:  python examples/pig_script_pipeline.py

Stages a FASTA sample onto the simulated HDFS, executes the transcribed
Algorithm 3 script through the Pig engine (every FOREACH compiles to a
Map-Reduce job), and reads both clustering outputs back from HDFS —
the full Figure 1 flow.
"""

from repro.datasets import generate_whole_metagenome_sample
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.pig import MRMC_MINH_SCRIPT, PigEngine, default_params
from repro.seq.fasta import format_fasta


def main() -> None:
    reads = generate_whole_metagenome_sample(
        "S3", num_reads=80, genome_length=5000, seed=5
    )

    hdfs = SimulatedHDFS(num_datanodes=4, block_size=16 * 1024, replication=2)
    hdfs.put("/data/s3.fa", format_fasta(reads))
    meta = hdfs.stat("/data/s3.fa")
    print(f"staged {meta.size} bytes as {meta.num_blocks} HDFS blocks "
          f"(replication {hdfs.replication})")

    params = default_params(
        input_path="/data/s3.fa",
        output_hier="/results/hier",
        output_greedy="/results/greedy",
        kmer=5,
        num_hashes=100,
        cutoff=0.78,
        link="average",
    )
    print("script parameters:", {k: v for k, v in params.items() if k != "INPUT"})

    engine = PigEngine(hdfs, num_map_tasks=4)
    result = engine.run(MRMC_MINH_SCRIPT, params)

    print("\nrelations produced:")
    for alias, rel in result.relations.items():
        print(f"  {alias}: {len(rel)} rows, fields {rel.fields}")
    print("Map-Reduce jobs executed:", [t.job_name for t in result.traces])

    for path in ("/results/hier", "/results/greedy"):
        lines = hdfs.get_text(path).strip().splitlines()
        labels = {line.split("\t")[1] for line in lines}
        print(f"\n{path}: {len(lines)} sequences in {len(labels)} clusters")
        for line in lines[:5]:
            print("  ", line)


if __name__ == "__main__":
    main()
