"""Cross-sample community comparison (beta diversity).

Run:  python examples/beta_diversity_survey.py

The Sogin study behind Table I compares deep-sea communities across
sites.  This example clusters three environmental samples *jointly* (so
OTU labels are shared), derives per-sample OTU tables, and prints
Bray-Curtis / Jaccard beta-diversity matrices — showing the two Labrador
seawater samples more alike than either is to the hydrothermal-vent
sample.
"""

from repro import MrMCMinH
from repro.datasets import generate_environmental_sample
from repro.eval.beta import beta_diversity_matrix, otu_table
from repro.eval.report import Table
from repro.seq.records import SequenceRecord
from repro.seq.stats import sequence_set_stats

#: (sid, region): 53R and 137 are both Labrador seawater, so they draw
#: from a shared regional OTU pool (same organisms, different
#: abundances); FS312 is an Axial Seamount vent site with its own pool.
SAMPLES = [("53R", "labrador"), ("137", "labrador"), ("FS312", "vent")]


def main() -> None:
    reads: list[SequenceRecord] = []
    sample_of: dict[str, str] = {}
    for sid, region in SAMPLES:
        sample = generate_environmental_sample(
            sid, num_reads=250, seed=0, region=region
        )
        # Prefix ids so joint clustering keeps them unique.
        for r in sample:
            record = SequenceRecord(f"{sid}.{r.read_id}", r.sequence, r.header, r.label)
            reads.append(record)
            sample_of[record.read_id] = sid
        print(f"{sid}: {sequence_set_stats(sample).describe()}")

    print("\njointly clustering", len(reads), "reads (k=15, n=50, θ=0.95)...")
    run = MrMCMinH(kmer_size=15, num_hashes=50, threshold=0.95, seed=1).fit(reads)
    print(f"{run.assignment.num_clusters} OTUs total")

    tables = otu_table(run.assignment, sample_of)
    for metric in ("bray-curtis", "jaccard"):
        ids, matrix = beta_diversity_matrix(tables, metric=metric)
        table = Table(title=f"Beta diversity ({metric})", columns=["Sample"] + ids)
        for i, sid in enumerate(ids):
            table.add_row(sid, *[round(v, 3) for v in matrix[i]])
        print()
        print(table.render())


if __name__ == "__main__":
    main()
