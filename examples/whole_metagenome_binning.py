"""Whole-metagenome binning: MrMC-MinH vs MetaCluster on a hard mix.

Run:  python examples/whole_metagenome_binning.py

Reproduces the Table III comparison on one sample: the S12 six-species
mix spanning species-to-kingdom taxonomic distances.  Shows how the
hierarchical variant trades runtime for accuracy against the greedy
variant and the MetaCluster baseline.
"""

import time

from repro import MrMCMinH, weighted_cluster_accuracy, weighted_cluster_similarity
from repro.baselines import metacluster_cluster
from repro.datasets import generate_whole_metagenome_sample
from repro.eval.metrics import normalized_mutual_information
from repro.eval.report import Table


def main() -> None:
    reads = generate_whole_metagenome_sample(
        "S12", num_reads=300, genome_length=8000, seed=3
    )
    truth = {r.read_id: r.label for r in reads}
    sequences = {r.read_id: r.sequence for r in reads}
    print(f"S12: {len(reads)} reads, {len(set(truth.values()))} species "
          "(species..kingdom level differences)")

    table = Table(
        title="S12 binning comparison",
        columns=["Method", "#Cluster", "W.Acc", "W.Sim", "NMI", "Time(s)"],
    )

    def report(name, assignment, seconds):
        table.add_row(
            name,
            assignment.num_clusters,
            weighted_cluster_accuracy(assignment, truth, min_cluster_size=3),
            weighted_cluster_similarity(
                assignment, sequences, min_cluster_size=3, max_pairs_per_cluster=25
            ),
            round(normalized_mutual_information(assignment, truth), 3),
            seconds,
        )

    for method in ("hierarchical", "greedy"):
        model = MrMCMinH(
            kmer_size=5, num_hashes=100, threshold=0.78,
            method=method, estimator="positional", seed=3,
        )
        t0 = time.perf_counter()
        run = model.fit(reads)
        report(f"MrMC-MinH^{method[0]}", run.assignment, time.perf_counter() - t0)

    t0 = time.perf_counter()
    assignment = metacluster_cluster(reads, seed=3)
    report("MetaCluster", assignment, time.perf_counter() - t0)

    print(table.render())


if __name__ == "__main__":
    main()
