"""Sparse collision-join clustering: the path that scales.

Run:  python examples/sparse_scaling.py

Compares the dense all-pairs pipeline against the min-hash collision join
(`sparse=True`) on growing 16S samples, printing wall time, the candidate
fraction actually scored, and verifying the partitions agree — the
optimization that makes Figure 2's 10-million-read points plausible (see
EXPERIMENTS.md).

Two candidate filters are contrasted:

* the exact OR-filter (>=1 of n component collisions) — guarantees the
  same partition as the dense run, but 16S reads share conserved primer
  flanks, so even dissimilar reads collide *somewhere* among 50 hashes
  (the LSH OR-amplification curve: J=0.07 -> 97 % candidate rate);
* the banded AND/OR filter (``LshIndex``, bands of 5) — candidates drop
  to the truly-similar tail, which is what MC-LSH and production LSH
  systems use at the price of a (quantifiably tiny) miss probability.

On a single machine the dense NumPy matrix stays fastest at these sizes;
the sparse path's value is its Map-Reduce shape (grouping, not an N^2
scan), which is what the Figure 2 model schedules at 10 M reads.
"""

import time

from repro import MrMCMinH
from repro.cluster.sparse import candidate_pairs
from repro.datasets import generate_environmental_sample
from repro.eval.report import Table
from repro.minhash.lsh import all_candidate_pairs
from repro.minhash.sketch import SketchingConfig, compute_sketches


def partition(assignment):
    groups = {}
    for rid, lbl in assignment.items():
        groups.setdefault(lbl, set()).add(rid)
    return {frozenset(g) for g in groups.values()}


def main() -> None:
    table = Table(
        title="Dense vs sparse single-linkage MrMC-MinH^h (16S, k=15, n=50)",
        columns=["Reads", "Dense (s)", "Sparse (s)", "OR-cand %", "Band-cand %",
                 "Clusters", "Same partition"],
    )
    for num_reads in (200, 500, 1000):
        reads = generate_environmental_sample("53R", num_reads=num_reads, seed=2)
        common = dict(
            kmer_size=15, num_hashes=50, threshold=0.95,
            method="hierarchical", linkage="single", seed=2,
        )
        sketches = compute_sketches(
            reads, SketchingConfig(kmer_size=15, num_hashes=50, seed=2)
        )
        n = len(sketches)
        all_pairs = n * (n - 1) / 2
        cand_pct = 100 * len(candidate_pairs(sketches)) / all_pairs
        band_pct = 100 * len(all_candidate_pairs(sketches, band_size=5)) / all_pairs
        t0 = time.perf_counter()
        dense = MrMCMinH(**common).fit(reads)
        dense_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        sparse = MrMCMinH(**common, sparse=True).fit(reads)
        sparse_s = time.perf_counter() - t0

        same = partition(dict(dense.assignment)) == partition(dict(sparse.assignment))
        table.add_row(
            num_reads, dense_s, sparse_s, round(cand_pct, 1), round(band_pct, 2),
            sparse.assignment.num_clusters, "yes" if same else "NO",
        )
    print(table.render())


if __name__ == "__main__":
    main()
