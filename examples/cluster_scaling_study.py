"""Cluster-scaling study: how many EMR nodes does a sample need?

Run:  python examples/cluster_scaling_study.py

Uses the calibrated cost model and the discrete-event cluster simulator
to answer a capacity-planning question the paper's Figure 2 motivates:
given an input size, where does adding nodes stop paying?  Prints the
modeled runtime surface plus the smallest cluster within 10 % of the
12-node runtime for each input size.
"""

from repro.bench import run_figure2
from repro.bench.harness import ExperimentScale

NODES = (2, 3, 4, 6, 8, 10, 12)
READS = (1_000, 10_000, 100_000, 1_000_000, 10_000_000)


def main() -> None:
    scale = ExperimentScale(num_reads=150, genome_length=5000)
    table, result = run_figure2(node_counts=NODES, read_counts=READS, scale=scale)
    print(table.render())
    print(
        f"\ncalibrated: {result.cost_model.map_cost_per_record_s * 1e3:.3f} ms/read sketch, "
        f"{result.cost_model.pair_cost_s * 1e6:.3f} us/pair similarity"
    )

    print("\nrecommended cluster sizes (within 10% of 12-node runtime):")
    for reads in READS:
        series = result.series(reads)
        best = series[-1][1]
        for nodes, minutes in series:
            if minutes <= best * 1.10:
                print(f"  {reads:>12,} reads -> {nodes} nodes ({minutes:.1f} min)")
                break


if __name__ == "__main__":
    main()
