"""Quickstart: cluster a small metagenome sample with MrMC-MinH.

Run:  python examples/quickstart.py

Builds a three-species synthetic sample, clusters it with both variants
of MrMC-MinH (Algorithm 1 greedy, Algorithm 2 hierarchical), and scores
the results against the known ground truth.
"""

from repro import MrMCMinH, weighted_cluster_accuracy, weighted_cluster_similarity
from repro.datasets import generate_whole_metagenome_sample


def main() -> None:
    # A Table-II style sample: three species at 1:1:8 abundance.
    reads = generate_whole_metagenome_sample(
        "S10", num_reads=250, genome_length=6000, seed=7
    )
    truth = {r.read_id: r.label for r in reads}
    sequences = {r.read_id: r.sequence for r in reads}
    print(f"sample: {len(reads)} reads from {len(set(truth.values()))} species")

    for method in ("hierarchical", "greedy"):
        model = MrMCMinH(
            kmer_size=5,           # $KMER   - paper's whole-metagenome setting
            num_hashes=100,        # $NUMHASH
            threshold=0.78,        # $CUTOFF
            method=method,
            linkage="average",     # $LINK (hierarchical only)
            estimator="positional",
            seed=7,
        )
        run = model.fit(reads)
        acc = weighted_cluster_accuracy(run.assignment, truth, min_cluster_size=3)
        sim = weighted_cluster_similarity(
            run.assignment, sequences, min_cluster_size=3, max_pairs_per_cluster=30
        )
        print(
            f"MrMC-MinH^{method[0]}: {run.assignment.num_clusters} clusters, "
            f"W.Acc={acc:.1f}%, W.Sim={sim:.1f}%, "
            f"wall={run.wall_seconds:.2f}s "
            f"(stages: {', '.join(f'{k}={v:.2f}s' for k, v in run.timings.items())})"
        )


if __name__ == "__main__":
    main()
