"""16S diversity survey: OTU picking on an environmental sample.

Run:  python examples/environmental_16s_survey.py

The paper's motivating use case: characterise microbial diversity from a
454 amplicon library.  Generates a Sogin-style deep-sea sample, clusters
it at several similarity thresholds (the paper: "clustering results at
different hierarchical taxonomic levels are also produced by setting
similarity threshold"), and prints the OTU counts per level plus a
rank-abundance summary at 95 %.
"""

from collections import Counter

from repro import MrMCMinH
from repro.datasets import generate_environmental_sample, spec_by_sid_env
from repro.eval.report import Table


def main() -> None:
    spec = spec_by_sid_env("55R")
    reads = generate_environmental_sample(spec, num_reads=400, seed=11)
    print(
        f"sample {spec.sid} ({spec.site}, {spec.depth_m} m, {spec.temperature_c} C): "
        f"{len(reads)} reads, mean length "
        f"{sum(len(r) for r in reads) / len(reads):.0f} bp"
    )

    # OTUs at decreasing similarity ~ increasingly coarse taxonomy.
    table = Table(
        title="OTU counts by similarity threshold (MrMC-MinH^h, k=15, n=50)",
        columns=["Threshold", "#OTU (>=2 reads)", "#OTU (all)", "Largest OTU"],
    )
    final = None
    for theta in (0.99, 0.95, 0.90, 0.80):
        model = MrMCMinH(
            kmer_size=15, num_hashes=50, threshold=theta,
            method="hierarchical", seed=11,
        )
        assignment = model.fit(reads).assignment
        sizes = assignment.sizes()
        table.add_row(
            f"{theta:.2f}",
            sum(1 for s in sizes.values() if s >= 2),
            assignment.num_clusters,
            max(sizes.values()),
        )
        if theta == 0.95:
            final = assignment
    print(table.render())

    # Rank-abundance at the paper's 95% threshold: the rare biosphere.
    assert final is not None
    histogram = Counter(final.sizes().values())
    print("\nOTU size distribution at 95% (size: count):")
    for size in sorted(histogram, reverse=True)[:10]:
        print(f"  {size:4d}: {histogram[size]}")
    singletons = histogram.get(1, 0)
    print(f"rare biosphere: {singletons} singleton OTUs "
          f"({100 * singletons / final.num_clusters:.0f}% of OTUs)")


if __name__ == "__main__":
    main()
