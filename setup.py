"""Legacy setup shim: the environment lacks the ``wheel`` package, so
``pip install -e . --no-build-isolation --no-use-pep517`` needs this file.
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
