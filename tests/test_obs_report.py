"""Run-report tests: a traced pipeline run must explain its wall-clock.

The headline acceptance check lives here: running the MrMC-MinH pipeline
with tracing enabled yields per-phase durations that sum to within 5% of
the traced wall-clock, and a non-empty critical path from the pipeline
root down to a task attempt.
"""

import random

import pytest

from repro.cluster.pipeline import MrMCMinH
from repro.mapreduce.simulator import ClusterSimulator, ClusterSpec
from repro.obs import Tracer, build_report, report_from_jsonl
from repro.seq.records import SequenceRecord


@pytest.fixture(scope="module")
def traced_pipeline_run():
    rng = random.Random(0)
    records = [
        SequenceRecord(
            read_id=f"r{i}",
            sequence="".join(rng.choice("ACGT") for _ in range(120)),
        )
        for i in range(40)
    ]
    model = MrMCMinH(
        kmer_size=5,
        num_hashes=32,
        threshold=0.8,
        method="hierarchical",
        linkage="average",
    )
    tracer = Tracer()
    with tracer.activate():
        run = model.fit(records)
    return tracer, run


class TestPipelineReport:
    def test_phase_durations_sum_within_5pct_of_wall_clock(self, traced_pipeline_run):
        tracer, _run = traced_pipeline_run
        report = build_report(tracer.spans, tracer.metrics.snapshot())
        names = {p.name for p in report.phases}
        assert names == {"phase:sketch", "phase:similarity", "phase:cluster"}
        assert report.wall_seconds > 0
        assert 0.95 <= report.phase_coverage <= 1.05

    def test_critical_path_runs_root_to_attempt(self, traced_pipeline_run):
        tracer, _run = traced_pipeline_run
        report = build_report(tracer.spans)
        assert report.critical_path
        assert report.critical_path[0][0] == "pipeline:mrmcminh"
        # Each hop's duration fits inside its parent's.
        durations = [seconds for _name, seconds in report.critical_path]
        assert durations == sorted(durations, reverse=True)
        assert report.critical_path[-1][0].startswith("attempt:")

    def test_pipeline_gauges_recorded(self, traced_pipeline_run):
        tracer, run = traced_pipeline_run
        gauges = tracer.metrics.snapshot()["gauges"]
        assert gauges["pipeline.sequences"] == len(run.sketches)
        assert gauges["pipeline.clusters"] == run.assignment.num_clusters
        assert gauges["pipeline.sketch_reads_per_sec"] > 0
        for phase in ("sketch", "similarity", "cluster"):
            assert gauges[f"pipeline.phase_seconds.{phase}"] == pytest.approx(
                run.timings[phase], rel=0.05
            )

    def test_shuffle_volume_surfaces_in_report(self, traced_pipeline_run):
        tracer, _run = traced_pipeline_run
        report = build_report(tracer.spans, tracer.metrics.snapshot())
        assert report.shuffle_bytes > 0
        assert report.shuffle_records > 0
        assert report.jobs, "job summaries missing"

    def test_report_round_trips_through_jsonl(self, traced_pipeline_run, tmp_path):
        tracer, _run = traced_pipeline_run
        path = tmp_path / "run.jsonl"
        tracer.write_jsonl(path)
        report = report_from_jsonl(path)
        direct = build_report(tracer.spans, tracer.metrics.snapshot())
        assert report.wall_seconds == pytest.approx(direct.wall_seconds)
        assert report.critical_path == direct.critical_path
        rendered = report.render()
        assert "== run report ==" in rendered
        assert "critical path: pipeline:mrmcminh" in rendered


class TestSimulatedSpans:
    def test_sim_report_to_spans_feeds_the_same_report(self, traced_pipeline_run):
        _tracer, run = traced_pipeline_run
        sim = ClusterSimulator(ClusterSpec(num_nodes=4))
        sim_report = sim.simulate_pipeline(run.traces)
        spans = sim_report.to_spans()

        # Well-formed tree with the modeled total as the root duration.
        root = next(s for s in spans if s.parent_id is None)
        assert root.name == "pipeline:simulated"
        assert root.duration_s == pytest.approx(sim_report.total_s)

        report = build_report(spans)
        assert report.wall_seconds == pytest.approx(sim_report.total_s)
        # Modeled jobs are back-to-back, so job spans explain everything.
        assert report.phase_coverage == pytest.approx(1.0)
        assert report.critical_path[0][0] == "pipeline:simulated"
        job_names = {j.name for j in report.jobs}
        assert {f"job:{j.job_name}" for j in sim_report.jobs} == job_names

    def test_modeled_stages_tile_each_job(self, traced_pipeline_run):
        _tracer, run = traced_pipeline_run
        sim = ClusterSimulator(ClusterSpec(num_nodes=2))
        spans = sim.simulate_pipeline(run.traces).to_spans()
        for job_span in (s for s in spans if s.kind == "job"):
            stages = [s for s in spans if s.parent_id == job_span.span_id]
            assert [s.name for s in stages] == ["startup", "map", "shuffle", "reduce"]
            assert stages[0].start_s == pytest.approx(job_span.start_s)
            assert stages[-1].end_s == pytest.approx(job_span.end_s)
            for prev, nxt in zip(stages, stages[1:]):
                assert nxt.start_s == pytest.approx(prev.end_s)
