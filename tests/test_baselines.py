"""Tests for the seven baseline clustering algorithms."""

import numpy as np
import pytest

from repro.errors import ClusteringError
from repro.baselines import (
    cdhit_cluster,
    dotur_cluster,
    esprit_cluster,
    mc_lsh,
    metacluster_cluster,
    mothur_cluster,
    uclust_cluster,
)
from repro.baselines.cdhit import required_shared_words
from repro.baselines.dotur import alignment_distance_matrix
from repro.baselines.metacluster import MetaCluster, spearman_distance, _rank_transform
from repro.datasets import generate_environmental_sample
from repro.seq.records import SequenceRecord


@pytest.fixture(scope="module")
def env_sample():
    return generate_environmental_sample("53R", num_reads=80, seed=0)


@pytest.fixture(scope="module")
def env_truth(env_sample):
    return {r.read_id: r.label for r in env_sample}


def purity_of(assignment, truth):
    from repro.eval.metrics import purity

    return purity(assignment, truth)


IDENTICAL = [SequenceRecord(f"r{i}", "ACGTACGTGGCCAATT" * 5) for i in range(6)]
TWO_GROUPS = [
    SequenceRecord(f"a{i}", "ACGTACGTGGCCAATT" * 5) for i in range(3)
] + [SequenceRecord(f"b{i}", "TTTTGGGGCCCCAAAA" * 5) for i in range(3)]


class TestCommonContract:
    """Every baseline obeys the same basic contract."""

    METHODS = [
        ("mc_lsh", lambda recs: mc_lsh(recs, 0.95, kmer_size=8, num_hashes=40)),
        ("cdhit", lambda recs: cdhit_cluster(recs, 0.95)),
        ("uclust", lambda recs: uclust_cluster(recs, 0.95)),
        ("esprit", lambda recs: esprit_cluster(recs, 0.95)),
        ("dotur", lambda recs: dotur_cluster(recs, 0.95)),
        ("mothur", lambda recs: mothur_cluster(recs, 0.95)),
        ("metacluster", lambda recs: metacluster_cluster(recs)),
    ]

    @pytest.mark.parametrize("name,fn", METHODS, ids=[m[0] for m in METHODS])
    def test_identical_sequences_one_cluster(self, name, fn):
        a = fn(IDENTICAL)
        assert a.num_clusters == 1, name

    @pytest.mark.parametrize("name,fn", METHODS, ids=[m[0] for m in METHODS])
    def test_two_groups_separated(self, name, fn):
        a = fn(TWO_GROUPS)
        groups = {}
        for rid in a:
            groups.setdefault(a[rid], set()).add(rid[0])
        for members in groups.values():
            assert len(members) == 1, name  # never mixes a* with b*

    @pytest.mark.parametrize("name,fn", METHODS, ids=[m[0] for m in METHODS])
    def test_every_sequence_assigned(self, name, fn, env_sample):
        a = fn(env_sample)
        assert a.num_sequences == len(env_sample), name

    @pytest.mark.parametrize("name,fn", METHODS, ids=[m[0] for m in METHODS])
    def test_empty_rejected(self, name, fn):
        with pytest.raises(ClusteringError):
            fn([])


class TestMcLsh:
    def test_band_divisibility(self):
        with pytest.raises(ClusteringError, match="divide"):
            mc_lsh(IDENTICAL, 0.9, num_hashes=50, band_size=7)

    def test_threshold_validation(self):
        with pytest.raises(ClusteringError):
            mc_lsh(IDENTICAL, 1.5)

    def test_more_permissive_bands_fewer_clusters(self, env_sample):
        tight = mc_lsh(env_sample, 0.9, band_size=25, num_hashes=50)
        loose = mc_lsh(env_sample, 0.9, band_size=1, num_hashes=50)
        # Smaller bands generate more candidates -> at most as many clusters.
        assert loose.num_clusters <= tight.num_clusters


class TestCdHit:
    def test_word_bound_monotone_in_identity(self):
        assert required_shared_words(100, 5, 0.99) > required_shared_words(100, 5, 0.90)

    def test_processes_longest_first(self):
        # The longest sequence must be a representative (label of its own).
        records = [
            SequenceRecord("short", "ACGTACGTAC"),
            SequenceRecord("long", "ACGTACGTAC" * 4),
        ]
        a = cdhit_cluster(records, 0.95)
        assert a.num_sequences == 2

    def test_high_threshold_more_clusters(self, env_sample):
        strict = cdhit_cluster(env_sample, 0.99).num_clusters
        loose = cdhit_cluster(env_sample, 0.80).num_clusters
        assert loose <= strict


class TestUclust:
    def test_max_rejects_validation(self):
        with pytest.raises(ClusteringError):
            uclust_cluster(IDENTICAL, 0.9, max_rejects=0)

    def test_fewer_rejects_more_clusters(self, env_sample):
        patient = uclust_cluster(env_sample, 0.95, max_rejects=32).num_clusters
        hasty = uclust_cluster(env_sample, 0.95, max_rejects=1).num_clusters
        assert patient <= hasty


class TestEsprit:
    def test_quick_mode_runs(self, env_sample):
        a = esprit_cluster(env_sample, 0.95, refine_with_alignment=False)
        assert a.num_sequences == len(env_sample)

    def test_pruning_never_merges_distant(self):
        a = esprit_cluster(TWO_GROUPS, 0.95, prune_margin=0.0)
        labels = {rid[0] for rid in a if a[rid] == a["a0"]}
        assert labels == {"a"}

    def test_validation(self):
        with pytest.raises(ClusteringError):
            esprit_cluster(IDENTICAL, 0.9, prune_margin=-1)


class TestDoturMothur:
    def test_shared_matrix_consistency(self, env_sample):
        m = alignment_distance_matrix(env_sample[:30])
        d = dotur_cluster(env_sample[:30], 0.95, similarity=m)
        mo = mothur_cluster(env_sample[:30], 0.95, similarity=m)
        # Same substrate, close counts (binning shifts them slightly).
        assert abs(d.num_clusters - mo.num_clusters) <= max(3, d.num_clusters // 3)

    def test_matrix_properties(self, env_sample):
        m = alignment_distance_matrix(env_sample[:12])
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 1.0)
        assert m.min() >= 0.0 and m.max() <= 1.0

    def test_mothur_precision_validation(self):
        with pytest.raises(ClusteringError):
            mothur_cluster(IDENTICAL, 0.9, precision=0.0)

    def test_empty_matrix_rejected(self):
        with pytest.raises(ClusteringError):
            alignment_distance_matrix([])


class TestMetaCluster:
    def test_rank_transform_normalised(self):
        v = np.random.default_rng(0).random((5, 16))
        ranks = _rank_transform(v)
        assert np.allclose(np.linalg.norm(ranks, axis=1), 1.0)
        assert np.allclose(ranks.mean(axis=1), 0.0, atol=1e-9)

    def test_spearman_distance_bounds(self):
        v = _rank_transform(np.random.default_rng(1).random((2, 32)))
        d = spearman_distance(v[0], v[1])
        assert 0.0 <= d <= 2.0
        assert spearman_distance(v[0], v[0]) == pytest.approx(0.0, abs=1e-9)

    def test_merge_threshold_effect(self, env_sample):
        few = MetaCluster(merge_distance=0.5, seed=0).fit(env_sample)
        many = MetaCluster(merge_distance=0.01, seed=0).fit(env_sample)
        assert few.num_clusters <= many.num_clusters

    def test_validation(self):
        with pytest.raises(ClusteringError):
            MetaCluster(max_group_size=1)
        with pytest.raises(ClusteringError):
            MetaCluster(merge_distance=3.0)

    def test_deterministic(self, env_sample):
        a = MetaCluster(seed=5).fit(env_sample)
        b = MetaCluster(seed=5).fit(env_sample)
        assert dict(a) == dict(b)


class TestBaselineQuality:
    """All baselines must recover most of the OTU structure of an easy
    environmental sample (purity against latent OTUs)."""

    @pytest.mark.parametrize(
        "name,fn", TestCommonContract.METHODS[:6],
        ids=[m[0] for m in TestCommonContract.METHODS[:6]],
    )
    def test_purity(self, name, fn, env_sample, env_truth):
        a = fn(env_sample)
        assert purity_of(a, env_truth) > 0.9, name
