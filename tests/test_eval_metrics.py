"""Tests for the evaluation metrics (W.Acc, W.Sim, purity/NMI/ARI)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.cluster.assignments import ClusterAssignment
from repro.eval.accuracy import weighted_cluster_accuracy
from repro.eval.metrics import (
    adjusted_rand_index,
    contingency_table,
    normalized_mutual_information,
    purity,
)
from repro.eval.report import Table, format_table
from repro.eval.similarity import _unrank_pair, weighted_cluster_similarity


def assignment_from(labels):
    return ClusterAssignment.from_labels(
        [f"r{i}" for i in range(len(labels))], labels
    )


def truth_from(classes):
    return {f"r{i}": c for i, c in enumerate(classes)}


class TestWeightedAccuracy:
    def test_perfect(self):
        a = assignment_from([0, 0, 1, 1])
        t = truth_from(["x", "x", "y", "y"])
        assert weighted_cluster_accuracy(a, t) == 100.0

    def test_majority_designation(self):
        # Cluster 0: 2x, 1y -> designated x, 2/3 correct.
        a = assignment_from([0, 0, 0])
        t = truth_from(["x", "x", "y"])
        assert weighted_cluster_accuracy(a, t) == pytest.approx(100 * 2 / 3)

    def test_weighting_by_size(self):
        # Cluster 0 (4 seqs, 3 correct) + cluster 1 (2 seqs, 1 correct):
        # weighted = (3+1)/6.
        a = assignment_from([0, 0, 0, 0, 1, 1])
        t = truth_from(["x", "x", "x", "y", "z", "w"])
        assert weighted_cluster_accuracy(a, t) == pytest.approx(100 * 4 / 6)

    def test_min_cluster_size_filter(self):
        a = assignment_from([0, 0, 1])
        t = truth_from(["x", "y", "z"])
        assert weighted_cluster_accuracy(a, t, min_cluster_size=2) == pytest.approx(50.0)

    def test_as_fraction(self):
        a = assignment_from([0, 0])
        t = truth_from(["x", "x"])
        assert weighted_cluster_accuracy(a, t, as_percent=False) == 1.0

    def test_missing_truth_rejected(self):
        a = assignment_from([0])
        with pytest.raises(EvaluationError, match="ground-truth"):
            weighted_cluster_accuracy(a, {})

    def test_filter_everything_rejected(self):
        a = assignment_from([0, 1])
        t = truth_from(["x", "y"])
        with pytest.raises(EvaluationError):
            weighted_cluster_accuracy(a, t, min_cluster_size=5)

    def test_equals_purity_when_unfiltered(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 4, size=40).tolist()
        classes = [str(c) for c in rng.integers(0, 3, size=40)]
        a = assignment_from(labels)
        t = truth_from(classes)
        assert weighted_cluster_accuracy(a, t, as_percent=False) == pytest.approx(
            purity(a, t)
        )


class TestWeightedSimilarity:
    def test_identical_cluster(self):
        a = assignment_from([0, 0, 0])
        seqs = {f"r{i}": "ACGTACGTACGT" for i in range(3)}
        assert weighted_cluster_similarity(a, seqs) == pytest.approx(100.0)

    def test_mixed_cluster_lower(self):
        a = assignment_from([0, 0])
        seqs = {"r0": "AAAAAAAAAA", "r1": "TTTTTTTTTT"}
        assert weighted_cluster_similarity(a, seqs) == pytest.approx(0.0)

    def test_exact_vs_sampled(self):
        rng = np.random.default_rng(0)
        seqs = {}
        labels = []
        for i in range(12):
            base = "ACGTACGTGGCCTTAA" * 3
            noisy = list(base)
            for p in rng.choice(len(base), size=3, replace=False):
                noisy[p] = "ACGT"[int(rng.integers(4))]
            seqs[f"r{i}"] = "".join(noisy)
            labels.append(0)
        a = assignment_from(labels)
        exact = weighted_cluster_similarity(a, seqs, max_pairs_per_cluster=None)
        sampled = weighted_cluster_similarity(a, seqs, max_pairs_per_cluster=30, seed=1)
        assert abs(exact - sampled) < 3.0

    def test_min_size_filter(self):
        a = assignment_from([0, 0, 1])
        seqs = {"r0": "ACGTACGT", "r1": "ACGTACGT", "r2": "TTTTTTTT"}
        # Cluster 1 is a singleton: excluded.
        assert weighted_cluster_similarity(a, seqs, min_cluster_size=2) == 100.0

    def test_missing_sequence_rejected(self):
        a = assignment_from([0, 0])
        with pytest.raises(EvaluationError, match="no sequence"):
            weighted_cluster_similarity(a, {"r0": "ACGT"})

    def test_all_singletons_rejected(self):
        a = assignment_from([0, 1])
        seqs = {"r0": "ACGT", "r1": "ACGT"}
        with pytest.raises(EvaluationError):
            weighted_cluster_similarity(a, seqs, min_cluster_size=2)

    def test_validation(self):
        a = assignment_from([0, 0])
        seqs = {"r0": "ACGT", "r1": "ACGT"}
        with pytest.raises(EvaluationError):
            weighted_cluster_similarity(a, seqs, min_cluster_size=1)
        with pytest.raises(EvaluationError):
            weighted_cluster_similarity(a, seqs, max_pairs_per_cluster=0)

    def test_unrank_pair_bijective(self):
        n = 9
        seen = set()
        for rank in range(n * (n - 1) // 2):
            i, j = _unrank_pair(rank, n)
            assert 0 <= i < j < n
            seen.add((i, j))
        assert len(seen) == n * (n - 1) // 2


class TestStandardMetrics:
    def test_contingency(self):
        a = assignment_from([0, 0, 1])
        t = truth_from(["x", "y", "y"])
        table, clusters, classes = contingency_table(a, t)
        assert table.sum() == 3
        assert clusters == [0, 1]
        assert classes == ["x", "y"]

    def test_perfect_scores(self):
        a = assignment_from([0, 0, 1, 1, 2])
        t = truth_from(["a", "a", "b", "b", "c"])
        assert purity(a, t) == 1.0
        assert normalized_mutual_information(a, t) == pytest.approx(1.0)
        assert adjusted_rand_index(a, t) == pytest.approx(1.0)

    def test_single_cluster_vs_many_classes(self):
        a = assignment_from([0, 0, 0, 0])
        t = truth_from(["a", "b", "c", "d"])
        assert purity(a, t) == 0.25
        assert normalized_mutual_information(a, t) == pytest.approx(0.0)

    def test_ari_random_near_zero(self):
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 5, size=200).tolist()
        classes = [str(c) for c in rng.integers(0, 5, size=200)]
        ari = adjusted_rand_index(assignment_from(labels), truth_from(classes))
        assert abs(ari) < 0.1

    @given(st.lists(st.integers(0, 3), min_size=2, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_bounds(self, labels):
        a = assignment_from(labels)
        t = truth_from([str(x % 2) for x in range(len(labels))])
        assert 0.0 <= purity(a, t) <= 1.0
        assert 0.0 <= normalized_mutual_information(a, t) <= 1.0
        assert -1.0 <= adjusted_rand_index(a, t) <= 1.0


class TestReportTable:
    def test_render(self):
        t = Table("Title", ["A", "B"])
        t.add_row("x", 1.234)
        out = t.render()
        assert "Title" in out
        assert "1.23" in out
        assert "x" in out

    def test_arity_check(self):
        t = Table("T", ["A"])
        with pytest.raises(EvaluationError):
            t.add_row(1, 2)

    def test_format_validation(self):
        with pytest.raises(EvaluationError):
            format_table("t", [], [])
        with pytest.raises(EvaluationError):
            format_table("t", ["a"], [[1, 2]])

    def test_alignment(self):
        out = format_table("t", ["col"], [["very-long-value"], ["x"]])
        lines = out.splitlines()
        assert len(lines[-1]) == len(lines[-2])  # padded
