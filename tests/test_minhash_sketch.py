"""Tests for sketch computation."""

import numpy as np
import pytest

from repro.errors import SketchError
from repro.minhash.sketch import (
    MinHashSketch,
    SketchingConfig,
    compute_sketch,
    compute_sketches,
    sketch_matrix,
)
from repro.seq.records import SequenceRecord


class TestSketchingConfig:
    def test_family_dimensions(self):
        config = SketchingConfig(kmer_size=5, num_hashes=64, seed=2)
        fam = config.make_family()
        assert fam.num_hashes == 64
        assert fam.universe_size == 4**5

    def test_invalid(self):
        with pytest.raises(SketchError):
            SketchingConfig(kmer_size=5, num_hashes=0)
        with pytest.raises(Exception):
            SketchingConfig(kmer_size=0, num_hashes=10)


class TestMinHashSketch:
    def test_value_set(self):
        s = MinHashSketch("r", np.array([1, 1, 2, 3]))
        assert s.value_set == frozenset({1, 2, 3})

    def test_len(self):
        assert len(MinHashSketch("r", np.array([1, 2, 3]))) == 3

    def test_empty_rejected(self):
        with pytest.raises(SketchError):
            MinHashSketch("r", np.array([]))

    def test_compatibility(self):
        a = MinHashSketch("a", np.array([1]), family_key=(1, 2, 3))
        b = MinHashSketch("b", np.array([2]), family_key=(1, 2, 3))
        c = MinHashSketch("c", np.array([3]), family_key=(9, 9, 9))
        assert a.compatible_with(b)
        assert not a.compatible_with(c)


class TestComputeSketch:
    def test_identical_sequences_identical_sketches(self, small_config):
        r1 = SequenceRecord("x", "ACGTACGTACGT")
        r2 = SequenceRecord("y", "ACGTACGTACGT")
        fam = small_config.make_family()
        s1 = compute_sketch(r1, small_config, fam)
        s2 = compute_sketch(r2, small_config, fam)
        assert np.array_equal(s1.values, s2.values)

    def test_deterministic_across_family_instances(self, small_config):
        rec = SequenceRecord("x", "ACGTACGTACGT")
        s1 = compute_sketch(rec, small_config)
        s2 = compute_sketch(rec, small_config)
        assert np.array_equal(s1.values, s2.values)

    def test_too_short_rejected(self, small_config):
        with pytest.raises(SketchError):
            compute_sketch(SequenceRecord("x", "ACG"), small_config)

    def test_sketch_length(self, small_config):
        s = compute_sketch(SequenceRecord("x", "ACGTACGTACGT"), small_config)
        assert len(s) == small_config.num_hashes


class TestComputeSketches:
    def test_skips_short_reads(self, small_config):
        records = [
            SequenceRecord("ok", "ACGTACGTACGT"),
            SequenceRecord("short", "ACG"),
        ]
        sketches = compute_sketches(records, small_config)
        assert [s.read_id for s in sketches] == ["ok"]

    def test_order_preserved(self, two_family_records, small_config):
        sketches = compute_sketches(two_family_records, small_config)
        assert [s.read_id for s in sketches] == [r.read_id for r in two_family_records]


class TestSketchMatrix:
    def test_shape(self, two_family_sketches, small_config):
        m = sketch_matrix(two_family_sketches)
        assert m.shape == (len(two_family_sketches), small_config.num_hashes)

    def test_empty(self):
        assert sketch_matrix([]).shape == (0, 0)

    def test_mixed_families_rejected(self, small_config):
        rec = SequenceRecord("x", "ACGTACGTACGT")
        s1 = compute_sketch(rec, small_config)
        other = SketchingConfig(kmer_size=5, num_hashes=32, seed=99)
        s2 = compute_sketch(rec, other)
        with pytest.raises(SketchError, match="different hash family"):
            sketch_matrix([s1, s2])
