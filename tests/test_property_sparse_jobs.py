"""Property-test net over the dense <-> sparse <-> engine-sparse boundary.

On random sketch sets (hypothesis-generated matrices), the engine-sparse
job chain must produce exactly the in-process candidate pairs, and the
three similarity paths must agree on the final clustering wherever
exactness is guaranteed: byte-identical TSV for sparse vs engine-sparse
(single linkage and greedy), dict-equal labels for dense-positional vs
sparse greedy, and partition-equal clusters for dense vs sparse single
linkage (the dense dendrogram numbers clusters differently from the
union-find sweep, so equality is of the partition, not the label bytes).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.greedy import greedy_cluster
from repro.cluster.hierarchical import agglomerative_cluster
from repro.cluster.matrix import compute_similarity_matrix
from repro.cluster.sparse import (
    candidate_pairs,
    sparse_greedy_cluster,
    sparse_single_linkage,
)
from repro.cluster.sparse_jobs import engine_candidate_pairs, engine_sparse_cluster
from repro.minhash.sketch import sketches_from_matrix

# Small universes force plenty of collisions; n in [4, 24] keeps the
# num_hashes/threshold grid interesting without slowing the suite.
matrices = st.integers(min_value=0, max_value=2**32 - 1).flatmap(
    lambda seed: st.tuples(
        st.integers(min_value=2, max_value=24),   # records
        st.integers(min_value=4, max_value=24),   # hashes
        st.integers(min_value=2, max_value=12),   # universe
    ).map(
        lambda dims: np.random.default_rng(seed).integers(
            0, dims[2], size=(dims[0], dims[1])
        ).astype(np.int64)
    )
)

thresholds = st.sampled_from([0.1, 0.2, 0.35, 0.5, 0.75, 0.9, 1.0])


def make_sketches(values):
    n, num_hashes = values.shape
    return sketches_from_matrix(
        values, [f"r{i}" for i in range(n)], (num_hashes, 1 << 30, 0)
    )


@settings(max_examples=40, deadline=None)
@given(values=matrices)
def test_engine_pairs_exactly_equal_in_process_pairs(values):
    sketches = make_sketches(values)
    pairs, run = engine_candidate_pairs(sketches)
    assert pairs == candidate_pairs(sketches)
    assert run.rounds == 2


@settings(max_examples=25, deadline=None)
@given(values=matrices, min_shared=st.integers(1, 4))
def test_engine_pairs_respect_min_shared(values, min_shared):
    sketches = make_sketches(values)
    pairs, _ = engine_candidate_pairs(sketches, min_shared=min_shared)
    assert pairs == candidate_pairs(sketches, min_shared=min_shared)


@settings(max_examples=30, deadline=None)
@given(values=matrices, threshold=thresholds)
def test_single_linkage_sparse_vs_engine_byte_identical(values, threshold):
    sketches = make_sketches(values)
    in_process = sparse_single_linkage(sketches, threshold)
    engine = engine_sparse_cluster(sketches, threshold, method="hierarchical")
    assert in_process.to_tsv() == engine.assignment.to_tsv()


@settings(max_examples=30, deadline=None)
@given(values=matrices, threshold=thresholds)
def test_greedy_sparse_vs_engine_byte_identical(values, threshold):
    sketches = make_sketches(values)
    in_process = sparse_greedy_cluster(sketches, threshold)
    engine = engine_sparse_cluster(sketches, threshold, method="greedy")
    assert in_process.to_tsv() == engine.assignment.to_tsv()


@settings(max_examples=25, deadline=None)
@given(values=matrices, threshold=thresholds)
def test_greedy_dense_positional_vs_sparse_identical(values, threshold):
    sketches = make_sketches(values)
    dense = greedy_cluster(sketches, threshold, estimator="positional")
    sparse = sparse_greedy_cluster(sketches, threshold)
    assert dict(dense.items()) == dict(sparse.items())


@settings(max_examples=25, deadline=None)
@given(values=matrices, threshold=thresholds)
def test_single_linkage_dense_vs_sparse_same_partition(values, threshold):
    sketches = make_sketches(values)
    similarity, _ = compute_similarity_matrix(sketches, estimator="positional")
    dense = agglomerative_cluster(
        similarity,
        [s.read_id for s in sketches],
        threshold,
        linkage="single",
    )
    sparse = sparse_single_linkage(sketches, threshold)

    def partition(assignment):
        clusters = {}
        for read_id, label in assignment.items():
            clusters.setdefault(label, set()).add(read_id)
        return {frozenset(members) for members in clusters.values()}

    assert partition(dense) == partition(sparse)
