"""Tests for the sequencing-error models."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.seq.error_models import (
    PyrosequencingErrorModel,
    SubstitutionErrorModel,
    apply_errors,
)


class TestSubstitutionModel:
    def test_zero_rate_identity(self):
        model = SubstitutionErrorModel(0.0)
        seq = "ACGT" * 25
        assert model.apply(seq, np.random.default_rng(0)) == seq

    def test_full_rate_changes_everything(self):
        model = SubstitutionErrorModel(1.0)
        seq = "A" * 200
        out = model.apply(seq, np.random.default_rng(0))
        assert len(out) == len(seq)
        assert "A" not in out  # substitutions never keep the base

    def test_rate_statistics(self):
        model = SubstitutionErrorModel(0.1)
        seq = "ACGT" * 2500
        out = model.apply(seq, np.random.default_rng(1))
        diffs = sum(1 for a, b in zip(seq, out) if a != b)
        assert 0.07 < diffs / len(seq) < 0.13

    def test_preserves_length(self):
        model = SubstitutionErrorModel(0.3)
        out = model.apply("ACGTACGTAC", np.random.default_rng(2))
        assert len(out) == 10

    def test_invalid_rate(self):
        with pytest.raises(DatasetError):
            SubstitutionErrorModel(1.5)
        with pytest.raises(DatasetError):
            SubstitutionErrorModel(-0.1)

    def test_deterministic_given_rng(self):
        model = SubstitutionErrorModel(0.2)
        a = model.apply("ACGT" * 50, np.random.default_rng(3))
        b = model.apply("ACGT" * 50, np.random.default_rng(3))
        assert a == b


class TestPyroModel:
    def test_zero_rates_identity(self):
        model = PyrosequencingErrorModel(indel_rate=0.0, substitution_rate=0.0)
        seq = "AAACCCGGG"
        assert model.apply(seq, np.random.default_rng(0)) == seq

    def test_homopolymer_indels_change_length(self):
        model = PyrosequencingErrorModel(indel_rate=1.0, substitution_rate=0.0)
        seq = "AAAA" + "CCCC" + "GGGG"
        out = model.apply(seq, np.random.default_rng(0))
        assert out != seq or len(out) != len(seq)

    def test_alphabet_preserved(self):
        model = PyrosequencingErrorModel(indel_rate=0.5, substitution_rate=0.1)
        out = model.apply("ACGTAAACCCGGGTTT" * 5, np.random.default_rng(1))
        assert set(out) <= set("ACGT")

    def test_never_empty(self):
        model = PyrosequencingErrorModel(indel_rate=1.0)
        out = model.apply("A", np.random.default_rng(2))
        assert len(out) >= 1

    def test_invalid_rates(self):
        with pytest.raises(DatasetError):
            PyrosequencingErrorModel(indel_rate=-0.1)
        with pytest.raises(DatasetError):
            PyrosequencingErrorModel(substitution_rate=2.0)


class TestApplyErrors:
    def test_none_model_identity(self):
        assert apply_errors("ACGT", None, 0) == "ACGT"

    def test_dispatch(self):
        out = apply_errors("A" * 100, SubstitutionErrorModel(1.0), 0)
        assert "A" not in out
