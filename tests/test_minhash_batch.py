"""Batch sketching kernel vs the per-record reference path.

The contract is byte-identity: :func:`compute_sketches_batch` must
reproduce :func:`compute_sketch` exactly — same values, same dtype, same
record order, same drops — across every universe size (the small
gather-table path and the large sort-dedup path), chunking boundary,
ambiguous-base density, and strict-mode error.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KmerError, SequenceError, SketchError
from repro.minhash.sketch import (
    SketchingConfig,
    compute_sketch,
    compute_sketches,
    compute_sketches_batch,
    sketch_values_batch,
)
from repro.seq.records import SequenceRecord


def reference_sketches(records, config):
    """The per-record loop the batch kernel must match byte for byte."""
    family = config.make_family()
    out = []
    for record in records:
        try:
            out.append(compute_sketch(record, config, family))
        except SketchError:
            continue
    return out


def assert_identical(records, config):
    expected = reference_sketches(records, config)
    got = compute_sketches_batch(records, config)
    assert [s.read_id for s in got] == [s.read_id for s in expected]
    assert [s.family_key for s in got] == [s.family_key for s in expected]
    for g, e in zip(got, expected):
        assert g.values.dtype == e.values.dtype
        assert g.values.tobytes() == e.values.tobytes()


sequences = st.lists(
    st.text(alphabet="ACGTN", min_size=1, max_size=40), min_size=1, max_size=25
)


@settings(max_examples=60, deadline=None)
@given(
    seqs=sequences,
    kmer_size=st.integers(min_value=1, max_value=15),
    num_hashes=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=5),
)
def test_batch_matches_loop_property(seqs, kmer_size, num_hashes, seed):
    records = [
        SequenceRecord(read_id=f"r{i}", sequence=s) for i, s in enumerate(seqs)
    ]
    config = SketchingConfig(
        kmer_size=kmer_size, num_hashes=num_hashes, seed=seed
    )
    assert_identical(records, config)


@pytest.mark.parametrize(
    "kmer_size,num_hashes,seed",
    [(5, 100, 0), (3, 7, 1), (1, 2, 3), (8, 33, 5), (9, 10, 4), (15, 50, 2)],
)
def test_batch_matches_loop_paper_settings(kmer_size, num_hashes, seed):
    rng = np.random.default_rng(seed)
    records = []
    for i in range(40):
        length = int(rng.integers(1, 120))
        letters = rng.choice(list("ACGT"), size=length)
        if rng.random() < 0.5 and length > 2:
            letters[rng.integers(0, length)] = "N"
        records.append(
            SequenceRecord(read_id=f"r{i}", sequence="".join(letters))
        )
    config = SketchingConfig(
        kmer_size=kmer_size, num_hashes=num_hashes, seed=seed
    )
    assert_identical(records, config)


@pytest.mark.parametrize("chunk_kmers", [1, 17, 257])
def test_batch_chunking_is_invisible(chunk_kmers):
    rng = np.random.default_rng(7)
    records = [
        SequenceRecord(
            read_id=f"r{i}",
            sequence="".join(rng.choice(list("ACGT"), size=60)),
        )
        for i in range(20)
    ]
    config = SketchingConfig(kmer_size=9, num_hashes=8, seed=1)
    family = config.make_family()
    full, kept_full = sketch_values_batch(
        [r.sequence for r in records], config, family
    )
    chunked, kept_chunked = sketch_values_batch(
        [r.sequence for r in records], config, family, chunk_kmers=chunk_kmers
    )
    assert np.array_equal(kept_full, kept_chunked)
    assert full.tobytes() == chunked.tobytes()


def test_batch_drops_short_reads_like_loop():
    records = [
        SequenceRecord(read_id="long", sequence="ACGTACGTACGT"),
        SequenceRecord(read_id="short", sequence="ACG"),
        SequenceRecord(read_id="allN", sequence="NNNNNNNN"),
    ]
    config = SketchingConfig(kmer_size=5, num_hashes=4, seed=0)
    assert_identical(records, config)
    got = compute_sketches_batch(records, config)
    assert [s.read_id for s in got] == ["long"]


def test_batch_empty_input():
    config = SketchingConfig(kmer_size=5, num_hashes=4, seed=0)
    assert compute_sketches_batch([], config) == []


def test_batch_strict_rejects_ambiguous():
    records = [
        SequenceRecord(read_id="ok", sequence="ACGTACGT"),
        SequenceRecord(read_id="bad", sequence="ACNTACGT"),
    ]
    config = SketchingConfig(kmer_size=4, num_hashes=4, seed=0, strict=True)
    with pytest.raises(SequenceError, match="invalid DNA character"):
        compute_sketches_batch(records, config)


def test_batch_strict_rejects_short():
    records = [SequenceRecord(read_id="tiny", sequence="ACT")]
    config = SketchingConfig(kmer_size=4, num_hashes=4, seed=0, strict=True)
    with pytest.raises(KmerError, match="shorter than k"):
        compute_sketches_batch(records, config)


def test_compute_sketches_routes_through_batch():
    """The public plural API and the reference loop stay in lockstep."""
    rng = np.random.default_rng(3)
    records = [
        SequenceRecord(
            read_id=f"r{i}",
            sequence="".join(rng.choice(list("ACGT"), size=80)),
        )
        for i in range(15)
    ]
    config = SketchingConfig(kmer_size=5, num_hashes=16, seed=2)
    got = compute_sketches(records, config)
    expected = reference_sketches(records, config)
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        assert g.read_id == e.read_id
        assert g.family_key == e.family_key
        assert np.array_equal(g.values, e.values)
