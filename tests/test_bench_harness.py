"""Tests for the benchmark harness and the table/figure drivers at tiny
scale (full-scale regeneration lives under benchmarks/)."""

import pytest

from repro.errors import EvaluationError
from repro.bench.harness import ExperimentScale, MethodResult, evaluate_assignment, timed
from repro.bench.tables import run_table1, run_table2, run_table3, run_table5
from repro.bench.figures import Figure2Result, calibrate_from_measurement, run_figure2
from repro.cluster.assignments import ClusterAssignment
from repro.mapreduce.costmodel import HadoopCostModel
from repro.seq.records import SequenceRecord


class TestExperimentScale:
    def test_defaults_valid(self):
        scale = ExperimentScale()
        assert scale.num_reads >= 10

    def test_validation(self):
        with pytest.raises(EvaluationError):
            ExperimentScale(num_reads=1)
        with pytest.raises(EvaluationError):
            ExperimentScale(min_cluster_size=1)


class TestEvaluateAssignment:
    def _records(self):
        return [
            SequenceRecord("a0", "ACGTACGTACGTACGT", label="A"),
            SequenceRecord("a1", "ACGTACGTACGTACGT", label="A"),
            SequenceRecord("b0", "TTGGCCAATTGGCCAA", label="B"),
            SequenceRecord("b1", "TTGGCCAATTGGCCAA", label="B"),
        ]

    def test_metrics_computed(self):
        records = self._records()
        assignment = ClusterAssignment({"a0": 0, "a1": 0, "b0": 1, "b1": 1})
        scale = ExperimentScale(num_reads=10, min_cluster_size=2)
        res = evaluate_assignment("m", "s", assignment, records, 1.0, scale=scale)
        assert res.w_acc == 100.0
        assert res.w_sim == pytest.approx(100.0)
        assert res.num_clusters == 2
        assert res.num_clusters_total == 2

    def test_trimmed_count(self):
        records = self._records() + [SequenceRecord("c0", "GGGGGGGGGGGGGGGG", label="C")]
        assignment = ClusterAssignment({"a0": 0, "a1": 0, "b0": 1, "b1": 1, "c0": 2})
        scale = ExperimentScale(num_reads=10, min_cluster_size=2)
        res = evaluate_assignment("m", "s", assignment, records, 0.5, scale=scale)
        assert res.num_clusters == 2  # singleton trimmed
        assert res.num_clusters_total == 3

    def test_accuracy_optional(self):
        records = [
            SequenceRecord("a0", "ACGTACGTACGTACGT"),
            SequenceRecord("a1", "ACGTACGTACGTACGT"),
        ]
        assignment = ClusterAssignment({"a0": 0, "a1": 0})
        scale = ExperimentScale(num_reads=10, min_cluster_size=2)
        res = evaluate_assignment(
            "m", "s", assignment, records, 0.1, scale=scale, with_accuracy=False
        )
        assert res.w_acc is None

    def test_timed(self):
        assignment, seconds = timed(lambda: ClusterAssignment({"x": 0}))
        assert isinstance(assignment, ClusterAssignment)
        assert seconds >= 0


class TestTableDrivers:
    def test_table1_rows(self):
        table = run_table1()
        assert len(table.rows) == 8
        assert "53R" in str(table.render())

    def test_table2_rows(self):
        table = run_table2()
        assert len(table.rows) == 15

    def test_table3_tiny(self):
        scale = ExperimentScale(
            num_reads=40, genome_length=3000, min_cluster_size=2,
            max_pairs_per_cluster=10,
        )
        table, results = run_table3(scale, samples=("S1",))
        assert {r.method for r in results} == {
            "MrMC-MinH^h", "MrMC-MinH^g", "MetaCluster"
        }
        hier = next(r for r in results if r.method == "MrMC-MinH^h")
        assert hier.modeled_seconds is not None
        assert hier.modeled_seconds > 0
        assert "S1" in table.render()

    def test_table5_tiny(self):
        scale = ExperimentScale(
            num_reads=40, genome_length=3000, min_cluster_size=2,
            max_pairs_per_cluster=10,
        )
        table, results = run_table5(scale, samples=("53R",))
        assert len(results) == 8  # eight methods
        assert all(r.seconds >= 0 for r in results)
        # Both matrix methods carry the shared matrix surcharge.
        dotur = next(r for r in results if r.method == "DOTUR")
        mothur = next(r for r in results if r.method == "Mothur")
        assert dotur.seconds > 0.0
        assert mothur.seconds > 0.0


class TestFigure2Driver:
    def test_calibration_positive(self):
        model = calibrate_from_measurement(calibration_reads=40, genome_length=3000)
        assert model.map_cost_per_record_s > 0
        assert model.pair_cost_s > 0

    def test_series_and_shape(self):
        model = HadoopCostModel(
            map_cost_per_record_s=1e-3, pair_cost_s=1e-6
        )
        table, result = run_figure2(
            node_counts=(2, 8), read_counts=(1_000, 100_000), cost_model=model,
        )
        assert isinstance(result, Figure2Result)
        series_small = result.series(1_000)
        series_large = result.series(100_000)
        assert [n for n, _ in series_small] == [2, 8]
        # Small inputs insensitive, large inputs speed up.
        small_ratio = series_small[0][1] / series_small[-1][1]
        large_ratio = series_large[0][1] / series_large[-1][1]
        assert small_ratio < large_ratio
        assert "Figure 2" in table.render()
