"""Tests for agglomerative hierarchical clustering (Algorithm 2),
including exact cross-validation against scipy's linkage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.cluster.hierarchy import fcluster, linkage
from scipy.spatial.distance import squareform

from repro.errors import ClusteringError
from repro.cluster.hierarchical import (
    LINKAGES,
    agglomerative_cluster,
    build_dendrogram,
    cut_dendrogram,
)


def random_similarity(n, seed):
    rng = np.random.default_rng(seed)
    base = rng.random((n, n))
    sim = (base + base.T) / 2
    np.fill_diagonal(sim, 1.0)
    return sim


def partitions_equal(a, b):
    n = len(a)
    pa = {(i, j) for i in range(n) for j in range(n) if a[i] == a[j]}
    pb = {(i, j) for i in range(n) for j in range(n) if b[i] == b[j]}
    return pa == pb


class TestBuildDendrogram:
    def test_single_leaf(self):
        d = build_dendrogram(np.array([[1.0]]))
        assert d.num_leaves == 1
        assert len(d) == 0

    def test_complete_dendrogram(self):
        d = build_dendrogram(random_similarity(8, 0))
        assert d.is_complete

    def test_merge_similarities_monotone_average(self):
        """Average/complete linkage similarities never increase between
        merges (reducibility)."""
        for link in ("average", "complete"):
            d = build_dendrogram(random_similarity(12, 1), linkage=link)
            sims = [s.similarity for s in d.steps]
            assert all(a >= b - 1e-9 for a, b in zip(sims, sims[1:])), link

    def test_stop_threshold(self):
        sim = np.array(
            [
                [1.0, 0.9, 0.1],
                [0.9, 1.0, 0.1],
                [0.1, 0.1, 1.0],
            ]
        )
        d = build_dendrogram(sim, stop_threshold=0.5)
        assert len(d) == 1  # only the 0.9 merge
        assert d.steps[0].similarity == pytest.approx(0.9)

    def test_validation(self):
        with pytest.raises(ClusteringError, match="square"):
            build_dendrogram(np.zeros((2, 3)))
        with pytest.raises(ClusteringError, match="symmetric"):
            build_dendrogram(np.array([[1.0, 0.2], [0.8, 1.0]]))
        with pytest.raises(ClusteringError, match="\\[0, 1\\]"):
            build_dendrogram(np.array([[1.0, 2.0], [2.0, 1.0]]))
        with pytest.raises(ClusteringError, match="unknown linkage"):
            build_dendrogram(random_similarity(3, 0), linkage="ward")
        with pytest.raises(ClusteringError):
            build_dendrogram(random_similarity(3, 0), stop_threshold=1.5)


class TestScipyEquivalence:
    """Our agglomeration must match scipy.cluster.hierarchy exactly
    (similarity 1-d <-> distance d) for every linkage."""

    @pytest.mark.parametrize("link", LINKAGES)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_partition_at_thresholds(self, link, seed):
        n = 14
        sim = random_similarity(n, seed)
        d = build_dendrogram(sim, linkage=link)
        Z = linkage(squareform(1.0 - sim, checks=False), method=link)
        for theta in (0.2, 0.4, 0.6, 0.8):
            ours = d.cut(theta)
            theirs = fcluster(Z, t=1.0 - theta, criterion="distance")
            assert partitions_equal(ours, list(theirs)), (link, seed, theta)

    @pytest.mark.parametrize("link", LINKAGES)
    def test_merge_heights_match(self, link):
        sim = random_similarity(10, 7)
        d = build_dendrogram(sim, linkage=link)
        Z = linkage(squareform(1.0 - sim, checks=False), method=link)
        ours = sorted(1.0 - s.similarity for s in d.steps)
        theirs = sorted(Z[:, 2])
        assert np.allclose(ours, theirs, atol=1e-9), link


class TestCutAndCluster:
    def test_cut_dendrogram_wrapper(self):
        d = build_dendrogram(random_similarity(6, 3))
        labels = cut_dendrogram(d, 0.5)
        assert len(labels) == 6
        with pytest.raises(ClusteringError):
            cut_dendrogram(d, 1.5)

    def test_agglomerative_cluster_end_to_end(self):
        sim = np.array(
            [
                [1.0, 0.95, 0.1, 0.1],
                [0.95, 1.0, 0.1, 0.1],
                [0.1, 0.1, 1.0, 0.9],
                [0.1, 0.1, 0.9, 1.0],
            ]
        )
        a = agglomerative_cluster(sim, ["a", "b", "c", "d"], 0.5)
        assert a.num_clusters == 2
        assert a["a"] == a["b"]
        assert a["c"] == a["d"]
        assert a["a"] != a["c"]

    def test_id_count_mismatch(self):
        with pytest.raises(ClusteringError):
            agglomerative_cluster(random_similarity(3, 0), ["a", "b"], 0.5)

    def test_threshold_one_only_perfect_merges(self):
        sim = np.array([[1.0, 1.0], [1.0, 1.0]])
        a = agglomerative_cluster(sim, ["a", "b"], 1.0)
        assert a.num_clusters == 1

    @given(st.integers(min_value=2, max_value=20), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_cluster_count_bounds(self, n, seed):
        sim = random_similarity(n, seed)
        a = agglomerative_cluster(sim, [f"s{i}" for i in range(n)], 0.5)
        assert 1 <= a.num_clusters <= n
        assert a.num_sequences == n

    def test_monotone_in_threshold(self):
        """Higher θ can only produce more (or equally many) clusters."""
        sim = random_similarity(15, 9)
        ids = [f"s{i}" for i in range(15)]
        counts = [
            agglomerative_cluster(sim, ids, t).num_clusters
            for t in (0.1, 0.3, 0.5, 0.7, 0.9)
        ]
        assert counts == sorted(counts)
