"""Unit tests for the fault-injection layer: FaultPlan determinism,
schedules, datanode kills, retry policy and the checkpoint store."""

import pickle

import pytest

from repro.errors import FaultError, JobKilledError, MapReduceError
from repro.mapreduce.faults import (
    BARRIERS,
    DatanodeKill,
    Fault,
    FaultPlan,
    JobCheckpoint,
    RetryPolicy,
    records_checksum,
)
from repro.mapreduce.hdfs import SimulatedHDFS

pytestmark = pytest.mark.chaos


class TestFault:
    def test_kinds_validated(self):
        with pytest.raises(MapReduceError, match="unknown fault kind"):
            Fault(kind="explode")

    def test_negative_delay_rejected(self):
        with pytest.raises(MapReduceError, match="delay"):
            Fault(kind="hang", delay=-1.0)


class TestFaultPlanDeterminism:
    def test_same_seed_same_decisions(self):
        draws = [
            FaultPlan(seed=3, mapper_crash_rate=0.5).fault_for("j", "map", i, a)
            for i in range(50)
            for a in (1, 2)
        ]
        again = [
            FaultPlan(seed=3, mapper_crash_rate=0.5).fault_for("j", "map", i, a)
            for i in range(50)
            for a in (1, 2)
        ]
        assert draws == again
        assert any(f is not None for f in draws)  # rate 0.5 over 100 draws

    def test_different_seeds_differ(self):
        a = [FaultPlan(seed=0, mapper_crash_rate=0.5).fault_for("j", "map", i, 1) for i in range(64)]
        b = [FaultPlan(seed=1, mapper_crash_rate=0.5).fault_for("j", "map", i, 1) for i in range(64)]
        assert a != b

    def test_decisions_scoped_per_job_task_attempt(self):
        plan = FaultPlan(seed=0, mapper_crash_rate=0.5)
        draws = {
            (job, i, a): plan.fault_for(job, "map", i, a)
            for job in ("j1", "j2")
            for i in range(20)
            for a in (1, 2)
        }
        # Not all coordinates share the same decision.
        assert len({f is None for f in draws.values()}) == 2

    def test_zero_rates_inject_nothing(self):
        plan = FaultPlan(seed=0)
        assert all(
            plan.fault_for("j", kind, i, a) is None
            for kind in ("map", "reduce")
            for i in range(30)
            for a in (1, 2, 3)
        )

    def test_rate_one_always_injects(self):
        plan = FaultPlan(seed=0, mapper_crash_rate=1.0)
        assert all(
            plan.fault_for("j", "map", i, 1).kind == "crash" for i in range(10)
        )

    def test_reducer_rate_independent_of_mapper_rate(self):
        plan = FaultPlan(seed=0, mapper_crash_rate=1.0, reducer_crash_rate=0.0)
        assert plan.fault_for("j", "map", 0, 1) is not None
        assert plan.fault_for("j", "reduce", 0, 1) is None

    def test_max_faulted_attempts_caps_rate_faults(self):
        plan = FaultPlan(seed=0, mapper_crash_rate=1.0, max_faulted_attempts=2)
        assert plan.fault_for("j", "map", 0, 1) is not None
        assert plan.fault_for("j", "map", 0, 2) is not None
        assert plan.fault_for("j", "map", 0, 3) is None

    def test_schedule_overrides_and_escapes_cap(self):
        fault = Fault(kind="corrupt")
        plan = FaultPlan(
            seed=0,
            max_faulted_attempts=1,
            schedule={("j", "map", 2, 3): fault},
        )
        assert plan.fault_for("j", "map", 2, 3) is fault
        assert plan.fault_for("j", "map", 2, 1) is None

    def test_plan_is_picklable_and_decisions_survive(self):
        plan = FaultPlan(seed=5, mapper_crash_rate=0.4, hang_rate=0.2)
        clone = pickle.loads(pickle.dumps(plan))
        for i in range(40):
            assert plan.fault_for("j", "map", i, 1) == clone.fault_for("j", "map", i, 1)

    def test_invalid_rates_rejected(self):
        for kwargs in (
            {"mapper_crash_rate": 1.5},
            {"reducer_crash_rate": -0.1},
            {"hang_rate": 2.0},
            {"corrupt_rate": -1.0},
        ):
            with pytest.raises(MapReduceError, match="must be in"):
                FaultPlan(**kwargs)

    def test_bad_schedule_entry_rejected(self):
        with pytest.raises(MapReduceError, match="expected a Fault"):
            FaultPlan(schedule={("j", "map", 0, 1): "crash"})


class TestCorruptionDetection:
    def test_corruption_changes_checksum(self):
        records = [("a", 1), ("b", 2), ("c", 3)]
        crc = records_checksum(records)
        corrupted = FaultPlan.corrupt_records(records, "t-0000")
        assert records_checksum(corrupted) != crc

    def test_corruption_of_empty_partition_detected(self):
        crc = records_checksum([])
        corrupted = FaultPlan.corrupt_records([], "t-0000")
        assert records_checksum(corrupted) != crc

    def test_original_records_untouched(self):
        records = [("a", 1), ("b", 2)]
        FaultPlan.corrupt_records(records, "t")
        assert records == [("a", 1), ("b", 2)]

    def test_unpicklable_output_raises_fault(self):
        with pytest.raises(FaultError, match="not picklable"):
            records_checksum([("k", lambda: None)])


class TestDatanodeKills:
    def make_hdfs(self):
        fs = SimulatedHDFS(num_datanodes=4, block_size=16, replication=2, seed=0)
        fs.put("/data", bytes(range(64)))
        return fs

    def test_barrier_kill_and_rereplicate(self):
        fs = self.make_hdfs()
        plan = FaultPlan(datanode_kills=[DatanodeKill("map_end", 1)]).bind_hdfs(fs)
        assert plan.trigger_barrier("job_start") == 0
        assert plan.trigger_barrier("map_end") == 1
        assert not fs.datanode_alive(1)
        # auto_rereplicate restored the replication factor on live nodes.
        for block in fs.stat("/data").blocks:
            live = [n for n in block.replicas if n in fs.live_datanodes]
            assert len(live) >= fs.replication
        assert fs.get("/data") == bytes(range(64))

    def test_kills_fire_once(self):
        fs = self.make_hdfs()
        plan = FaultPlan(datanode_kills=[DatanodeKill("map_end", 0)]).bind_hdfs(fs)
        assert plan.trigger_barrier("map_end") == 1
        assert plan.trigger_barrier("map_end") == 0

    def test_unbound_plan_kills_are_noops(self):
        plan = FaultPlan(datanode_kills=[DatanodeKill("map_end", 0)])
        assert plan.trigger_barrier("map_end") == 0

    def test_no_rereplication_when_disabled(self):
        fs = self.make_hdfs()
        plan = FaultPlan(
            datanode_kills=[DatanodeKill("map_end", 2)], auto_rereplicate=False
        ).bind_hdfs(fs)
        plan.trigger_barrier("map_end")
        # Reads still succeed through surviving replicas (replication 2).
        assert fs.get("/data") == bytes(range(64))

    def test_invalid_barrier_rejected(self):
        with pytest.raises(MapReduceError, match="unknown barrier"):
            DatanodeKill("mid_shuffle", 0)
        with pytest.raises(MapReduceError, match="unknown barrier"):
            FaultPlan().trigger_barrier("mid_shuffle")

    def test_reset_rearms_kills_and_driver_death(self):
        fs = self.make_hdfs()
        plan = FaultPlan(
            datanode_kills=[DatanodeKill("map_end", 0)], kill_job_after_tasks=1
        ).bind_hdfs(fs)
        assert plan.trigger_barrier("map_end") == 1
        with pytest.raises(JobKilledError):
            plan.note_task_complete()
        fs.restart_datanode(0)
        plan.reset()
        assert plan.trigger_barrier("map_end") == 1
        with pytest.raises(JobKilledError):
            plan.note_task_complete()

    def test_barriers_constant_is_exhaustive(self):
        assert set(BARRIERS) == {"job_start", "map_end", "job_end"}


class TestRetryPolicy:
    def test_from_conf(self):
        from repro.mapreduce.types import JobConf

        conf = JobConf(
            max_task_attempts=4,
            task_timeout=2.5,
            speculative_margin=1.5,
            retry_backoff=0.01,
        )
        policy = RetryPolicy.from_conf(conf)
        assert policy.max_attempts == 4
        assert policy.timeout == 2.5
        assert policy.speculative_margin == 1.5
        assert policy.backoff == 0.01

    def test_exponential_backoff_with_cap(self):
        policy = RetryPolicy(max_attempts=10, backoff=0.1, backoff_cap=0.35)
        assert policy.backoff_delay(1) == pytest.approx(0.1)
        assert policy.backoff_delay(2) == pytest.approx(0.2)
        assert policy.backoff_delay(3) == pytest.approx(0.35)  # capped
        assert policy.backoff_delay(8) == pytest.approx(0.35)

    def test_zero_backoff(self):
        assert RetryPolicy(max_attempts=3).backoff_delay(2) == 0.0

    def test_validation(self):
        with pytest.raises(MapReduceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(MapReduceError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(MapReduceError):
            RetryPolicy(speculative_margin=-1.0)
        with pytest.raises(MapReduceError):
            RetryPolicy(backoff=-0.1)


class TestJobCheckpoint:
    def test_round_trip(self, tmp_path):
        ckpt = JobCheckpoint(tmp_path / "ck")
        assert not ckpt.has("j-m0000")
        ckpt.save("j-m0000", {"output": [("a", 1)]})
        assert ckpt.has("j-m0000")
        assert ckpt.load("j-m0000") == {"output": [("a", 1)]}
        assert ckpt.task_ids() == ["j-m0000"]

    def test_save_overwrites_atomically(self, tmp_path):
        ckpt = JobCheckpoint(tmp_path)
        ckpt.save("t", 1)
        ckpt.save("t", 2)
        assert ckpt.load("t") == 2
        assert ckpt.task_ids() == ["t"]

    def test_clear(self, tmp_path):
        ckpt = JobCheckpoint(tmp_path)
        ckpt.save("a", 1)
        ckpt.save("b", 2)
        ckpt.clear()
        assert ckpt.task_ids() == []

    def test_kill_job_after_tasks_validation(self):
        with pytest.raises(MapReduceError, match=">= 1"):
            FaultPlan(kill_job_after_tasks=0)
