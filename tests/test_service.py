"""Tests for the multi-tenant job service (repro.mapreduce.service)."""

from __future__ import annotations

import time

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    JobCancelledError,
    ServiceError,
    ServiceOverloadedError,
    ServiceStoppedError,
)
from repro.mapreduce import (
    CancelScope,
    JobConf,
    MapReduceJob,
    RetryPolicy,
    check_cancelled,
    identity_reducer,
)
from repro.mapreduce.service import (
    CircuitBreaker,
    ClusterJobSpec,
    JobService,
    MapReduceSpec,
    failing_spec,
    fluid_prediction,
    sleep_spec,
)


class _FlakyMapper:
    """Fails the first ``failures`` executions, then succeeds."""

    def __init__(self, failures: int):
        self.failures = failures
        self.calls = 0

    def __call__(self, key, value):
        self.calls += 1
        if self.calls <= self.failures:
            raise ValueError(f"flaky failure {self.calls}")
        yield key, value


def flaky_spec(failures: int) -> MapReduceSpec:
    job = MapReduceJob(
        name="flaky", mapper=_FlakyMapper(failures), reducer=identity_reducer
    )
    return MapReduceSpec(
        job=job,
        inputs=(("k", "v"),),
        conf=JobConf(num_map_tasks=1, num_reduce_tasks=1, max_task_attempts=1),
    )


# ---------------------------------------------------------------------------
# Cancellation scopes
# ---------------------------------------------------------------------------


class TestCancelScope:
    def test_no_scope_is_noop(self):
        check_cancelled("anywhere")  # must not raise

    def test_explicit_cancel(self):
        scope = CancelScope()
        with scope.activate():
            check_cancelled()
            scope.cancel("test")
            with pytest.raises(JobCancelledError, match="test"):
                check_cancelled("map barrier")

    def test_deadline(self):
        clock = [0.0]
        scope = CancelScope(deadline_s=1.0, clock=lambda: clock[0])
        with scope.activate():
            check_cancelled()
            assert scope.remaining() == 1.0
            clock[0] = 2.0
            with pytest.raises(DeadlineExceededError):
                check_cancelled()

    def test_scope_restored_on_exit(self):
        scope = CancelScope()
        scope.cancel()
        with scope.activate():
            pass
        check_cancelled()  # scope deactivated: no raise

    def test_runner_aborts_at_task_boundary(self):
        """A tripped scope stops the serial runner between tasks."""
        from repro.mapreduce.runner import SerialRunner

        scope = CancelScope()
        scope.cancel("stop now")
        spec = sleep_spec(0.0)
        with scope.activate():
            with pytest.raises(JobCancelledError):
                SerialRunner(trace=False).run(spec.job, list(spec.inputs), spec.conf)


# ---------------------------------------------------------------------------
# Backoff jitter (satellite: seeded full jitter in RetryPolicy)
# ---------------------------------------------------------------------------


class TestBackoffJitter:
    def test_default_is_byte_identical_deterministic(self):
        policy = RetryPolicy(max_attempts=5, backoff=0.1, backoff_cap=1.0)
        assert [policy.backoff_delay(a) for a in (1, 2, 3, 4)] == [
            0.1,
            0.2,
            0.4,
            0.8,
        ]

    def test_jitter_is_seed_deterministic(self):
        a = RetryPolicy(max_attempts=5, backoff=0.1, jitter=1.0, seed=42)
        b = RetryPolicy(max_attempts=5, backoff=0.1, jitter=1.0, seed=42)
        assert [a.backoff_delay(i) for i in range(1, 5)] == [
            b.backoff_delay(i) for i in range(1, 5)
        ]

    def test_different_seeds_decorrelate(self):
        a = RetryPolicy(max_attempts=5, backoff=0.1, jitter=1.0, seed=1)
        b = RetryPolicy(max_attempts=5, backoff=0.1, jitter=1.0, seed=2)
        assert [a.backoff_delay(i) for i in range(1, 5)] != [
            b.backoff_delay(i) for i in range(1, 5)
        ]

    def test_jitter_bounds(self):
        base = RetryPolicy(max_attempts=8, backoff=0.1, backoff_cap=10.0)
        for jitter in (0.25, 0.5, 1.0):
            for seed in range(5):
                policy = RetryPolicy(
                    max_attempts=8,
                    backoff=0.1,
                    backoff_cap=10.0,
                    jitter=jitter,
                    seed=seed,
                )
                for attempt in range(1, 6):
                    delay = policy.backoff_delay(attempt)
                    ceiling = base.backoff_delay(attempt)
                    assert (1.0 - jitter) * ceiling <= delay < ceiling + 1e-12

    def test_jitter_validation(self):
        from repro.errors import MapReduceError

        with pytest.raises(MapReduceError, match="jitter"):
            RetryPolicy(jitter=1.5)


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        clock = [0.0]
        br = CircuitBreaker(threshold=2, cooldown=10.0, clock=lambda: clock[0])
        br.admit("t")
        br.record_failure()
        assert br.state == "closed"
        br.record_failure()
        assert br.state == "open"
        with pytest.raises(CircuitOpenError) as exc_info:
            br.admit("t")
        assert exc_info.value.retry_after == pytest.approx(10.0)

    def test_half_open_probe_closes_on_success(self):
        clock = [0.0]
        br = CircuitBreaker(threshold=1, cooldown=5.0, clock=lambda: clock[0])
        br.record_failure()
        clock[0] = 6.0
        br.admit("t")  # the probe
        assert br.state == "half_open"
        with pytest.raises(CircuitOpenError):
            br.admit("t")  # only one probe at a time
        br.record_success()
        assert br.state == "closed"
        br.admit("t")  # normal admission again

    def test_half_open_probe_failure_reopens(self):
        clock = [0.0]
        br = CircuitBreaker(threshold=3, cooldown=5.0, clock=lambda: clock[0])
        for _ in range(3):
            br.record_failure()
        clock[0] = 6.0
        br.admit("t")
        br.record_failure()  # probe failed
        assert br.state == "open"
        with pytest.raises(CircuitOpenError):
            br.admit("t")  # cooldown restarted

    def test_release_probe_unwedges(self):
        clock = [0.0]
        br = CircuitBreaker(threshold=1, cooldown=1.0, clock=lambda: clock[0])
        br.record_failure()
        clock[0] = 2.0
        br.admit("t")
        br.release_probe()
        br.admit("t")  # a new probe may enter


# ---------------------------------------------------------------------------
# Admission, backpressure, scheduling
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_validation(self):
        with pytest.raises(ServiceError):
            JobService(num_slots=0)
        with pytest.raises(ServiceError):
            JobService(queue_depth=0)
        with pytest.raises(ServiceError):
            JobService(policy="srpt")
        with pytest.raises(ServiceError):
            JobService(degrade_at=0.0)
        svc = JobService()
        with pytest.raises(ServiceError):
            svc.submit("", sleep_spec(0.0))
        with pytest.raises(ServiceError):
            svc.submit("t", sleep_spec(0.0), deadline=-1.0)

    def test_queue_full_sheds_with_retry_after(self):
        """Submitting before start makes the shed set purely structural."""
        svc = JobService(num_slots=1, queue_depth=2)
        accepted = [svc.submit("a", sleep_spec(0.001)) for _ in range(2)]
        with pytest.raises(ServiceOverloadedError) as exc_info:
            svc.submit("a", sleep_spec(0.001))
        assert exc_info.value.retry_after > 0
        health = svc.health()
        assert health["tenants"]["a"]["shed"] == 1
        assert health["tenants"]["a"]["queued"] == 2
        svc.start()
        for t in accepted:
            t.result(timeout=10)
        svc.shutdown()

    def test_queues_are_per_tenant(self):
        svc = JobService(num_slots=1, queue_depth=1)
        svc.submit("a", sleep_spec(0.001))
        with pytest.raises(ServiceOverloadedError):
            svc.submit("a", sleep_spec(0.001))
        svc.submit("b", sleep_spec(0.001))  # b's queue is independent
        svc.start()
        svc.drain(timeout=10)
        svc.shutdown()

    def test_submit_after_drain_rejected(self):
        svc = JobService(num_slots=1).start()
        svc.drain(timeout=10)
        with pytest.raises(ServiceStoppedError):
            svc.submit("a", sleep_spec(0.0))
        svc.shutdown()

    def test_fifo_pops_globally_oldest(self):
        svc = JobService(num_slots=1, queue_depth=8, policy="fifo")
        order = []
        for i, tenant in enumerate(["a", "a", "a", "b"]):
            t = svc.submit(tenant, sleep_spec(0.001, name=f"j{i}"))
            t.event  # touch
            order.append(t)
        svc.start()
        svc.drain(timeout=10)
        starts = [t.start_s for t in order]
        assert starts == sorted(starts)  # submission order == dispatch order
        svc.shutdown()

    def test_fair_interleaves_tenants(self):
        svc = JobService(num_slots=1, queue_depth=8, policy="fair")
        a = [svc.submit("a", sleep_spec(0.001)) for _ in range(3)]
        b = [svc.submit("b", sleep_spec(0.001)) for _ in range(3)]
        svc.start()
        svc.drain(timeout=10)
        svc.shutdown()
        # Under fair sharing b's first job runs before a's last: the
        # dispatch order alternates tenants instead of draining a first.
        assert b[0].start_s < a[-1].start_s

    def test_completed_ticket_result_and_counters(self):
        with JobService(num_slots=2) as svc:
            t = svc.submit("a", sleep_spec(0.001))
            result = t.result(timeout=10)
        assert t.status == "done"
        assert t.latency is not None and t.latency >= 0
        assert result.counters is not None


# ---------------------------------------------------------------------------
# Deadlines, retries, degradation
# ---------------------------------------------------------------------------


class TestDeadlinesRetries:
    def test_deadline_expires_queued_job(self):
        svc = JobService(num_slots=1, queue_depth=4)
        blocker = svc.submit("a", sleep_spec(0.3))
        doomed = svc.submit("a", sleep_spec(0.1), deadline=0.01)
        svc.start()
        assert doomed.event.wait(10)
        assert doomed.status == "expired"
        with pytest.raises(DeadlineExceededError):
            doomed.result(timeout=1)
        blocker.result(timeout=10)
        svc.shutdown()

    def test_deadline_expires_running_job(self):
        with JobService(num_slots=1) as svc:
            t = svc.submit("a", sleep_spec(0.2), deadline=0.02)
            assert t.event.wait(10)
            assert t.status == "expired"

    def test_job_level_retry_succeeds(self):
        retry = RetryPolicy(max_attempts=3, backoff=0.001, jitter=1.0, seed=7)
        with JobService(num_slots=1, retry=retry) as svc:
            t = svc.submit("a", flaky_spec(failures=2))
            t.result(timeout=10)
        assert t.status == "done"
        assert t.attempts == 3

    def test_retry_exhaustion_fails(self):
        retry = RetryPolicy(max_attempts=2, backoff=0.001)
        with JobService(num_slots=1, retry=retry) as svc:
            t = svc.submit("a", failing_spec())
            assert t.event.wait(10)
        assert t.status == "failed"
        assert t.attempts == 2
        with pytest.raises(Exception):
            t.result(timeout=1)

    def test_degradable_job_degrades_under_pressure(self):
        # degrade_at small: any backlog counts as pressure.
        svc = JobService(num_slots=1, queue_depth=4, degrade_at=0.25)
        tickets = [
            svc.submit("a", sleep_spec(0.005), degradable=True) for _ in range(4)
        ]
        svc.start()
        svc.drain(timeout=10)
        svc.shutdown()
        assert any(t.degraded for t in tickets)
        assert svc.health()["tenants"]["a"]["degraded_runs"] >= 1

    def test_non_degradable_never_degrades(self):
        svc = JobService(num_slots=1, queue_depth=4, degrade_at=0.25)
        tickets = [svc.submit("a", sleep_spec(0.005)) for _ in range(4)]
        svc.start()
        svc.drain(timeout=10)
        svc.shutdown()
        assert not any(t.degraded for t in tickets)


class TestDegradedClusterSpec:
    def test_degraded_execution_is_cheaper_config(self, two_family_records):
        """Degraded greedy run: b-bit wire + sparse, still a valid run."""
        from repro.mapreduce.runner import SerialRunner

        spec = ClusterJobSpec(
            records=tuple(two_family_records),
            kmer_size=5,
            num_hashes=32,
            threshold=0.5,
            method="greedy",
            seed=0,
            num_map_tasks=2,
        )
        runner = SerialRunner(trace=False)
        full = spec.execute(runner, degraded=False)
        degraded = spec.execute(runner, degraded=True)
        assert full.assignment.num_clusters >= 1
        assert degraded.assignment.num_clusters >= 1
        # Both cluster the same reads; the degraded run is approximate
        # but must still assign every read.
        assert len(degraded.assignment) == len(full.assignment)

    def test_degraded_hierarchical_average_keeps_dense_path(
        self, two_family_records
    ):
        """average linkage cannot go sparse; the ladder stops at b-bit."""
        from repro.mapreduce.runner import SerialRunner

        spec = ClusterJobSpec(
            records=tuple(two_family_records),
            num_hashes=32,
            threshold=0.5,
            method="hierarchical",
            linkage="average",
            num_map_tasks=2,
        )
        run = spec.execute(SerialRunner(trace=False), degraded=True)
        assert run.similarity is not None  # dense matrix retained

    def test_service_runs_cluster_specs(self, two_family_records):
        spec = ClusterJobSpec(
            records=tuple(two_family_records),
            num_hashes=32,
            threshold=0.5,
            method="greedy",
            num_map_tasks=2,
        )
        with JobService(num_slots=2) as svc:
            t = svc.submit("metagenomics", spec)
            run = t.result(timeout=60)
        assert run.assignment.num_clusters >= 1


# ---------------------------------------------------------------------------
# Breaker integration, drain, shutdown
# ---------------------------------------------------------------------------


class TestServiceResilience:
    def test_breaker_trips_and_recovers(self):
        svc = JobService(
            num_slots=1, queue_depth=8, breaker_threshold=2, breaker_cooldown=0.1
        ).start()
        for _ in range(2):
            t = svc.submit("bad", failing_spec())
            assert t.event.wait(10)
            assert t.status == "failed"
        with pytest.raises(CircuitOpenError):
            svc.submit("bad", sleep_spec(0.001))
        assert svc.health()["tenants"]["bad"]["breaker"] == "open"
        time.sleep(0.15)
        probe = svc.submit("bad", sleep_spec(0.001))  # half-open probe
        probe.result(timeout=10)
        assert svc.health()["tenants"]["bad"]["breaker"] == "closed"
        svc.shutdown()

    def test_breaker_isolates_tenants(self):
        svc = JobService(
            num_slots=1, queue_depth=8, breaker_threshold=1, breaker_cooldown=60.0
        ).start()
        t = svc.submit("bad", failing_spec())
        assert t.event.wait(10)
        with pytest.raises(CircuitOpenError):
            svc.submit("bad", sleep_spec(0.001))
        good = svc.submit("good", sleep_spec(0.001))  # unaffected
        good.result(timeout=10)
        svc.shutdown()

    def test_drain_terminates_and_is_one_way(self):
        svc = JobService(num_slots=2, queue_depth=4).start()
        tickets = [svc.submit("a", sleep_spec(0.01)) for _ in range(4)]
        assert svc.drain(timeout=10) is True
        assert all(t.status == "done" for t in tickets)
        with pytest.raises(ServiceStoppedError):
            svc.submit("a", sleep_spec(0.0))
        svc.shutdown()

    def test_shutdown_nowait_cancels_queued(self):
        svc = JobService(num_slots=1, queue_depth=8)
        tickets = [svc.submit("a", sleep_spec(0.05)) for _ in range(4)]
        svc.start()
        time.sleep(0.02)  # let the first job start
        svc.shutdown(wait=False)
        statuses = {t.status for t in tickets}
        assert "cancelled" in statuses  # queued tail was cancelled
        for t in tickets:
            assert t.done()

    def test_context_manager_drains(self):
        with JobService(num_slots=1) as svc:
            t = svc.submit("a", sleep_spec(0.01))
        assert t.status == "done"

    def test_health_snapshot_is_deterministically_ordered(self):
        svc = JobService(num_slots=1)
        svc.submit("zeta", sleep_spec(0.001))
        svc.submit("alpha", sleep_spec(0.001))
        svc.start()
        svc.drain(timeout=10)
        health = svc.health()
        assert list(health["tenants"]) == ["alpha", "zeta"]
        assert health["totals"]["completed"] == 2
        svc.shutdown()

    def test_service_spans_and_metrics(self):
        from repro.obs import Tracer

        tracer = Tracer()
        svc = JobService(num_slots=1, tracer=tracer)
        svc.submit("a", sleep_spec(0.001))
        svc.start()
        svc.drain(timeout=10)
        svc.shutdown()
        service_spans = [s for s in tracer.spans if s.kind == "service_job"]
        assert len(service_spans) == 1
        assert service_spans[0].status == "ok"
        assert service_spans[0].end_s is not None
        snap = tracer.metrics.snapshot()
        assert snap["counters"]["service.jobs_accepted.a"] == 1
        assert snap["counters"]["service.jobs_done.a"] == 1


# ---------------------------------------------------------------------------
# Fluid-model validation (measured vs scheduler.py prediction)
# ---------------------------------------------------------------------------


class TestFluidValidation:
    TOLERANCE = 0.35  # relative; absolute floor below

    def _run(self, policy: str):
        svc = JobService(num_slots=2, queue_depth=8, policy=policy)
        tickets = []
        for _ in range(3):
            for tenant in ("a", "b"):
                tickets.append(svc.submit(tenant, sleep_spec(0.02)))
        svc.start()
        for t in tickets:
            t.result(timeout=30)
        svc.shutdown()
        return tickets

    @pytest.mark.parametrize("policy", ["fifo", "fair"])
    def test_measured_latency_matches_fluid_model(self, policy):
        tickets = self._run(policy)
        predicted = fluid_prediction(tickets, 2, policy)
        assert set(predicted) == {t.id for t in tickets}
        for t in tickets:
            tolerance = max(self.TOLERANCE * predicted[t.id], 0.25)
            assert abs(t.latency - predicted[t.id]) <= tolerance, (
                f"{policy}: job {t.id} measured {t.latency:.3f}s vs "
                f"fluid {predicted[t.id]:.3f}s"
            )
        # Aggregate check is tighter than per-job: mean measured latency
        # must track the fluid mean within the relative tolerance.
        mean_measured = sum(t.latency for t in tickets) / len(tickets)
        mean_predicted = sum(predicted.values()) / len(predicted)
        assert mean_measured == pytest.approx(
            mean_predicted, rel=0.6, abs=0.15
        )

    def test_empty_prediction(self):
        assert fluid_prediction([], 2, "fifo") == {}
