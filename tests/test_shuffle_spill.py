"""Equivalence net for the external spill-to-disk shuffle.

The contract under test: for ANY map output, partition count and spill
threshold, :class:`SpillingShuffle` produces byte-identical partitions to
the in-memory :func:`shuffle` — same groups, same key order, same value
order, same moved-record count — because the spilled sorted runs are
merged with the exact natural-order / ``_sort_key`` fallback rule of
:func:`sort_grouped_keys` and the run-index tie-break reproduces dict
insertion order.  Unit tests pin the mechanics (segments, counters,
re-iteration, cleanup, bit-rot repair); the hypothesis net sweeps random
key/value distributions, partition counts and thresholds including
``threshold=0`` (spill-everything) and mixed-type key pools that force
the fallback merge.
"""

import glob
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FaultError, MapReduceError
from repro.mapreduce.counters import Counters
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.shuffle import (
    SpilledPartition,
    SpillingShuffle,
    shuffle,
    sort_grouped_keys,
    sort_records,
    verify_segment,
)


def materialize(partitions):
    return [[(k, list(v)) for k, v in part] for part in partitions]


def spill_equivalent(map_outputs, num_partitions, threshold, **kwargs):
    """Assert SpillingShuffle == shuffle for one input; return the spill."""
    expected, expected_moved = shuffle(map_outputs, num_partitions)
    sp = SpillingShuffle(
        num_partitions, spill_threshold_bytes=threshold, **kwargs
    )
    for out in map_outputs:
        sp.add_task_output(out)
    partitions, moved = sp.finish()
    assert moved == expected_moved
    assert materialize(partitions) == materialize(expected)
    return sp, partitions


class TestSpillingShuffleUnit:
    def test_threshold_zero_spills_every_nonempty_buffer(self):
        mo = [[(i % 3, i) for i in range(30)] for _ in range(4)]
        sp, _ = spill_equivalent(mo, 2, 0)
        # 4 tasks x 2 touched partitions = 8 segments, all records on disk.
        assert sp.spill_segments == 8
        assert sp.spill_records == 120
        assert sp.spill_bytes > 0
        sp.close()

    def test_large_threshold_never_spills(self):
        mo = [[(i, i) for i in range(20)]]
        sp, parts = spill_equivalent(mo, 2, 1 << 30)
        assert sp.spill_segments == 0
        assert all(not p.segments for p in parts)  # in-memory tails only
        sp.close()

    def test_partitions_are_reiterable(self):
        mo = [[(i % 5, i) for i in range(40)]]
        sp, parts = spill_equivalent(mo, 3, 0)
        assert materialize(parts) == materialize(parts)
        sp.close()

    def test_empty_input_and_empty_partitions(self):
        sp = SpillingShuffle(3, spill_threshold_bytes=0)
        parts, moved = sp.finish()
        assert moved == 0
        assert materialize(parts) == [[], [], []]
        sp.close()

    def test_counters_surface_spill_accounting(self):
        counters = Counters()
        mo = [[(i % 2, i) for i in range(20)]]
        sp, _ = spill_equivalent(mo, 2, 0, counters=counters)
        assert counters.get("shuffle", "spill_segments") == sp.spill_segments
        assert counters.get("shuffle", "spill_bytes") == sp.spill_bytes
        assert counters.get("shuffle", "spill_records") == sp.spill_records
        sp.close()

    def test_close_removes_spill_dir_and_is_idempotent(self):
        sp = SpillingShuffle(1, spill_threshold_bytes=0)
        sp.add_task_output([(1, "a"), (2, "b")])
        spill_dir = sp._dir
        assert spill_dir is not None and os.path.isdir(spill_dir)
        sp.close()
        assert not os.path.exists(spill_dir)
        sp.close()  # idempotent

    def test_add_after_finish_rejected(self):
        sp = SpillingShuffle(1)
        sp.finish()
        with pytest.raises(MapReduceError):
            sp.add_task_output([(1, 1)])
        sp.close()

    def test_invalid_records_rejected_like_in_memory_shuffle(self):
        sp = SpillingShuffle(1, spill_threshold_bytes=0)
        with pytest.raises(MapReduceError, match="not a .key, value. pair"):
            sp.add_task_output([(1, 2, 3)])
        sp.close()

    def test_mixed_type_keys_use_fallback_merge(self):
        # Ints and strs are mutually incomparable: the in-memory path
        # falls back to (type name, repr) ordering; the merge must too —
        # including when each run alone is homogeneous (sortable), so the
        # incomparability only appears *across* runs.
        mo = [[(1, "a"), (3, "b")], [("x", "c"), ("m", "d")], [(1, "e")]]
        sp, parts = spill_equivalent(mo, 1, 0)
        assert parts[0].fallback
        sp.close()

    def test_bitrot_detected_and_respilled(self):
        plan = FaultPlan(seed=0, spill_corrupt_rate=1.0, max_faulted_attempts=1)
        counters = Counters()
        mo = [[(i % 3, i) for i in range(30)] for _ in range(2)]
        sp, _ = spill_equivalent(
            mo, 2, 0, fault_plan=plan, counters=counters, job_name="j"
        )
        # Every first write rots (rate 1.0); every repair draw is attempt 2
        # > max_faulted_attempts, so exactly one re-spill per segment.
        assert counters.get("fault", "spill_segments_bitrotted") == sp.spill_segments
        assert counters.get("fault", "spill_segments_corrupted") == sp.spill_segments
        assert counters.get("shuffle", "spill_respills") == sp.spill_segments
        sp.close()

    def test_unrepairable_bitrot_raises_fault_error(self):
        plan = FaultPlan(seed=0, spill_corrupt_rate=1.0)  # rots every attempt
        sp = SpillingShuffle(
            1, spill_threshold_bytes=0, fault_plan=plan, max_spill_attempts=3
        )
        sp.add_task_output([(1, "a"), (2, "b")])
        with pytest.raises(FaultError, match="still corrupt after 3"):
            sp.finish()
        sp.close()

    def test_verify_segment_detects_truncation(self, tmp_path):
        sp = SpillingShuffle(1, spill_threshold_bytes=0, spill_dir=str(tmp_path))
        sp.add_task_output([(i, i) for i in range(10)])
        (seg_path,) = glob.glob(str(tmp_path) + "/*/*.seg")
        assert verify_segment(seg_path)
        data = open(seg_path, "rb").read()
        with open(seg_path, "wb") as fh:
            fh.write(data[:-3])
        assert not verify_segment(seg_path)
        sp.close()

    def test_records_with_internal_back_references_round_trip(self):
        # Regression (found by the hypothesis net): each record is
        # dumps()-ed independently, so its pickle memo starts at zero; a
        # segment reader that reused one Unpickler across records kept a
        # growing memo, and any record whose pickle contains an internal
        # back-reference (the same object twice — interned '' here, or a
        # shared list) resolved its GET against an earlier record.
        shared = [1, 2]
        mo = [[(0, None), ("", ""), (1, (shared, shared)), ("", "")]]
        sp, _ = spill_equivalent(mo, 1, 0)
        sp.close()

    def test_spilled_partition_survives_pickle_round_trip(self):
        # The multiprocess runner ships partitions to pool workers.
        import pickle

        mo = [[(i % 4, i) for i in range(32)]]
        sp, parts = spill_equivalent(mo, 2, 0)
        cloned = pickle.loads(pickle.dumps(parts))
        assert all(isinstance(p, SpilledPartition) for p in cloned)
        assert materialize(cloned) == materialize(parts)
        sp.close()


class TestSharedOrdering:
    """Satellite fix: the runners' ``sort_output`` fallback routes through
    the shared shuffle helpers so mixed-type orderings cannot drift."""

    def test_sort_records_matches_sort_grouped_keys_on_mixed_types(self):
        keys = [3, "b", 1, (2,), "a", 7.5, b"x", None]
        records = [(k, i) for i, k in enumerate(keys)]
        assert [k for k, _ in sort_records(records)] == sort_grouped_keys(keys)

    def test_sort_records_natural_path_and_stability(self):
        records = [(2, "x"), (1, "y"), (2, "z"), (1, "w")]
        assert sort_records(records) == [(1, "y"), (1, "w"), (2, "x"), (2, "z")]

    def test_runner_sort_output_uses_shared_ordering(self):
        from repro.mapreduce.job import MapReduceJob
        from repro.mapreduce.runner import SerialRunner
        from repro.mapreduce.types import JobConf

        def mapper(key, value):
            yield value, key  # mixed-type output keys

        def reducer(key, values):
            yield key, sorted(values)

        job = MapReduceJob(name="mixed", mapper=mapper, reducer=reducer)
        inputs = list(enumerate([3, "b", 1, (2,), "a"]))
        result = SerialRunner().run(job, inputs, JobConf(num_reduce_tasks=2))
        assert [k for k, _ in result.output] == sort_grouped_keys(
            [v for _, v in inputs]
        )


# ---- hypothesis property net ----------------------------------------------

# Key pools: homogeneous fast-path types, plus a mixed pool whose members
# are never mutually comparable (no int/float/bool aliasing: 1 == 1.0 ==
# True would group differently in a dict than under _sort_key ordering).
int_keys = st.integers(min_value=-50, max_value=50)
str_keys = st.text(
    alphabet="abcdefgh", min_size=0, max_size=4
)
tuple_keys = st.tuples(st.integers(min_value=0, max_value=5))
bytes_keys = st.binary(min_size=0, max_size=3)
mixed_keys = st.one_of(int_keys, str_keys, tuple_keys, bytes_keys)

values = st.one_of(st.integers(), st.text(max_size=3), st.none())


def outputs_from(keys):
    return st.lists(  # map tasks
        st.lists(st.tuples(keys, values), max_size=40),  # records per task
        max_size=5,
    )


thresholds = st.sampled_from([0, 1, 64, 1 << 20])
partition_counts = st.integers(min_value=1, max_value=4)


@settings(max_examples=60, deadline=None)
@given(mo=outputs_from(int_keys), parts=partition_counts, threshold=thresholds)
def test_spill_equivalence_int_keys(mo, parts, threshold):
    sp, _ = spill_equivalent(mo, parts, threshold)
    sp.close()


@settings(max_examples=40, deadline=None)
@given(mo=outputs_from(str_keys), parts=partition_counts, threshold=thresholds)
def test_spill_equivalence_str_keys(mo, parts, threshold):
    sp, _ = spill_equivalent(mo, parts, threshold)
    sp.close()


@settings(max_examples=60, deadline=None)
@given(mo=outputs_from(mixed_keys), parts=partition_counts, threshold=thresholds)
def test_spill_equivalence_mixed_type_keys(mo, parts, threshold):
    """Mixed pools exercise the ``_sort_key`` fallback in the merge path."""
    sp, _ = spill_equivalent(mo, parts, threshold)
    sp.close()


@settings(max_examples=25, deadline=None)
@given(mo=outputs_from(int_keys), parts=partition_counts)
def test_spill_equivalence_under_bitrot_repair(mo, parts):
    """Bit-rot on first writes + deterministic repair never changes output."""
    plan = FaultPlan(seed=1, spill_corrupt_rate=0.5, max_faulted_attempts=1)
    sp, _ = spill_equivalent(mo, parts, 0, fault_plan=plan, job_name="prop")
    sp.close()
