"""Exporter tests: JSONL round-trip and Chrome trace-event well-formedness.

The Chrome trace checks run on a real nested multi-job chain (serial and
multiprocess) and validate the invariants the trace-event format needs:
every ``B`` pairs with a matching ``E`` on its (pid, tid) track, and
timestamps never go backwards within a track.
"""

import json

import pytest

from repro.mapreduce.job import MapReduceJob, identity_reducer
from repro.mapreduce.local import MultiprocessRunner
from repro.mapreduce.runner import SerialRunner
from repro.mapreduce.types import JobConf
from repro.obs import (
    Tracer,
    chrome_trace_events,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.trace import Span


def mapper(key, value):
    yield key % 4, value + 1


def make_chain_tracer():
    """Trace a two-job chain through the serial runner."""
    jobs = [
        MapReduceJob(name="first", mapper=mapper, reducer=identity_reducer),
        MapReduceJob(name="second", mapper=mapper, reducer=identity_reducer),
    ]
    inputs = [(i, i) for i in range(24)]
    conf = JobConf(num_map_tasks=3, num_reduce_tasks=2)
    tracer = Tracer()
    with tracer.activate():
        SerialRunner().run_chain([(job, conf) for job in jobs], inputs)
    return tracer


def assert_chrome_invariants(events):
    """B/E pairing and ts monotonicity per (pid, tid) track."""
    assert events, "no events emitted"
    stacks: dict[tuple, list] = {}
    last_ts: dict[tuple, float] = {}
    for event in events:
        key = (event["pid"], event["tid"])
        assert event["ph"] in ("B", "E")
        assert event["ts"] >= last_ts.get(key, float("-inf")), (
            f"ts went backwards on track {key}"
        )
        last_ts[key] = event["ts"]
        if event["ph"] == "B":
            stacks.setdefault(key, []).append(event["name"])
        else:
            assert stacks.get(key), f"E without open B on track {key}"
            assert stacks[key].pop() == event["name"], "mispaired B/E"
    assert all(not stack for stack in stacks.values()), "unclosed B events"


class TestJsonlRoundTrip:
    def test_round_trip_preserves_spans_metrics_meta(self, tmp_path):
        tracer = make_chain_tracer()
        tracer.metrics.gauge("pipeline.clusters").set(7)
        path = tmp_path / "run.jsonl"
        write_jsonl(tracer, path)

        spans, metrics, meta = read_jsonl(path)
        assert len(spans) == len(tracer.spans)
        assert [s.to_dict() for s in spans] == [s.to_dict() for s in tracer.spans]
        assert metrics == tracer.metrics.snapshot()
        assert meta["num_spans"] == len(tracer.spans)
        assert meta["pid"] == tracer.pid

    def test_every_line_is_valid_json(self, tmp_path):
        tracer = make_chain_tracer()
        path = tmp_path / "run.jsonl"
        write_jsonl(tracer, path)
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "meta"
        assert records[-1]["type"] == "metrics"
        assert all(r["type"] == "span" for r in records[1:-1])


class TestChromeTrace:
    def test_nested_chain_emits_wellformed_trace(self):
        tracer = make_chain_tracer()
        events = chrome_trace_events(tracer.spans)
        # Two events (B + E) per span.
        assert len(events) == 2 * len(tracer.spans)
        assert_chrome_invariants(events)
        names = {e["name"] for e in events}
        assert {"chain", "job:first", "job:second", "map", "shuffle", "reduce"} <= names

    def test_multiprocess_run_has_per_worker_pids(self):
        job = MapReduceJob(name="mp", mapper=mapper, reducer=identity_reducer)
        tracer = Tracer()
        with tracer.activate():
            MultiprocessRunner(num_workers=2).run(
                job,
                [(i, i) for i in range(16)],
                JobConf(num_map_tasks=4, num_reduce_tasks=2),
            )
        events = chrome_trace_events(tracer.spans)
        assert_chrome_invariants(events)
        assert len({e["pid"] for e in events}) > 1, "worker pids not preserved"

    def test_overlapping_spans_spread_across_tracks(self):
        # Two overlapping-but-not-nested spans cannot share a track.
        spans = [
            Span(name="a", span_id=1, parent_id=None, start_s=0.0, end_s=2.0),
            Span(name="b", span_id=2, parent_id=None, start_s=1.0, end_s=3.0),
        ]
        events = chrome_trace_events(spans)
        assert_chrome_invariants(events)
        tid_of = {e["name"]: e["tid"] for e in events if e["ph"] == "B"}
        assert tid_of["a"] != tid_of["b"]

    def test_begin_events_carry_status_and_attrs(self):
        tracer = Tracer()
        with tracer.span("x", kind="task", task_id="t0"):
            pass
        (begin, _end) = chrome_trace_events(tracer.spans)
        assert begin["cat"] == "task"
        assert begin["args"] == {"status": "ok", "task_id": "t0"}
        assert begin["ts"] == pytest.approx(tracer.spans[0].start_s * 1e6, abs=1.0)

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        tracer = make_chain_tracer()
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer.spans, path)
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert_chrome_invariants(document["traceEvents"])
