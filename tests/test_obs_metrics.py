"""Metrics registry tests: instrument semantics, the Counters adapter,
and snapshot/aggregation determinism."""

import json
import random

import pytest

from repro.mapreduce.counters import Counters
from repro.obs.metrics import (
    DEFAULT_BYTES_BUCKETS,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_accumulates_and_rejects_decrease(self):
        reg = MetricsRegistry()
        c = reg.counter("mr.records")
        c.inc()
        c.inc(4)
        assert reg.value("mr.records") == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_is_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("ratio").set(0.5)
        reg.gauge("ratio").set(0.125)
        assert reg.value("ratio") == 0.125

    def test_histogram_buckets_by_upper_bound(self):
        h = Histogram("t", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.01, 0.05, 0.5, 2.0):
            h.observe(v)
        # <=0.01, <=0.1, <=1.0, overflow
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(2.565)

    def test_histogram_requires_ascending_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram("empty", buckets=())

    def test_histogram_reregistration_must_match_boundaries(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=DEFAULT_BYTES_BUCKETS)
        reg.histogram("h", buckets=DEFAULT_BYTES_BUCKETS)  # same: fine
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(1.0, 2.0))

    def test_name_collision_across_types_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")


class TestCountersAdapter:
    def test_record_counters_maps_group_name_to_dotted(self):
        counters = Counters()
        counters.increment("wire", "bytes_raw", 100)
        counters.increment("wire", "bytes_wire", 10)
        counters.increment("fault", "task_retries", 2)
        reg = MetricsRegistry()
        reg.record_counters(counters)
        assert reg.value("mr.wire.bytes_raw") == 100
        assert reg.value("mr.wire.bytes_wire") == 10
        assert reg.value("mr.fault.task_retries") == 2

    def test_record_counters_accumulates_across_jobs(self):
        a, b = Counters(), Counters()
        a.increment("job", "shuffle_records", 3)
        b.increment("job", "shuffle_records", 4)
        reg = MetricsRegistry()
        reg.record_counters(a)
        reg.record_counters(b)
        assert reg.value("mr.job.shuffle_records") == 7


class TestDeterminism:
    def test_snapshot_is_sorted_and_json_stable(self):
        reg = MetricsRegistry()
        reg.counter("z.last").inc()
        reg.gauge("a.first").set(1)
        reg.counter("m.mid").inc(2)
        snap = reg.snapshot()
        assert list(snap["counters"]) == sorted(snap["counters"])
        assert list(snap["gauges"]) == sorted(snap["gauges"])

    def test_registration_order_does_not_change_snapshot(self):
        names = [f"c.{i}" for i in range(20)]
        dumps = []
        for seed in (0, 1):
            rng = random.Random(seed)
            shuffled = names[:]
            rng.shuffle(shuffled)
            reg = MetricsRegistry()
            for name in shuffled:
                reg.counter(name).inc(int(name.split(".")[1]))
            dumps.append(json.dumps(reg.snapshot(), sort_keys=True))
        assert dumps[0] == dumps[1]

    def test_registry_merge_is_order_independent(self):
        def part(values):
            reg = MetricsRegistry()
            for name, v in values:
                reg.counter(name).inc(v)
            return reg

        a = part([("x", 1), ("y", 2)])
        b = part([("y", 5), ("z", 3)])
        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge(a)
        ab.merge(b)
        ba.merge(b)
        ba.merge(a)
        assert ab.snapshot() == ba.snapshot()

    def test_job_counters_merge_deterministic_and_dump_byte_identical(self):
        # Satellite: worker counters arriving in different completion
        # orders must aggregate to byte-identical dumps.
        def worker_counters(order):
            parts = []
            for tag in order:
                c = Counters()
                c.increment("map", f"records_{tag}", ord(tag))
                c.increment("wire", "bytes_wire", 10 * ord(tag))
                parts.append(c)
            total = Counters()
            for c in parts:
                total.merge(c)
            return total

        first = worker_counters(["a", "b", "c", "d"])
        second = worker_counters(["d", "c", "b", "a"])
        assert first.dump_json() == second.dump_json()
        assert list(first) == list(second)
        assert json.dumps(first.as_dict()) == json.dumps(second.as_dict())
