"""Tests for banded alignment and the ESPRIT k-mer distance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KmerError, SequenceError
from repro.align.banded import banded_identity
from repro.align.global_align import global_align
from repro.align.kmerdist import kmer_distance, kmer_distance_matrix

dna = st.text(alphabet="ACGT", min_size=10, max_size=60)


class TestBandedIdentity:
    def test_identical(self):
        assert banded_identity("ACGTACGT", "ACGTACGT") == 1.0

    def test_matches_full_dp_for_similar_pairs(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n = int(rng.integers(30, 90))
            a = "".join(rng.choice(list("ACGT"), size=n))
            b = list(a)
            for _ in range(int(rng.integers(0, 5))):
                p = int(rng.integers(len(b)))
                b[p] = "ACGT"[int(rng.integers(4))]
            b = "".join(b)
            assert banded_identity(a, b, band=16) == pytest.approx(
                global_align(a, b).identity, abs=0.05
            )

    def test_length_difference_beyond_band_falls_back(self):
        a = "ACGT" * 20
        b = "ACGT" * 5
        # |80 - 20| = 60 > band 8: exact fallback must still work.
        result = banded_identity(a, b, band=8)
        assert result == pytest.approx(global_align(a, b).identity)

    def test_band_one(self):
        assert banded_identity("ACGT", "ACGT", band=1) == 1.0

    def test_validation(self):
        with pytest.raises(SequenceError):
            banded_identity("", "ACGT")
        with pytest.raises(SequenceError):
            banded_identity("ACGT", "ACGT", band=0)

    @given(dna)
    @settings(max_examples=30, deadline=None)
    def test_self_identity(self, a):
        assert banded_identity(a, a, band=8) == 1.0

    @given(dna, dna)
    @settings(max_examples=30, deadline=None)
    def test_bounds_and_symmetry(self, a, b):
        x = banded_identity(a, b, band=12)
        assert 0.0 <= x <= 1.0
        assert x == pytest.approx(banded_identity(b, a, band=12), abs=1e-9)

    def test_banded_never_exceeds_full_optimum_identity_much(self):
        """The banded path is a restriction: its score <= full optimum,
        identity close for near-diagonal pairs."""
        a = "ACGTACGTGGCCTTAA" * 3
        b = "ACGTACGTGGCTTTAA" * 3
        full = global_align(a, b).identity
        band = banded_identity(a, b, band=10)
        assert band <= full + 1e-9


class TestKmerDistance:
    def test_identical_zero(self):
        assert kmer_distance("ACGTACGTAC", "ACGTACGTAC", k=3) == pytest.approx(0.0)

    def test_disjoint_one(self):
        assert kmer_distance("AAAAAAAAAA", "CCCCCCCCCC", k=3) == pytest.approx(1.0)

    def test_range(self):
        d = kmer_distance("ACGTACGTAC", "ACGTTCGTAC", k=4)
        assert 0.0 <= d <= 1.0

    def test_too_short_rejected(self):
        with pytest.raises(KmerError):
            kmer_distance("AC", "ACGTACGT", k=6)

    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, a, b):
        assert kmer_distance(a, b, k=4) == pytest.approx(kmer_distance(b, a, k=4))

    def test_correlates_with_alignment(self):
        """More substitutions -> larger k-mer distance (the ESPRIT premise)."""
        rng = np.random.default_rng(1)
        base = "".join(rng.choice(list("ACGT"), size=120))
        distances = []
        for nmut in (0, 5, 15, 30):
            mutated = list(base)
            for p in rng.choice(120, size=nmut, replace=False):
                mutated[p] = "ACGT"[(("ACGT".index(mutated[p])) + 1) % 4]
            distances.append(kmer_distance(base, "".join(mutated), k=6))
        assert distances == sorted(distances)


class TestKmerDistanceMatrix:
    def test_shape_and_symmetry(self):
        seqs = ["ACGTACGTAC", "ACGTTCGTAC", "GGGGGGGGGG"]
        m = kmer_distance_matrix(seqs, k=3)
        assert m.shape == (3, 3)
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 0.0)

    def test_matches_pairwise_calls(self):
        seqs = ["ACGTACGTAC", "ACGTTCGTAC", "ACGGACGTAC"]
        m = kmer_distance_matrix(seqs, k=4)
        for i in range(3):
            for j in range(i + 1, 3):
                assert m[i, j] == pytest.approx(kmer_distance(seqs[i], seqs[j], k=4))
