"""Regression-comparator logic of the perf-trajectory gate.

Exercises the pure comparison rules (direction, tolerance, floors,
ceilings, exact metrics, workload pinning) without running the — slow —
measurement pass; one smoke test checks the committed snapshot is
well-formed and self-consistent with the comparator.
"""

import copy
import importlib.util
import json
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "bench_trajectory", REPO_ROOT / "benchmarks" / "bench_trajectory.py"
)
bench_trajectory = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_trajectory)

compare = bench_trajectory.compare
find_baseline = bench_trajectory.find_baseline


def snapshot(**overrides):
    doc = {
        "schema": 1,
        "workload": {"num_reads": 200, "kmer_size": 5},
        "metrics": {
            "batch_ms": {
                "value": 20.0,
                "unit": "ms",
                "direction": "lower",
                "tolerance": 0.5,
            },
            "speedup": {
                "value": 8.0,
                "unit": "x",
                "direction": "higher",
                "tolerance": 0.25,
                "floor": 5.0,
            },
            "clusters": {
                "value": 44,
                "unit": "clusters",
                "direction": "lower",
                "tolerance": 0.0,
                "exact": True,
            },
        },
    }
    doc.update(overrides)
    return doc


def test_identical_snapshots_pass():
    assert compare(snapshot(), snapshot()) == []


def test_improvement_passes():
    cur = snapshot()
    cur["metrics"]["batch_ms"]["value"] = 10.0
    cur["metrics"]["speedup"]["value"] = 16.0
    assert compare(snapshot(), cur) == []


def test_lower_metric_regression_fails():
    cur = snapshot()
    cur["metrics"]["batch_ms"]["value"] = 31.0  # > 20 * 1.5
    problems = compare(snapshot(), cur)
    assert len(problems) == 1 and "batch_ms" in problems[0]


def test_lower_metric_within_tolerance_passes():
    cur = snapshot()
    cur["metrics"]["batch_ms"]["value"] = 29.0  # <= 20 * 1.5
    assert compare(snapshot(), cur) == []


def test_higher_metric_regression_fails():
    cur = snapshot()
    cur["metrics"]["speedup"]["value"] = 5.5  # < 8 * 0.75
    problems = compare(snapshot(), cur)
    assert len(problems) == 1 and "speedup" in problems[0]


def test_hard_floor_beats_tolerance():
    # Within tolerance of a low baseline but under the absolute floor.
    base = snapshot()
    base["metrics"]["speedup"]["value"] = 5.2
    cur = copy.deepcopy(base)
    cur["metrics"]["speedup"]["value"] = 4.5
    problems = compare(base, cur)
    assert any("hard floor" in p for p in problems)


def test_hard_ceiling_enforced():
    base = snapshot()
    cur = copy.deepcopy(base)
    cur["metrics"]["batch_ms"]["ceiling"] = 25.0
    cur["metrics"]["batch_ms"]["value"] = 26.0
    problems = compare(base, cur)
    assert any("hard ceiling" in p for p in problems)


def test_exact_metric_must_match():
    cur = snapshot()
    cur["metrics"]["clusters"]["value"] = 45
    problems = compare(snapshot(), cur)
    assert len(problems) == 1 and "clusters" in problems[0]


def test_missing_metric_flagged():
    cur = snapshot()
    del cur["metrics"]["speedup"]
    problems = compare(snapshot(), cur)
    assert any("missing" in p for p in problems)


def test_workload_mismatch_refuses_comparison():
    cur = snapshot()
    cur["workload"] = {"num_reads": 400, "kmer_size": 5}
    problems = compare(snapshot(), cur)
    assert problems and "workload" in problems[0]


def test_schema_mismatch_refuses_comparison():
    cur = snapshot(schema=2)
    problems = compare(snapshot(), cur)
    assert problems and "schema" in problems[0]


def test_find_baseline_picks_newest(tmp_path):
    (tmp_path / "BENCH_2026-01-01.json").write_text("{}")
    (tmp_path / "BENCH_2026-03-05.json").write_text("{}")
    (tmp_path / "BENCH_2026-02-28.json").write_text("{}")
    assert find_baseline(tmp_path).name == "BENCH_2026-03-05.json"
    assert find_baseline(tmp_path / "empty-subdir") is None


def test_committed_snapshot_is_wellformed():
    baseline_path = find_baseline(REPO_ROOT)
    assert baseline_path is not None, "a BENCH_*.json snapshot must be committed"
    doc = json.loads(baseline_path.read_text())
    assert doc["schema"] == bench_trajectory.SCHEMA_VERSION
    assert doc["workload"]["kmer_size"] == 5
    assert doc["workload"]["num_hashes"] == 100
    assert doc["workload"]["num_reads"] == 200
    metrics = doc["metrics"]
    # The headline acceptance gates, as committed.
    assert metrics["sketch_batch_speedup"]["value"] >= 5.0
    assert metrics["sketch_batch_speedup"]["floor"] == 5.0
    assert (
        metrics["shuffle_bytes_wire"]["value"]
        < metrics["shuffle_bytes_raw"]["value"]
    )
    # Service section (schema 3): structural shed rate gates exactly —
    # 2 tenants x 6 jobs into depth-2 queues sheds 8 of 12.
    assert metrics["service_shed_rate"]["exact"] is True
    assert metrics["service_shed_rate"]["value"] == pytest.approx(8 / 12, abs=1e-4)
    assert metrics["service_p99_latency_ms"]["value"] >= metrics[
        "service_p50_latency_ms"
    ]["value"]
    assert doc["service"]["accepted"] == 4
    assert doc["service"]["shed"] == 8
    assert doc["service"]["health"]["totals"]["completed"] == 4
    # A snapshot always passes the gate against itself.
    assert compare(doc, doc) == []


def test_cli_compare_exit_codes(tmp_path, capsys):
    good = tmp_path / "BENCH_a.json"
    bad = tmp_path / "BENCH_b.json"
    good.write_text(json.dumps(snapshot()))
    regressed = snapshot()
    regressed["metrics"]["speedup"]["value"] = 2.0
    bad.write_text(json.dumps(regressed))
    assert bench_trajectory.main(["compare", str(good), str(good)]) == 0
    assert bench_trajectory.main(["compare", str(good), str(bad)]) == 1
    out = capsys.readouterr().out
    assert "PASS" in out and "REGRESSION" in out


@pytest.mark.parametrize("direction", ["higher", "lower"])
def test_zero_tolerance_is_strict(direction):
    base = snapshot()
    base["metrics"] = {
        "m": {"value": 100.0, "unit": "u", "direction": direction, "tolerance": 0.0}
    }
    cur = copy.deepcopy(base)
    cur["metrics"]["m"]["value"] = 99.0 if direction == "higher" else 101.0
    assert compare(base, cur)
    cur["metrics"]["m"]["value"] = 100.0
    assert compare(base, cur) == []
