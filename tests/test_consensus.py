"""Tests for cluster consensus sequences."""

import numpy as np
import pytest

from repro.errors import ClusteringError
from repro.cluster.assignments import ClusterAssignment
from repro.cluster.consensus import cluster_consensus, consensus_sequence
from repro.seq.error_models import SubstitutionErrorModel


class TestConsensusSequence:
    def test_identical_members(self):
        assert consensus_sequence(["ACGTACGT"] * 5) == "ACGTACGT"

    def test_majority_fixes_substitutions(self):
        base = "ACGTACGTACGTACGT"
        members = [base, base, base[:5] + "T" + base[6:], base[:9] + "A" + base[10:]]
        assert consensus_sequence(members) == base

    def test_error_cancellation_statistical(self):
        """Random 5% errors across 9 members vote back to the template."""
        rng = np.random.default_rng(0)
        base = "".join(rng.choice(list("ACGT"), size=120))
        model = SubstitutionErrorModel(0.05)
        members = [base] + [model.apply(base, rng) for _ in range(8)]
        assert consensus_sequence(members) == base

    def test_deletion_majority_removes_column(self):
        base = "AACCGGTT"
        deleted = "AACGGTT"  # one C dropped
        members = [deleted, deleted, base]
        assert consensus_sequence(members, reference=base) == deleted

    def test_empty_rejected(self):
        with pytest.raises(ClusteringError):
            consensus_sequence([])

    def test_explicit_reference_anchor(self):
        members = ["ACGT", "ACGT"]
        assert consensus_sequence(members, reference="ACGT") == "ACGT"


class TestClusterConsensus:
    def test_per_cluster_output(self):
        sequences = {
            "a0": "ACGTACGTAC",
            "a1": "ACGTACGTAC",
            "a2": "ACGTTCGTAC",
            "b0": "GGGGCCCCGG",
            "b1": "GGGGCCCCGG",
            "solo": "TTTTTTTTTT",
        }
        assignment = ClusterAssignment(
            {"a0": 0, "a1": 0, "a2": 0, "b0": 1, "b1": 1, "solo": 2}
        )
        out = cluster_consensus(assignment, sequences, min_size=2)
        assert set(out) == {0, 1}
        assert out[0] == "ACGTACGTAC"
        assert out[1] == "GGGGCCCCGG"

    def test_missing_sequence_rejected(self):
        assignment = ClusterAssignment({"x": 0, "y": 0})
        with pytest.raises(ClusteringError, match="no sequence"):
            cluster_consensus(assignment, {"x": "ACGT"}, min_size=2)

    def test_validation(self):
        assignment = ClusterAssignment({"x": 0})
        with pytest.raises(ClusteringError):
            cluster_consensus(assignment, {"x": "ACGT"}, min_size=0)
        with pytest.raises(ClusteringError):
            cluster_consensus(assignment, {"x": "ACGT"}, max_members=0)

    def test_medoid_anchoring_with_sketches(self):
        from repro.minhash.sketch import SketchingConfig, compute_sketches
        from repro.seq.records import SequenceRecord

        records = [
            SequenceRecord("a0", "ACGTACGTACGTACGT"),
            SequenceRecord("a1", "ACGTACGTACGTACGT"),
            SequenceRecord("a2", "ACGTACGTACGTTCGT"),
        ]
        sketches = compute_sketches(
            records, SketchingConfig(kmer_size=4, num_hashes=16, seed=0)
        )
        assignment = ClusterAssignment({"a0": 0, "a1": 0, "a2": 0})
        out = cluster_consensus(
            assignment,
            {r.read_id: r.sequence for r in records},
            sketches,
            min_size=2,
        )
        assert out[0] == "ACGTACGTACGTACGT"

    def test_end_to_end_on_noisy_otu(self):
        """Consensus of a clustered noisy amplicon set recovers templates
        more often than raw members do."""
        from repro.cluster.pipeline import MrMCMinH
        from repro.datasets.sixteen_s import SixteenSModel, amplicon_reads

        model = SixteenSModel(divergence=0.25, seed=1)
        window = model.variable_window(model.gene_for_taxon("T"), region=3)
        reads = amplicon_reads(window, 30, label="T", mean_length=70, rng=1)
        run = MrMCMinH(kmer_size=8, num_hashes=32, threshold=0.5, seed=1).fit(reads)
        sequences = {r.read_id: r.sequence for r in reads}
        consensi = cluster_consensus(run.assignment, sequences, run.sketches, min_size=3)
        assert consensi  # at least one sizeable cluster
        for seq in consensi.values():
            assert set(seq) <= set("ACGT")
            assert len(seq) > 20
