"""Tests for Jaccard estimation and the pairwise similarity matrix,
including hypothesis properties of the estimators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SketchError
from repro.minhash.sketch import MinHashSketch, SketchingConfig, compute_sketches
from repro.minhash.similarity import (
    condensed_to_square,
    estimate_jaccard,
    exact_jaccard,
    pairwise_similarity_matrix,
    positional_similarity,
    set_similarity,
)
from repro.seq.records import SequenceRecord


def _sketch(read_id, values, key=(4, 100, 0)):
    return MinHashSketch(read_id, np.asarray(values), family_key=key)


class TestExactJaccard:
    def test_identical(self):
        assert exact_jaccard([1, 2, 3], [3, 2, 1]) == 1.0

    def test_disjoint(self):
        assert exact_jaccard([1, 2], [3, 4]) == 0.0

    def test_partial(self):
        assert exact_jaccard([1, 2, 3], [2, 3, 4]) == 0.5

    def test_duplicates_ignored(self):
        assert exact_jaccard([1, 1, 2], [2, 2, 1]) == 1.0

    def test_both_empty_rejected(self):
        with pytest.raises(SketchError):
            exact_jaccard([], [])

    @given(
        st.sets(st.integers(0, 50), min_size=1, max_size=30),
        st.sets(st.integers(0, 50), min_size=1, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounds_and_symmetry(self, a, b):
        a = np.array(sorted(a))
        b = np.array(sorted(b))
        j = exact_jaccard(a, b)
        assert 0.0 <= j <= 1.0
        assert j == exact_jaccard(b, a)


class TestEstimators:
    def test_positional_identical(self):
        s = _sketch("a", [1, 2, 3, 4])
        assert positional_similarity(s, _sketch("b", [1, 2, 3, 4])) == 1.0

    def test_positional_half(self):
        a = _sketch("a", [1, 2, 3, 4])
        b = _sketch("b", [1, 2, 9, 9])
        assert positional_similarity(a, b) == 0.5

    def test_set_collapses_duplicates(self):
        a = _sketch("a", [1, 1, 2, 2])
        b = _sketch("b", [2, 2, 1, 1])
        # Positionally nothing matches; as sets they are identical.
        assert positional_similarity(a, b) == 0.0
        assert set_similarity(a, b) == 1.0

    def test_estimator_dispatch(self):
        a = _sketch("a", [1, 2, 3, 4])
        b = _sketch("b", [4, 3, 2, 1])
        assert estimate_jaccard(a, b, estimator="set") == 1.0
        assert estimate_jaccard(a, b, estimator="positional") == 0.0
        with pytest.raises(SketchError, match="unknown estimator"):
            estimate_jaccard(a, b, estimator="bogus")

    def test_family_mismatch_rejected(self):
        a = _sketch("a", [1, 2, 3, 4], key=(1, 1, 1))
        b = _sketch("b", [1, 2, 3, 4], key=(2, 2, 2))
        with pytest.raises(SketchError, match="different hash families"):
            positional_similarity(a, b)

    def test_length_mismatch_rejected(self):
        a = _sketch("a", [1, 2, 3])
        b = _sketch("b", [1, 2, 3, 4])
        with pytest.raises(SketchError, match="lengths differ"):
            positional_similarity(a, b)


class TestPairwiseMatrix:
    def test_symmetric_unit_diagonal(self, two_family_sketches):
        m = pairwise_similarity_matrix(two_family_sketches)
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 1.0)

    def test_set_estimator_matches_pairwise_calls(self, two_family_sketches):
        sk = two_family_sketches[:4]
        m = pairwise_similarity_matrix(sk, estimator="set")
        for i in range(4):
            for j in range(4):
                assert m[i, j] == pytest.approx(set_similarity(sk[i], sk[j]))

    def test_positional_estimator_matches_pairwise_calls(self, two_family_sketches):
        sk = two_family_sketches[:4]
        m = pairwise_similarity_matrix(sk, estimator="positional")
        for i in range(4):
            for j in range(4):
                assert m[i, j] == pytest.approx(positional_similarity(sk[i], sk[j]))

    def test_row_range(self, two_family_sketches):
        full = pairwise_similarity_matrix(two_family_sketches)
        band = pairwise_similarity_matrix(two_family_sketches, row_range=(2, 5))
        assert band.shape == (3, len(two_family_sketches))
        assert np.allclose(band, full[2:5])

    def test_row_range_validation(self, two_family_sketches):
        with pytest.raises(SketchError):
            pairwise_similarity_matrix(two_family_sketches, row_range=(5, 2))
        with pytest.raises(SketchError):
            pairwise_similarity_matrix(two_family_sketches, row_range=(0, 999))

    def test_empty(self):
        assert pairwise_similarity_matrix([]).shape == (0, 0)

    def test_blocks_separate_families(self, two_family_records, small_config):
        sketches = compute_sketches(two_family_records, small_config)
        labels = [r.label for r in two_family_records]
        m = pairwise_similarity_matrix(sketches)
        same, diff = [], []
        for i in range(len(sketches)):
            for j in range(i + 1, len(sketches)):
                (same if labels[i] == labels[j] else diff).append(m[i, j])
        assert np.mean(same) > np.mean(diff)


class TestCondensedToSquare:
    def test_roundtrip(self):
        condensed = np.array([0.1, 0.2, 0.3])
        square = condensed_to_square(condensed, 3)
        assert square[0, 1] == 0.1
        assert square[0, 2] == 0.2
        assert square[1, 2] == 0.3
        assert np.allclose(square, square.T)
        assert np.allclose(np.diag(square), 1.0)

    def test_size_validation(self):
        with pytest.raises(SketchError):
            condensed_to_square(np.array([0.1, 0.2]), 3)


class TestEstimatorAccuracy:
    def test_positional_unbiased_on_dna(self):
        """End-to-end Equation-3 check on real sequence data."""
        rng = np.random.default_rng(0)
        base = "".join(rng.choice(list("ACGT"), size=400))
        mutated = list(base)
        for i in range(0, 400, 10):
            mutated[i] = "ACGT"[(("ACGT".index(mutated[i])) + 1) % 4]
        records = [
            SequenceRecord("a", base),
            SequenceRecord("b", "".join(mutated)),
        ]
        config = SketchingConfig(kmer_size=8, num_hashes=512, seed=0)
        sketches = compute_sketches(records, config)
        from repro.seq.kmers import kmer_set

        true_j = exact_jaccard(
            kmer_set(records[0].sequence, 8), kmer_set(records[1].sequence, 8)
        )
        est = positional_similarity(*sketches)
        assert abs(est - true_j) < 0.07
