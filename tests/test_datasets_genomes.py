"""Tests for taxonomy mapping and genome generation."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.datasets.genomes import (
    GenomeSpec,
    mutate_genome,
    random_genome,
    random_substitution_bias,
)
from repro.datasets.taxonomy import (
    RANK_DIVERGENCE,
    RANKS,
    Lineage,
    divergence_for_rank,
)
from repro.seq.alphabet import gc_content


class TestTaxonomy:
    def test_ranks_ordered_by_divergence(self):
        values = [RANK_DIVERGENCE[r] for r in RANKS]
        assert values == sorted(values)

    def test_lookup(self):
        assert divergence_for_rank("Genus") == RANK_DIVERGENCE["genus"]
        with pytest.raises(DatasetError):
            divergence_for_rank("tribe")

    def test_lineage_divergence_rank(self):
        a = Lineage(kingdom="Bacteria", genus="Bacillus", species="subtilis")
        b = Lineage(kingdom="Bacteria", genus="Bacillus", species="anthracis")
        assert a.rank_of_divergence(b) == "species"
        c = Lineage(kingdom="Archaea", genus="X", species="y")
        assert a.rank_of_divergence(c) == "kingdom"

    def test_identical_lineages_rejected(self):
        a = Lineage(kingdom="Bacteria")
        with pytest.raises(DatasetError):
            a.rank_of_divergence(a)

    def test_label(self):
        assert Lineage(genus="Bacillus", species="subtilis").label() == "subtilis"
        assert Lineage(kingdom="Bacteria").label() == "Bacteria"
        with pytest.raises(DatasetError):
            Lineage().label()


class TestRandomGenome:
    def test_length_and_alphabet(self):
        g = random_genome(500, rng=0)
        assert len(g) == 500
        assert set(g) <= set("ACGT")

    def test_gc_targeting(self):
        for target in (0.3, 0.5, 0.7):
            g = random_genome(20_000, gc_content=target, rng=1)
            assert abs(gc_content(g) - target) < 0.02

    def test_deterministic(self):
        assert random_genome(100, rng=5) == random_genome(100, rng=5)

    def test_validation(self):
        with pytest.raises(DatasetError):
            random_genome(0)
        with pytest.raises(DatasetError):
            random_genome(10, gc_content=1.5)

    def test_spec_validation(self):
        with pytest.raises(DatasetError):
            GenomeSpec("", 100)
        with pytest.raises(DatasetError):
            GenomeSpec("x", 0)
        with pytest.raises(DatasetError):
            GenomeSpec("x", 100, gc_content=-0.1)


class TestMutateGenome:
    def test_zero_divergence_identity(self):
        g = random_genome(200, rng=0)
        assert mutate_genome(g, 0.0, rng=1) == g

    def test_divergence_statistics(self):
        g = random_genome(30_000, rng=0)
        mutated = mutate_genome(g, 0.1, rng=1, indel_fraction=0.0)
        diffs = sum(1 for a, b in zip(g, mutated) if a != b)
        assert 0.08 < diffs / len(g) < 0.12

    def test_indels_change_length(self):
        g = random_genome(5000, rng=0)
        mutated = mutate_genome(g, 0.2, rng=1, indel_fraction=1.0)
        assert len(mutated) != len(g)

    def test_validation(self):
        with pytest.raises(DatasetError):
            mutate_genome("", 0.1)
        with pytest.raises(DatasetError):
            mutate_genome("ACGT", 1.5)
        with pytest.raises(DatasetError):
            mutate_genome("ACGT", 0.1, indel_fraction=2.0)
        with pytest.raises(DatasetError):
            mutate_genome("ACGT", 0.1, max_indel=0)

    def test_bias_matrix_validation(self):
        bad = np.full((4, 4), 0.25)
        with pytest.raises(DatasetError, match="zero diagonal"):
            mutate_genome("ACGT" * 10, 0.5, substitution_bias=bad)
        with pytest.raises(DatasetError, match="4x4"):
            mutate_genome("ACGT" * 10, 0.5, substitution_bias=np.eye(3))

    def test_bias_skews_composition(self):
        """A bias that always substitutes toward G must raise G content."""
        bias = np.zeros((4, 4))
        bias[0, 2] = bias[1, 2] = bias[3, 2] = 1.0  # A,C,T -> G
        bias[2, 0] = 1.0  # G -> A
        g = "ACT" * 4000
        mutated = mutate_genome(g, 0.4, rng=0, indel_fraction=0.0, substitution_bias=bias)
        assert mutated.count("G") > g.count("G")

    def test_random_bias_properties(self):
        bias = random_substitution_bias(0)
        assert bias.shape == (4, 4)
        assert np.allclose(bias.sum(axis=1), 1.0)
        assert np.allclose(np.diag(bias), 0.0)
