"""Tests for the sparse pipeline mode and the Map-Reduce candidate join."""

import pytest

from repro.errors import ClusteringError
from repro.cluster.pipeline import MrMCMinH
from repro.cluster.sparse import candidate_pairs, candidate_pairs_mapreduce
from repro.datasets import generate_whole_metagenome_sample
from repro.minhash.sketch import SketchingConfig, compute_sketches


@pytest.fixture(scope="module")
def sample():
    return generate_whole_metagenome_sample("S8", num_reads=60, genome_length=4000)


@pytest.fixture(scope="module")
def sketches(sample):
    return compute_sketches(sample, SketchingConfig(kmer_size=5, num_hashes=48, seed=0))


class TestCandidateJoinJob:
    def test_matches_direct_computation(self, sketches):
        direct = candidate_pairs(sketches)
        via_job, result = candidate_pairs_mapreduce(sketches, num_reduce_tasks=3)
        assert via_job == direct
        assert result.trace is not None
        assert result.trace.job_name == "sparse-candidates"

    def test_max_group_respected(self, sketches):
        direct = candidate_pairs(sketches, max_group=3)
        via_job, _ = candidate_pairs_mapreduce(sketches, max_group=3)
        assert via_job == direct

    def test_empty_rejected(self):
        with pytest.raises(ClusteringError):
            candidate_pairs_mapreduce([])


class TestSparsePipeline:
    def test_sparse_greedy_equals_dense(self, sample):
        dense = MrMCMinH(
            kmer_size=5, num_hashes=48, threshold=0.78, method="greedy",
            estimator="positional", seed=0,
        ).fit(sample)
        sparse = MrMCMinH(
            kmer_size=5, num_hashes=48, threshold=0.78, method="greedy",
            seed=0, sparse=True,
        ).fit(sample)
        assert dict(dense.assignment) == dict(sparse.assignment)

    def test_sparse_single_linkage_equals_dense(self, sample):
        def partition(assignment):
            groups = {}
            for rid, lbl in assignment.items():
                groups.setdefault(lbl, set()).add(rid)
            return {frozenset(g) for g in groups.values()}

        dense = MrMCMinH(
            kmer_size=5, num_hashes=48, threshold=0.78,
            method="hierarchical", linkage="single", seed=0,
        ).fit(sample)
        sparse = MrMCMinH(
            kmer_size=5, num_hashes=48, threshold=0.78,
            method="hierarchical", linkage="single", seed=0, sparse=True,
        ).fit(sample)
        assert partition(dict(dense.assignment)) == partition(dict(sparse.assignment))

    def test_sparse_traces_present(self, sample):
        run = MrMCMinH(
            kmer_size=5, num_hashes=48, threshold=0.78,
            method="greedy", seed=0, sparse=True,
        ).fit(sample)
        names = [t.job_name for t in run.traces]
        assert "sparse-candidates" in names
        assert run.similarity is None  # no dense matrix materialised

    def test_invalid_combinations(self):
        with pytest.raises(ClusteringError, match="single"):
            MrMCMinH(method="hierarchical", linkage="average", sparse=True)
        with pytest.raises(ClusteringError, match="positional"):
            MrMCMinH(method="greedy", estimator="set", sparse=True)
        with pytest.raises(ClusteringError, match="threshold"):
            MrMCMinH(method="greedy", threshold=0.0, sparse=True)

    def test_sparse_greedy_default_estimator(self):
        model = MrMCMinH(method="greedy", sparse=True)
        assert model.estimator == "positional"
