"""Tests for the sparse candidate-pair similarity path, including exact
equivalence with the dense algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ClusteringError
from repro.cluster.greedy import greedy_cluster
from repro.cluster.sparse import (
    candidate_pairs,
    sparse_greedy_cluster,
    sparse_similarity,
    sparse_single_linkage,
)
from repro.cluster.hierarchical import agglomerative_cluster
from repro.minhash.sketch import MinHashSketch
from repro.minhash.similarity import pairwise_similarity_matrix


def make_sketches(rows, key=(4, 100, 0)):
    return [
        MinHashSketch(f"s{i}", np.asarray(row, dtype=np.int64), family_key=key)
        for i, row in enumerate(rows)
    ]


@st.composite
def sketch_sets(draw, max_sketches=14, width=8):
    n = draw(st.integers(min_value=1, max_value=max_sketches))
    rows = draw(
        st.lists(
            st.lists(st.integers(0, 6), min_size=width, max_size=width),
            min_size=n, max_size=n,
        )
    )
    return make_sketches(rows, key=(width, 7, 0))


class TestCandidatePairs:
    def test_collision_counts_are_positional_matches(self):
        sketches = make_sketches([[1, 2, 3, 4], [1, 2, 9, 9], [7, 7, 7, 7]])
        pairs = candidate_pairs(sketches)
        assert pairs[(0, 1)] == 2
        assert (0, 2) not in pairs
        assert (1, 2) not in pairs

    def test_min_shared_filter(self):
        sketches = make_sketches([[1, 2, 3, 4], [1, 9, 9, 9]])
        assert (0, 1) in candidate_pairs(sketches, min_shared=1)
        assert (0, 1) not in candidate_pairs(sketches, min_shared=2)

    def test_max_group_caps_degenerate_values(self):
        # All sketches share component 0 -> group of 5 skipped at cap 4.
        rows = [[7, i, i + 1, i + 2] for i in range(0, 15, 3)]
        sketches = make_sketches(rows)
        capped = candidate_pairs(sketches, max_group=4)
        assert capped == {}
        uncapped = candidate_pairs(sketches)
        assert len(uncapped) == 10  # all C(5,2) pairs collide in slot 0

    def test_validation(self):
        with pytest.raises(ClusteringError):
            candidate_pairs([])
        with pytest.raises(ClusteringError):
            candidate_pairs(make_sketches([[1, 2, 3, 4]]), min_shared=0)

    @given(sketch_sets())
    @settings(max_examples=50, deadline=None)
    def test_matches_dense_nonzero_entries(self, sketches):
        sims = sparse_similarity(sketches)
        dense = pairwise_similarity_matrix(sketches, estimator="positional")
        n = len(sketches)
        for i in range(n):
            for j in range(i + 1, n):
                if dense[i, j] > 0:
                    assert sims[(i, j)] == pytest.approx(dense[i, j])
                else:
                    assert (i, j) not in sims


class TestSparseSingleLinkage:
    @given(sketch_sets(), st.sampled_from([0.25, 0.5, 0.75, 1.0]))
    @settings(max_examples=50, deadline=None)
    def test_equals_dense_single_linkage(self, sketches, theta):
        sparse = sparse_single_linkage(sketches, theta)
        dense_matrix = pairwise_similarity_matrix(sketches, estimator="positional")
        dense = agglomerative_cluster(
            dense_matrix, [s.read_id for s in sketches], theta, linkage="single"
        )

        def partition(a):
            groups = {}
            for rid, lbl in a.items():
                groups.setdefault(lbl, set()).add(rid)
            return {frozenset(g) for g in groups.values()}

        assert partition(dict(sparse)) == partition(dict(dense))

    def test_zero_threshold_rejected(self):
        sketches = make_sketches([[1, 2, 3, 4]])
        with pytest.raises(ClusteringError):
            sparse_single_linkage(sketches, 0.0)


class TestSparseGreedy:
    @given(sketch_sets(), st.sampled_from([0.25, 0.5, 0.75, 1.0]))
    @settings(max_examples=50, deadline=None)
    def test_equals_dense_greedy(self, sketches, theta):
        sparse = sparse_greedy_cluster(sketches, theta)
        dense = greedy_cluster(sketches, theta, estimator="positional")
        assert dict(sparse) == dict(dense)

    def test_scales_with_candidates_not_pairs(self):
        """With disjoint sketch families, candidate count stays linear."""
        rows = []
        for family in range(20):
            base = [family * 100 + c for c in range(8)]
            rows.append(base)
            rows.append(base)  # one duplicate per family
        sketches = make_sketches(rows, key=(8, 10_000, 0))
        pairs = candidate_pairs(sketches)
        assert len(pairs) == 20  # one pair per family, not C(40,2)
        a = sparse_greedy_cluster(sketches, 0.9)
        assert a.num_clusters == 20
