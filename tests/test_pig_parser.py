"""Tests for the Pig-Latin parser."""

import pytest

from repro.errors import PigParseError
from repro.pig.parser import (
    BroadcastRef,
    FieldProj,
    FieldRef,
    Literal,
    UdfCall,
    parse_script,
    substitute_params,
)


class TestParamSubstitution:
    def test_basic(self):
        out = substitute_params("LOAD '$INPUT' k=$KMER", {"INPUT": "/x", "KMER": 5})
        assert out == "LOAD '/x' k=5"

    def test_missing_param(self):
        with pytest.raises(PigParseError, match="undefined parameter"):
            substitute_params("$NOPE", {})


class TestLoad:
    def test_full(self):
        stmts = parse_script(
            "A = LOAD '/in.fa' USING FastaStorage AS "
            "(readid:chararray, d:int, seq:bytearray, header:chararray);"
        )
        s = stmts[0]
        assert s.kind == "load"
        assert s.alias == "A"
        assert s.path == "/in.fa"
        assert s.udf_name == "FastaStorage"
        assert s.schema == ("readid", "d", "seq", "header")

    def test_no_schema(self):
        s = parse_script("A = LOAD '/x' USING FastaStorage;")[0]
        assert s.schema == ()

    def test_case_insensitive_keywords(self):
        s = parse_script("a = load '/x' using FastaStorage;")[0]
        assert s.kind == "load"


class TestForeach:
    def test_udf_call(self):
        s = parse_script(
            "B = FOREACH A GENERATE FLATTEN (StringGenerator(seq, readid)) "
            "AS (seq:chararray, seqid:chararray);"
        )[0]
        assert s.kind == "foreach"
        assert s.source == "A"
        call = s.items[0]
        assert isinstance(call, UdfCall)
        assert call.udf_name == "StringGenerator"
        assert call.args == (FieldRef("seq"), FieldRef("readid"))
        assert call.schema == ("seq", "seqid")

    def test_arg_kinds(self):
        s = parse_script(
            "J = FOREACH F GENERATE FLATTEN (Udf(minwise, I.F, 'avg', 100, 0.95));"
        )[0]
        call = s.items[0]
        assert call.args == (
            FieldRef("minwise"),
            BroadcastRef("I", "F"),
            Literal("avg"),
            Literal(100),
            Literal(0.95),
        )

    def test_projection_list(self):
        s = parse_script("F = FOREACH E GENERATE FLATTEN (minwise), FLATTEN (seqid3);")[0]
        assert s.items == (FieldProj("minwise"), FieldProj("seqid3"))

    def test_bare_fields(self):
        s = parse_script("F = FOREACH E GENERATE a, b;")[0]
        assert s.items == (FieldProj("a"), FieldProj("b"))

    def test_bad_item(self):
        with pytest.raises(PigParseError):
            parse_script("F = FOREACH E GENERATE 1 + 2;")


class TestGroupStore:
    def test_group_all(self):
        s = parse_script("I = GROUP F ALL;")[0]
        assert s.kind == "group"
        assert s.group_by is None

    def test_group_by(self):
        s = parse_script("I = GROUP F BY seqid;")[0]
        assert s.group_by == "seqid"

    def test_store(self):
        s = parse_script("STORE K INTO '/out';")[0]
        assert s.kind == "store"
        assert s.alias == "K"
        assert s.path == "/out"


class TestScripts:
    def test_multi_statement_with_comments(self):
        script = """
        -- load the input
        A = LOAD '/x' USING FastaStorage;
        B = FOREACH A GENERATE FLATTEN (StringGenerator(seq, readid));  -- encode
        STORE B INTO '/out';
        """
        stmts = parse_script(script)
        assert [s.kind for s in stmts] == ["load", "foreach", "store"]

    def test_algorithm3_parses(self):
        from repro.pig.engine import MRMC_MINH_SCRIPT, default_params

        stmts = parse_script(
            MRMC_MINH_SCRIPT, default_params(input_path="/in.fa")
        )
        kinds = [s.kind for s in stmts]
        assert kinds == ["load"] + ["foreach"] * 4 + ["group"] + ["foreach"] * 3 + ["store"] * 2

    def test_unparseable_statement(self):
        with pytest.raises(PigParseError, match="cannot parse statement"):
            parse_script("DUMP A;")

    def test_empty_script(self):
        with pytest.raises(PigParseError, match="no statements"):
            parse_script("-- nothing\n")

    def test_unterminated_string_arg(self):
        with pytest.raises(PigParseError):
            parse_script("B = FOREACH A GENERATE FLATTEN (U('oops));")
