"""End-to-end chaos acceptance: the greedy MrMC-MinH pipeline, run over
simulated HDFS with seeded mapper crashes and a datanode killed mid-job,
must write byte-identical cluster assignments to a fault-free run.

The seed comes from ``CHAOS_SEED`` (default 0) so CI can sweep a matrix
of seeds over the same test."""

import os

import pytest

from repro.cluster.pipeline import MrMCMinH
from repro.mapreduce.faults import DatanodeKill, FaultPlan, RetryPolicy
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.runner import SerialRunner

pytestmark = pytest.mark.chaos

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))


def make_hdfs():
    # Small blocks: the staged FASTA spans ~7 blocks, one map task each.
    return SimulatedHDFS(num_datanodes=4, block_size=256, replication=2, seed=0)


def run_pipeline(records, runner=None, hdfs=None, sparse=False, spill=None):
    fs = hdfs or make_hdfs()
    model = MrMCMinH(
        kmer_size=5,
        num_hashes=48,
        threshold=0.78,
        method="greedy",
        seed=0,
        runner=runner or SerialRunner(),
        sparse=sparse,
        spill_threshold_bytes=spill,
    )
    MrMCMinH.stage_records(fs, "/in.fasta", records)
    run = model.fit_hdfs(fs, "/in.fasta", "/out.tsv")
    return run, fs.get_text("/out.tsv")


class TestEndToEndChaos:
    def test_chaos_run_byte_identical_to_clean_run(self, two_family_records):
        _clean_run, clean_tsv = run_pipeline(two_family_records)

        chaos_fs = make_hdfs()
        plan = FaultPlan(
            seed=CHAOS_SEED,
            mapper_crash_rate=0.2,
            max_faulted_attempts=2,
            datanode_kills=[DatanodeKill("map_end", 2)],
        ).bind_hdfs(chaos_fs)
        runner = SerialRunner(fault_plan=plan, retry=RetryPolicy(max_attempts=3))
        chaos_run, chaos_tsv = run_pipeline(
            two_family_records, runner=runner, hdfs=chaos_fs
        )

        # The one acceptance bit: chaos never changes the answer.
        assert chaos_tsv == clean_tsv
        assert chaos_tsv.count("\n") == len(two_family_records)

        # The faults really happened and were really recovered.
        assert chaos_run.counters.get("fault", "datanodes_killed") == 1
        assert chaos_run.counters.get("fault", "replicas_recreated") > 0
        assert not chaos_fs.datanode_alive(2)
        retries = sum(t.total_retries for t in chaos_run.traces)
        attempts = sum(t.total_attempts for t in chaos_run.traces)
        assert retries > 0, "chaos plan injected no faults for this seed"
        assert attempts > sum(len(t.all_tasks) for t in chaos_run.traces)
        assert chaos_run.counters.get("fault", "task_retries") == retries

    def test_chaos_run_is_reproducible(self, two_family_records):
        def chaos_tsv_and_retries():
            fs = make_hdfs()
            plan = FaultPlan(
                seed=CHAOS_SEED, mapper_crash_rate=0.2, max_faulted_attempts=2
            ).bind_hdfs(fs)
            runner = SerialRunner(
                fault_plan=plan, retry=RetryPolicy(max_attempts=3)
            )
            run, tsv = run_pipeline(two_family_records, runner=runner, hdfs=fs)
            return tsv, run.counters.get("fault", "task_retries")

        first, second = chaos_tsv_and_retries(), chaos_tsv_and_retries()
        assert first == second

    def test_crash_then_retry_traced_as_sibling_attempt_spans(
        self, two_family_records
    ):
        from repro.mapreduce.faults import Fault
        from repro.obs import Tracer, build_report

        # Deterministic crash of the sketch job's first map attempt; the
        # retry must succeed, and the telemetry must show the whole story.
        plan = FaultPlan(schedule={("sketch", "map", 0, 1): Fault(kind="crash")})
        runner = SerialRunner(fault_plan=plan, retry=RetryPolicy(max_attempts=2))
        tracer = Tracer()
        with tracer.activate():
            run, _tsv = run_pipeline(two_family_records, runner=runner)

        (task,) = [
            s
            for s in tracer.spans
            if s.kind == "task" and s.name == "task:sketch-m0000"
        ]
        attempts = sorted(
            (
                s
                for s in tracer.spans
                if s.kind == "attempt" and s.parent_id == task.span_id
            ),
            key=lambda s: s.attrs["attempt"],
        )
        assert len(attempts) == 2, "failed attempt and retry must be siblings"
        failed, retried = attempts
        assert failed.status == "error"
        assert failed.attrs["fault"] == "crash"
        assert retried.status == "ok"
        assert "fault" not in retried.attrs

        assert tracer.metrics.value("mr.fault.task_retries") >= 1
        assert run.counters.get("fault", "task_retries") >= 1
        report = build_report(tracer.spans, tracer.metrics.snapshot())
        assert report.failed_attempts >= 1
        assert report.retries >= 1
        assert "1 failed attempt(s)" in report.render().splitlines()[-2]

    def test_sparse_jobs_chain_survives_chaos_byte_identical(
        self, two_family_records
    ):
        from repro.mapreduce.faults import BlockBitRot

        # Clean reference: the engine-sparse chain without faults, which
        # itself must match the in-process sparse path byte for byte.
        _clean_run, clean_tsv = run_pipeline(two_family_records, sparse="engine")
        _in_process_run, in_process_tsv = run_pipeline(
            two_family_records, sparse=True
        )
        assert clean_tsv == in_process_tsv

        # Chaos: mapper crashes + corrupted shuffle partitions across all
        # three jobs of the engine-sparse pipeline, plus silent bit-rot in
        # a stored input replica (caught by the per-block CRC scanner).
        chaos_fs = make_hdfs()
        plan = FaultPlan(
            seed=CHAOS_SEED,
            mapper_crash_rate=0.15,
            corrupt_rate=0.15,
            max_faulted_attempts=2,
            block_bitrot=[BlockBitRot("map_end", 1)],
        ).bind_hdfs(chaos_fs)
        runner = SerialRunner(fault_plan=plan, retry=RetryPolicy(max_attempts=4))
        chaos_run, chaos_tsv = run_pipeline(
            two_family_records, runner=runner, hdfs=chaos_fs, sparse="engine"
        )

        assert chaos_tsv == clean_tsv
        assert chaos_run.mode == "engine"
        assert chaos_run.sparse_stats["rounds"] == 2
        retries = sum(t.total_retries for t in chaos_run.traces)
        assert retries > 0, "chaos plan injected no faults for this seed"
        assert chaos_run.counters.get("fault", "task_retries") == retries

    def test_spilled_sparse_chain_survives_chaos_byte_identical(
        self, two_family_records
    ):
        """The external-shuffle chain under full chaos: spilling forced on
        (threshold 0 spills every buffer), mapper crashes, corrupted
        shuffle partitions AND spill-segment bit-rot — the final TSV must
        still match the fault-free in-memory run byte for byte."""
        _clean_run, clean_tsv = run_pipeline(two_family_records, sparse="engine")

        chaos_fs = make_hdfs()
        plan = FaultPlan(
            seed=CHAOS_SEED,
            mapper_crash_rate=0.15,
            corrupt_rate=0.15,
            spill_corrupt_rate=0.3,
            max_faulted_attempts=2,
        ).bind_hdfs(chaos_fs)
        runner = SerialRunner(fault_plan=plan, retry=RetryPolicy(max_attempts=4))
        chaos_run, chaos_tsv = run_pipeline(
            two_family_records, runner=runner, hdfs=chaos_fs,
            sparse="engine", spill=0,
        )

        assert chaos_tsv == clean_tsv
        assert chaos_run.mode == "engine"
        assert chaos_run.sparse_stats["streamed"] is True
        assert chaos_run.sparse_stats["spill_segments"] > 0
        # The bit-rot really struck spill files and was really repaired.
        corrupted = chaos_run.counters.get("fault", "spill_segments_corrupted")
        assert corrupted > 0, "chaos plan rotted no spill segments for this seed"
        assert chaos_run.counters.get("shuffle", "spill_respills") == corrupted

    def test_chaos_on_multiprocess_runner(self, two_family_records):
        from repro.mapreduce.local import MultiprocessRunner

        _clean_run, clean_tsv = run_pipeline(two_family_records)
        plan = FaultPlan(
            seed=CHAOS_SEED, mapper_crash_rate=0.2, max_faulted_attempts=2
        )
        runner = MultiprocessRunner(
            num_workers=2, fault_plan=plan, retry=RetryPolicy(max_attempts=3)
        )
        _chaos_run, chaos_tsv = run_pipeline(two_family_records, runner=runner)
        assert chaos_tsv == clean_tsv
