"""Streaming-edge regression net: clustering from an edge *stream* must
equal clustering from the collected list, and the streamed engine chain
must never materialize the candidate-pair list in the driver.

Covers the satellite requirements: generator == list for both greedy and
single-linkage, a counting-wrapper runner proving the driver's collected
pair count stays zero in stream mode, and an exception mid-stream leaving
no orphaned spill segment directories behind.
"""

import glob

import pytest

from repro.cluster.sparse import (
    GreedyEdgeStream,
    SingleLinkageEdgeStream,
    greedy_from_edges,
    make_edge_stream,
    single_linkage_from_edges,
)
from repro.cluster.sparse_jobs import engine_sparse_cluster, run_sparse_jobs
from repro.datasets.environmental import generate_environmental_sample
from repro.errors import ClusteringError
from repro.mapreduce.runner import SerialRunner
from repro.minhash.sketch import SketchingConfig, compute_sketches_batch

READ_IDS = [f"r{i}" for i in range(8)]
EDGES = [(0, 1), (1, 2), (4, 5), (0, 2), (6, 7), (4, 5)]


@pytest.fixture(scope="module")
def sketches():
    reads = generate_environmental_sample("53R", num_reads=250, seed=0)
    config = SketchingConfig(kmer_size=9, num_hashes=24, seed=0)
    return compute_sketches_batch(reads, config, config.make_family())


class TestEdgeStreams:
    def test_generator_equals_list_single_linkage(self):
        from_list = single_linkage_from_edges(READ_IDS, EDGES)
        from_gen = single_linkage_from_edges(READ_IDS, (e for e in EDGES))
        assert from_list.to_tsv() == from_gen.to_tsv()

    def test_generator_equals_list_greedy(self):
        from_list = greedy_from_edges(READ_IDS, EDGES)
        from_gen = greedy_from_edges(READ_IDS, (e for e in EDGES))
        assert from_list.to_tsv() == from_gen.to_tsv()

    def test_incremental_add_equals_batch(self):
        for cls, fn in (
            (SingleLinkageEdgeStream, single_linkage_from_edges),
            (GreedyEdgeStream, greedy_from_edges),
        ):
            stream = cls(READ_IDS)
            for i, j in EDGES:
                stream.add(i, j)
            assert stream.edges_seen == len(EDGES)
            assert stream.finish().to_tsv() == fn(READ_IDS, EDGES).to_tsv()

    def test_edge_order_and_duplication_independence(self):
        shuffled = list(reversed(EDGES)) + EDGES  # reordered + duplicated
        for fn in (single_linkage_from_edges, greedy_from_edges):
            assert fn(READ_IDS, EDGES).to_tsv() == fn(READ_IDS, shuffled).to_tsv()

    def test_make_edge_stream_factory(self):
        assert isinstance(
            make_edge_stream(READ_IDS, "greedy"), GreedyEdgeStream
        )
        assert isinstance(
            make_edge_stream(READ_IDS, "hierarchical"), SingleLinkageEdgeStream
        )
        with pytest.raises(ClusteringError, match="unknown edge-stream method"):
            make_edge_stream(READ_IDS, "dense")

    def test_empty_read_ids_rejected(self):
        for cls in (SingleLinkageEdgeStream, GreedyEdgeStream):
            with pytest.raises(ClusteringError):
                cls([])

    def test_greedy_duplicate_read_ids_rejected(self):
        with pytest.raises(ClusteringError, match="unique"):
            GreedyEdgeStream(["a", "a"])


class _CountingRunner(SerialRunner):
    """Records how many output records each job hands back to the driver —
    the quantity stream mode is supposed to bound at zero."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.collected: dict[str, int] = {}

    def run(self, job, inputs, conf=None, **kwargs):
        result = super().run(job, inputs, conf, **kwargs)
        self.collected[job.name] = len(result.output)
        return result


class TestStreamedEngineChain:
    def test_streamed_run_byte_identical_and_unmaterialized(self, sketches):
        base = engine_sparse_cluster(
            sketches, 0.8, method="hierarchical", max_group=64
        )
        runner = _CountingRunner()
        streamed = engine_sparse_cluster(
            sketches, 0.8, method="hierarchical", max_group=64,
            runner=runner, stream=True,
        )
        assert streamed.assignment.to_tsv() == base.assignment.to_tsv()
        # Nothing materialized driver-side: the verify job returned zero
        # collected records, and the run carries only counts.
        assert runner.collected["verify-candidates"] == 0
        assert streamed.streamed
        assert streamed.pairs == {} and streamed.matches == {} and streamed.edges == []
        assert streamed.candidate_pair_count == len(base.pairs)
        assert streamed.edge_count == len(base.edges)
        assert (
            streamed.counters.get("sparse_jobs", "candidate_pairs")
            == base.counters.get("sparse_jobs", "candidate_pairs")
        )

    def test_streamed_greedy_matches_collected(self, sketches):
        base = engine_sparse_cluster(sketches, 0.8, method="greedy", max_group=64)
        streamed = engine_sparse_cluster(
            sketches, 0.8, method="greedy", max_group=64, stream=True
        )
        assert streamed.assignment.to_tsv() == base.assignment.to_tsv()

    def test_streamed_with_spilling_matches_in_memory(self, sketches):
        base = engine_sparse_cluster(
            sketches, 0.8, method="hierarchical", max_group=64
        )
        spilled = engine_sparse_cluster(
            sketches, 0.8, method="hierarchical", max_group=64,
            stream=True, spill_threshold_bytes=0,
        )
        assert spilled.assignment.to_tsv() == base.assignment.to_tsv()
        assert spilled.counters.get("shuffle", "spill_segments") > 0

    def test_stream_requires_threshold(self, sketches):
        with pytest.raises(ClusteringError, match="stream=True requires"):
            run_sparse_jobs(sketches, None, stream=True)


class TestNoOrphanedSegments:
    def test_reducer_exception_leaves_no_spill_dirs(self, tmp_path, monkeypatch):
        """A job dying mid-stream (reducer raising while partitions are
        spilled) must remove its spill directory on the way out."""
        import tempfile

        from repro.mapreduce.job import MapReduceJob
        from repro.mapreduce.types import JobConf

        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))

        def mapper(key, value):
            yield value % 5, value

        def reducer(key, values):
            raise RuntimeError("boom mid-stream")
            yield  # pragma: no cover

        job = MapReduceJob(name="boom", mapper=mapper, reducer=reducer)
        inputs = [(i, i) for i in range(50)]
        seen = []
        with pytest.raises(RuntimeError, match="boom mid-stream"):
            SerialRunner().run(
                job,
                inputs,
                JobConf(num_reduce_tasks=2, spill_threshold_bytes=0),
                output_sink=seen.append,
            )
        assert glob.glob(str(tmp_path / "repro-spill-*")) == []
        assert seen == []

    def test_unrepairable_spill_corruption_leaves_no_spill_dirs(
        self, tmp_path, monkeypatch
    ):
        """finish() raising inside the shuffle stage (bit-rot past the
        re-spill budget) must also clean up — not just reducer errors."""
        import tempfile

        from repro.errors import FaultError
        from repro.mapreduce.faults import FaultPlan
        from repro.mapreduce.job import MapReduceJob
        from repro.mapreduce.types import JobConf

        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))

        def mapper(key, value):
            yield value % 3, value

        def reducer(key, values):
            yield key, sum(values)

        job = MapReduceJob(name="rot", mapper=mapper, reducer=reducer)
        plan = FaultPlan(seed=0, spill_corrupt_rate=1.0)  # rots every attempt
        with pytest.raises(FaultError, match="still corrupt"):
            SerialRunner(fault_plan=plan).run(
                job,
                [(i, i) for i in range(30)],
                JobConf(num_reduce_tasks=2, spill_threshold_bytes=0),
            )
        assert glob.glob(str(tmp_path / "repro-spill-*")) == []
