"""Tests for DNA alphabet handling and 2-bit encoding."""

import numpy as np
import pytest

from repro.errors import SequenceError
from repro.seq.alphabet import (
    decode_dna,
    encode_dna,
    gc_content,
    is_valid_dna,
    reverse_complement,
    sanitize,
)


class TestEncodeDecode:
    def test_roundtrip(self):
        seq = "ACGTACGTTTGGCCAA"
        assert decode_dna(encode_dna(seq)) == seq

    def test_codes(self):
        assert encode_dna("ACGT").tolist() == [0, 1, 2, 3]

    def test_lowercase_accepted(self):
        assert encode_dna("acgt").tolist() == [0, 1, 2, 3]

    def test_empty(self):
        assert encode_dna("").size == 0
        assert decode_dna(np.empty(0, dtype=np.int8)) == ""

    def test_strict_rejects_ambiguity(self):
        with pytest.raises(SequenceError, match="invalid DNA character"):
            encode_dna("ACGNT")

    def test_nonstrict_marks_ambiguity(self):
        codes = encode_dna("ACGNT", strict=False)
        assert codes.tolist() == [0, 1, 2, -1, 3]

    def test_non_ascii_rejected(self):
        with pytest.raises(SequenceError):
            encode_dna("ACGé")

    def test_decode_rejects_invalid_codes(self):
        with pytest.raises(SequenceError):
            decode_dna(np.array([0, 4]))
        with pytest.raises(SequenceError):
            decode_dna(np.array([-1]))


class TestValidation:
    def test_valid(self):
        assert is_valid_dna("ACGT")
        assert is_valid_dna("acgt")

    def test_invalid(self):
        assert not is_valid_dna("ACGN")
        assert not is_valid_dna("")
        assert not is_valid_dna("ACG T")


class TestSanitize:
    def test_strips_ambiguity(self):
        assert sanitize("AcgNNNTx") == "ACGT"

    def test_replacement(self):
        assert sanitize("ACNGT", replacement="A") == "ACAGT"

    def test_bad_replacement(self):
        with pytest.raises(SequenceError):
            sanitize("ACGT", replacement="X")


class TestReverseComplement:
    def test_basic(self):
        assert reverse_complement("ACGT") == "ACGT"  # palindromic
        assert reverse_complement("AAGC") == "GCTT"

    def test_involution(self):
        seq = "ATTGCGCATATGGCC"
        assert reverse_complement(reverse_complement(seq)) == seq

    def test_rejects_ambiguity(self):
        with pytest.raises(SequenceError):
            reverse_complement("ACGN")

    def test_empty(self):
        assert reverse_complement("") == ""


class TestGcContent:
    def test_half(self):
        assert gc_content("ACGT") == 0.5

    def test_extremes(self):
        assert gc_content("GGCC") == 1.0
        assert gc_content("AATT") == 0.0

    def test_empty_rejected(self):
        with pytest.raises(SequenceError):
            gc_content("")

    def test_skips_ambiguous(self):
        # 2 GC out of 4 unambiguous bases.
        assert gc_content("GCNNAT") == 0.5

    def test_all_ambiguous_rejected(self):
        with pytest.raises(SequenceError):
            gc_content("NNN")
