"""Integration tests: the full published pipeline on realistic workloads.

These exercise cross-module behaviour: dataset generators -> HDFS ->
Pig/pipeline -> clustering -> evaluation, plus the trace -> simulator
path used for the scalability study.
"""

import numpy as np
import pytest

from repro import MrMCMinH, weighted_cluster_accuracy
from repro.bench.figures import calibrate_from_measurement
from repro.datasets import (
    generate_environmental_sample,
    generate_huse_dataset,
    generate_whole_metagenome_sample,
)
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.simulator import ClusterSimulator, ClusterSpec
from repro.mapreduce.workload import PipelineWorkload, build_pipeline_traces
from repro.pig import MRMC_MINH_SCRIPT, PigEngine, default_params
from repro.seq.fasta import format_fasta, read_fasta_text


class TestWholeMetagenomeFlow:
    def test_hierarchical_beats_chance(self):
        reads = generate_whole_metagenome_sample("S10", num_reads=120, genome_length=5000)
        truth = {r.read_id: r.label for r in reads}
        run = MrMCMinH(kmer_size=5, num_hashes=100, threshold=0.78, seed=0).fit(reads)
        acc = weighted_cluster_accuracy(run.assignment, truth, min_cluster_size=3)
        assert acc > 80.0

    def test_hierarchical_at_least_greedy_quality(self):
        """The paper's central Table III claim, on one sample."""
        reads = generate_whole_metagenome_sample("S8", num_reads=120, genome_length=5000)
        truth = {r.read_id: r.label for r in reads}
        hier = MrMCMinH(
            kmer_size=5, num_hashes=100, threshold=0.78, method="hierarchical", seed=0
        ).fit(reads)
        greedy = MrMCMinH(
            kmer_size=5, num_hashes=100, threshold=0.78, method="greedy",
            estimator="positional", seed=0,
        ).fit(reads)
        acc_h = weighted_cluster_accuracy(hier.assignment, truth, min_cluster_size=3)
        acc_g = weighted_cluster_accuracy(greedy.assignment, truth, min_cluster_size=3)
        assert acc_h >= acc_g - 5.0

    def test_taxonomic_difficulty_ordering(self):
        """Order-level mixes must be easier than species-level mixes."""
        def accuracy(sid):
            reads = generate_whole_metagenome_sample(sid, num_reads=120, genome_length=5000)
            truth = {r.read_id: r.label for r in reads}
            run = MrMCMinH(kmer_size=5, num_hashes=100, threshold=0.78, seed=0).fit(reads)
            return weighted_cluster_accuracy(run.assignment, truth, min_cluster_size=3)

        assert accuracy("S8") > accuracy("S1") - 5.0  # order vs species


class TestSixteenSFlow:
    def test_paper_parameters(self):
        """16S: k=15, n=50, θ=0.95 (Table V settings)."""
        reads = generate_environmental_sample("53R", num_reads=120, seed=0)
        run = MrMCMinH(
            kmer_size=15, num_hashes=50, threshold=0.95, method="hierarchical", seed=0
        ).fit(reads)
        # W.Acc against latent OTUs must be strong for 16S data.
        truth = {r.read_id: r.label for r in reads}
        acc = weighted_cluster_accuracy(run.assignment, truth, min_cluster_size=2)
        assert acc > 90.0

    def test_huse_clusters_near_truth(self):
        reads = generate_huse_dataset(num_reads=215, seed=0)
        run = MrMCMinH(
            kmer_size=15, num_hashes=50, threshold=0.95, method="greedy", seed=0
        ).fit(reads)
        sizes = run.assignment.sizes()
        multi = sum(1 for s in sizes.values() if s >= 2)
        # Trimmed counts bracket the 43 references loosely at this scale.
        assert 10 <= multi <= 90


class TestPigHdfsRoundTrip:
    def test_full_figure1_flow(self):
        reads = generate_whole_metagenome_sample("S1", num_reads=30, genome_length=3000)
        hdfs = SimulatedHDFS(4, block_size=8192, replication=2)
        hdfs.put("/in/reads.fa", format_fasta(reads))
        engine = PigEngine(hdfs)
        params = default_params(input_path="/in/reads.fa", kmer=5, num_hashes=40, cutoff=0.78)
        result = engine.run(MRMC_MINH_SCRIPT, params)

        # Outputs on HDFS, parseable, covering every read.
        for path in ("/out/hier", "/out/greedy"):
            lines = hdfs.get_text(path).strip().splitlines()
            assert len(lines) == len(reads)
            ids = {line.split("\t")[0] for line in lines}
            assert ids == {r.read_id for r in reads}

        # Locality metadata exists for the simulator.
        locality = hdfs.locality_map("/in/reads.fa")
        assert sum(len(blocks) for blocks in locality.values()) > 0

    def test_fasta_hdfs_roundtrip_preserves_records(self):
        reads = generate_environmental_sample("55R", num_reads=40, seed=1)
        hdfs = SimulatedHDFS(3, block_size=1024)
        hdfs.put("/x.fa", format_fasta(reads))
        back = read_fasta_text(hdfs.get_text("/x.fa"))
        assert [(r.read_id, r.sequence) for r in back] == [
            (r.read_id, r.sequence) for r in reads
        ]


class TestTraceToSimulatorFlow:
    def test_real_traces_schedule(self):
        reads = generate_whole_metagenome_sample("S1", num_reads=60, genome_length=4000)
        run = MrMCMinH(kmer_size=5, num_hashes=50, threshold=0.78, num_map_tasks=4).fit(reads)
        report = ClusterSimulator(ClusterSpec(num_nodes=8)).simulate_pipeline(run.traces)
        assert report.total_s > 0
        assert [j.job_name for j in report.jobs] == ["sketch", "similarity", "cluster"]

    def test_synthetic_traces_match_calibration_scale(self):
        model = calibrate_from_measurement(calibration_reads=60, genome_length=4000)
        workload = PipelineWorkload(num_reads=50_000, row_band=5000)
        traces = build_pipeline_traces(
            workload,
            map_cost_per_record_s=model.map_cost_per_record_s,
            pair_cost_s=model.pair_cost_s,
        )
        report = ClusterSimulator(ClusterSpec(num_nodes=8), model).simulate_pipeline(traces)
        # Paper: S1-S10 (50k reads) hierarchical ~4m20s on 8 nodes.  Our
        # kernels differ, but the modeled time must be in a sane band
        # (minutes, not seconds or days).
        assert 30 < report.total_s < 7200


class TestDeterminism:
    def test_whole_experiment_reproducible(self):
        def one_run():
            reads = generate_whole_metagenome_sample(
                "S9", num_reads=80, genome_length=4000, seed=11
            )
            run = MrMCMinH(kmer_size=5, num_hashes=64, threshold=0.78, seed=11).fit(reads)
            return dict(run.assignment)

        assert one_run() == one_run()
