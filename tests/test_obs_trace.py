"""Tracer unit tests: span nesting, activation, cross-process merge."""

import os

import pytest

from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer, current_tracer


class TestSpanNesting:
    def test_with_blocks_parent_through_call_depth(self):
        tracer = Tracer()

        def inner():
            with tracer.span("inner") as span:
                return span

        with tracer.span("outer") as outer:
            inner_span = inner()

        assert inner_span.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.end_s is not None and inner_span.end_s is not None
        assert outer.start_s <= inner_span.start_s
        assert inner_span.end_s <= outer.end_s

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == parent.span_id
        assert b.parent_id == parent.span_id
        assert a.span_id != b.span_id

    def test_exception_marks_error_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom") as span:
                raise ValueError("kaput")
        assert span.status == "error"
        assert "kaput" in span.attrs["error"]
        assert span.end_s is not None

    def test_span_attrs_and_kind_recorded(self):
        tracer = Tracer()
        with tracer.span("job:x", kind="job", workers=4) as span:
            span.attrs["shuffle_bytes"] = 123
        assert span.kind == "job"
        assert span.attrs == {"workers": 4, "shuffle_bytes": 123}
        assert span.pid == os.getpid()

    def test_manual_start_finish_does_not_touch_context(self):
        tracer = Tracer()
        with tracer.span("ctx") as ctx:
            manual = tracer.start("manual", parent=ctx)
            assert tracer.current_span() is ctx
            with tracer.span("child") as child:
                pass
            tracer.finish(manual, status="error")
        assert manual.parent_id == ctx.span_id
        assert child.parent_id == ctx.span_id  # not under the manual span
        assert manual.status == "error"


class TestActivation:
    def test_current_tracer_defaults_to_null(self):
        assert current_tracer() is NULL_TRACER

    def test_activate_scopes_the_tracer(self):
        tracer = Tracer()
        with tracer.activate():
            assert current_tracer() is tracer
            with current_tracer().span("x"):
                pass
        assert current_tracer() is NULL_TRACER
        assert [s.name for s in tracer.spans] == ["x"]

    def test_nested_activation_restores_outer(self):
        outer, inner = Tracer(), Tracer()
        with outer.activate():
            with inner.activate():
                assert current_tracer() is inner
            assert current_tracer() is outer


class TestNullTracer:
    def test_null_tracer_records_nothing(self):
        null = NullTracer()
        with null.span("anything", kind="job", attr=1) as span:
            span.status = "error"
            span.attrs["k"] = "v"
            assert span.status == "ok"
            assert "k" not in span.attrs
        assert null.spans == []
        assert null.current_span() is None
        assert null.merge_payload({"epoch_wall": 0, "pid": 0, "spans": []}) == []

    def test_null_metrics_swallow_everything(self):
        null = NullTracer()
        null.metrics.counter("c").inc(5)
        null.metrics.gauge("g").set(1.5)
        null.metrics.histogram("h").observe(0.1)
        assert null.metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestMergePayload:
    def test_merge_rebases_remaps_and_reparents(self):
        driver = Tracer()
        worker = Tracer()
        # Simulate a worker whose wall-clock epoch is 10s after the driver's.
        worker.epoch_wall = driver.epoch_wall + 10.0
        with worker.span("attempt:1", kind="attempt") as root:
            with worker.span("work"):
                pass
        payload = worker.export_payload()

        task = driver.start("task:t0", kind="task")
        merged = driver.merge_payload(payload, parent=task)
        driver.finish(task)

        assert len(merged) == 2
        by_name = {s.name: s for s in merged}
        m_root, m_child = by_name["attempt:1"], by_name["work"]
        # Reparented under the driver-side task span.
        assert m_root.parent_id == task.span_id
        # Internal parent link remapped consistently.
        assert m_child.parent_id == m_root.span_id
        # Ids moved into the driver's id space (no collisions).
        ids = [s.span_id for s in driver.spans]
        assert len(ids) == len(set(ids))
        # Times rebased by the epoch difference.
        assert m_root.start_s == pytest.approx(root.start_s + 10.0)
        # Worker pid preserved for per-process trace tracks.
        assert m_root.pid == worker.pid

    def test_payload_round_trips_attrs_and_status(self):
        worker = Tracer()
        with pytest.raises(RuntimeError):
            with worker.span("attempt:1", kind="attempt", fault="crash"):
                raise RuntimeError("injected")
        driver = Tracer()
        (merged,) = driver.merge_payload(worker.export_payload())
        assert merged.status == "error"
        assert merged.attrs["fault"] == "crash"
        assert merged.parent_id is None


class TestSpanSerialization:
    def test_to_from_dict_round_trip(self):
        span = Span(
            name="n",
            span_id=7,
            parent_id=3,
            start_s=1.5,
            end_s=2.5,
            kind="task",
            status="error",
            pid=42,
            attrs={"a": 1},
        )
        assert Span.from_dict(span.to_dict()) == span
        assert span.duration_s == pytest.approx(1.0)

    def test_open_span_has_zero_duration(self):
        span = Span(name="n", span_id=1, parent_id=None, start_s=1.0)
        assert span.duration_s == 0.0
