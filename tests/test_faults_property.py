"""Property-based chaos tests: shuffle grouping/sorting invariants and
final outputs must survive ANY single-task failure schedule, any seeded
fault rates, and the serial/multiprocess runner choice."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.faults import Fault, FaultPlan, RetryPolicy
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.local import MultiprocessRunner
from repro.mapreduce.runner import SerialRunner
from repro.mapreduce.types import JobConf

pytestmark = pytest.mark.chaos


def tokenize(key, value):
    for word in value.split():
        yield word, 1


def total(key, values):
    yield key, sum(values)


WORDCOUNT = MapReduceJob(name="wc", mapper=tokenize, reducer=total, combiner=total)

docs = st.lists(
    st.text(alphabet="ab c", min_size=0, max_size=30), min_size=1, max_size=12
)

# One injected failure somewhere in a 3-map/2-reduce job, on attempt 1 or 2
# (max_attempts=3 always leaves a clean attempt to win).
single_faults = st.builds(
    lambda kind, phase, index, attempt: {
        ("wc", phase, index, attempt): Fault(kind=kind)
    },
    kind=st.sampled_from(["crash", "corrupt"]),
    phase=st.sampled_from(["map", "reduce"]),
    index=st.integers(0, 2),
    attempt=st.integers(1, 2),
)

CONF = JobConf(num_map_tasks=3, num_reduce_tasks=2)
POLICY = RetryPolicy(max_attempts=3)


class TestFaultProperties:
    @given(docs, single_faults)
    @settings(max_examples=60, deadline=None)
    def test_any_single_task_failure_is_invisible(self, texts, schedule):
        """Output (values AND order) equals the fault-free run no matter
        which task attempt crashes or gets corrupted."""
        inputs = list(enumerate(texts))
        clean = SerialRunner(trace=False).run(WORDCOUNT, inputs, CONF)
        chaotic = SerialRunner(trace=False).run(
            WORDCOUNT, inputs, CONF,
            fault_plan=FaultPlan(schedule=schedule), retry=POLICY,
        )
        assert chaotic.output == clean.output

    @given(docs, single_faults)
    @settings(max_examples=40, deadline=None)
    def test_shuffle_invariants_survive_failures(self, texts, schedule):
        """Grouping and sorting invariants hold under failure: output keys
        are unique, sorted, and totals match the reference count."""
        inputs = list(enumerate(texts))
        result = SerialRunner(trace=False).run(
            WORDCOUNT, inputs, CONF,
            fault_plan=FaultPlan(schedule=schedule), retry=POLICY,
        )
        keys = [k for k, _ in result.output]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))
        assert dict(result.output) == dict(
            Counter(w for t in texts for w in t.split())
        )

    @given(docs, st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_seeded_rate_chaos_is_invisible(self, texts, seed):
        """Rate-driven chaos (capped so retries always converge) never
        changes the answer, for any seed."""
        inputs = list(enumerate(texts))
        clean = SerialRunner(trace=False).run(WORDCOUNT, inputs, CONF)
        plan = FaultPlan(
            seed=seed,
            mapper_crash_rate=0.4,
            reducer_crash_rate=0.3,
            corrupt_rate=0.3,
            max_faulted_attempts=2,
        )
        chaotic = SerialRunner(trace=False).run(
            WORDCOUNT, inputs, CONF, fault_plan=plan, retry=POLICY
        )
        assert chaotic.output == clean.output

    @given(docs, st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_chaos_is_deterministic(self, texts, seed):
        """The same plan replayed injects the same faults: two chaotic runs
        agree on output AND attempt accounting."""
        inputs = list(enumerate(texts))

        def chaotic_run():
            plan = FaultPlan(seed=seed, mapper_crash_rate=0.5, max_faulted_attempts=2)
            return SerialRunner().run(
                WORDCOUNT, inputs, CONF, fault_plan=plan, retry=POLICY
            )

        a, b = chaotic_run(), chaotic_run()
        assert a.output == b.output
        assert a.counters.get("fault", "task_retries") == b.counters.get(
            "fault", "task_retries"
        )
        assert [t.attempts for t in a.trace.map_tasks] == [
            t.attempts for t in b.trace.map_tasks
        ]

    @given(docs, st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_serial_and_multiprocess_equivalent_under_chaos(self, texts, seed):
        """Both backends recover to the same bytes under the same plan."""
        inputs = list(enumerate(texts))
        plan_args = dict(seed=seed, mapper_crash_rate=0.4, max_faulted_attempts=2)
        serial = SerialRunner(trace=False).run(
            WORDCOUNT, inputs, CONF,
            fault_plan=FaultPlan(**plan_args), retry=POLICY,
        )
        parallel = MultiprocessRunner(num_workers=2).run(
            WORDCOUNT, inputs, CONF,
            fault_plan=FaultPlan(**plan_args), retry=POLICY,
        )
        assert serial.output == parallel.output
