"""Tests for sketch and assignment persistence."""

import numpy as np
import pytest

from repro.errors import ClusteringError, SketchError
from repro.cluster.assignments import ClusterAssignment
from repro.minhash.sketch import MinHashSketch, SketchingConfig, compute_sketches
from repro.minhash.similarity import positional_similarity
from repro.minhash.store import load_sketches, save_sketches
from repro.seq.records import SequenceRecord


@pytest.fixture
def sketches():
    records = [
        SequenceRecord("a", "ACGTACGTACGTACGT"),
        SequenceRecord("b", "TTGGCCAATTGGCCAA"),
        SequenceRecord("c", "ACGTACGTACGTACGT"),
    ]
    return compute_sketches(records, SketchingConfig(kmer_size=4, num_hashes=16, seed=3))


class TestSketchStore:
    def test_roundtrip(self, sketches, tmp_path):
        path = tmp_path / "sk.npz"
        save_sketches(sketches, path)
        back = load_sketches(path)
        assert [s.read_id for s in back] == [s.read_id for s in sketches]
        for original, loaded in zip(sketches, back):
            assert np.array_equal(original.values, loaded.values)
            assert original.family_key == loaded.family_key

    def test_loaded_sketches_comparable(self, sketches, tmp_path):
        path = tmp_path / "sk.npz"
        save_sketches(sketches, path)
        back = load_sketches(path)
        # Cross-compare original with loaded: same family, same values.
        assert positional_similarity(sketches[0], back[2]) == 1.0

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(SketchError):
            save_sketches([], tmp_path / "x.npz")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not a numpy archive")
        with pytest.raises(SketchError, match="cannot load"):
            load_sketches(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SketchError):
            load_sketches(tmp_path / "missing.npz")

    def test_mixed_families_rejected_on_save(self, sketches, tmp_path):
        other = MinHashSketch("z", np.arange(16), family_key=(9, 9, 9))
        with pytest.raises(SketchError):
            save_sketches(list(sketches) + [other], tmp_path / "x.npz")


class TestAssignmentTsv:
    def test_roundtrip(self):
        a = ClusterAssignment({"r2": 1, "r1": 0, "r3": 0})
        back = ClusterAssignment.from_tsv(a.to_tsv())
        assert dict(back) == dict(a)

    def test_sorted_output(self):
        a = ClusterAssignment({"b": 1, "a": 0})
        assert a.to_tsv() == "a\t0\nb\t1\n"

    def test_blank_lines_skipped(self):
        back = ClusterAssignment.from_tsv("a\t0\n\nb\t1\n")
        assert back.num_sequences == 2

    def test_bad_format(self):
        with pytest.raises(ClusteringError, match="TAB"):
            ClusterAssignment.from_tsv("a 0\n")
        with pytest.raises(ClusteringError, match="not an integer"):
            ClusterAssignment.from_tsv("a\tx\n")
        with pytest.raises(ClusteringError, match="duplicate"):
            ClusterAssignment.from_tsv("a\t0\na\t1\n")

    def test_matches_pipeline_hdfs_format(self):
        """The TSV matches what MrMCMinH.fit_hdfs writes."""
        from repro.mapreduce.hdfs import SimulatedHDFS
        from repro.cluster.pipeline import MrMCMinH

        records = [
            SequenceRecord("x1", "ACGTACGTACGTACGT"),
            SequenceRecord("x2", "ACGTACGTACGTACGT"),
        ]
        hdfs = SimulatedHDFS(2, block_size=256)
        MrMCMinH.stage_records(hdfs, "/in.fa", records)
        run = MrMCMinH(kmer_size=4, num_hashes=16, threshold=0.5).fit_hdfs(
            hdfs, "/in.fa", "/out.tsv"
        )
        parsed = ClusterAssignment.from_tsv(hdfs.get_text("/out.tsv"))
        assert dict(parsed) == dict(run.assignment)
