"""Tests for UnionFind and ClusterAssignment."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ClusteringError
from repro.cluster.assignments import ClusterAssignment
from repro.cluster.unionfind import UnionFind


class TestUnionFind:
    def test_initial_state(self):
        uf = UnionFind(5)
        assert uf.num_sets == 5
        assert len(uf) == 5
        assert not uf.connected(0, 1)

    def test_union_and_find(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert not uf.union(0, 1)  # already joined
        assert uf.num_sets == 4

    def test_transitivity(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)

    def test_set_size(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.set_size(2) == 3
        assert uf.set_size(3) == 1

    def test_labels_dense_first_seen(self):
        uf = UnionFind(4)
        uf.union(2, 3)
        labels = uf.labels()
        assert labels[0] == 0
        assert labels[1] == 1
        assert labels[2] == labels[3] == 2

    def test_out_of_range(self):
        uf = UnionFind(3)
        with pytest.raises(ClusteringError):
            uf.find(3)
        with pytest.raises(ClusteringError):
            UnionFind(-1)

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_num_sets_invariant(self, unions):
        """num_sets always equals the number of distinct labels."""
        uf = UnionFind(20)
        for a, b in unions:
            uf.union(a, b)
        assert uf.num_sets == len(set(uf.labels()))


class TestClusterAssignment:
    def test_basic_views(self):
        a = ClusterAssignment({"r1": 0, "r2": 0, "r3": 1})
        assert a.num_clusters == 2
        assert a.num_sequences == 3
        assert set(a.members(0)) == {"r1", "r2"}
        assert a.sizes() == {0: 2, 1: 1}
        assert a["r3"] == 1

    def test_mapping_protocol(self):
        a = ClusterAssignment({"x": 0})
        assert len(a) == 1
        assert list(a) == ["x"]
        assert "x" in a

    def test_empty_rejected(self):
        with pytest.raises(ClusteringError):
            ClusterAssignment({})

    def test_negative_label_rejected(self):
        with pytest.raises(ClusteringError):
            ClusterAssignment({"r": -1})

    def test_unknown_cluster(self):
        a = ClusterAssignment({"r": 0})
        with pytest.raises(ClusteringError):
            a.members(5)

    def test_filter_min_size(self):
        a = ClusterAssignment({"a": 0, "b": 0, "c": 1})
        filtered = a.filter_min_size(2)
        assert filtered.num_clusters == 1
        assert set(filtered) == {"a", "b"}

    def test_filter_nothing_survives(self):
        a = ClusterAssignment({"a": 0, "b": 1})
        with pytest.raises(ClusteringError):
            a.filter_min_size(5)

    def test_relabeled_by_size(self):
        a = ClusterAssignment({"a": 7, "b": 7, "c": 7, "d": 2})
        r = a.relabeled()
        assert r["a"] == 0  # biggest cluster gets label 0
        assert r["d"] == 1
        assert r.num_clusters == a.num_clusters

    def test_from_labels(self):
        a = ClusterAssignment.from_labels(["x", "y"], [1, 1])
        assert a.num_clusters == 1

    def test_from_labels_validation(self):
        with pytest.raises(ClusteringError):
            ClusterAssignment.from_labels(["x"], [1, 2])
        with pytest.raises(ClusteringError):
            ClusterAssignment.from_labels(["x", "x"], [1, 2])

    def test_size_histogram(self):
        a = ClusterAssignment({"a": 0, "b": 0, "c": 1, "d": 2})
        assert a.size_histogram() == {2: 1, 1: 2}

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_sizes_sum_to_sequences(self, labels):
        ids = [f"r{i}" for i in range(len(labels))]
        a = ClusterAssignment.from_labels(ids, labels)
        assert sum(a.sizes().values()) == a.num_sequences
        assert a.num_clusters == len(set(labels))
