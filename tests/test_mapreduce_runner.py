"""Tests for the serial runner and the multiprocess runner, including a
wordcount end-to-end and serial/parallel equivalence."""

import pytest

from repro.errors import MapReduceError
from repro.mapreduce.job import MapReduceJob, identity_mapper, identity_reducer
from repro.mapreduce.local import MultiprocessRunner
from repro.mapreduce.runner import SerialRunner
from repro.mapreduce.types import JobConf


def tokenize_mapper(key, value):
    for word in value.split():
        yield word, 1


def sum_reducer(key, values):
    yield key, sum(values)


WORDCOUNT = MapReduceJob(
    name="wordcount",
    mapper=tokenize_mapper,
    reducer=sum_reducer,
    combiner=sum_reducer,
)

DOCS = [
    (0, "the quick brown fox"),
    (1, "the lazy dog"),
    (2, "the quick dog jumps"),
    (3, "brown dog brown fox"),
]

EXPECTED = {
    "the": 3, "quick": 2, "brown": 3, "fox": 2, "lazy": 1, "dog": 3, "jumps": 1,
}


class TestSerialRunner:
    def test_wordcount(self):
        result = SerialRunner().run(WORDCOUNT, DOCS, JobConf(num_map_tasks=2, num_reduce_tasks=3))
        assert dict(result.output) == EXPECTED

    def test_output_sorted(self):
        result = SerialRunner().run(WORDCOUNT, DOCS)
        keys = [k for k, _ in result.output]
        assert keys == sorted(keys)

    def test_counters(self):
        result = SerialRunner().run(WORDCOUNT, DOCS, JobConf(num_map_tasks=2))
        assert result.counters.get("job", "map_input_records") == 4
        assert result.counters.get("job", "reduce_output_records") == len(EXPECTED)

    def test_combiner_reduces_shuffle(self):
        with_comb = SerialRunner().run(
            WORDCOUNT, DOCS, JobConf(num_map_tasks=1, use_combiner=True)
        )
        without = SerialRunner().run(
            WORDCOUNT, DOCS, JobConf(num_map_tasks=1, use_combiner=False)
        )
        assert dict(with_comb.output) == dict(without.output)
        assert (
            with_comb.counters.get("job", "shuffle_records")
            < without.counters.get("job", "shuffle_records")
        )

    def test_trace_recorded(self):
        result = SerialRunner().run(WORDCOUNT, DOCS, JobConf(num_map_tasks=2, num_reduce_tasks=2))
        trace = result.trace
        assert trace is not None
        assert len(trace.map_tasks) == 2
        assert len(trace.reduce_tasks) == 2
        assert trace.total_map_records == 4
        assert all(t.cpu_seconds >= 0 for t in trace.map_tasks)

    def test_trace_disabled(self):
        result = SerialRunner(trace=False).run(WORDCOUNT, DOCS)
        assert result.trace is None

    def test_empty_input(self):
        result = SerialRunner().run(WORDCOUNT, [], JobConf(num_map_tasks=3))
        assert result.output == []

    def test_more_tasks_than_records(self):
        result = SerialRunner().run(WORDCOUNT, DOCS[:1], JobConf(num_map_tasks=8))
        assert dict(result.output) == {"the": 1, "quick": 1, "brown": 1, "fox": 1}

    def test_bad_mapper_output_rejected(self):
        job = MapReduceJob(
            name="bad", mapper=lambda k, v: ["not-a-pair"], reducer=identity_reducer
        )
        with pytest.raises(MapReduceError, match="expected \\(key, value\\)"):
            SerialRunner().run(job, [(0, "x")])

    def test_bad_reducer_output_rejected(self):
        job = MapReduceJob(
            name="bad", mapper=identity_mapper, reducer=lambda k, vs: [("a", 1, 2)]
        )
        with pytest.raises(MapReduceError):
            SerialRunner().run(job, [(0, "x")])

    def test_run_chain(self):
        # Stage 1: wordcount; stage 2: bucket counts by parity.
        def parity_mapper(word, count):
            yield count % 2, count

        chain_job = MapReduceJob(name="parity", mapper=parity_mapper, reducer=sum_reducer)
        result, traces = SerialRunner().run_chain(
            [(WORDCOUNT, None), (chain_job, None)], DOCS
        )
        assert [t.job_name for t in traces] == ["wordcount", "parity"]
        expected_odd = sum(v for v in EXPECTED.values() if v % 2 == 1)
        expected_even = sum(v for v in EXPECTED.values() if v % 2 == 0)
        assert dict(result.output) == {0: expected_even, 1: expected_odd}

    def test_run_chain_empty_rejected(self):
        with pytest.raises(MapReduceError):
            SerialRunner().run_chain([], DOCS)


class TestMultiprocessRunner:
    def test_matches_serial(self):
        serial = SerialRunner().run(WORDCOUNT, DOCS, JobConf(num_map_tasks=3, num_reduce_tasks=2))
        parallel = MultiprocessRunner(num_workers=2).run(
            WORDCOUNT, DOCS, JobConf(num_map_tasks=3, num_reduce_tasks=2)
        )
        assert dict(serial.output) == dict(parallel.output)

    def test_single_worker(self):
        result = MultiprocessRunner(num_workers=1).run(WORDCOUNT, DOCS)
        assert dict(result.output) == EXPECTED

    def test_counters_merged(self):
        result = MultiprocessRunner(num_workers=2).run(
            WORDCOUNT, DOCS, JobConf(num_map_tasks=2)
        )
        assert result.counters.get("job", "map_input_records") == 4

    def test_combiner_flag_respected(self):
        result = MultiprocessRunner(num_workers=1).run(
            WORDCOUNT, DOCS, JobConf(use_combiner=False)
        )
        assert dict(result.output) == EXPECTED

    def test_invalid_workers(self):
        with pytest.raises(MapReduceError):
            MultiprocessRunner(num_workers=0)
