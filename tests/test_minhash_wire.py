"""b-bit compressed sketch wire format (repro.minhash.wire).

Covers the packed codec round-trip, the CRC guard on compressed frames,
the collision-corrected Jaccard estimator, and the engine integration
that actually shrinks sketch-job shuffle traffic.
"""

import numpy as np
import pytest

from repro.errors import ClusteringError, MapReduceError, SketchError
from repro.cluster.pipeline import MrMCMinH
from repro.datasets import generate_whole_metagenome_sample
from repro.minhash.sketch import MinHashSketch, SketchingConfig, compute_sketches
from repro.minhash.wire import (
    SUPPORTED_BITS,
    SketchWireCodec,
    collision_floor,
    corrected_jaccard,
    effective_threshold,
    pack_values,
    unpack_values,
)


# ------------------------------------------------------------- packing


@pytest.mark.parametrize("bits", SUPPORTED_BITS)
def test_pack_unpack_roundtrip(bits):
    rng = np.random.default_rng(bits)
    matrix = rng.integers(0, 1 << 62, size=(13, 25), dtype=np.int64)
    payload = pack_values(matrix, bits)
    assert len(payload) == -(-13 * 25 * bits // 8)  # ceil of the bit count
    restored = unpack_values(payload, 13, 25, bits)
    mask = (1 << bits) - 1
    assert np.array_equal(restored, matrix & mask)


def test_pack_rejects_unsupported_bits():
    matrix = np.zeros((2, 2), dtype=np.int64)
    for bad in (0, 3, 7, 64):
        with pytest.raises(SketchError):
            pack_values(matrix, bad)


def test_packed_size_is_b_over_64():
    matrix = np.zeros((100, 64), dtype=np.int64)
    for bits in SUPPORTED_BITS:
        payload = pack_values(matrix, bits)
        assert len(payload) == matrix.nbytes * bits // 64


def test_unpack_validates_length():
    payload = pack_values(np.zeros((4, 8), dtype=np.int64), 8)
    with pytest.raises(SketchError):
        unpack_values(payload, 5, 8, 8)


# ----------------------------------------------------------- estimator


def test_collision_floor():
    assert collision_floor(1) == 0.5
    assert collision_floor(8) == 1 / 256


def test_corrected_jaccard_endpoints():
    for bits in SUPPORTED_BITS:
        c = collision_floor(bits)
        assert corrected_jaccard(c, bits) == pytest.approx(0.0)
        assert corrected_jaccard(1.0, bits) == pytest.approx(1.0)
        # Below-floor match fractions clip to 0 rather than going negative.
        assert corrected_jaccard(0.0, bits) == 0.0


def test_effective_threshold_is_inverse():
    for bits in SUPPORTED_BITS:
        for theta in (0.0, 0.3, 0.9, 1.0):
            eff = effective_threshold(theta, bits)
            assert corrected_jaccard(eff, bits) == pytest.approx(theta)


def test_estimator_accuracy_statistical():
    """b-bit match fractions, corrected, estimate the full-width Jaccard.

    Two sketches with known full-width positional similarity J: the
    expected b-bit match fraction is c + (1-c)J, so the corrected
    estimate must land near J (binomial noise over n components).
    """
    rng = np.random.default_rng(0)
    n = 4000
    a = rng.integers(0, 1 << 32, size=n, dtype=np.int64)
    b = a.copy()
    differ = rng.random(n) < 0.4  # target J = 0.6
    b[differ] = rng.integers(0, 1 << 32, size=int(differ.sum()), dtype=np.int64)
    j_full = float(np.mean(a == b))
    for bits in (4, 8, 16):
        mask = (1 << bits) - 1
        match = float(np.mean((a & mask) == (b & mask)))
        estimate = corrected_jaccard(match, bits)
        # 3-sigma binomial bound on n components, plus correction blow-up.
        sigma = 3.0 / (np.sqrt(n) * (1 - collision_floor(bits)))
        assert abs(estimate - j_full) < sigma + 0.02


# --------------------------------------------------------------- codec


def _sketches(num=12):
    reads = generate_whole_metagenome_sample("S1", num_reads=num, genome_length=3000)
    return compute_sketches(reads, SketchingConfig(kmer_size=5, num_hashes=50))


def test_codec_roundtrip_preserves_low_bits():
    sketches = _sketches()
    records = [(i, s) for i, s in enumerate(sketches)]
    codec = SketchWireCodec(bits=8)
    frame = codec.encode_records(records)
    decoded = codec.decode_records(frame)
    assert [k for k, _ in decoded] == [k for k, _ in records]
    for (_, got), (_, sent) in zip(decoded, records):
        assert isinstance(got, MinHashSketch)
        assert got.read_id == sent.read_id
        assert np.array_equal(got.values, sent.values & 0xFF)


def test_codec_frame_is_smaller_than_raw():
    sketches = _sketches()
    records = [(i, s) for i, s in enumerate(sketches)]
    frame = SketchWireCodec(bits=8).encode_records(records)
    raw_bytes = sum(s.values.nbytes for s in sketches)
    assert frame.nbytes == raw_bytes // 8  # b/64 of the value bytes


def test_codec_crc_detects_corruption():
    sketches = _sketches()
    codec = SketchWireCodec(bits=8)
    frame = codec.encode_records([(i, s) for i, s in enumerate(sketches)])
    tampered = bytearray(frame.payload)
    tampered[0] ^= 0xFF
    bad = type(frame)(
        payload=bytes(tampered),
        crc=frame.crc,
        keys=frame.keys,
        read_ids=frame.read_ids,
        num_hashes=frame.num_hashes,
        bits=frame.bits,
        seed=frame.seed,
    )
    with pytest.raises(MapReduceError, match="checksum"):
        codec.decode_records(bad)


def test_codec_rejects_non_sketch_records():
    codec = SketchWireCodec(bits=8)
    with pytest.raises(MapReduceError):
        codec.encode_records([(0, "not a sketch")])


# ---------------------------------------------------- engine integration


def test_pipeline_wire_shrinks_shuffle_bytes():
    reads = generate_whole_metagenome_sample("S1", num_reads=60, genome_length=3000)
    kwargs = dict(
        kmer_size=5,
        num_hashes=100,
        threshold=0.8,
        method="greedy",
        estimator="positional",
    )
    plain = MrMCMinH(**kwargs).fit(reads)
    wired = MrMCMinH(**kwargs, wire_bits=8).fit(reads)
    wire = wired.counters.as_dict()["wire"]
    assert wire["frames"] >= 1
    assert wire["bytes_wire"] < wire["bytes_raw"]
    # The sketch job's trace bills shuffle at frame size.
    assert wired.traces[0].shuffle_bytes == wire["bytes_wire"]
    assert wired.traces[0].shuffle_bytes < plain.traces[0].shuffle_bytes


def test_pipeline_wire_preserves_clustering_on_separated_workload():
    """Clustering decisions survive compression when similarities sit far
    from the threshold: duplicate reads (J = 1) always clear the effective
    threshold, unrelated random reads (b-bit match fraction ~ 1/256) never
    do.  (Pairs *at* the threshold may flip — the corrected estimator is
    unbiased but decisions on the integer match-count grid can move by
    one count, which is why this test pins similarities to the extremes.)
    """
    from repro.seq.records import SequenceRecord

    rng = np.random.default_rng(11)
    records = []
    for group in range(4):
        sequence = "".join(rng.choice(list("ACGT"), size=300))
        for copy_idx in range(5):
            records.append(
                SequenceRecord(read_id=f"g{group}c{copy_idx}", sequence=sequence)
            )
    for lone in range(6):
        records.append(
            SequenceRecord(
                read_id=f"lone{lone}",
                sequence="".join(rng.choice(list("ACGT"), size=300)),
            )
        )
    kwargs = dict(
        kmer_size=8,
        num_hashes=100,
        threshold=0.9,
        method="greedy",
        estimator="positional",
    )
    plain = MrMCMinH(**kwargs).fit(records)
    wired = MrMCMinH(**kwargs, wire_bits=8).fit(records)
    assert plain.assignment.num_clusters == 10  # 4 duplicate groups + 6 loners
    assert dict(wired.assignment) == dict(plain.assignment)


def test_pipeline_wire_rejects_set_estimator():
    with pytest.raises(ClusteringError, match="positional"):
        MrMCMinH(method="greedy", estimator="set", wire_bits=8)


def test_pipeline_wire_rejects_bad_bits():
    with pytest.raises(SketchError, match="unsupported b-bit width"):
        MrMCMinH(method="greedy", estimator="positional", wire_bits=5)
