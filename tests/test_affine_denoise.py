"""Tests for affine-gap alignment and singleton rescue."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ClusteringError, SequenceError
from repro.align.affine import AffineScheme, affine_align, affine_identity
from repro.align.global_align import ScoringScheme, global_align
from repro.cluster.assignments import ClusterAssignment
from repro.cluster.denoise import rescue_small_clusters
from repro.minhash.sketch import MinHashSketch

dna = st.text(alphabet="ACGT", min_size=1, max_size=30)


class TestAffineScheme:
    def test_validation(self):
        with pytest.raises(SequenceError):
            AffineScheme(gap_open=1.0)
        with pytest.raises(SequenceError):
            AffineScheme(gap_open=-1.0, gap_extend=-2.0)  # extend worse than open
        with pytest.raises(SequenceError):
            AffineScheme(match=-1.0, mismatch=0.0)


class TestAffineAlign:
    def test_identical(self):
        r = affine_align("ACGTACGT", "ACGTACGT")
        assert r.identity == 1.0
        assert r.score == 8.0

    def test_prefers_one_long_gap(self):
        """Affine costs favour a single 3-gap over three scattered gaps."""
        a = "AAACCCGGGTTT"
        b = "AAAGGGTTT"  # CCC deleted as a block
        r = affine_align(a, b, AffineScheme(gap_open=-3.0, gap_extend=-0.25))
        # The gap must be contiguous in the b row.
        gap_run = r.aligned_b.count("-")
        assert gap_run == 3
        assert "---" in r.aligned_b

    def test_reduces_to_linear_when_extend_equals_open(self):
        scheme_affine = AffineScheme(gap_open=-1.0, gap_extend=-1.0)
        scheme_linear = ScoringScheme(gap=-1.0)
        rng = np.random.default_rng(0)
        for _ in range(15):
            n = int(rng.integers(5, 25))
            a = "".join(rng.choice(list("ACGT"), size=n))
            b = "".join(rng.choice(list("ACGT"), size=int(rng.integers(5, 25))))
            assert affine_align(a, b, scheme_affine).score == pytest.approx(
                global_align(a, b, scheme_linear).score
            )

    def test_empty_rejected(self):
        with pytest.raises(SequenceError):
            affine_align("", "ACGT")

    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_alignment_strings_consistent(self, a, b):
        r = affine_align(a, b)
        assert r.aligned_a.replace("-", "") == a.upper()
        assert r.aligned_b.replace("-", "") == b.upper()
        assert len(r.aligned_a) == len(r.aligned_b) == r.length
        matches = sum(
            1 for x, y in zip(r.aligned_a, r.aligned_b) if x == y and x != "-"
        )
        assert matches == r.matches

    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_traceback_rescoring(self, a, b):
        """The aligned strings must re-score to the reported optimum."""
        scheme = AffineScheme()
        r = affine_align(a, b, scheme)
        score = 0.0
        in_gap_a = in_gap_b = False
        for x, y in zip(r.aligned_a, r.aligned_b):
            if x == "-":
                score += scheme.gap_extend if in_gap_a else scheme.gap_open
                in_gap_a, in_gap_b = True, False
            elif y == "-":
                score += scheme.gap_extend if in_gap_b else scheme.gap_open
                in_gap_b, in_gap_a = True, False
            else:
                score += scheme.match if x == y else scheme.mismatch
                in_gap_a = in_gap_b = False
        assert score == pytest.approx(r.score)

    @given(dna)
    @settings(max_examples=25, deadline=None)
    def test_self_identity(self, a):
        assert affine_identity(a, a) == 1.0


def sketch(read_id, values):
    return MinHashSketch(read_id, np.asarray(values, dtype=np.int64), family_key=(4, 10, 0))


class TestRescueSmallClusters:
    def _setup(self):
        # Big cluster 0 (3x identical), big cluster 1 (2x), singleton near 0.
        sketches = [
            sketch("a0", [1, 2, 3, 4]),
            sketch("a1", [1, 2, 3, 4]),
            sketch("a2", [1, 2, 3, 4]),
            sketch("b0", [9, 9, 9, 9]),
            sketch("b1", [9, 9, 9, 9]),
            sketch("lonely", [1, 2, 3, 7]),  # 75% similar to cluster 0
        ]
        assignment = ClusterAssignment(
            {"a0": 0, "a1": 0, "a2": 0, "b0": 1, "b1": 1, "lonely": 2}
        )
        return assignment, sketches

    def test_rescues_into_nearest(self):
        assignment, sketches = self._setup()
        out = rescue_small_clusters(
            assignment, sketches, rescue_threshold=0.7, max_size=1
        )
        assert out["lonely"] == 0
        assert out.num_clusters == 2

    def test_threshold_blocks_rescue(self):
        assignment, sketches = self._setup()
        out = rescue_small_clusters(
            assignment, sketches, rescue_threshold=0.9, max_size=1
        )
        assert out["lonely"] == 2  # stays a singleton

    def test_large_clusters_untouched(self):
        assignment, sketches = self._setup()
        out = rescue_small_clusters(
            assignment, sketches, rescue_threshold=0.7, max_size=1
        )
        for rid in ("a0", "a1", "a2"):
            assert out[rid] == 0
        for rid in ("b0", "b1"):
            assert out[rid] == 1

    def test_no_large_clusters_noop(self):
        sketches = [sketch("x", [1, 2, 3, 4]), sketch("y", [5, 6, 7, 8])]
        assignment = ClusterAssignment({"x": 0, "y": 1})
        out = rescue_small_clusters(assignment, sketches, rescue_threshold=0.5)
        assert dict(out) == dict(assignment)

    def test_validation(self):
        assignment, sketches = self._setup()
        with pytest.raises(ClusteringError):
            rescue_small_clusters(assignment, sketches, rescue_threshold=1.5)
        with pytest.raises(ClusteringError):
            rescue_small_clusters(assignment, sketches, rescue_threshold=0.5, max_size=0)
        with pytest.raises(ClusteringError, match="no sketch"):
            rescue_small_clusters(assignment, sketches[:2], rescue_threshold=0.5)

    def test_reduces_cluster_count_on_noisy_sample(self):
        """End-to-end: rescue recovers errored 16S reads."""
        from repro.cluster.pipeline import MrMCMinH
        from repro.datasets import generate_environmental_sample

        reads = generate_environmental_sample("53R", num_reads=120, seed=5)
        run = MrMCMinH(kmer_size=15, num_hashes=50, threshold=0.95, seed=5).fit(reads)
        rescued = rescue_small_clusters(
            run.assignment, run.sketches, rescue_threshold=0.5, max_size=1
        )
        assert rescued.num_clusters < run.assignment.num_clusters
        # Rescue must not scramble large clusters' membership.
        for label, members in run.assignment.clusters().items():
            if len(members) > 1:
                labels = {rescued[m] for m in members}
                assert len(labels) == 1
