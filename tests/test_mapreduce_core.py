"""Tests for Map-Reduce core pieces: counters, shuffle, job definitions."""

import pytest

from repro.errors import MapReduceError
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import MapReduceJob, identity_mapper, identity_reducer
from repro.mapreduce.shuffle import default_partitioner, shuffle, sort_grouped_keys
from repro.mapreduce.types import JobConf, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash(("k", 1)) == stable_hash(("k", 1))

    def test_non_negative(self):
        for key in ("x", 0, -5, (1, "a"), None, 3.14):
            assert stable_hash(key) >= 0

    def test_spread(self):
        values = {stable_hash(f"key{i}") % 8 for i in range(100)}
        assert len(values) >= 6  # uses most partitions

    def test_unpicklable_rejected(self):
        with pytest.raises(MapReduceError, match="not picklable"):
            stable_hash(lambda: None)


class TestJobConf:
    def test_defaults(self):
        conf = JobConf()
        assert conf.num_map_tasks == 1
        assert conf.num_reduce_tasks == 1

    def test_validation(self):
        with pytest.raises(MapReduceError):
            JobConf(num_map_tasks=0)
        with pytest.raises(MapReduceError):
            JobConf(num_reduce_tasks=0)


class TestCounters:
    def test_increment_and_get(self):
        c = Counters()
        c.increment("g", "n")
        c.increment("g", "n", 4)
        assert c.get("g", "n") == 5

    def test_missing_is_zero(self):
        assert Counters().get("g", "missing") == 0

    def test_merge(self):
        a, b = Counters(), Counters()
        a.increment("g", "x", 2)
        b.increment("g", "x", 3)
        b.increment("h", "y")
        a.merge(b)
        assert a.get("g", "x") == 5
        assert a.get("h", "y") == 1

    def test_as_dict_and_groups(self):
        c = Counters()
        c.increment("g2", "b")
        c.increment("g1", "a", 7)
        assert c.groups() == ["g1", "g2"]
        assert c.as_dict() == {"g1": {"a": 7}, "g2": {"b": 1}}

    def test_iter_sorted(self):
        c = Counters()
        c.increment("b", "x")
        c.increment("a", "y")
        assert list(c) == [("a", "y", 1), ("b", "x", 1)]

    def test_len(self):
        c = Counters()
        assert len(c) == 0
        c.increment("g", "n")
        assert len(c) == 1


class TestShuffle:
    def test_groups_and_sorts(self):
        outputs = [[("b", 1), ("a", 2)], [("a", 3)]]
        partitions, moved = shuffle(outputs, 1)
        assert moved == 3
        assert partitions[0] == [("a", [2, 3]), ("b", [1])]

    def test_partition_routing_consistent(self):
        outputs = [[(f"k{i}", i) for i in range(50)]]
        partitions, _ = shuffle(outputs, 4)
        for p, groups in enumerate(partitions):
            for key, _values in groups:
                assert default_partitioner(key, 4) == p

    def test_bad_partitioner_rejected(self):
        with pytest.raises(MapReduceError, match="partitioner returned"):
            shuffle([[("k", 1)]], 2, lambda k, n: 99)

    def test_bad_record_rejected(self):
        with pytest.raises(MapReduceError, match="not a \\(key, value\\) pair"):
            shuffle([[("k", 1, 2)]], 1)

    def test_zero_partitions_rejected(self):
        with pytest.raises(MapReduceError):
            shuffle([[]], 0)

    def test_mixed_key_types_sort(self):
        keys = sort_grouped_keys(["b", 1, "a", 2])
        assert len(keys) == 4  # must not raise

    def test_all_values_preserved(self):
        outputs = [[(i % 5, i) for i in range(100)]]
        partitions, moved = shuffle(outputs, 3)
        values = [v for groups in partitions for _k, vals in groups for v in vals]
        assert sorted(values) == list(range(100))
        assert moved == 100


class TestJobDefinition:
    def test_validation(self):
        with pytest.raises(MapReduceError):
            MapReduceJob(name="", mapper=identity_mapper, reducer=identity_reducer)
        with pytest.raises(MapReduceError):
            MapReduceJob(name="j", mapper=None, reducer=identity_reducer)
        with pytest.raises(MapReduceError):
            MapReduceJob(name="j", mapper=identity_mapper, reducer=None)
        with pytest.raises(MapReduceError):
            MapReduceJob(
                name="j", mapper=identity_mapper, reducer=identity_reducer, combiner=5
            )

    def test_context_detection(self):
        def mapper_with_ctx(key, value, *, context):
            context.increment("test", "calls")
            yield key, value

        job = MapReduceJob(name="j", mapper=mapper_with_ctx, reducer=identity_reducer)
        counters = Counters()
        list(job.run_mapper("k", "v", counters))
        assert counters.get("test", "calls") == 1

    def test_identity_helpers(self):
        assert list(identity_mapper("k", "v")) == [("k", "v")]
        assert list(identity_reducer("k", [1, 2])) == [("k", 1), ("k", 2)]

    def test_default_combiner_is_identity(self):
        job = MapReduceJob(name="j", mapper=identity_mapper, reducer=identity_reducer)
        assert list(job.run_combiner("k", [1, 2])) == [("k", 1), ("k", 2)]
